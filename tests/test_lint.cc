/**
 * @file
 * hllc_lint engine tests: a small corpus of bad snippets (one per
 * rule), false-positive traps (banned keywords inside strings and
 * comments must stay silent), suppression-comment semantics, baseline
 * subtraction, the include-cycle detector and the report formats.
 *
 * Every corpus snippet lives in a C++ string literal, so the linter —
 * which also scans tests/ — sees them as string tokens and stays quiet
 * about this file itself.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>
#include <unistd.h>

#include "common/error.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"
#include "lint/lexer.hh"
#include "lint/lint.hh"
#include "lint/rules.hh"

namespace
{

namespace fs = std::filesystem;
using namespace hllc;

// --------------------------------------------------------------------
// Helpers.
// --------------------------------------------------------------------

std::vector<lint::Finding>
run(const std::string &path, const std::string &source,
    const lint::Options &options = {})
{
    return lint::lintSource(path, source, options);
}

/** Number of findings for @p rule. */
std::size_t
countRule(const std::vector<lint::Finding> &findings,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const lint::Finding &finding : findings) {
        if (finding.rule == rule)
            ++n;
    }
    return n;
}

lint::Options
without(const std::string &rule)
{
    lint::Options options;
    options.disabledRules.push_back(rule);
    return options;
}

/** A header body with the correct guard for src/cache/corpus.hh. */
std::string
guardedHeader(const std::string &body)
{
    return "#ifndef HLLC_CACHE_CORPUS_HH\n"
           "#define HLLC_CACHE_CORPUS_HH\n" +
           body +
           "#endif // HLLC_CACHE_CORPUS_HH\n";
}

// --------------------------------------------------------------------
// determinism
// --------------------------------------------------------------------

TEST(LintDeterminism, FiresOnRandCall)
{
    const std::string src = "int f() { return rand(); }\n";
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src),
                        "determinism"), 1u);
    // The corpus snippet is exactly what proves the engine is live:
    // disabling the rule must silence it.
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src,
                            without("determinism")), "determinism"), 0u);
}

TEST(LintDeterminism, FiresOnEngineTypesAndClockSeeds)
{
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "std::mt19937 gen(7);\n"), "determinism"),
              1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "std::random_device rd;\n"), "determinism"),
              1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "auto seed = time(nullptr);\n"),
                        "determinism"), 1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "auto id = std::this_thread::get_id();\n"),
                        "determinism"), 1u);
}

TEST(LintDeterminism, SilentOnLookalikes)
{
    // An identifier merely named `rand` is legal when not called...
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "int rand = 3; use(rand);\n"),
                        "determinism"), 0u);
    // ...and so is a member function on some object.
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "int x = gen.rand();\n"), "determinism"),
              0u);
    // time() with an actual argument is formatting, not seeding.
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "time(&now);\n"), "determinism"), 0u);
}

TEST(LintDeterminism, RngModuleIsExempt)
{
    EXPECT_EQ(countRule(run("src/common/rng.cc",
                            "std::mt19937_64 engine_;\n"),
                        "determinism"), 0u);
}

// --------------------------------------------------------------------
// atomic-io
// --------------------------------------------------------------------

TEST(LintAtomicIo, FiresOnRawFileCreation)
{
    const std::string src =
        "void f() { std::ofstream out(\"results.json\"); }\n";
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src), "atomic-io"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src,
                            without("atomic-io")), "atomic-io"), 0u);

    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "FILE *f = fopen(\"x\", \"w\");\n"),
                        "atomic-io"), 1u);
}

TEST(LintAtomicIo, SerializeModuleIsExempt)
{
    EXPECT_EQ(countRule(run("src/common/serialize.cc",
                            "FILE *f = fopen(path, \"wb\");\n"),
                        "atomic-io"), 0u);
}

// --------------------------------------------------------------------
// atomic-rename
// --------------------------------------------------------------------

TEST(LintAtomicRename, FiresOnRawRename)
{
    const std::string src =
        "void f() { std::rename(\"a.tmp\", \"a.json\"); }\n";
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src), "atomic-rename"),
              1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src,
                            without("atomic-rename")),
                        "atomic-rename"), 0u);

    // Unqualified C rename() and the *at variants are just as raw.
    EXPECT_EQ(countRule(run("tools/corpus.cpp",
                            "rename(tmp.c_str(), path.c_str());\n"),
                        "atomic-rename"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "renameat2(fd, a, fd, b, 0);\n"),
                        "atomic-rename"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "std::filesystem::rename(a, b);\n"),
                        "atomic-rename"), 1u);
}

TEST(LintAtomicRename, SilentOnLookalikes)
{
    // A member function named rename belongs to its object...
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "registry.rename(old_name, new_name);\n"),
                        "atomic-rename"), 0u);
    // ...and so does a qualified call into some other namespace.
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "db::rename(old_name, new_name);\n"),
                        "atomic-rename"), 0u);
    // An identifier merely named rename is not a call.
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "bool rename = false; use(rename);\n"),
                        "atomic-rename"), 0u);
}

TEST(LintAtomicRename, SerializeModuleIsExempt)
{
    EXPECT_EQ(countRule(run("src/common/serialize.cc",
                            "std::rename(tmp.c_str(), p.c_str());\n"),
                        "atomic-rename"), 0u);
}

// --------------------------------------------------------------------
// locale
// --------------------------------------------------------------------

TEST(LintLocale, FiresOnLocaleHonouringCalls)
{
    const std::string src = "auto s = std::to_string(count);\n";
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src), "locale"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc", src,
                            without("locale")), "locale"), 0u);

    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "os << std::setprecision(4) << v;\n"),
                        "locale"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "double d = strtod(text, &end);\n"),
                        "locale"), 1u);
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "double d = atof(text);\n"), "locale"), 1u);
}

TEST(LintLocale, SilentOnOtherNamespacesAndNumfmt)
{
    // Some other library's to_string is not std's.
    EXPECT_EQ(countRule(run("src/sim/corpus.cc",
                            "auto s = fmt::to_string(x);\n"), "locale"),
              0u);
    EXPECT_EQ(countRule(run("src/common/numfmt.hh",
                            "auto s = std::to_string(x);\n"), "locale"),
              0u);
}

// --------------------------------------------------------------------
// no-exit-in-library
// --------------------------------------------------------------------

TEST(LintNoExit, FiresInLibraryCodeOnly)
{
    const std::string src = "void f() { std::exit(1); }\n";
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src),
                        "no-exit-in-library"), 1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src,
                            without("no-exit-in-library")),
                        "no-exit-in-library"), 0u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "void f() { abort(); }\n"),
                        "no-exit-in-library"), 1u);

    // CLI mains may terminate the process; so may the logging sinks.
    EXPECT_EQ(countRule(run("tools/corpus.cpp", src),
                        "no-exit-in-library"), 0u);
    EXPECT_EQ(countRule(run("src/common/logging.cc",
                            "void f() { std::abort(); }\n"),
                        "no-exit-in-library"), 0u);
}

// --------------------------------------------------------------------
// header-hygiene
// --------------------------------------------------------------------

TEST(LintHeaderHygiene, CleanHeaderPasses)
{
    EXPECT_EQ(countRule(run("src/cache/corpus.hh",
                            guardedHeader("int f();\n")),
                        "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, FiresOnGuardProblems)
{
    const std::string wrong_guard =
        "#ifndef WRONG_GUARD_HH\n"
        "#define WRONG_GUARD_HH\n"
        "int f();\n"
        "#endif\n";
    EXPECT_EQ(countRule(run("src/cache/corpus.hh", wrong_guard),
                        "header-hygiene"), 1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.hh", wrong_guard,
                            without("header-hygiene")),
                        "header-hygiene"), 0u);

    EXPECT_GE(countRule(run("src/cache/corpus.hh",
                            "#pragma once\nint f();\n"),
                        "header-hygiene"), 1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.hh",
                            "int f();\n"), "header-hygiene"), 1u);
}

TEST(LintHeaderHygiene, FiresOnUsingNamespaceInHeader)
{
    EXPECT_EQ(countRule(run("src/cache/corpus.hh",
                            guardedHeader("using namespace std;\n")),
                        "header-hygiene"), 1u);
    // The same statement in a .cc is fine.
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "using namespace std;\n"),
                        "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, FiresOnLayeringViolations)
{
    // common is the bottom layer: it must not reach up into cache.
    EXPECT_EQ(countRule(run("src/common/corpus.cc",
                            "#include \"cache/cache_set.hh\"\n"),
                        "header-hygiene"), 1u);
    // cache -> common is a sanctioned edge.
    EXPECT_EQ(countRule(run("src/cache/corpus.cc",
                            "#include \"common/logging.hh\"\n"),
                        "header-hygiene"), 0u);
    // A module absent from the layering table is itself a finding.
    EXPECT_EQ(countRule(run("src/newmod/corpus.cc",
                            "#include \"common/logging.hh\"\n"),
                        "header-hygiene"), 1u);
    // tools/bench/tests may include anything.
    EXPECT_EQ(countRule(run("tools/corpus.cpp",
                            "#include \"sim/grid.hh\"\n"),
                        "header-hygiene"), 0u);
}

// --------------------------------------------------------------------
// False-positive traps: banned names inside strings and comments.
// --------------------------------------------------------------------

TEST(LintFalsePositives, KeywordsInStringsDoNotFire)
{
    const std::string src =
        "const char *a = \"call rand() or fopen() here\";\n"
        "const char *b = \"std::to_string(3) std::exit(1)\";\n"
        "const char *c = R\"(std::ofstream out; mt19937 gen;)\";\n";
    const std::vector<lint::Finding> findings =
        run("src/cache/corpus.cc", src);
    EXPECT_TRUE(findings.empty())
        << lint::formatText({ findings, 0, 0, 1 });
}

TEST(LintFalsePositives, KeywordsInCommentsDoNotFire)
{
    const std::string src =
        "// rand() would break determinism; fopen() tears output\n"
        "/* std::to_string(x) honours the locale; std::exit(1) */\n"
        "int f();\n";
    EXPECT_TRUE(run("src/cache/corpus.cc", src).empty());
}

// --------------------------------------------------------------------
// Suppressions.
// --------------------------------------------------------------------

TEST(LintSuppression, SameLineWaiverCoversItsLine)
{
    const std::string src =
        "int x = rand(); "
        "// hllc-lint: allow(determinism) corpus test needs it\n";
    EXPECT_TRUE(run("src/cache/corpus.cc", src).empty());
}

TEST(LintSuppression, StandaloneWaiverCoversNextCodeLine)
{
    const std::string src =
        "// hllc-lint: allow(atomic-io) probing a torn file on purpose\n"
        "FILE *f = fopen(\"x\", \"rb\");\n";
    EXPECT_TRUE(run("src/cache/corpus.cc", src).empty());

    // A continued comment still reaches the first line holding code.
    const std::string continued =
        "// hllc-lint: allow(atomic-io) probing a torn file on\n"
        "// purpose, to check the reader's error path\n"
        "FILE *f = fopen(\"x\", \"rb\");\n";
    EXPECT_TRUE(run("src/cache/corpus.cc", continued).empty());
}

TEST(LintSuppression, WaiverOnlyCoversNamedRules)
{
    // The waiver names determinism, so the atomic-io finding survives.
    const std::string src =
        "// hllc-lint: allow(determinism) wrong rule named\n"
        "FILE *f = fopen(\"x\", \"rb\");\n";
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src), "atomic-io"),
              1u);
}

TEST(LintSuppression, MissingJustificationIsItselfAFinding)
{
    const std::string src =
        "// hllc-lint: allow(determinism)\n"
        "int x = rand();\n";
    const std::vector<lint::Finding> findings =
        run("src/cache/corpus.cc", src);
    // The waiver still works, but its emptiness is reported.
    EXPECT_EQ(countRule(findings, "determinism"), 0u);
    EXPECT_EQ(countRule(findings, "suppression"), 1u);
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src,
                            without("suppression")), "suppression"),
              0u);
}

TEST(LintSuppression, UnknownRuleNameIsReported)
{
    const std::string src =
        "// hllc-lint: allow(no-such-rule) bogus\n"
        "int f();\n";
    EXPECT_EQ(countRule(run("src/cache/corpus.cc", src), "suppression"),
              1u);
}

TEST(LintSuppression, ProseQuotingTheSyntaxIsIgnored)
{
    // Documentation describing the waiver format is not a waiver.
    const std::string src =
        "// Waive findings with hllc-lint: allow(<rule>) <why>.\n"
        "int f();\n";
    EXPECT_TRUE(run("src/cache/corpus.cc", src).empty());
}

// --------------------------------------------------------------------
// Tree walking, include cycles, baseline, report formats.
// --------------------------------------------------------------------

/** A throwaway tree under /tmp, deleted on scope exit. */
class TempTree
{
  public:
    TempTree()
        : root_(fs::temp_directory_path() /
                ("hllc_test_lint_" + formatI64(::getpid())))
    {
        fs::remove_all(root_);
    }
    ~TempTree() { fs::remove_all(root_); }

    void
    add(const std::string &rel, const std::string &content)
    {
        const fs::path path = root_ / rel;
        fs::create_directories(path.parent_path());
        serial::writeFileAtomic(path.string(), content.data(),
                                content.size());
    }

    std::string rootStr() const { return root_.string(); }

  private:
    fs::path root_;
};

TEST(LintTree, WalksFindsAndBaselines)
{
    TempTree tree;
    tree.add("src/cache/clean.cc", "int f() { return 1; }\n");
    tree.add("src/cache/bad.cc", "int g() { return rand(); }\n");

    lint::RunOptions options;
    options.paths = { "src" };
    const lint::RunResult first = lint::lintTree(tree.rootStr(), options);
    ASSERT_EQ(first.findings.size(), 1u);
    EXPECT_EQ(first.findings[0].file, "src/cache/bad.cc");
    EXPECT_EQ(first.findings[0].rule, "determinism");
    EXPECT_EQ(first.findings[0].lineText, "int g() { return rand(); }");
    EXPECT_EQ(first.filesScanned, 2u);

    // A baseline built from the findings absorbs them on the next run;
    // an entry matching nothing is counted stale.
    tree.add("baseline.txt",
             lint::formatBaseline(first.findings) +
             "src/cache/clean.cc|locale|gone line\n");
    options.baselinePath = "baseline.txt";
    const lint::RunResult second =
        lint::lintTree(tree.rootStr(), options);
    EXPECT_TRUE(second.findings.empty());
    EXPECT_EQ(second.baselined, 1u);
    EXPECT_EQ(second.staleBaseline, 1u);
}

TEST(LintTree, DetectsHeaderIncludeCycles)
{
    TempTree tree;
    tree.add("src/cache/a.hh",
             "#ifndef HLLC_CACHE_A_HH\n#define HLLC_CACHE_A_HH\n"
             "#include \"cache/b.hh\"\n#endif\n");
    tree.add("src/cache/b.hh",
             "#ifndef HLLC_CACHE_B_HH\n#define HLLC_CACHE_B_HH\n"
             "#include \"cache/a.hh\"\n#endif\n");

    lint::RunOptions options;
    options.paths = { "src" };
    const lint::RunResult result =
        lint::lintTree(tree.rootStr(), options);
    bool cycle_reported = false;
    for (const lint::Finding &finding : result.findings) {
        if (finding.rule == "include-graph" &&
            finding.message.find("include cycle") != std::string::npos) {
            cycle_reported = true;
        }
    }
    EXPECT_TRUE(cycle_reported);

    // The cycle detector is rule include-graph and obeys its switch.
    options.rules = without("include-graph");
    EXPECT_TRUE(lint::lintTree(tree.rootStr(), options).findings.empty());
}

TEST(LintTree, MissingPathThrows)
{
    TempTree tree;
    tree.add("src/ok.cc", "int f();\n");
    lint::RunOptions options;
    options.paths = { "no_such_dir" };
    EXPECT_THROW(lint::lintTree(tree.rootStr(), options), IoError);
}

TEST(LintReport, TextAndJsonShapes)
{
    lint::RunResult result;
    result.findings.push_back({ "src/cache/bad.cc", 3, "determinism",
                                "msg \"quoted\"", "int x = rand();" });
    result.filesScanned = 2;

    const std::string text = lint::formatText(result);
    EXPECT_NE(text.find("src/cache/bad.cc:3: [determinism] "),
              std::string::npos);
    EXPECT_NE(text.find("1 finding(s) in 2 file(s)"), std::string::npos);

    const std::string json = lint::formatJson(result);
    EXPECT_NE(json.find("\"schema\": \"hllc-lint-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"determinism\": 1"), std::string::npos);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);

    // Every rule appears in counts even at zero, so dashboards can rely
    // on the key set.
    for (const std::string &rule : lint::allRules())
        EXPECT_NE(json.find("\"" + rule + "\""), std::string::npos);
}

// --------------------------------------------------------------------
// Lexer spot checks (the machinery behind the false-positive traps).
// --------------------------------------------------------------------

TEST(LintLexer, ClassifiesTokens)
{
    const std::vector<lint::Token> tokens = lint::lex(
        "#include \"cache/x.hh\"\n"
        "int n = 0x1f; // trailing\n"
        "const char *s = \"str\";\n");
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, lint::TokKind::Directive);
    EXPECT_EQ(tokens[0].text, "include");
    EXPECT_EQ(tokens[0].payload, "\"cache/x.hh\"");

    bool saw_number = false, saw_comment = false, saw_string = false;
    for (const lint::Token &tok : tokens) {
        saw_number |= tok.kind == lint::TokKind::Number &&
                      tok.text == "0x1f";
        saw_comment |= tok.kind == lint::TokKind::Comment;
        saw_string |= tok.kind == lint::TokKind::String;
    }
    EXPECT_TRUE(saw_number);
    EXPECT_TRUE(saw_comment);
    EXPECT_TRUE(saw_string);
}

TEST(LintLexer, RawStringsSwallowEverything)
{
    const std::vector<lint::Token> tokens =
        lint::lex("auto s = R\"x(rand() \"quote\" // not a comment)x\";\n");
    for (const lint::Token &tok : tokens) {
        EXPECT_NE(tok.kind, lint::TokKind::Comment);
        if (tok.kind == lint::TokKind::Identifier) {
            EXPECT_NE(tok.text, "rand");
        }
    }
}

TEST(LintLexer, BlockCommentsTrackEndLine)
{
    const std::vector<lint::Token> tokens =
        lint::lex("/* one\ntwo\nthree */ int x;\n");
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, lint::TokKind::Comment);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].endLine, 3);
}

/** First token of @p kind, or nullptr. */
const lint::Token *
firstOf(const std::vector<lint::Token> &tokens, lint::TokKind kind)
{
    for (const lint::Token &tok : tokens) {
        if (tok.kind == kind)
            return &tok;
    }
    return nullptr;
}

TEST(LintLexer, DigitSeparatorsStayOneNumberToken)
{
    const std::vector<lint::Token> tokens =
        lint::lex("auto n = 1'048'576; auto h = 0xFF'FF;\n");
    std::vector<std::string> numbers;
    for (const lint::Token &tok : tokens) {
        if (tok.kind == lint::TokKind::Number)
            numbers.push_back(tok.text);
    }
    ASSERT_EQ(numbers.size(), 2u);
    EXPECT_EQ(numbers[0], "1'048'576");
    EXPECT_EQ(numbers[1], "0xFF'FF");
}

TEST(LintLexer, NumericUdlSuffixStaysInTheNumberToken)
{
    const std::vector<lint::Token> tokens =
        lint::lex("auto b = 64_kb; auto t = 250ms;\n");
    std::vector<std::string> numbers;
    for (const lint::Token &tok : tokens) {
        if (tok.kind == lint::TokKind::Number)
            numbers.push_back(tok.text);
        // The suffix must NOT leak out as a free identifier.
        if (tok.kind == lint::TokKind::Identifier) {
            EXPECT_NE(tok.text, "_kb");
            EXPECT_NE(tok.text, "ms");
        }
    }
    ASSERT_EQ(numbers.size(), 2u);
    EXPECT_EQ(numbers[0], "64_kb");
    EXPECT_EQ(numbers[1], "250ms");
}

TEST(LintLexer, StringUdlSuffixLandsInPayload)
{
    const std::vector<lint::Token> tokens =
        lint::lex("auto s = \"abc\"_sv; auto c = 'x'_ch;\n");
    const lint::Token *str = firstOf(tokens, lint::TokKind::String);
    const lint::Token *chr = firstOf(tokens, lint::TokKind::Char);
    ASSERT_NE(str, nullptr);
    ASSERT_NE(chr, nullptr);
    EXPECT_EQ(str->text, "abc");
    EXPECT_EQ(str->payload, "_sv");
    EXPECT_EQ(chr->payload, "_ch");
    for (const lint::Token &tok : tokens) {
        if (tok.kind == lint::TokKind::Identifier) {
            EXPECT_NE(tok.text, "_sv");
            EXPECT_NE(tok.text, "_ch");
        }
    }
}

TEST(LintLexer, RawStringNonEmptyDelimiterEndsAtItsOwnCloser)
{
    // `)"` inside the literal is NOT the closer when the delimiter is
    // `x(`; only `)x"` ends it.
    const std::vector<lint::Token> tokens = lint::lex(
        "auto s = R\"x(inner )\" still inside)x\"_raw; int after = 1;\n");
    const lint::Token *str = firstOf(tokens, lint::TokKind::String);
    ASSERT_NE(str, nullptr);
    EXPECT_NE(str->text.find("still inside"), std::string::npos);
    EXPECT_EQ(str->payload, "_raw");
    bool saw_after = false;
    for (const lint::Token &tok : tokens) {
        saw_after |= tok.kind == lint::TokKind::Identifier &&
                     tok.text == "after";
    }
    EXPECT_TRUE(saw_after);
}

} // anonymous namespace
