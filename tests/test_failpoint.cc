/**
 * @file
 * Deterministic fault injection tests: trigger grammar and semantics
 * (nth/every/prob/off), closed-catalog enforcement, the fired log, and
 * a sweep that fires every cheap failpoint site through its real code
 * path (atomic writes, reads, trace decode, stats export, worker
 * bodies) asserting each failure is a clean IoError that leaves no
 * torn or orphaned files behind. The grid and forecast-checkpoint
 * sites are exercised end-to-end in test_resilience.cc.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/manifest.hh"
#include "common/error.hh"
#include "common/failpoint.hh"
#include "common/metrics.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"
#include "ingest/champsim.hh"
#include "replay/llc_trace.hh"

namespace
{

using namespace hllc;

/** Every test starts and ends with no chaos configured. */
class FailpointSpec : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointSpec, NthFiresExactlyOnceOnTheNthHit)
{
    failpoint::configure("serialize.read=nth:3");
    EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
    EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
    EXPECT_TRUE(failpoint::shouldFail("serialize.read"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
}

TEST_F(FailpointSpec, EveryFiresOnEveryKthHit)
{
    failpoint::configure("serialize.read=every:3");
    for (int round = 0; round < 4; ++round) {
        EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
        EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
        EXPECT_TRUE(failpoint::shouldFail("serialize.read"));
    }
}

TEST_F(FailpointSpec, ProbIsDeterministicInSeedAndHitIndex)
{
    const auto draw = [] {
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i)
            fires.push_back(failpoint::shouldFail("serialize.read"));
        return fires;
    };
    failpoint::configure("serialize.read=prob:0.5@42");
    const std::vector<bool> first = draw();
    failpoint::reset();
    failpoint::configure("serialize.read=prob:0.5@42");
    EXPECT_EQ(draw(), first);

    // A different seed draws a different schedule (with overwhelming
    // probability for 200 draws), and the rate is roughly honoured.
    failpoint::reset();
    failpoint::configure("serialize.read=prob:0.5@43");
    const std::vector<bool> other = draw();
    EXPECT_NE(other, first);
    std::size_t fired = 0;
    for (const bool f : first)
        fired += f ? 1 : 0;
    EXPECT_GT(fired, 50u);
    EXPECT_LT(fired, 150u);
}

TEST_F(FailpointSpec, ProbZeroNeverFiresAndProbOneAlwaysFires)
{
    failpoint::configure("serialize.read=prob:0@1");
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
    failpoint::configure("serialize.read=prob:1@1");
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(failpoint::shouldFail("serialize.read"));
}

TEST_F(FailpointSpec, OffAndLaterEntriesOverrideEarlierOnes)
{
    failpoint::configure(
        "serialize.read=every:1;serialize.read=off");
    EXPECT_FALSE(failpoint::shouldFail("serialize.read"));

    failpoint::configure("serialize.read=every:1");
    EXPECT_TRUE(failpoint::shouldFail("serialize.read"));
    failpoint::configure("serialize.read=off");
    EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
}

TEST_F(FailpointSpec, UnknownNamesAndBadSyntaxAreRejectedAtomically)
{
    EXPECT_THROW(failpoint::configure("no.such.point=nth:1"), IoError);
    EXPECT_THROW(failpoint::configure("serialize.read"), IoError);
    EXPECT_THROW(failpoint::configure("serialize.read=nth:0"), IoError);
    EXPECT_THROW(failpoint::configure("serialize.read=nth:x"), IoError);
    EXPECT_THROW(failpoint::configure("serialize.read=every:0"),
                 IoError);
    EXPECT_THROW(failpoint::configure("serialize.read=prob:2@1"),
                 IoError);
    EXPECT_THROW(failpoint::configure("serialize.read=bogus"), IoError);

    // A bad entry anywhere in the spec must leave the previous
    // configuration untouched (parse-all-then-apply).
    failpoint::configure("serialize.read=nth:1");
    EXPECT_THROW(
        failpoint::configure("serialize.write.open=nth:1;oops=nth:1"),
        IoError);
    EXPECT_TRUE(failpoint::shouldFail("serialize.read"));
    EXPECT_FALSE(failpoint::shouldFail("serialize.write.open"));
}

TEST_F(FailpointSpec, UnconfiguredAndUnknownNamesNeverFire)
{
    EXPECT_FALSE(failpoint::shouldFail("serialize.read"));
    EXPECT_FALSE(failpoint::shouldFail("definitely.not.a.failpoint"));
}

TEST_F(FailpointSpec, FiredLogRecordsNameAndHitIndexInOrder)
{
    failpoint::configure(
        "serialize.read=nth:2;serialize.write.open=nth:1");
    failpoint::shouldFail("serialize.write.open"); // fires, hit 1
    failpoint::shouldFail("serialize.read");       // no fire
    failpoint::shouldFail("serialize.read");       // fires, hit 2

    const auto fired = failpoint::drainFired();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0].name, "serialize.write.open");
    EXPECT_EQ(fired[0].hit, 1u);
    EXPECT_EQ(fired[1].name, "serialize.read");
    EXPECT_EQ(fired[1].hit, 2u);
    EXPECT_TRUE(failpoint::drainFired().empty());
}

TEST_F(FailpointSpec, CatalogIsClosedAndEveryNameConfigures)
{
    const auto &names = failpoint::allFailpoints();
    ASSERT_GE(names.size(), 15u);
    for (const std::string &name : names) {
        failpoint::configure(name + "=nth:1");
        EXPECT_TRUE(failpoint::shouldFail(name.c_str())) << name;
        failpoint::reset();
    }
}

// --------------------------------------------------------------------
// Sweep: fire each cheap site through its real code path.
// --------------------------------------------------------------------

class FailpointSweep : public ::testing::Test
{
  protected:
    std::string path_;

    void SetUp() override
    {
        failpoint::reset();
        path_ = std::string("/tmp/hllc_test_failpoint_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    void TearDown() override
    {
        failpoint::reset();
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }

    static bool exists(const std::string &p)
    {
        // hllc-lint: allow(atomic-io) read-only probe for leftovers
        std::FILE *f = std::fopen(p.c_str(), "rb");
        if (f != nullptr)
            std::fclose(f);
        return f != nullptr;
    }

    void writePayload() const
    {
        const std::vector<std::uint8_t> bytes(64, 0xAB);
        serial::writeFileAtomic(path_, bytes.data(), bytes.size());
    }
};

TEST_F(FailpointSweep, WriteSitesFailCleanlyWithoutOrphanTmpFiles)
{
    // Every site that aborts before the rename commit point must leave
    // neither the final file nor the .tmp behind.
    for (const char *name : { "serialize.write.open",
                              "serialize.write.short",
                              "serialize.write.fsync",
                              "serialize.write.rename" }) {
        failpoint::configure(std::string(name) + "=nth:1");
        try {
            writePayload();
            FAIL() << name << " did not fire";
        } catch (const IoError &e) {
            EXPECT_NE(std::string(e.what()).find(name),
                      std::string::npos)
                << e.what();
        }
        EXPECT_FALSE(exists(path_)) << name;
        EXPECT_FALSE(exists(path_ + ".tmp")) << name;
        failpoint::reset();
    }
}

TEST_F(FailpointSweep, DirsyncFailureReportsButTheCommitStands)
{
    // serialize.write.dirsync fires after the rename: the caller sees
    // the IoError (durability of the *name* is unproven), but the file
    // content is already complete and intact.
    failpoint::configure("serialize.write.dirsync=nth:1");
    EXPECT_THROW(writePayload(), IoError);
    EXPECT_TRUE(exists(path_));
    EXPECT_FALSE(exists(path_ + ".tmp"));
    failpoint::reset();
    const auto bytes = serial::readFileBytes(path_);
    EXPECT_EQ(bytes, std::vector<std::uint8_t>(64, 0xAB));
}

TEST_F(FailpointSweep, CorruptSiteFlipsExactlyOneBitMidFile)
{
    failpoint::configure("serialize.write.corrupt=nth:1");
    writePayload(); // corruption is silent by design: CRCs catch it
    failpoint::reset();
    const auto bytes = serial::readFileBytes(path_);
    ASSERT_EQ(bytes.size(), 64u);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        EXPECT_EQ(bytes[i], i == 32 ? 0xAA : 0xAB) << "byte " << i;
    }
}

TEST_F(FailpointSweep, ReadAndDecodeAndExportSitesThrowIoError)
{
    writePayload();

    failpoint::configure("serialize.read=nth:1");
    EXPECT_THROW(serial::readFileBytes(path_), IoError);
    EXPECT_EQ(serial::readFileBytes(path_).size(), 64u);
    failpoint::reset();

    failpoint::configure("trace.decode=nth:1");
    EXPECT_THROW(replay::LlcTrace::load(path_), IoError);
    failpoint::reset();

    const std::string stats = path_ + ".json";
    failpoint::configure("stats.export=nth:1");
    EXPECT_THROW(metrics::writeStatsFile(stats, {}, "sweep"), IoError);
    EXPECT_FALSE(exists(stats));
    EXPECT_FALSE(exists(stats + ".tmp"));
    failpoint::reset();
    std::remove(stats.c_str());
}

TEST_F(FailpointSweep, IngestSitesFailCleanlyWithoutPartialOutput)
{
    // A conversion killed at either ingest site must leave no trace
    // file, no manifest, and no orphan .tmp of either.
    const auto fixture = ingest::synthesizeChampSimFixture(16, 1);
    const std::string in = path_ + ".ct";
    serial::writeFileAtomic(in, fixture.data(), fixture.size());
    const std::string out = path_ + ".hlt";
    const std::string manifest = check::manifestPathFor(out);

    for (const char *name :
         { "ingest.open", "ingest.decode", "ingest.write" }) {
        failpoint::configure(std::string(name) + "=nth:1");
        try {
            ingest::convertChampSimFile(in, out, {});
            FAIL() << name << " did not fire";
        } catch (const IoError &e) {
            EXPECT_NE(std::string(e.what()).find(name),
                      std::string::npos)
                << e.what();
        }
        for (const std::string &p :
             { out, out + ".tmp", manifest, manifest + ".tmp" }) {
            EXPECT_FALSE(exists(p)) << name << ": " << p;
        }
        failpoint::reset();
    }

    // With chaos off, the very same conversion commits both files.
    ingest::convertChampSimFile(in, out, {});
    EXPECT_TRUE(exists(out));
    EXPECT_TRUE(exists(manifest));
    for (const std::string &p : { in, out, manifest })
        std::remove(p.c_str());
}

TEST(FailpointThreadPool, TaskThrowSurfacesAndStallCompletes)
{
    failpoint::reset();
    failpoint::configure("threadpool.task.throw=nth:1");
    EXPECT_THROW(
        parallelFor(2, 4, [](std::size_t) {}), IoError);
    failpoint::reset();

    // A stalled task delays its worker but every iteration still runs.
    failpoint::configure("threadpool.task.stall=nth:1");
    std::vector<int> ran(4, 0);
    parallelFor(2, 4, [&](std::size_t i) { ran[i] = 1; });
    EXPECT_EQ(ran, std::vector<int>(4, 1));
    failpoint::reset();
}

} // namespace
