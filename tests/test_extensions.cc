/**
 * @file
 * Tests for the library extensions: trace (de)serialization, the energy
 * model, and the wear-distribution ablation knob.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hh"
#include "hierarchy/energy.hh"
#include "hierarchy/hierarchy.hh"
#include "replay/replayer.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;

class TraceFile : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-test path: cases run concurrently under `ctest -j`.
        path_ = std::string("/tmp/hllc_test_trace_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".hlt";
    }
    void TearDown() override { std::remove(path()); }

    const char *path() const { return path_.c_str(); }

    std::string path_;

    static replay::LlcTrace
    capture()
    {
        return hierarchy::captureTrace(
            workload::tableVMixes()[2], 512,
            hierarchy::PrivateCacheConfig{ 1024, 4, 4096, 16 }, 3000,
            77);
    }
};

TEST_F(TraceFile, SaveLoadRoundtrip)
{
    const replay::LlcTrace original = capture();
    original.save(path());
    const replay::LlcTrace loaded = replay::LlcTrace::load(path());

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.meta().mixName, original.meta().mixName);
    for (std::size_t c = 0; c < replay::traceCores; ++c) {
        EXPECT_EQ(loaded.meta().cores[c].instructions,
                  original.meta().cores[c].instructions);
        EXPECT_EQ(loaded.meta().cores[c].l1Hits,
                  original.meta().cores[c].l1Hits);
        EXPECT_DOUBLE_EQ(loaded.meta().cores[c].baseCpi,
                         original.meta().cores[c].baseCpi);
    }
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.events()[i].blockNum,
                  original.events()[i].blockNum);
        EXPECT_EQ(loaded.events()[i].type, original.events()[i].type);
        EXPECT_EQ(loaded.events()[i].ecbBytes,
                  original.events()[i].ecbBytes);
        EXPECT_EQ(loaded.events()[i].core, original.events()[i].core);
    }
}

TEST_F(TraceFile, LoadedTraceReplaysIdentically)
{
    const replay::LlcTrace original = capture();
    original.save(path());
    const replay::LlcTrace loaded = replay::LlcTrace::load(path());

    hybrid::HybridLlcConfig config;
    config.numSets = 32;
    config.policy = hybrid::PolicyKind::CaRwr;
    const fault::NvmGeometry geom{ config.numSets, config.nvmWays, 64 };
    const fault::EnduranceModel endurance(
        geom, { 1e12, 0.0 }, Xoshiro256StarStar(1));

    fault::FaultMap map_a(endurance, fault::DisableGranularity::Byte);
    fault::FaultMap map_b(endurance, fault::DisableGranularity::Byte);
    hybrid::HybridLlc llc_a(config, &map_a);
    hybrid::HybridLlc llc_b(config, &map_b);

    const replay::TraceReplayer replayer(0.2);
    const auto ra = replayer.replay(original, llc_a);
    const auto rb = replayer.replay(loaded, llc_b);
    EXPECT_EQ(ra.demandHits, rb.demandHits);
    EXPECT_EQ(ra.nvmBytesWritten, rb.nvmBytesWritten);
}

TEST_F(TraceFile, LoadRejectsGarbage)
{
    // hllc-lint: allow(atomic-io) writing deliberate garbage to test
    // the reader's rejection path
    std::FILE *f = std::fopen(path(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_THROW(replay::LlcTrace::load(path()), IoError);
}

TEST(Energy, BreakdownFollowsCounters)
{
    StatGroup stats("llc");
    stats.counter("gets_hits_sram") += 100;
    stats.counter("getx_hits_sram") += 50;
    stats.counter("gets_hits_nvm") += 200;
    stats.counter("inserts_sram") += 80;
    stats.counter("nvm_bytes_written") += 10'000;
    stats.counter("gets_misses") += 40;

    const hierarchy::EnergyParams params;
    const auto e = hierarchy::llcEnergy(stats, 4, 1e-3, params);

    EXPECT_DOUBLE_EQ(e.sramDynamic,
                     150 * params.sramReadNj + 80 * params.sramWriteNj);
    EXPECT_DOUBLE_EQ(e.nvmRead, 200 * (params.nvmReadNj +
                                       params.decompressionNj));
    EXPECT_DOUBLE_EQ(e.nvmWrite, 10'000 * params.nvmWritePerByteNj);
    EXPECT_DOUBLE_EQ(e.offChip, 40 * params.dramAccessNj);
    EXPECT_DOUBLE_EQ(e.leakage,
                     params.sramLeakagePerWayW * 4 * 1e-3 * 1e9);
    EXPECT_DOUBLE_EQ(e.total(), e.sramDynamic + e.nvmRead + e.nvmWrite +
                                    e.offChip + e.leakage);
}

TEST(Energy, FewerNvmBytesMeansLessWriteEnergy)
{
    StatGroup heavy("a"), light("b");
    heavy.counter("nvm_bytes_written") += 1'000'000;
    light.counter("nvm_bytes_written") += 100'000;
    const auto eh = hierarchy::llcEnergy(heavy, 4, 0.0);
    const auto el = hierarchy::llcEnergy(light, 4, 0.0);
    EXPECT_GT(eh.nvmWrite, 9.0 * el.nvmWrite);
}

TEST(WearDistribution, FrontLoadedKillsLeadingBytesFirst)
{
    const fault::NvmGeometry geom{ 2, 2, 64 };
    const fault::EnduranceModel endurance(
        geom, { 100.0, 0.0 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte,
                        fault::WearDistribution::FrontLoaded);
    EXPECT_EQ(map.distribution(),
              fault::WearDistribution::FrontLoaded);

    // 200 writes of 16 bytes each: bytes 0..15 take 200 writes (dead),
    // bytes 16.. take none.
    for (int i = 0; i < 200; ++i)
        map.recordWrite(0, 16);
    map.age(1.0);
    EXPECT_EQ(map.liveBytes(0), 64u - 16u);
    EXPECT_FALSE(map.liveMask(0) & 1u);
    EXPECT_TRUE(map.liveMask(0) & (1ull << 20));
    EXPECT_EQ(map.liveBytes(1), 64u);
}

TEST(WearDistribution, FrontLoadedAdvancesToSurvivors)
{
    const fault::NvmGeometry geom{ 1, 1, 64 };
    const fault::EnduranceModel endurance(
        geom, { 100.0, 0.0 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte,
                        fault::WearDistribution::FrontLoaded);
    // Two rounds: the second round's writes land on the next live
    // bytes after the first 8 die.
    for (int i = 0; i < 101; ++i)
        map.recordWrite(0, 8);
    map.age(1.0);
    EXPECT_EQ(map.liveBytes(0), 56u);
    for (int i = 0; i < 101; ++i)
        map.recordWrite(0, 8);
    map.age(1.0);
    EXPECT_EQ(map.liveBytes(0), 48u);
}

TEST(WearDistribution, LeveledOutlivesFrontLoaded)
{
    // Same traffic, same endurance: leveling must keep more capacity.
    const fault::NvmGeometry geom{ 4, 4, 64 };
    const fault::EnduranceModel endurance(
        geom, { 1000.0, 0.0 }, Xoshiro256StarStar(2));
    fault::FaultMap leveled(endurance, fault::DisableGranularity::Byte,
                            fault::WearDistribution::Leveled);
    fault::FaultMap front(endurance, fault::DisableGranularity::Byte,
                          fault::WearDistribution::FrontLoaded);
    for (std::uint32_t f = 0; f < geom.numFrames(); ++f) {
        for (int i = 0; i < 1200; ++i) {
            leveled.recordWrite(f, 32);
            front.recordWrite(f, 32);
        }
    }
    leveled.age(1.0);
    front.age(1.0);
    // Leveled: 1200*32/64 = 600 writes/byte < 1000 limit: all alive.
    EXPECT_EQ(leveled.effectiveCapacity(), 1.0);
    // Front-loaded: the first 32 bytes of each frame took 1200 writes.
    EXPECT_LT(front.effectiveCapacity(), 0.6);
}

} // namespace
