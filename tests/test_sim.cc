/**
 * @file
 * sim-layer tests: configuration scaling, System assembly, Experiment
 * phase studies and capacity degradation helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace
{

using namespace hllc;
using namespace hllc::sim;
using hybrid::PolicyKind;

TEST(Config, TableIVScaling)
{
    const SystemConfig s1 = SystemConfig::tableIV(1.0);
    EXPECT_EQ(s1.llcSets, 128u);
    EXPECT_EQ(s1.llcBlocks(), 128u * 16u);
    EXPECT_EQ(s1.privateCaches.l2Bytes, 8u * 1024u);

    const SystemConfig s16 = SystemConfig::tableIV(16.0);
    // Paper-scale geometry: 2 MB LLC, 128 KB L2, 32 KB L1.
    EXPECT_EQ(s16.llcSets, 2048u);
    EXPECT_EQ(s16.privateCaches.l2Bytes, 128u * 1024u);
    EXPECT_EQ(s16.privateCaches.l1Bytes, 32u * 1024u);
    EXPECT_DOUBLE_EQ(s16.fullScaleFactor(), 1.0);
    EXPECT_DOUBLE_EQ(s1.fullScaleFactor(), 16.0);
}

TEST(Config, ScaleFromEnvSnapsToPowerOfTwo)
{
    setenv("HLLC_SCALE", "3", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(), 4.0);
    setenv("HLLC_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(), 0.5);
    setenv("HLLC_SCALE", "garbage", 1);
    EXPECT_DOUBLE_EQ(scaleFromEnv(), 1.0);
    unsetenv("HLLC_SCALE");
    EXPECT_DOUBLE_EQ(scaleFromEnv(), 1.0);
}

TEST(Config, LlcConfigCarriesPolicyAndGeometry)
{
    const SystemConfig cfg = SystemConfig::tableIV(0.5);
    const auto llc = cfg.llcConfig(PolicyKind::LHybrid);
    EXPECT_EQ(llc.numSets, cfg.llcSets);
    EXPECT_EQ(llc.sramWays, 4u);
    EXPECT_EQ(llc.nvmWays, 12u);
    EXPECT_EQ(llc.policy, PolicyKind::LHybrid);

    const auto bound = cfg.llcConfigSramBound(16);
    EXPECT_EQ(bound.sramWays, 16u);
    EXPECT_EQ(bound.nvmWays, 0u);
    EXPECT_EQ(bound.policy, PolicyKind::SramOnly);
}

TEST(System, RunsAMixEndToEnd)
{
    const SystemConfig cfg = SystemConfig::tableIV(0.5);
    System system(cfg, workload::tableVMixes()[0], PolicyKind::CpSd);
    system.run(20'000);
    EXPECT_GT(system.llc().demandAccesses(), 0u);
    EXPECT_GT(system.meanIpc(), 0.0);
    EXPECT_LT(system.meanIpc(), 8.0); // core width bound
    // Wear was recorded against the fault map.
    double pending = 0.0;
    const auto frames = system.faultMap().geometry().numFrames();
    for (std::uint32_t f = 0; f < frames; ++f)
        pending += system.faultMap().pendingWrites(f);
    EXPECT_GT(pending, 0.0);
}

TEST(System, SramOnlyNeedsNoFaultMap)
{
    const SystemConfig cfg = SystemConfig::tableIV(0.5);
    System system(cfg, workload::tableVMixes()[1], PolicyKind::SramOnly);
    system.run(5'000);
    EXPECT_EQ(system.llc().nvmBytesWritten(), 0u);
}

TEST(DegradeUniform, ReachesTargetCapacity)
{
    const fault::NvmGeometry geom{ 32, 12, 64 };
    const fault::EnduranceModel endurance(
        geom, { 1e10, 0.2 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte);
    degradeUniform(map, 0.8, 99);
    EXPECT_LE(map.effectiveCapacity(), 0.8);
    EXPECT_GT(map.effectiveCapacity(), 0.78);
    // Deterministic.
    fault::FaultMap map2(endurance, fault::DisableGranularity::Byte);
    degradeUniform(map2, 0.8, 99);
    EXPECT_EQ(map.totalLiveBytes(), map2.totalLiveBytes());
}

/** Shared Experiment for the heavier integration checks. */
class ExperimentIntegration : public ::testing::Test
{
  protected:
    static const Experiment &experiment()
    {
        static const Experiment exp = [] {
            SystemConfig cfg = SystemConfig::tableIV(0.5);
            cfg.refsPerCore = 60'000;
            return Experiment(cfg, 3);
        }();
        return exp;
    }
};

TEST_F(ExperimentIntegration, CapturesRequestedMixes)
{
    EXPECT_EQ(experiment().traces().size(), 3u);
    EXPECT_EQ(experiment().tracePtrs().size(), 3u);
    EXPECT_EQ(experiment().tracePtr(1).size(), 1u);
    for (const auto &trace : experiment().traces())
        EXPECT_GT(trace.size(), 1000u);
}

TEST_F(ExperimentIntegration, PolicyOrderingAtFullCapacity)
{
    const auto &cfg = experiment().config();
    const auto bh =
        experiment().runPhase(cfg.llcConfig(PolicyKind::Bh), "BH");
    const auto lhybrid = experiment().runPhase(
        cfg.llcConfig(PolicyKind::LHybrid), "LHybrid");
    const auto tap =
        experiment().runPhase(cfg.llcConfig(PolicyKind::Tap), "TAP");
    const auto cpsd =
        experiment().runPhase(cfg.llcConfig(PolicyKind::CpSd), "CP_SD");

    // Paper Sec. II-D ordering at 100% capacity.
    EXPECT_GT(bh.aggregate.hitRate, lhybrid.aggregate.hitRate);
    EXPECT_GT(lhybrid.aggregate.hitRate, tap.aggregate.hitRate);
    EXPECT_GT(cpsd.aggregate.hitRate, lhybrid.aggregate.hitRate);
    // Write traffic: TAP < LHybrid << CP_SD < BH.
    EXPECT_LT(tap.aggregate.nvmBytesWritten,
              lhybrid.aggregate.nvmBytesWritten);
    EXPECT_LT(lhybrid.aggregate.nvmBytesWritten,
              cpsd.aggregate.nvmBytesWritten);
    EXPECT_LT(cpsd.aggregate.nvmBytesWritten,
              bh.aggregate.nvmBytesWritten);
}

TEST_F(ExperimentIntegration, CompressionCutsBytesNotHits)
{
    const auto &cfg = experiment().config();
    const auto bh =
        experiment().runPhase(cfg.llcConfig(PolicyKind::Bh), "BH");
    const auto bhcp =
        experiment().runPhase(cfg.llcConfig(PolicyKind::BhCp), "BH_CP");
    // Same (Fit-)LRU contents at full capacity: identical hit rates.
    EXPECT_NEAR(bhcp.aggregate.hitRate, bh.aggregate.hitRate, 1e-9);
    // Compression removes a large chunk of the written bytes.
    EXPECT_LT(bhcp.aggregate.nvmBytesWritten,
              0.8 * bh.aggregate.nvmBytesWritten);
}

TEST_F(ExperimentIntegration, ReducedCapacityReducesHits)
{
    const auto &cfg = experiment().config();
    const auto full = experiment().runPhase(
        cfg.llcConfig(PolicyKind::CpSd), "full", 1.0);
    const auto degraded = experiment().runPhase(
        cfg.llcConfig(PolicyKind::CpSd), "80%", 0.8);
    EXPECT_LT(degraded.aggregate.demandHits,
              full.aggregate.demandHits);
}

TEST_F(ExperimentIntegration, UpperBoundBeatsEveryHybrid)
{
    const auto &cfg = experiment().config();
    const double upper = experiment().upperBoundIpc();
    for (auto kind : { PolicyKind::Bh, PolicyKind::LHybrid,
                       PolicyKind::CpSd }) {
        const auto phase =
            experiment().runPhase(cfg.llcConfig(kind), "p");
        EXPECT_LE(phase.aggregate.meanIpc, upper * 1.001)
            << policyName(kind);
    }
}

} // namespace
