/**
 * @file
 * Block rearrangement circuitry tests (paper Fig. 5): index-vector
 * construction, scatter/gather roundtrips over faulty frames and
 * rotations, and write-mask properties.
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "fault/rearrangement.hh"

namespace
{

using namespace hllc;
using namespace hllc::fault;

TEST(Rearrangement, IdentityOnHealthyFrameNoRotation)
{
    const auto index =
        RearrangementCircuit::indexVector(~std::uint64_t{0}, 0, 8);
    for (unsigned pos = 0; pos < 8; ++pos)
        EXPECT_EQ(index[pos], static_cast<int>(pos));
    for (unsigned pos = 8; pos < blockBytes; ++pos)
        EXPECT_EQ(index[pos], noByte);
}

TEST(Rearrangement, RotationShiftsStart)
{
    const auto index =
        RearrangementCircuit::indexVector(~std::uint64_t{0}, 60, 8);
    // Bytes 60..63 then wrap to 0..3.
    EXPECT_EQ(index[60], 0);
    EXPECT_EQ(index[63], 3);
    EXPECT_EQ(index[0], 4);
    EXPECT_EQ(index[3], 7);
    EXPECT_EQ(index[4], noByte);
}

TEST(Rearrangement, FaultyBytesAreSkipped)
{
    // Paper Fig. 5c: 5-byte ECB into a frame with faulty bytes 2 and 5.
    std::uint64_t live = ~std::uint64_t{0};
    live &= ~(1ull << 2);
    live &= ~(1ull << 5);
    const auto index = RearrangementCircuit::indexVector(live, 0, 5);
    EXPECT_EQ(index[0], 0);
    EXPECT_EQ(index[1], 1);
    EXPECT_EQ(index[2], noByte); // faulty
    EXPECT_EQ(index[3], 2);
    EXPECT_EQ(index[4], 3);
    EXPECT_EQ(index[5], noByte); // faulty
    EXPECT_EQ(index[6], 4);     // the paper's I[6]=2 example, 0-based ECB
}

TEST(Rearrangement, ScatterSetsWriteMaskExactly)
{
    std::vector<std::uint8_t> ecb = { 10, 20, 30 };
    const std::uint64_t live = ~std::uint64_t{0} & ~(1ull << 1);
    const auto result = RearrangementCircuit::scatter(ecb, live, 0);
    EXPECT_EQ(std::popcount(result.writeMask), 3);
    EXPECT_TRUE(result.writeMask & (1ull << 0));
    EXPECT_FALSE(result.writeMask & (1ull << 1)); // faulty byte skipped
    EXPECT_TRUE(result.writeMask & (1ull << 2));
    EXPECT_TRUE(result.writeMask & (1ull << 3));
    EXPECT_EQ(result.recb[0], 10);
    EXPECT_EQ(result.recb[2], 20);
    EXPECT_EQ(result.recb[3], 30);
    EXPECT_EQ(result.writtenBytes, (std::vector<std::uint8_t>{0, 2, 3}));
}

/** Roundtrip sweep over ECB sizes. */
class RearrangementRoundtrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RearrangementRoundtrip, ScatterGatherRecoversEcb)
{
    const unsigned n = GetParam();
    Xoshiro256StarStar rng(n * 977 + 13);

    for (int trial = 0; trial < 40; ++trial) {
        // Random fault pattern leaving at least n live bytes.
        std::uint64_t live = ~std::uint64_t{0};
        const unsigned faults =
            static_cast<unsigned>(rng.nextBounded(64 - n + 1));
        for (unsigned f = 0; f < faults; ++f)
            live &= ~(1ull << rng.nextBounded(64));
        if (static_cast<unsigned>(std::popcount(live)) < n)
            continue;
        const unsigned rotation =
            static_cast<unsigned>(rng.nextBounded(64));

        std::vector<std::uint8_t> ecb(n);
        for (auto &b : ecb)
            b = static_cast<std::uint8_t>(rng.next());

        const auto scattered =
            RearrangementCircuit::scatter(ecb, live, rotation);
        // No write lands on a faulty byte.
        EXPECT_EQ(scattered.writeMask & ~live, 0u);
        EXPECT_EQ(std::popcount(scattered.writeMask),
                  static_cast<int>(n));

        const auto back = RearrangementCircuit::gather(
            std::span<const std::uint8_t, blockBytes>(scattered.recb),
            live, rotation, n);
        EXPECT_EQ(back, ecb);
    }
}

INSTANTIATE_TEST_SUITE_P(EcbSizes, RearrangementRoundtrip,
                         ::testing::Values(1u, 2u, 9u, 16u, 30u, 37u, 44u,
                                           51u, 58u, 64u));

TEST(Rearrangement, WritesStartAtRotationOverLiveBytes)
{
    // With rotation 10 and all bytes live, writes occupy [10, 10+n).
    std::vector<std::uint8_t> ecb(5, 0xaa);
    const auto result =
        RearrangementCircuit::scatter(ecb, ~std::uint64_t{0}, 10);
    for (unsigned pos = 10; pos < 15; ++pos)
        EXPECT_TRUE(result.writeMask & (1ull << pos)) << pos;
    EXPECT_EQ(std::popcount(result.writeMask), 5);
}

} // namespace
