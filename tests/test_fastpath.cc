/**
 * @file
 * Differential byte-identity tests pinning the fast replay paths to
 * their brute-force references: the SoA/static-dispatch LLC against the
 * golden shadow model over a large fuzzed trace, the lane-analysis BDI
 * compressor against the per-CE applicability checkers and the
 * independent reference decoder over the boundary-payload corpus, and
 * the batched .hlt decoder against save() round-trips plus the
 * over-declared-event-count regression artifact.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/differential.hh"
#include "check/golden_compress.hh"
#include "check/trace_fuzz.hh"
#include "common/error.hh"
#include "compression/bdi.hh"
#include "compression/encoding.hh"
#include "replay/llc_trace.hh"
#include "workload/block_synth.hh"

namespace
{

using namespace hllc;
using check::DegenerateMode;
using compression::BdiCompressor;
using compression::Ce;
using compression::CeInfo;
using hybrid::PolicyKind;

/** The policy set the fast-path acceptance gate runs on (fig. 10a). */
constexpr PolicyKind kFastPathPolicies[] = {
    PolicyKind::Bh, PolicyKind::Ca, PolicyKind::CpSd, PolicyKind::LHybrid,
};

constexpr DegenerateMode kAllModes[] = {
    DegenerateMode::Pristine, DegenerateMode::CompressionOff,
    DegenerateMode::SramOnly,
};

hybrid::HybridLlcConfig
smallConfig(PolicyKind policy)
{
    hybrid::HybridLlcConfig config;
    config.numSets = 32;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = policy;
    config.epochCycles = 20'000;
    return config;
}

// A long fuzzed trace (scaled from the 1M-event acceptance run so the
// suite stays fast) replayed through the SoA tag store, PolicyEngine
// static dispatch and inline Set Dueling accessors must agree with the
// brute-force golden shadow decision-for-decision.
TEST(FastPath, LargeFuzzedTraceMatchesGoldenShadow)
{
    const replay::LlcTrace trace = check::generateTrace(0xFA57, 250'000, 32);
    for (PolicyKind policy : kFastPathPolicies) {
        const check::GoldenDiffResult diff = check::diffGolden(
            trace, smallConfig(policy), DegenerateMode::Pristine);
        EXPECT_TRUE(diff.ok())
            << "policy " << static_cast<int>(policy) << ": "
            << (diff.divergence ? diff.divergence->description : "");
    }
}

// Same agreement across the degenerate modes (compression off,
// SRAM-only), which route around different parts of the fast path.
TEST(FastPath, DegenerateModesMatchGoldenShadow)
{
    const replay::LlcTrace trace = check::generateTrace(0xFA58, 30'000, 32);
    for (PolicyKind policy : kFastPathPolicies) {
        for (DegenerateMode mode : kAllModes) {
            const check::GoldenDiffResult diff =
                check::diffGolden(trace, smallConfig(policy), mode);
            EXPECT_TRUE(diff.ok())
                << "policy " << static_cast<int>(policy) << " mode "
                << static_cast<int>(mode) << ": "
                << (diff.divergence ? diff.divergence->description : "");
        }
    }
}

// Every boundary payload (max deltas, deltas one past the bound,
// segments one byte short of a value boundary) must survive the full
// BDI invariant sweep: the lane-analysis compress() picks the smallest
// applicable encoding and every encode() round-trips through the
// independent reference decoder.
TEST(FastPath, BdiBoundaryCorpusSurvivesInvariantSweep)
{
    for (const check::NamedBlock &block : check::boundaryBlocks()) {
        const auto why = check::verifyBdiBlock(block.data);
        EXPECT_FALSE(why.has_value())
            << block.name << ": " << why.value_or("");
    }
}

// Blocks synthesized to hit each target encoding exercise every row of
// the CE selection tree through the same invariant sweep.
TEST(FastPath, BdiSynthesizedBlocksSurviveInvariantSweep)
{
    for (const CeInfo &info : compression::ceTable()) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            const BlockData data = workload::synthesizeBlock(info.ce, seed);
            const auto why = check::verifyBdiBlock(data);
            EXPECT_FALSE(why.has_value())
                << info.name << " seed " << seed << ": " << why.value_or("");
        }
    }
}

// compress() now derives applicability for all encodings from one lane
// analysis; the per-CE applicable() checkers are untouched. The chosen
// encoding must still be exactly the smallest-ECB applicable one
// (earliest table entry on ties), as the per-CE checkers see it.
TEST(FastPath, BdiLaneAnalysisAgreesWithPerCeCheckers)
{
    auto smallestApplicable = [](const BlockData &data) {
        Ce best = Ce::Uncompressed;
        unsigned best_size = compression::ecbSize(Ce::Uncompressed);
        for (const CeInfo &info : compression::ceTable()) {
            if (info.ecbBytes < best_size &&
                BdiCompressor::applicable(data, info.ce)) {
                best = info.ce;
                best_size = info.ecbBytes;
            }
        }
        return best;
    };
    auto checkBlock = [&](const BlockData &data, const std::string &name) {
        const compression::CompressionResult got =
            BdiCompressor::compress(data);
        EXPECT_EQ(static_cast<int>(got.ce),
                  static_cast<int>(smallestApplicable(data)))
            << name;
    };
    for (const check::NamedBlock &block : check::boundaryBlocks())
        checkBlock(block.data, block.name);
    for (const CeInfo &info : compression::ceTable())
        for (std::uint64_t seed = 1; seed <= 8; ++seed)
            checkBlock(workload::synthesizeBlock(info.ce, seed),
                       std::string(info.name));
}

// The batched decoder must reproduce save()'s event stream exactly,
// including across its internal staging-buffer boundary (4096 events).
TEST(FastPath, BatchedDecodeRoundTripsAcrossBatchBoundary)
{
    replay::LlcTrace trace = check::generateTrace(7, 10'000, 32);
    trace.meta().mixName = "fastpath-roundtrip";
    const std::string path =
        ::testing::TempDir() + "fastpath_roundtrip.hlt";
    trace.save(path);

    const replay::LlcTrace loaded = replay::LlcTrace::load(path);
    ASSERT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(loaded.meta().mixName, trace.meta().mixName);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const hybrid::LlcEvent &a = trace.events()[i];
        const hybrid::LlcEvent &b = loaded.events()[i];
        ASSERT_EQ(a.blockNum, b.blockNum) << "event " << i;
        ASSERT_EQ(static_cast<int>(a.type), static_cast<int>(b.type))
            << "event " << i;
        ASSERT_EQ(a.ecbBytes, b.ecbBytes) << "event " << i;
        ASSERT_EQ(a.core, b.core) << "event " << i;
    }
}

// Regression artifact for the reserve() clamp: a v1 trace whose header
// declares ~10^12 events while the file holds four records. The loader
// must reject it up front instead of pre-allocating on the declared
// count.
TEST(FastPath, OverdeclaredEventCountIsRejected)
{
    const std::string path = std::string(HLLC_TESTS_CORPUS_DIR)
        + "/overdeclared_count.hlt.bad";
    try {
        replay::LlcTrace::load(path);
        FAIL() << "over-declared event count was accepted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("declares more events"),
                  std::string::npos)
            << e.what();
    }
}

} // anonymous namespace
