/**
 * @file
 * Cross-policy property tests: every insertion policy must uphold the
 * LLC's structural invariants under randomized event storms, with and
 * without pre-existing NVM faults — accounting identities, capacity
 * limits, fault-respecting placement and deterministic behaviour. The
 * invariants themselves live in src/check (checkAllInvariants), shared
 * with the hllc_check differential/fuzz drivers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.hh"
#include "hybrid/hybrid_llc.hh"

namespace
{

using namespace hllc;
using namespace hllc::hybrid;

constexpr std::uint32_t kSets = 32;

struct Rig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<HybridLlc> llc;
};

Rig
makeRig(PolicyKind policy, bool degraded)
{
    Rig rig;
    HybridLlcConfig config;
    config.numSets = kSets;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = policy;
    config.epochCycles = 5'000;

    if (policy == PolicyKind::SramOnly) {
        config.sramWays = 16;
        config.nvmWays = 0;
    } else {
        const fault::NvmGeometry geom{ kSets, config.nvmWays, 64 };
        rig.endurance = std::make_unique<fault::EnduranceModel>(
            geom, fault::EnduranceParams{ 1e12, 0.0 },
            Xoshiro256StarStar(7));
        rig.map = std::make_unique<fault::FaultMap>(
            *rig.endurance,
            InsertionPolicy::create(policy)->granularity());
        if (degraded) {
            // Random byte faults down to ~70% capacity.
            Xoshiro256StarStar rng(11);
            while (rig.map->effectiveCapacity() > 0.7) {
                rig.map->killByte(
                    static_cast<std::uint32_t>(
                        rng.nextBounded(geom.numFrames())),
                    static_cast<unsigned>(rng.nextBounded(64)));
            }
        }
    }
    rig.llc = std::make_unique<HybridLlc>(config, rig.map.get());
    return rig;
}

/** Random LLC-event storm mimicking the capture format. */
void
storm(HybridLlc &llc, std::uint64_t seed, int events)
{
    Xoshiro256StarStar rng(seed);
    const unsigned sizes[] = { 2, 9, 16, 23, 30, 34, 37, 44, 51, 58, 64 };
    for (int i = 0; i < events; ++i) {
        const Addr block = rng.nextBounded(2048);
        const auto kind = rng.nextBounded(4);
        LlcEvent ev;
        ev.blockNum = block;
        ev.core = static_cast<CoreId>(rng.nextBounded(4));
        ev.ecbBytes = static_cast<std::uint8_t>(
            sizes[rng.nextBounded(std::size(sizes))]);
        switch (kind) {
          case 0: ev.type = LlcEventType::GetS; break;
          case 1: ev.type = LlcEventType::GetX; break;
          case 2: ev.type = LlcEventType::PutClean; break;
          default: ev.type = LlcEventType::PutDirty; break;
        }
        llc.handle(ev);
    }
}

class PolicyStorm
    : public ::testing::TestWithParam<std::tuple<PolicyKind, bool>>
{
};

TEST_P(PolicyStorm, InvariantsHoldUnderRandomTraffic)
{
    const auto [policy, degraded] = GetParam();
    Rig rig = makeRig(policy, degraded);
    storm(*rig.llc, 42, 30'000);

    // Structural, stats-accounting and wear-accounting invariants all
    // live in src/check; a clean LLC reports no violations.
    for (const std::string &violation :
         check::checkAllInvariants(*rig.llc)) {
        ADD_FAILURE() << violation;
    }
    EXPECT_LE(rig.llc->hitRate(), 1.0);
    if (!rig.map) {
        EXPECT_EQ(rig.llc->nvmBytesWritten(), 0u);
        EXPECT_EQ(rig.llc->stats().counterValue("inserts_nvm"), 0u);
    }
}

TEST_P(PolicyStorm, Deterministic)
{
    const auto [policy, degraded] = GetParam();
    Rig a = makeRig(policy, degraded);
    Rig b = makeRig(policy, degraded);
    storm(*a.llc, 99, 10'000);
    storm(*b.llc, 99, 10'000);
    EXPECT_EQ(a.llc->demandHits(), b.llc->demandHits());
    EXPECT_EQ(a.llc->nvmBytesWritten(), b.llc->nvmBytesWritten());
}

TEST_P(PolicyStorm, SurvivesAgingMidstream)
{
    const auto [policy, degraded] = GetParam();
    if (policy == PolicyKind::SramOnly)
        GTEST_SKIP() << "no NVM to age";
    (void)degraded;
    Rig rig = makeRig(policy, false);
    storm(*rig.llc, 5, 10'000);
    // Age aggressively, then keep running: resident blocks whose frames
    // shrank must be dropped, not corrupted.
    Xoshiro256StarStar rng(13);
    while (rig.map->effectiveCapacity() > 0.6) {
        rig.map->killByte(static_cast<std::uint32_t>(rng.nextBounded(
                              rig.map->geometry().numFrames())),
                          static_cast<unsigned>(rng.nextBounded(64)));
    }
    rig.llc->revalidateAgainstFaultMap();
    storm(*rig.llc, 6, 10'000);
    EXPECT_LE(rig.llc->hitRate(), 1.0);
    // Structure (residents fit their shrunken frames, no duplicates)
    // and stats identities must survive mid-stream aging.
    for (const std::string &violation :
         check::checkLlcStructure(*rig.llc)) {
        ADD_FAILURE() << violation;
    }
    for (const std::string &violation :
         check::checkStatsAccounting(*rig.llc)) {
        ADD_FAILURE() << violation;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyStorm,
    ::testing::Combine(
        ::testing::Values(PolicyKind::SramOnly, PolicyKind::Bh,
                          PolicyKind::BhCp, PolicyKind::Ca,
                          PolicyKind::CaRwr, PolicyKind::CpSd,
                          PolicyKind::CpSdTh, PolicyKind::LHybrid,
                          PolicyKind::Tap),
        ::testing::Bool()),
    [](const auto &info) {
        return std::string(policyName(std::get<0>(info.param))) +
               (std::get<1>(info.param) ? "_degraded" : "_pristine");
    });

} // namespace
