/**
 * @file
 * Crash-safety tests: subsystem snapshot/restore round-trips, the
 * kill-and-resume guarantee of ForecastEngine (a resumed run is
 * byte-identical to an uninterrupted one), graceful rejection of
 * corrupt checkpoints, cooperative interrupts, and failure containment
 * in the checkpointed forecast grid.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/interrupt.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "fault/wear_level.hh"
#include "forecast/forecast.hh"
#include "hierarchy/hierarchy.hh"
#include "hybrid/set_dueling.hh"
#include "sim/grid.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;
using namespace hllc::forecast;
using hybrid::HybridLlcConfig;
using hybrid::PolicyKind;

// --------------------------------------------------------------------
// Subsystem snapshot/restore round-trips.
// --------------------------------------------------------------------

TEST(RngSnapshot, RestoredStreamContinuesIdentically)
{
    Xoshiro256StarStar rng(42);
    rng.nextGaussian(); // leave a cached spare in flight
    serial::Encoder enc;
    rng.snapshot(enc);

    std::vector<std::uint64_t> expected;
    std::vector<double> expected_gauss;
    for (int i = 0; i < 8; ++i) {
        expected.push_back(rng.next());
        expected_gauss.push_back(rng.nextGaussian());
    }

    Xoshiro256StarStar other(7); // different state, then restored over
    serial::Decoder dec(enc.bytes());
    other.restore(dec);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(other.next(), expected[i]);
        EXPECT_EQ(other.nextGaussian(), expected_gauss[i]);
    }
}

TEST(WearLevelSnapshot, RoundTripsAndRejectsMismatch)
{
    fault::WearLevelCounter counter(3600.0, 64);
    counter.elapse(5.5 * 3600.0);
    serial::Encoder enc;
    counter.snapshot(enc);

    fault::WearLevelCounter restored(3600.0, 64);
    serial::Decoder dec(enc.bytes());
    restored.restore(dec);
    EXPECT_EQ(restored.value(), counter.value());
    // The sub-period remainder must survive: another half period on
    // both counters advances (or not) in lockstep.
    counter.elapse(1800.0);
    restored.elapse(1800.0);
    EXPECT_EQ(restored.value(), counter.value());

    fault::WearLevelCounter wrong(3600.0, 32);
    serial::Decoder dec2(enc.bytes());
    EXPECT_THROW(wrong.restore(dec2), IoError);
}

TEST(SetDuelingSnapshot, RoundTripsAndRejectsMismatch)
{
    hybrid::SetDueling duel(64, { 8, 16, 32 }, 1000, 4.0, 8.0);
    for (std::uint32_t set = 0; set < 64; ++set) {
        duel.recordHit(set);
        duel.recordNvmBytes(set, 16 + set);
    }
    duel.tick(1500); // one epoch closed, clock mid-second-epoch
    duel.recordHit(1);
    serial::Encoder enc;
    duel.snapshot(enc);

    hybrid::SetDueling restored(64, { 8, 16, 32 }, 1000, 4.0, 8.0);
    serial::Decoder dec(enc.bytes());
    restored.restore(dec);
    EXPECT_EQ(restored.winner(), duel.winner());
    EXPECT_EQ(restored.epochsCompleted(), duel.epochsCompleted());
    EXPECT_EQ(restored.epochHits(), duel.epochHits());
    EXPECT_EQ(restored.epochBytes(), duel.epochBytes());
    EXPECT_EQ(restored.winnerHistory(), duel.winnerHistory());
    // Same epoch clock: both cross the next boundary at the same tick.
    EXPECT_EQ(restored.tick(499), duel.tick(499));
    EXPECT_EQ(restored.tick(1), duel.tick(1));

    hybrid::SetDueling wrong(64, { 8, 16 }, 1000, 4.0, 8.0);
    serial::Decoder dec2(enc.bytes());
    EXPECT_THROW(wrong.restore(dec2), IoError);
}

class FaultMapSnapshot : public ::testing::Test
{
  protected:
    static fault::EnduranceModel
    endurance(std::uint32_t sets = 8)
    {
        return { { sets, 2, 64 }, { 100.0, 0.2 },
                 Xoshiro256StarStar(7) };
    }

    static std::vector<std::uint8_t>
    stateOf(const fault::FaultMap &map)
    {
        serial::Encoder enc;
        map.snapshot(enc);
        return enc.bytes();
    }
};

TEST_F(FaultMapSnapshot, RoundTripsFullWearState)
{
    const fault::EnduranceModel model = endurance();
    fault::FaultMap map(model, fault::DisableGranularity::Byte);
    for (std::uint32_t f = 0; f < map.geometry().numFrames(); ++f)
        map.recordWrite(f, 32 + f);
    map.age(2.0);
    map.killByte(3, 5);
    map.killFrame(7);
    map.recordWrite(2, 48); // pending wear must round-trip too

    const auto state = stateOf(map);
    fault::FaultMap restored(model, fault::DisableGranularity::Byte);
    serial::Decoder dec(state);
    restored.restore(dec);

    EXPECT_EQ(restored.totalLiveBytes(), map.totalLiveBytes());
    EXPECT_EQ(restored.deadFrames(), map.deadFrames());
    EXPECT_DOUBLE_EQ(restored.effectiveCapacity(),
                     map.effectiveCapacity());
    for (std::uint32_t f = 0; f < map.geometry().numFrames(); ++f) {
        EXPECT_EQ(restored.liveMask(f), map.liveMask(f));
        EXPECT_EQ(restored.liveBytes(f), map.liveBytes(f));
    }
    EXPECT_EQ(restored.writesSoFar(1, 9), map.writesSoFar(1, 9));
    // Byte-identical re-snapshot: the strongest equality we can ask for.
    EXPECT_EQ(stateOf(restored), state);
}

TEST_F(FaultMapSnapshot, RejectsGeometryMismatchWithoutMutating)
{
    const fault::EnduranceModel model = endurance(8);
    fault::FaultMap map(model, fault::DisableGranularity::Byte);
    map.killByte(0, 0);
    const auto state = stateOf(map);

    const fault::EnduranceModel other_model = endurance(4);
    fault::FaultMap other(other_model, fault::DisableGranularity::Byte);
    const auto before = stateOf(other);
    serial::Decoder dec(state);
    EXPECT_THROW(other.restore(dec), IoError);
    EXPECT_EQ(stateOf(other), before);

    // Garbage must also be rejected without mutation.
    const std::vector<std::uint8_t> junk(13, 0xA5);
    serial::Decoder junk_dec(junk.data(), junk.size());
    EXPECT_THROW(other.restore(junk_dec), IoError);
    EXPECT_EQ(stateOf(other), before);
}

// --------------------------------------------------------------------
// Kill-and-resume: the tentpole guarantee. A run stopped after N steps
// and resumed from its checkpoint must be byte-identical to a run that
// was never stopped.
// --------------------------------------------------------------------

class KillResume : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kSets = 64;

    void SetUp() override
    {
        clearInterrupt();
        // Per-test checkpoint file: the cases run concurrently under
        // `ctest -j` and must not share paths.
        path_ = std::string("/tmp/hllc_test_ckpt_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
    }
    void TearDown() override
    {
        clearInterrupt();
        std::remove(path());
        std::remove((path_ + ".tmp").c_str());
    }

    const char *path() const { return path_.c_str(); }

    std::string path_;

    static const replay::LlcTrace &trace()
    {
        static const replay::LlcTrace t = hierarchy::captureTrace(
            workload::tableVMixes()[0], kSets * 16,
            hierarchy::PrivateCacheConfig{ 1024, 4, 4096, 16 }, 30000,
            33);
        return t;
    }

    static HybridLlcConfig
    llcConfig(PolicyKind policy)
    {
        HybridLlcConfig config;
        config.numSets = kSets;
        config.sramWays = 4;
        config.nvmWays = 12;
        config.policy = policy;
        config.epochCycles = 50'000;
        return config;
    }

    /** Fresh engine over an identical endurance fabric every call. */
    static std::vector<ForecastPoint>
    run(PolicyKind policy, const RunOptions &options)
    {
        const auto config = llcConfig(policy);
        const fault::EnduranceModel model(
            { kSets, 12, 64 }, { 1e8, 0.2 }, Xoshiro256StarStar(3));
        ForecastConfig fc;
        fc.maxSteps = 120;
        ForecastEngine engine(model, config, { &trace() },
                              hierarchy::TimingParams{}, fc);
        return engine.run(options);
    }

    /**
     * Like run(), but returns the engine's full observability export
     * (metric series + engine counters as hllc-stats-v1 JSON) instead
     * of the point series — the byte-identity target for stats.
     */
    static std::string
    runExport(PolicyKind policy, const RunOptions &options)
    {
        const auto config = llcConfig(policy);
        const fault::EnduranceModel model(
            { kSets, 12, 64 }, { 1e8, 0.2 }, Xoshiro256StarStar(3));
        ForecastConfig fc;
        fc.maxSteps = 120;
        ForecastEngine engine(model, config, { &trace() },
                              hierarchy::TimingParams{}, fc);
        engine.run(options);
        metrics::CellExport cell;
        cell.label = "cell";
        cell.metrics = &engine.metrics();
        metrics::appendCounters(cell, engine.stats());
        return metrics::statsToJson({ cell }, "kill-resume");
    }

    static void
    expectBitIdentical(const std::vector<ForecastPoint> &a,
                       const std::vector<ForecastPoint> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        ASSERT_GE(a.size(), 4u) << "series too short to prove anything";
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(std::memcmp(&a[i].time, &b[i].time, 8), 0) << i;
            EXPECT_EQ(std::memcmp(&a[i].capacity, &b[i].capacity, 8), 0)
                << i;
            EXPECT_EQ(std::memcmp(&a[i].meanIpc, &b[i].meanIpc, 8), 0)
                << i;
            EXPECT_EQ(std::memcmp(&a[i].hitRate, &b[i].hitRate, 8), 0)
                << i;
            EXPECT_EQ(std::memcmp(&a[i].nvmBytesPerSecond,
                                  &b[i].nvmBytesPerSecond, 8),
                      0)
                << i;
        }
    }
};

TEST_F(KillResume, ResumedRunIsByteIdentical)
{
    const auto reference = run(PolicyKind::CpSd, {});

    RunOptions stop;
    stop.checkpointPath = path();
    stop.stopAfterSteps = 3;
    const auto partial = run(PolicyKind::CpSd, stop);
    ASSERT_EQ(partial.size(), 3u);
    ASSERT_LT(partial.size(), reference.size());

    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const auto resumed = run(PolicyKind::CpSd, resume);
    expectBitIdentical(resumed, reference);
}

TEST_F(KillResume, ResumedRunExportsIdenticalStats)
{
    // The observability layer rides in the checkpoint ("stat"/"lstat"/
    // "mtrc" chunks): a run stopped mid-flight and resumed must export
    // the very same stats document an uninterrupted run produces.
    const std::string reference = runExport(PolicyKind::CpSd, {});
    EXPECT_NE(reference.find("\"schema\": \"hllc-stats-v1\""),
              std::string::npos);
    EXPECT_NE(reference.find("\"simulate_phases\""), std::string::npos);
    EXPECT_NE(reference.find("\"mean_ipc\""), std::string::npos);

    RunOptions stop;
    stop.checkpointPath = path();
    stop.stopAfterSteps = 3;
    runExport(PolicyKind::CpSd, stop);

    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const std::string resumed = runExport(PolicyKind::CpSd, resume);
    EXPECT_EQ(resumed, reference);
}

TEST_F(KillResume, TwoStagedStopsStillByteIdentical)
{
    const auto reference = run(PolicyKind::CpSdTh, {});

    RunOptions stop;
    stop.checkpointPath = path();
    stop.checkpointEvery = 2; // sparse cadence with a mid-run stop
    stop.stopAfterSteps = 2;
    run(PolicyKind::CpSdTh, stop);

    stop.resume = true;
    stop.stopAfterSteps = 3;
    run(PolicyKind::CpSdTh, stop);

    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const auto resumed = run(PolicyKind::CpSdTh, resume);
    expectBitIdentical(resumed, reference);
}

TEST_F(KillResume, ResumingACompletedRunIsIdempotent)
{
    RunOptions options;
    options.checkpointPath = path();
    const auto reference = run(PolicyKind::CpSd, options);

    options.resume = true;
    const auto again = run(PolicyKind::CpSd, options);
    expectBitIdentical(again, reference);
}

TEST_F(KillResume, CorruptCheckpointFallsBackToFreshRun)
{
    const auto reference = run(PolicyKind::CpSd, {});

    RunOptions stop;
    stop.checkpointPath = path();
    stop.stopAfterSteps = 3;
    run(PolicyKind::CpSd, stop);

    // Flip one byte in the middle of the checkpoint: the CRC rejects
    // it, the run warns and restarts from scratch -- and still produces
    // the uninterrupted result.
    std::vector<std::uint8_t> bytes = serial::readFileBytes(path());
    bytes[bytes.size() / 2] ^= 0x40;
    serial::writeFileAtomic(path(), bytes.data(), bytes.size());

    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const auto resumed = run(PolicyKind::CpSd, resume);
    expectBitIdentical(resumed, reference);
}

TEST_F(KillResume, MissingCheckpointFallsBackToFreshRun)
{
    const auto reference = run(PolicyKind::CpSd, {});
    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const auto resumed = run(PolicyKind::CpSd, resume);
    expectBitIdentical(resumed, reference);
}

TEST_F(KillResume, CheckpointRejectsConfigMismatch)
{
    RunOptions stop;
    stop.checkpointPath = path();
    stop.stopAfterSteps = 3;
    run(PolicyKind::CpSd, stop);

    // Resuming a BH run from a CP_SD checkpoint must restart fresh, not
    // splice foreign state.
    const auto reference = run(PolicyKind::Bh, {});
    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    const auto resumed = run(PolicyKind::Bh, resume);
    expectBitIdentical(resumed, reference);
}

TEST_F(KillResume, InterruptWritesFinalCheckpointAndResumes)
{
    const auto reference = run(PolicyKind::CpSd, {});

    RunOptions stop;
    stop.checkpointPath = path();
    stop.stopAfterSteps = 3;
    run(PolicyKind::CpSd, stop);

    // A pending SIGTERM at the next step boundary: final checkpoint,
    // InterruptedError, 128+15 exit code.
    requestInterrupt(SIGTERM);
    RunOptions resume;
    resume.checkpointPath = path();
    resume.resume = true;
    EXPECT_THROW(run(PolicyKind::CpSd, resume), InterruptedError);
    EXPECT_EQ(interruptExitCode(), 128 + SIGTERM);
    clearInterrupt();

    const auto resumed = run(PolicyKind::CpSd, resume);
    expectBitIdentical(resumed, reference);
}

// --------------------------------------------------------------------
// Checkpointed forecast grid: containment and determinism.
// --------------------------------------------------------------------

class CheckpointedGrid : public ::testing::Test
{
  protected:
    const char *dir() const { return dir_.c_str(); }

    void SetUp() override
    {
        clearInterrupt();
        // Per-test checkpoint directory (see KillResume::SetUp).
        dir_ = std::string("/tmp/hllc_test_ckpt_grid_") +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
    }

    std::string dir_;

    void TearDown() override
    {
        clearInterrupt();
        for (std::size_t i = 0; i < entries().size(); ++i) {
            const std::string p = sim::checkpointCellPath(
                checkpoint(), i, entries()[i].label);
            std::remove(p.c_str());
            std::remove((p + ".tmp").c_str());
            ::rmdir(p.c_str());
        }
        ::rmdir(dir());
    }

    sim::CheckpointOptions
    checkpoint(bool resume = false) const
    {
        sim::CheckpointOptions options;
        options.dir = dir_;
        options.resume = resume;
        return options;
    }

    static const sim::Experiment &
    experiment()
    {
        static const sim::Experiment e = [] {
            sim::SystemConfig config = sim::SystemConfig::tableIV(0.5);
            config.refsPerCore = 30'000;
            config.jobs = 2;
            return sim::Experiment(config, 2);
        }();
        return e;
    }

    static const std::vector<sim::StudyEntry> &
    entries()
    {
        static const std::vector<sim::StudyEntry> e = {
            { "BH", experiment().config().llcConfig(PolicyKind::Bh) },
            { "CP_SD",
              experiment().config().llcConfig(PolicyKind::CpSd) },
        };
        return e;
    }

    static void
    expectSummariesIdentical(const std::vector<sim::ForecastSummary> &a,
                             const std::vector<sim::ForecastSummary> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].label, b[i].label);
            EXPECT_EQ(a[i].lifetimeMonths, b[i].lifetimeMonths);
            EXPECT_EQ(a[i].initialIpc, b[i].initialIpc);
            ASSERT_EQ(a[i].series.size(), b[i].series.size());
            for (std::size_t t = 0; t < a[i].series.size(); ++t) {
                EXPECT_EQ(a[i].series[t].time, b[i].series[t].time);
                EXPECT_EQ(a[i].series[t].capacity,
                          b[i].series[t].capacity);
                EXPECT_EQ(a[i].series[t].meanIpc,
                          b[i].series[t].meanIpc);
            }
        }
    }
};

TEST_F(CheckpointedGrid, MatchesPlainGridAndResumesIdentically)
{
    const auto plain = sim::runForecastGrid(experiment(), entries());

    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint());
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.exitCode(), 0);
    expectSummariesIdentical(outcome.summaries, plain);

    // Resuming completed cells re-runs only their last phase and must
    // reproduce the grid bit-for-bit.
    const auto resumed = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint(true));
    EXPECT_TRUE(resumed.ok());
    expectSummariesIdentical(resumed.summaries, plain);
}

TEST_F(CheckpointedGrid, FailingCellIsContainedAndReported)
{
    // Occupy cell 0's checkpoint path with a directory: its first save
    // cannot land (rename onto a directory fails), so the cell fails --
    // while cell 1 completes normally.
    ASSERT_TRUE(::mkdir(dir(), 0777) == 0 || errno == EEXIST);
    const std::string blocked =
        sim::checkpointCellPath(checkpoint(), 0, entries()[0].label);
    ASSERT_TRUE(::mkdir(blocked.c_str(), 0777) == 0 || errno == EEXIST);

    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint());
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.exitCode(), 1);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 0u);
    EXPECT_EQ(outcome.failures[0].label, "BH");
    EXPECT_FALSE(outcome.failures[0].error.empty());
    ASSERT_EQ(outcome.summaries.size(), 1u);
    EXPECT_EQ(outcome.summaries[0].label, "CP_SD");
}

TEST_F(CheckpointedGrid, InterruptStopsGridWithCheckpointsInPlace)
{
    const auto plain = sim::runForecastGrid(experiment(), entries());

    requestInterrupt(SIGINT);
    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint());
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_EQ(outcome.exitCode(), 128 + SIGINT);
    EXPECT_TRUE(outcome.summaries.empty());
    clearInterrupt();

    // Every cell checkpointed before unwinding; a resume finishes the
    // grid and matches the uninterrupted reference.
    const auto resumed = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint(true));
    EXPECT_TRUE(resumed.ok());
    expectSummariesIdentical(resumed.summaries, plain);
}

} // namespace
