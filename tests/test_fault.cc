/**
 * @file
 * Endurance model, fault map (byte- and frame-disabling), aging and
 * wear-leveling counter tests.
 */

#include <gtest/gtest.h>

#include "fault/endurance.hh"
#include "fault/fault_map.hh"
#include "fault/wear_level.hh"

namespace
{

using namespace hllc;
using namespace hllc::fault;

NvmGeometry
smallGeometry()
{
    return { 4, 2, 64 }; // 4 sets x 2 NVM ways
}

EnduranceModel
makeModel(double mean = 1000.0, double cv = 0.0, std::uint64_t seed = 1)
{
    return EnduranceModel(smallGeometry(), { mean, cv },
                          Xoshiro256StarStar(seed));
}

TEST(Endurance, GeometryArithmetic)
{
    const NvmGeometry g = smallGeometry();
    EXPECT_EQ(g.numFrames(), 8u);
    EXPECT_EQ(g.numBytes(), 512u);
    EXPECT_EQ(g.frameIndex(0, 0), 0u);
    EXPECT_EQ(g.frameIndex(0, 1), 1u);
    EXPECT_EQ(g.frameIndex(3, 1), 7u);
}

TEST(Endurance, ZeroCvGivesExactMean)
{
    const EnduranceModel m = makeModel(5000.0, 0.0);
    for (std::uint32_t f = 0; f < 8; ++f)
        for (unsigned b = 0; b < 64; ++b)
            EXPECT_DOUBLE_EQ(m.limit(f, b), 5000.0);
}

TEST(Endurance, VariabilitySpreadsAroundMean)
{
    const EnduranceModel m = makeModel(1e6, 0.2, 7);
    double sum = 0.0;
    double min = 1e18, max = 0.0;
    for (std::uint32_t f = 0; f < 8; ++f) {
        for (unsigned b = 0; b < 64; ++b) {
            const double limit = m.limit(f, b);
            sum += limit;
            min = std::min(min, limit);
            max = std::max(max, limit);
        }
    }
    const double mean = sum / 512.0;
    EXPECT_NEAR(mean, 1e6, 0.05 * 1e6);
    EXPECT_LT(min, 0.7 * 1e6);  // ~ -1.5 sigma exists in 512 draws
    EXPECT_GT(max, 1.3 * 1e6);
}

TEST(Endurance, SameSeedSameFabric)
{
    const EnduranceModel a = makeModel(1e6, 0.25, 42);
    const EnduranceModel b = makeModel(1e6, 0.25, 42);
    for (std::uint32_t f = 0; f < 8; ++f)
        for (unsigned byte = 0; byte < 64; ++byte)
            EXPECT_DOUBLE_EQ(a.limit(f, byte), b.limit(f, byte));
}

TEST(FaultMap, StartsFullyLive)
{
    const EnduranceModel m = makeModel();
    FaultMap map(m, DisableGranularity::Byte);
    EXPECT_DOUBLE_EQ(map.effectiveCapacity(), 1.0);
    EXPECT_EQ(map.totalLiveBytes(), 512u);
    EXPECT_EQ(map.deadFrames(), 0u);
    for (std::uint32_t f = 0; f < 8; ++f) {
        EXPECT_EQ(map.liveBytes(f), 64u);
        EXPECT_EQ(map.liveMask(f), ~std::uint64_t{0});
        EXPECT_TRUE(map.fits(f, 64));
    }
}

TEST(FaultMap, KillByteUpdatesCapacity)
{
    const EnduranceModel m = makeModel();
    FaultMap map(m, DisableGranularity::Byte);
    map.killByte(2, 5);
    EXPECT_EQ(map.liveBytes(2), 63u);
    EXPECT_FALSE(map.liveMask(2) & (1ull << 5));
    EXPECT_TRUE(map.fits(2, 63));
    EXPECT_FALSE(map.fits(2, 64));
    // Killing the same byte twice is idempotent.
    map.killByte(2, 5);
    EXPECT_EQ(map.liveBytes(2), 63u);
    EXPECT_EQ(map.totalLiveBytes(), 511u);
}

TEST(FaultMap, FrameGranularityRetiresWholeFrame)
{
    const EnduranceModel m = makeModel();
    FaultMap map(m, DisableGranularity::Frame);
    map.killByte(3, 17);
    EXPECT_EQ(map.liveBytes(3), 0u);
    EXPECT_EQ(map.deadFrames(), 1u);
    EXPECT_FALSE(map.fits(3, 1));
    EXPECT_DOUBLE_EQ(map.effectiveCapacity(), 7.0 / 8.0);
}

TEST(FaultMap, AgingSpreadsWearOverLiveBytes)
{
    // Limit 1000 writes per byte, no variability.
    const EnduranceModel m = makeModel(1000.0, 0.0);
    FaultMap map(m, DisableGranularity::Byte);

    // 64 * 999 bytes deposited in frame 0: one write short per byte.
    map.recordWrite(0, 64);
    EXPECT_GT(map.pendingWrites(0), 0.0);
    EXPECT_EQ(map.age(999.0), 0u);
    EXPECT_DOUBLE_EQ(map.writesSoFar(0, 0), 999.0);
    EXPECT_EQ(map.liveBytes(0), 64u);

    // One more spread write crosses the limit everywhere.
    map.recordWrite(0, 64);
    EXPECT_EQ(map.age(2.0), 64u);
    EXPECT_EQ(map.liveBytes(0), 0u);
    EXPECT_EQ(map.deadFrames(), 1u);
}

TEST(FaultMap, AgingOnlyWearsWrittenFrames)
{
    const EnduranceModel m = makeModel(10.0, 0.0);
    FaultMap map(m, DisableGranularity::Byte);
    map.recordWrite(1, 64 * 100); // far beyond the limit
    map.age(1.0);
    EXPECT_EQ(map.liveBytes(1), 0u);
    for (std::uint32_t f = 0; f < 8; ++f) {
        if (f != 1) {
            EXPECT_EQ(map.liveBytes(f), 64u) << f;
        }
    }
}

TEST(FaultMap, DiscardPendingDropsWear)
{
    const EnduranceModel m = makeModel(10.0, 0.0);
    FaultMap map(m, DisableGranularity::Byte);
    map.recordWrite(0, 64 * 100);
    map.discardPending();
    EXPECT_EQ(map.age(1.0), 0u);
    EXPECT_EQ(map.liveBytes(0), 64u);
}

TEST(FaultMap, FrameGranularityAgingKillsFrames)
{
    const EnduranceModel m = makeModel(100.0, 0.0);
    FaultMap map(m, DisableGranularity::Frame);
    map.recordWrite(4, 64);
    EXPECT_EQ(map.age(101.0), 64u); // whole frame reported disabled
    EXPECT_EQ(map.liveBytes(4), 0u);
    EXPECT_EQ(map.deadFrames(), 1u);
}

TEST(FaultMap, PartialWearAccumulatesAcrossAges)
{
    const EnduranceModel m = makeModel(100.0, 0.0);
    FaultMap map(m, DisableGranularity::Byte);
    for (int round = 0; round < 5; ++round) {
        map.recordWrite(0, 64 * 30);
        map.age(1.0);
    }
    // 150 writes per byte > 100 limit: dead after round 4.
    EXPECT_EQ(map.liveBytes(0), 0u);
}

TEST(FaultMap, WearConcentratesAsBytesDie)
{
    // When half the bytes are dead, the same frame traffic wears the
    // survivors twice as fast.
    const EnduranceModel m = makeModel(1000.0, 0.0);
    FaultMap map(m, DisableGranularity::Byte);
    for (unsigned b = 0; b < 32; ++b)
        map.killByte(0, b);
    map.recordWrite(0, 64);
    map.age(1.0);
    EXPECT_DOUBLE_EQ(map.writesSoFar(0, 32), 2.0);
    EXPECT_DOUBLE_EQ(map.writesSoFar(0, 0), 0.0); // dead: no wear applied
}

TEST(WearLevel, AdvancesOncePerPeriod)
{
    WearLevelCounter counter(100.0, 64);
    EXPECT_EQ(counter.value(), 0u);
    counter.elapse(99.0);
    EXPECT_EQ(counter.value(), 0u);
    counter.elapse(1.0);
    EXPECT_EQ(counter.value(), 1u);
    counter.elapse(250.0);
    EXPECT_EQ(counter.value(), 3u);
}

TEST(WearLevel, WrapsAtModulo)
{
    WearLevelCounter counter(1.0, 4);
    counter.elapse(10.0);
    EXPECT_EQ(counter.value(), 10u % 4u);
    counter.advance();
    EXPECT_EQ(counter.value(), 3u);
    counter.advance();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(WearLevel, LongJumpCatchesUp)
{
    WearLevelCounter counter(3600.0, 64); // 1h period
    counter.elapse(30.0 * 24.0 * 3600.0); // one month
    EXPECT_EQ(counter.value(), (30u * 24u) % 64u);
}

} // namespace
