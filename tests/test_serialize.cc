/**
 * @file
 * Tests of the binary serialization layer (common/serialize.hh): CRC32
 * known answers, primitive round-trips, bounds-checked decoding, the
 * chunked container format, atomic persistence, and exhaustive
 * single-byte-flip / truncation corpora over container images and .hlt
 * trace files — every corruption must surface as a clean IoError, never
 * a crash or a wild allocation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hh"
#include "common/serialize.hh"
#include "replay/llc_trace.hh"

namespace
{

using namespace hllc;
using namespace hllc::serial;

constexpr std::uint32_t kMagic = 0x54534554; // "TEST"

TEST(Crc32, KnownAnswer)
{
    // The standard CRC-32 check value: crc32("123456789").
    const char digits[] = "123456789";
    EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32, ChainsIncrementally)
{
    const char digits[] = "123456789";
    const std::uint32_t first = crc32(digits, 4);
    EXPECT_EQ(crc32(digits + 4, 5, first), 0xCBF43926u);
}

TEST(EncoderDecoder, PrimitivesRoundTrip)
{
    Encoder enc;
    enc.u8(0xAB);
    enc.u32(0xDEADBEEF);
    enc.u64(0x0123456789ABCDEFULL);
    enc.f64(-1234.56789);
    enc.f64(std::numeric_limits<double>::denorm_min());
    enc.str("hello");
    enc.f64Vec({ 0.0, -0.0, 1e300 });
    enc.u64Vec({ 1, 2, 3 });

    Decoder dec(enc.bytes());
    EXPECT_EQ(dec.u8(), 0xAB);
    EXPECT_EQ(dec.u32(), 0xDEADBEEFu);
    EXPECT_EQ(dec.u64(), 0x0123456789ABCDEFULL);
    EXPECT_EQ(dec.f64(), -1234.56789);
    EXPECT_EQ(dec.f64(), std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(dec.str(), "hello");
    const auto doubles = dec.f64Vec();
    ASSERT_EQ(doubles.size(), 3u);
    EXPECT_EQ(doubles[2], 1e300);
    // -0.0 must round-trip bit-exactly, not as +0.0.
    EXPECT_TRUE(std::signbit(doubles[1]));
    EXPECT_EQ(dec.u64Vec(), (std::vector<std::uint64_t>{ 1, 2, 3 }));
    EXPECT_TRUE(dec.atEnd());
}

TEST(EncoderDecoder, LittleEndianLayout)
{
    Encoder enc;
    enc.u32(0x04030201);
    ASSERT_EQ(enc.bytes().size(), 4u);
    EXPECT_EQ(enc.bytes()[0], 0x01);
    EXPECT_EQ(enc.bytes()[3], 0x04);
}

TEST(Decoder, ReadPastEndThrows)
{
    Encoder enc;
    enc.u32(7);
    Decoder dec(enc.bytes());
    EXPECT_THROW(dec.u64(), IoError);
}

TEST(Decoder, StringLengthBoundedByPayload)
{
    // A string header claiming 2^60 bytes must be rejected before any
    // allocation is attempted.
    Encoder enc;
    enc.u64(1ULL << 60);
    Decoder dec(enc.bytes());
    EXPECT_THROW(dec.str(), IoError);
}

TEST(Decoder, VectorCountBoundedByPayload)
{
    Encoder enc;
    enc.u64(1ULL << 61);
    Decoder dec(enc.bytes());
    EXPECT_THROW(dec.f64Vec(), IoError);
    Decoder dec2(enc.bytes());
    EXPECT_THROW(dec2.u64Vec(), IoError);
}

Container
sampleContainer()
{
    Container c;
    Encoder &meta = c.add("meta");
    meta.u32(42);
    meta.str("sample");
    Encoder &data = c.add("data");
    data.f64Vec({ 1.5, -2.5, 3.5 });
    return c;
}

TEST(ContainerFormat, RoundTrips)
{
    const std::vector<std::uint8_t> image =
        sampleContainer().encode(kMagic, 3);

    std::uint32_t version = 0;
    const Container c =
        Container::decode(image.data(), image.size(), kMagic, 1, 3,
                          &version);
    EXPECT_EQ(version, 3u);
    EXPECT_EQ(c.chunkCount(), 2u);
    EXPECT_TRUE(c.has("meta"));
    EXPECT_FALSE(c.has("nope"));
    Decoder meta = c.open("meta");
    EXPECT_EQ(meta.u32(), 42u);
    EXPECT_EQ(meta.str(), "sample");
    Decoder data = c.open("data");
    EXPECT_EQ(data.f64Vec(), (std::vector<double>{ 1.5, -2.5, 3.5 }));
    EXPECT_THROW(c.open("nope"), IoError);
}

TEST(ContainerFormat, RejectsWrongMagicAndVersionRange)
{
    const auto image = sampleContainer().encode(kMagic, 5);
    EXPECT_THROW(
        Container::decode(image.data(), image.size(), kMagic + 1, 1, 9),
        IoError);
    // Payload version 5 outside both sides of the accepted range.
    EXPECT_THROW(
        Container::decode(image.data(), image.size(), kMagic, 1, 4),
        IoError);
    EXPECT_THROW(
        Container::decode(image.data(), image.size(), kMagic, 6, 9),
        IoError);
}

TEST(ContainerFormat, EveryBitFlipIsRejected)
{
    const auto image = sampleContainer().encode(kMagic, 1);
    ASSERT_GT(image.size(), 20u);
    for (std::size_t i = 0; i < image.size(); ++i) {
        for (std::uint8_t bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> bad = image;
            bad[i] ^= static_cast<std::uint8_t>(1u << bit);
            EXPECT_THROW(Container::decode(bad.data(), bad.size(),
                                           kMagic, 1, 1),
                         IoError)
                << "byte " << i << " bit " << int(bit)
                << " flip was accepted";
        }
    }
}

TEST(ContainerFormat, EveryTruncationIsRejected)
{
    const auto image = sampleContainer().encode(kMagic, 1);
    for (std::size_t len = 0; len < image.size(); ++len) {
        EXPECT_THROW(
            Container::decode(image.data(), len, kMagic, 1, 1), IoError)
            << "truncation to " << len << " bytes was accepted";
    }
}

class FileRoundTrip : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-test path: cases run concurrently under `ctest -j`.
        path_ = std::string("/tmp/hllc_test_container_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
    }
    void TearDown() override
    {
        std::remove(path());
        std::remove((path_ + ".tmp").c_str());
    }

    const char *path() const { return path_.c_str(); }

    std::string path_;
};

TEST_F(FileRoundTrip, SaveLoadAndAtomicTempCleanup)
{
    sampleContainer().save(path(), kMagic, 1);
    const Container c = Container::load(path(), kMagic, 1, 1);
    EXPECT_EQ(c.chunkCount(), 2u);

    // The temp file must not survive a successful save.
    // hllc-lint: allow(atomic-io) read-only probe for the .tmp leftover
    std::FILE *tmp = std::fopen((std::string(path()) + ".tmp").c_str(),
                                "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp != nullptr)
        std::fclose(tmp);
}

TEST_F(FileRoundTrip, MissingFileThrows)
{
    EXPECT_THROW(Container::load("/tmp/hllc_no_such_file.bin", kMagic, 1,
                                 1),
                 IoError);
}

TEST_F(FileRoundTrip, LoadErrorNamesThePath)
{
    sampleContainer().save(path(), kMagic, 1);
    try {
        Container::load(path(), kMagic + 1, 1, 1);
        FAIL() << "wrong magic accepted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find(path()), std::string::npos);
    }
}

/** A tiny but non-trivial trace for the .hlt corpora. */
replay::LlcTrace
sampleTrace()
{
    replay::LlcTrace trace;
    trace.meta().mixName = "corpus-mix";
    for (std::size_t c = 0; c < replay::traceCores; ++c) {
        trace.meta().cores[c].instructions = 1000 + c;
        trace.meta().cores[c].refs = 400 + c;
        trace.meta().cores[c].l1Hits = 300 + c;
        trace.meta().cores[c].l2Hits = 50 + c;
        trace.meta().cores[c].llcDemands = 50 + c;
        trace.meta().cores[c].baseCpi = 0.4 + 0.01 * double(c);
    }
    for (std::uint64_t i = 0; i < 8; ++i) {
        trace.append({ 0x1000 + i,
                       static_cast<hybrid::LlcEventType>(i % 4),
                       static_cast<std::uint8_t>(16 + i),
                       static_cast<std::uint8_t>(i % 4) });
    }
    return trace;
}

class TraceCorpus : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-test path: cases run concurrently under `ctest -j`.
        path_ = std::string("/tmp/hllc_corpus_trace_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".hlt";
    }
    void TearDown() override { std::remove(path()); }

    const char *path() const { return path_.c_str(); }

    std::string path_;

    void
    writeBytes(const std::vector<std::uint8_t> &bytes)
    {
        // hllc-lint: allow(atomic-io) corruption harness: writes
        // deliberately torn/bit-flipped images the loader must reject
        std::FILE *f = std::fopen(path(), "wb");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
        std::fclose(f);
    }
};

TEST_F(TraceCorpus, EveryByteFlipOfAnHltIsRejected)
{
    sampleTrace().save(path());
    const std::vector<std::uint8_t> image = readFileBytes(path());
    ASSERT_GT(image.size(), 24u);
    for (std::size_t i = 0; i < image.size(); ++i) {
        std::vector<std::uint8_t> bad = image;
        bad[i] ^= 0xFF;
        writeBytes(bad);
        EXPECT_THROW(replay::LlcTrace::load(path()), IoError)
            << "byte " << i << " flip was accepted";
    }
}

TEST_F(TraceCorpus, EveryTruncationOfAnHltIsRejected)
{
    sampleTrace().save(path());
    const std::vector<std::uint8_t> image = readFileBytes(path());
    for (std::size_t len = 0; len < image.size(); ++len) {
        writeBytes({ image.begin(), image.begin() + len });
        EXPECT_THROW(replay::LlcTrace::load(path()), IoError)
            << "truncation to " << len << " bytes was accepted";
    }
}

/** Serialise @p trace in the legacy v1 layout (what old saves wrote). */
std::vector<std::uint8_t>
encodeV1(const replay::LlcTrace &trace)
{
    Encoder enc;
    enc.u32(0x484c4c54); // v1 magic "HLLT"
    enc.u32(1);
    enc.u32(static_cast<std::uint32_t>(trace.meta().mixName.size()));
    enc.raw(trace.meta().mixName.data(), trace.meta().mixName.size());
    for (const replay::CoreMeta &core : trace.meta().cores) {
        enc.u64(core.instructions);
        enc.u64(core.refs);
        enc.u64(core.l1Hits);
        enc.u64(core.l2Hits);
        enc.u64(core.llcDemands);
        enc.f64(core.baseCpi);
    }
    enc.u64(trace.size());
    for (const hybrid::LlcEvent &ev : trace.events()) {
        enc.u64(ev.blockNum);
        enc.u8(static_cast<std::uint8_t>(ev.type));
        enc.u8(ev.ecbBytes);
        enc.u8(ev.core);
        for (int pad = 0; pad < 5; ++pad)
            enc.u8(0); // v1 struct padding
    }
    return enc.bytes();
}

TEST_F(TraceCorpus, LegacyV1FilesStillLoad)
{
    const replay::LlcTrace original = sampleTrace();
    writeBytes(encodeV1(original));
    const replay::LlcTrace loaded = replay::LlcTrace::load(path());
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.meta().mixName, original.meta().mixName);
    EXPECT_EQ(loaded.meta().cores[3].llcDemands,
              original.meta().cores[3].llcDemands);
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded.events()[i].blockNum,
                  original.events()[i].blockNum);
        EXPECT_EQ(loaded.events()[i].type, original.events()[i].type);
    }
}

TEST_F(TraceCorpus, V1HeaderLiesAreRejected)
{
    std::vector<std::uint8_t> image = encodeV1(sampleTrace());

    // Mix-name length inflated beyond the file: must throw, not allocate.
    std::vector<std::uint8_t> bad = image;
    bad[8] = 0xFF;
    bad[9] = 0xFF;
    bad[10] = 0xFF;
    bad[11] = 0x7F;
    writeBytes(bad);
    EXPECT_THROW(replay::LlcTrace::load(path()), IoError);

    // Event count inflated beyond the file.
    const std::size_t count_off = 12 + 10 /* name */ +
                                  replay::traceCores * 48;
    bad = image;
    bad[count_off] = 0xFF;
    bad[count_off + 7] = 0x7F;
    writeBytes(bad);
    EXPECT_THROW(replay::LlcTrace::load(path()), IoError);

    // Truncated mid-events.
    writeBytes({ image.begin(), image.end() - 7 });
    EXPECT_THROW(replay::LlcTrace::load(path()), IoError);
}

} // namespace
