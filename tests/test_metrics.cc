/**
 * @file
 * Observability-layer tests: TimeSeries/HistogramSeries/MetricRegistry
 * snapshot round-trips, JSON/CSV export shape, locale-independent
 * number formatting, phase timers and the replayer's interval sampling
 * hook.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/error.hh"
#include "common/metrics.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "hierarchy/hierarchy.hh"
#include "hybrid/set_dueling.hh"
#include "replay/replayer.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;
using metrics::CellExport;
using metrics::HistogramSeries;
using metrics::MetricRegistry;
using metrics::TimeSeries;

// --------------------------------------------------------------------
// Containers and snapshot/restore.
// --------------------------------------------------------------------

TEST(Metrics, TimeSeriesRoundTrips)
{
    TimeSeries ts;
    ts.append(1.0);
    ts.append(-2.5);
    ts.append(0.125);

    serial::Encoder enc;
    ts.snapshot(enc);

    TimeSeries other;
    other.append(99.0); // must be replaced, not appended to
    serial::Decoder dec(enc.bytes());
    other.restore(dec);
    ASSERT_EQ(other.size(), 3u);
    EXPECT_EQ(other.values(), ts.values());
    EXPECT_DOUBLE_EQ(other.back(), 0.125);
}

TEST(Metrics, HistogramSeriesRoundTripsAndRejectsMismatch)
{
    HistogramSeries hs(4, 2.0);
    hs.appendRow({ 1, 0, 0, 3 });
    hs.appendRow({ 0, 2, 0, 0 });

    serial::Encoder enc;
    hs.snapshot(enc);

    HistogramSeries same(4, 2.0);
    serial::Decoder dec(enc.bytes());
    same.restore(dec);
    ASSERT_EQ(same.size(), 2u);
    EXPECT_EQ(same.rows()[0], (std::vector<std::uint64_t>{ 1, 0, 0, 3 }));

    HistogramSeries narrower(4, 1.0);
    serial::Decoder dec2(enc.bytes());
    EXPECT_THROW(narrower.restore(dec2), IoError);

    HistogramSeries fewer(2, 2.0);
    serial::Decoder dec3(enc.bytes());
    EXPECT_THROW(fewer.restore(dec3), IoError);
}

TEST(Metrics, RegistryRoundTripsAllSeries)
{
    MetricRegistry reg;
    reg.series("ipc").append(1.5);
    reg.series("ipc").append(1.25);
    reg.series("capacity").append(1.0);
    reg.histogramSeries("wear", 4, 0.5).appendRow({ 4, 3, 2, 1 });

    serial::Encoder enc;
    reg.snapshot(enc);

    // The restoring registry learns the histogram shape from the
    // snapshot itself — no pre-registration needed.
    MetricRegistry other;
    other.series("stale").append(7.0);
    serial::Decoder dec(enc.bytes());
    other.restore(dec);

    EXPECT_EQ(other.findSeries("stale"), nullptr);
    ASSERT_NE(other.findSeries("ipc"), nullptr);
    EXPECT_EQ(other.findSeries("ipc")->values(),
              (std::vector<double>{ 1.5, 1.25 }));
    ASSERT_EQ(other.allHistogramSeries().count("wear"), 1u);
    const HistogramSeries &wear = other.allHistogramSeries().at("wear");
    EXPECT_EQ(wear.bucketCount(), 4u);
    EXPECT_DOUBLE_EQ(wear.bucketWidth(), 0.5);
    ASSERT_EQ(wear.size(), 1u);
    EXPECT_EQ(wear.rows()[0], (std::vector<std::uint64_t>{ 4, 3, 2, 1 }));
}

TEST(Metrics, CorruptSnapshotLeavesRegistryUnchanged)
{
    MetricRegistry reg;
    reg.series("kept").append(42.0);

    // A truncated snapshot must throw without clobbering the contents.
    MetricRegistry donor;
    donor.series("other").append(1.0);
    donor.series("other").append(2.0);
    serial::Encoder enc;
    donor.snapshot(enc);
    std::vector<std::uint8_t> bytes(enc.bytes().begin(),
                                    enc.bytes().end());
    bytes.resize(bytes.size() / 2);

    serial::Decoder dec(bytes.data(), bytes.size());
    EXPECT_THROW(reg.restore(dec), IoError);
    ASSERT_NE(reg.findSeries("kept"), nullptr);
    EXPECT_EQ(reg.findSeries("kept")->values(),
              (std::vector<double>{ 42.0 }));
    EXPECT_EQ(reg.findSeries("other"), nullptr);
}

// --------------------------------------------------------------------
// Exporters.
// --------------------------------------------------------------------

CellExport
exampleCell(const MetricRegistry *reg)
{
    CellExport cell;
    cell.label = "CP_SD";
    cell.metrics = reg;
    cell.counters = { { "gets", 10 }, { "nvm_writes", 3 } };
    cell.scalars = { { "lifetime_months", 61.5 } };
    return cell;
}

TEST(Metrics, JsonExportCarriesSchemaSeriesAndNull)
{
    MetricRegistry reg;
    reg.series("mean_ipc").append(1.5);
    reg.series("mean_ipc").append(std::nan("")); // -> null, valid JSON
    reg.histogramSeries("wear", 2, 4.0).appendRow({ 7, 1 });

    const std::string json =
        metrics::statsToJson({ exampleCell(&reg) }, "unit-test");
    EXPECT_NE(json.find("\"schema\": \"hllc-stats-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"experiment\": \"unit-test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"label\": \"CP_SD\""), std::string::npos);
    EXPECT_NE(json.find("\"lifetime_months\": 61.5"), std::string::npos);
    EXPECT_NE(json.find("\"gets\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"values\": [1.5, null]"), std::string::npos);
    EXPECT_NE(json.find("\"bucket_count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"rows\": [[7, 1]]"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Metrics, CsvExportRoundTripsValues)
{
    MetricRegistry reg;
    reg.series("hit_rate").append(0.25);
    reg.series("hit_rate").append(0.5);

    const std::string csv = metrics::statsToCsv({ exampleCell(&reg) });
    EXPECT_EQ(csv.rfind("label,metric,step,value\n", 0), 0u);
    EXPECT_NE(csv.find("CP_SD,scalar:lifetime_months,,61.5\n"),
              std::string::npos);
    EXPECT_NE(csv.find("CP_SD,counter:gets,,10\n"), std::string::npos);
    EXPECT_NE(csv.find("CP_SD,hit_rate,0,0.25\n"), std::string::npos);
    EXPECT_NE(csv.find("CP_SD,hit_rate,1,0.5\n"), std::string::npos);

    // Every series cell parses back bit-exactly (to_chars round-trip).
    const std::string cell = "0.25";
    double parsed = 0.0;
    ASSERT_TRUE(parseDoubleExact(cell, parsed));
    EXPECT_EQ(parsed, 0.25);
}

TEST(Metrics, WriteStatsFileDispatchesOnExtension)
{
    const std::string base =
        "/tmp/hllc_test_metrics_" + formatI64(::getpid());
    const std::string json_path = base + ".json";
    const std::string csv_path = base + ".csv";

    MetricRegistry reg;
    reg.series("mean_ipc").append(2.0);
    const std::vector<CellExport> cells = { exampleCell(&reg) };

    metrics::writeStatsFile(json_path, cells, "unit-test");
    const auto json_bytes = serial::readFileBytes(json_path);
    const std::string json(json_bytes.begin(), json_bytes.end());
    EXPECT_EQ(json, metrics::statsToJson(cells, "unit-test"));

    metrics::writeStatsFile(csv_path, cells, "unit-test");
    const auto csv_bytes = serial::readFileBytes(csv_path);
    EXPECT_EQ(std::string(csv_bytes.begin(), csv_bytes.end()),
              metrics::statsToCsv(cells));

    EXPECT_THROW(metrics::writeStatsFile(base + ".xml", cells, "x"),
                 IoError);
    EXPECT_THROW(metrics::writeStatsFile(base, cells, "x"), IoError);

    std::remove(json_path.c_str());
    std::remove(csv_path.c_str());
}

TEST(Metrics, AppendCountersCopiesGroupInNameOrder)
{
    StatGroup g("llc");
    g.counter("b_second") += 2;
    g.counter("a_first") += 1;

    CellExport cell;
    metrics::appendCounters(cell, g);
    ASSERT_EQ(cell.counters.size(), 2u);
    EXPECT_EQ(cell.counters[0].first, "a_first");
    EXPECT_EQ(cell.counters[0].second, 1u);
    EXPECT_EQ(cell.counters[1].first, "b_second");
    EXPECT_EQ(cell.counters[1].second, 2u);
}

// --------------------------------------------------------------------
// Locale independence.
// --------------------------------------------------------------------

TEST(Metrics, NumberFormattingIgnoresProcessLocale)
{
    // If a comma-decimal locale is installed, switch to it; the
    // formatter must still emit "C"-locale numbers. Without such a
    // locale the test still verifies the to_chars round-trip.
    const char *old = std::setlocale(LC_NUMERIC, nullptr);
    const std::string saved = old != nullptr ? old : "C";
    const bool de = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr;

    EXPECT_EQ(formatDouble(0.25), "0.25");
    EXPECT_EQ(formatFixed(1.5, 3), "1.500");
    EXPECT_EQ(formatU64(1234567), "1234567");

    double parsed = 0.0;
    ASSERT_TRUE(parseDoubleExact(formatDouble(1.0 / 3.0), parsed));
    EXPECT_EQ(parsed, 1.0 / 3.0);

    const std::string csv = metrics::statsToCsv({ exampleCell(nullptr) });
    EXPECT_NE(csv.find(",,61.5\n"), std::string::npos);
    EXPECT_EQ(csv.find("61,5"), std::string::npos);

    if (de)
        std::setlocale(LC_NUMERIC, saved.c_str());
}

// --------------------------------------------------------------------
// Phase timers.
// --------------------------------------------------------------------

TEST(Metrics, PhaseTimersGateOnEnabled)
{
    const bool was = metrics::PhaseTimers::enabled();
    metrics::PhaseTimers::setEnabled(false);
    metrics::PhaseTimers::reset();
    {
        metrics::ScopedPhaseTimer t(metrics::Phase::Compression);
    }
    EXPECT_EQ(metrics::PhaseTimers::calls(metrics::Phase::Compression),
              0u);
    EXPECT_EQ(metrics::PhaseTimers::report(), "");

    metrics::PhaseTimers::setEnabled(true);
    {
        metrics::ScopedPhaseTimer t(metrics::Phase::Compression);
    }
    EXPECT_EQ(metrics::PhaseTimers::calls(metrics::Phase::Compression),
              1u);
    const std::string report = metrics::PhaseTimers::report();
    EXPECT_NE(report.find("timer.compression calls=1"),
              std::string::npos);
    EXPECT_NE(report.find("timer.replacement calls=0"),
              std::string::npos);

    metrics::PhaseTimers::reset();
    metrics::PhaseTimers::setEnabled(was);
}

// --------------------------------------------------------------------
// Replayer interval sampling.
// --------------------------------------------------------------------

replay::LlcTrace
smallTrace()
{
    return hierarchy::captureTrace(
        workload::tableVMixes()[0], 512,
        hierarchy::PrivateCacheConfig{ 1024, 4, 4096, 16 }, 4000, 21);
}

struct LlcRig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<hybrid::HybridLlc> llc;
};

LlcRig
makeLlc()
{
    LlcRig rig;
    hybrid::HybridLlcConfig config;
    config.numSets = 32;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = hybrid::PolicyKind::CpSd;
    config.epochCycles = 10'000;

    const fault::NvmGeometry geom{ config.numSets, config.nvmWays, 64 };
    rig.endurance = std::make_unique<fault::EnduranceModel>(
        geom, fault::EnduranceParams{ 1e12, 0.0 },
        Xoshiro256StarStar(5));
    rig.map = std::make_unique<fault::FaultMap>(
        *rig.endurance,
        hybrid::InsertionPolicy::create(config.policy)->granularity());
    rig.llc = std::make_unique<hybrid::HybridLlc>(config, rig.map.get());
    return rig;
}

TEST(Metrics, ReplayIntervalsAreMonotoneAndEndOnTotals)
{
    const replay::LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc();
    hybrid::HybridLlc &llc = *rig.llc;

    constexpr std::size_t intervals = 8;
    std::vector<replay::IntervalSnapshot> snaps;
    const replay::ReplayResult res = replay::TraceReplayer(0.2).replay(
        trace, llc,
        [&](const replay::IntervalSnapshot &s) { snaps.push_back(s); },
        intervals);

    ASSERT_EQ(snaps.size(), intervals);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        EXPECT_EQ(snaps[i].interval, i);
        if (i == 0)
            continue;
        // Cumulative counts never move backwards.
        EXPECT_GE(snaps[i].measuredEvents, snaps[i - 1].measuredEvents);
        EXPECT_GE(snaps[i].demandAccesses, snaps[i - 1].demandAccesses);
        EXPECT_GE(snaps[i].demandHits, snaps[i - 1].demandHits);
        EXPECT_GE(snaps[i].nvmBytesWritten,
                  snaps[i - 1].nvmBytesWritten);
    }
    // The last boundary is the last measured event: the final snapshot
    // carries exactly the replay totals.
    EXPECT_EQ(snaps.back().measuredEvents, res.measuredEvents);
    EXPECT_EQ(snaps.back().demandAccesses, res.demandAccesses);
    EXPECT_EQ(snaps.back().demandHits, res.demandHits);
    EXPECT_GT(snaps.back().demandAccesses, 0u);
}

TEST(Metrics, ReplayIntervalSeriesRecoverTotals)
{
    // The per-interval series hllc-replay exports are consecutive
    // deltas of the cumulative snapshots; they must sum back to the
    // replay totals and every per-interval hit rate must be a rate.
    const replay::LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc();

    MetricRegistry reg;
    std::uint64_t prev_acc = 0, prev_hits = 0, prev_bytes = 0;
    const replay::ReplayResult res = replay::TraceReplayer(0.2).replay(
        trace, *rig.llc,
        [&](const replay::IntervalSnapshot &s) {
            const std::uint64_t d_acc = s.demandAccesses - prev_acc;
            const std::uint64_t d_hits = s.demandHits - prev_hits;
            reg.series("hit_rate").append(
                d_acc == 0 ? 0.0
                           : static_cast<double>(d_hits) /
                             static_cast<double>(d_acc));
            reg.series("nvm_bytes_written")
                .append(static_cast<double>(s.nvmBytesWritten -
                                            prev_bytes));
            reg.series("cpth_winner")
                .append(rig.llc->dueling() != nullptr
                            ? static_cast<double>(
                                  rig.llc->dueling()->winner())
                            : -1.0);
            prev_acc = s.demandAccesses;
            prev_hits = s.demandHits;
            prev_bytes = s.nvmBytesWritten;
        },
        10);

    const TimeSeries *bytes = reg.findSeries("nvm_bytes_written");
    ASSERT_NE(bytes, nullptr);
    ASSERT_EQ(bytes->size(), 10u);
    double total = 0.0;
    for (double v : bytes->values())
        total += v;
    EXPECT_EQ(static_cast<std::uint64_t>(total), res.nvmBytesWritten);

    for (double r : reg.findSeries("hit_rate")->values()) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    // CP_SD duels, so the winner series must hold real candidates.
    for (double w : reg.findSeries("cpth_winner")->values()) {
        EXPECT_GE(w, 1.0);
        EXPECT_LE(w, 64.0);
    }
}

TEST(Metrics, ReplayWithoutCallbackSkipsSampling)
{
    const replay::LlcTrace trace = smallTrace();
    LlcRig a = makeLlc();
    LlcRig b = makeLlc();

    // Sampling must not perturb the replay itself.
    std::size_t fired = 0;
    const replay::ReplayResult plain =
        replay::TraceReplayer(0.2).replay(trace, *a.llc);
    const replay::ReplayResult sampled = replay::TraceReplayer(0.2).replay(
        trace, *b.llc, [&](const replay::IntervalSnapshot &) { ++fired; },
        5);
    EXPECT_EQ(fired, 5u);
    EXPECT_EQ(plain.demandHits, sampled.demandHits);
    EXPECT_EQ(plain.demandAccesses, sampled.demandAccesses);
    EXPECT_EQ(plain.nvmBytesWritten, sampled.nvmBytesWritten);
}

} // namespace
