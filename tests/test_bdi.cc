/**
 * @file
 * BDI compressor/decompressor tests: hand-built blocks per encoding,
 * parameterized encode/decode roundtrips, and random-content properties.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "compression/bdi.hh"
#include "workload/block_synth.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

BlockData
blockOfValues(unsigned k, const std::vector<std::uint64_t> &values)
{
    BlockData data{};
    for (std::size_t i = 0; i < values.size(); ++i)
        std::memcpy(data.data() + i * k, &values[i], k);
    return data;
}

TEST(Bdi, ZerosBlock)
{
    BlockData data{};
    const auto r = BdiCompressor::compress(data);
    EXPECT_EQ(r.ce, Ce::Zeros);
    EXPECT_EQ(r.ecbBytes, 2u);
    EXPECT_EQ(r.compressClass(), CompressClass::Hcr);
}

TEST(Bdi, RepeatedValueBlock)
{
    std::vector<std::uint64_t> values(8, 0xdeadbeefcafef00dULL);
    const auto r = BdiCompressor::compress(blockOfValues(8, values));
    EXPECT_EQ(r.ce, Ce::Rep8);
    EXPECT_EQ(r.ecbBytes, 9u);
}

TEST(Bdi, SmallDeltasPickB8D1)
{
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 8; ++i)
        values.push_back(0x1000000000ULL + static_cast<unsigned>(i));
    const auto r = BdiCompressor::compress(blockOfValues(8, values));
    EXPECT_EQ(r.ce, Ce::B8D1);
}

TEST(Bdi, NegativeDeltasFit)
{
    // Deltas of -1 must fit in one signed byte.
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 8; ++i)
        values.push_back(0x1000000000ULL - static_cast<unsigned>(i));
    const auto r = BdiCompressor::compress(blockOfValues(8, values));
    EXPECT_EQ(r.ce, Ce::B8D1);
}

TEST(Bdi, DeltaBoundaryBetweenD1AndD2)
{
    // +127 fits in 1 byte, +128 does not.
    std::vector<std::uint64_t> fits(8, 0x55000000ULL);
    fits[3] += 127;
    EXPECT_EQ(BdiCompressor::compress(blockOfValues(8, fits)).ce,
              Ce::B8D1);

    std::vector<std::uint64_t> spills(8, 0x55000000ULL);
    spills[3] += 128;
    EXPECT_EQ(BdiCompressor::compress(blockOfValues(8, spills)).ce,
              Ce::B8D2);
}

TEST(Bdi, UncompressibleRandomBlock)
{
    Xoshiro256StarStar rng(7);
    BlockData data;
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    const auto r = BdiCompressor::compress(data);
    EXPECT_EQ(r.ce, Ce::Uncompressed);
    EXPECT_EQ(r.ecbBytes, 64u);
}

TEST(Bdi, CompressPicksSmallestApplicable)
{
    // A zero block is also Rep8/B8D1/...-applicable; Zeros must win.
    BlockData data{};
    EXPECT_TRUE(BdiCompressor::applicable(data, Ce::Rep8));
    EXPECT_TRUE(BdiCompressor::applicable(data, Ce::B8D1));
    EXPECT_EQ(BdiCompressor::compress(data).ce, Ce::Zeros);
}

TEST(Bdi, ApplicableUncompressedAlways)
{
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 16; ++i) {
        BlockData data;
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_TRUE(BdiCompressor::applicable(data, Ce::Uncompressed));
    }
}

/** Encode/decode roundtrip across every encoding. */
class BdiRoundtrip : public ::testing::TestWithParam<Ce>
{
};

TEST_P(BdiRoundtrip, SynthesizedBlocksSurviveRoundtrip)
{
    const Ce ce = GetParam();
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const BlockData data = workload::synthesizeBlock(ce, seed);
        ASSERT_TRUE(BdiCompressor::applicable(data, ce))
            << "seed " << seed;
        const auto ecb = BdiCompressor::encode(data, ce);
        EXPECT_EQ(ecb.size(), ecbSize(ce));
        const BlockData back = BdiCompressor::decode(ce, ecb);
        EXPECT_EQ(back, data) << "seed " << seed;
    }
}

TEST_P(BdiRoundtrip, EncodeUsesChosenEncodingHeader)
{
    const Ce ce = GetParam();
    const BlockData data = workload::synthesizeBlock(ce, 123);
    const auto ecb = BdiCompressor::encode(data, ce);
    if (ce != Ce::Uncompressed) {
        EXPECT_EQ(ecb[0], static_cast<std::uint8_t>(ce));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, BdiRoundtrip,
    ::testing::Values(Ce::Zeros, Ce::Rep8, Ce::B8D1, Ce::B8D2, Ce::B8D3,
                      Ce::B8D4, Ce::B8D5, Ce::B8D6, Ce::B8D7, Ce::B4D1,
                      Ce::B4D2, Ce::B4D3, Ce::B2D1, Ce::Uncompressed),
    [](const auto &info) {
        return std::string(ceInfo(info.param).name);
    });

TEST(Bdi, RandomBlocksAlwaysRoundtripThroughBestEncoding)
{
    // Property: whatever compress() picks must decode to the original.
    Xoshiro256StarStar rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        BlockData data;
        // Mix structured and unstructured contents.
        const int kind = static_cast<int>(rng.nextBounded(3));
        if (kind == 0) {
            const std::uint64_t base = rng.next();
            for (unsigned i = 0; i < 8; ++i) {
                const std::uint64_t v =
                    base + (rng.nextBounded(1u << 16)) - (1u << 15);
                std::memcpy(data.data() + i * 8, &v, 8);
            }
        } else if (kind == 1) {
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.nextBounded(4));
        } else {
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
        }
        const auto r = BdiCompressor::compress(data);
        const auto ecb = BdiCompressor::encode(data, r.ce);
        EXPECT_EQ(BdiCompressor::decode(r.ce, ecb), data);
    }
}

} // namespace
