/**
 * @file
 * Self-healing grid tests: deterministic retry backoff, the
 * runWithRetry failure taxonomy, the hllc-failures-v1 report, the
 * GridWatchdog cancellation flag, interruptible sleeps, and
 * end-to-end recovery in the checkpointed forecast grid (a recovered
 * or resumed cell is byte-identical to a fault-free run).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/error.hh"
#include "common/failpoint.hh"
#include "common/interrupt.hh"
#include "common/serialize.hh"
#include "sim/grid.hh"
#include "sim/resilience.hh"

namespace
{

using namespace hllc;
using hybrid::PolicyKind;

// --------------------------------------------------------------------
// Backoff schedule.
// --------------------------------------------------------------------

TEST(GridRetryDelay, DeterministicExponentialAndBounded)
{
    sim::RetryPolicy policy;
    policy.baseDelayMs = 100;
    policy.maxDelayMs = 1000;
    policy.jitterSeed = 7;
    for (std::size_t retry = 1; retry <= 8; ++retry) {
        for (std::size_t cell = 0; cell < 4; ++cell) {
            const std::uint64_t delay =
                sim::retryDelayMs(policy, retry, cell);
            EXPECT_EQ(delay, sim::retryDelayMs(policy, retry, cell));
            const std::uint64_t nominal = std::min<std::uint64_t>(
                policy.baseDelayMs << (retry - 1), policy.maxDelayMs);
            EXPECT_GE(delay, nominal - nominal / 4);
            EXPECT_LE(delay, nominal + nominal / 4);
        }
    }
    // Different cells desynchronise: not every delay may coincide.
    const std::uint64_t a = sim::retryDelayMs(policy, 3, 0);
    const std::uint64_t b = sim::retryDelayMs(policy, 3, 1);
    const std::uint64_t c = sim::retryDelayMs(policy, 3, 2);
    EXPECT_TRUE(a != b || b != c);
}

// --------------------------------------------------------------------
// runWithRetry taxonomy.
// --------------------------------------------------------------------

sim::RetryPolicy
fastPolicy(std::size_t attempts)
{
    sim::RetryPolicy policy;
    policy.maxAttempts = attempts;
    policy.baseDelayMs = 1;
    policy.maxDelayMs = 2;
    return policy;
}

TEST(GridRetry, FirstTrySuccessIsOk)
{
    const auto result =
        sim::runWithRetry(fastPolicy(3), 0, [](std::size_t) {});
    EXPECT_EQ(result.status, sim::CellStatus::Ok);
    EXPECT_EQ(result.attempts, 1u);
    EXPECT_TRUE(result.error.empty());
}

TEST(GridRetry, TransientIoErrorRecoversAndKeepsDiagnosis)
{
    const auto result = sim::runWithRetry(
        fastPolicy(3), 5, [](std::size_t attempt) {
            if (attempt < 2) {
                throw IoError("injected fault at failpoint"
                              " 'serialize.write.fsync'");
            }
        });
    EXPECT_EQ(result.status, sim::CellStatus::Recovered);
    EXPECT_EQ(result.attempts, 3u);
    EXPECT_EQ(result.errorKind, "io");
    ASSERT_EQ(result.failpoints.size(), 1u);
    EXPECT_EQ(result.failpoints[0], "serialize.write.fsync");
}

TEST(GridRetry, PersistentFailureQuarantinesAfterBudget)
{
    std::size_t calls = 0;
    const auto result = sim::runWithRetry(
        fastPolicy(3), 0, [&](std::size_t) {
            ++calls;
            throw std::runtime_error("deterministic logic bug");
        });
    EXPECT_EQ(result.status, sim::CellStatus::Quarantined);
    EXPECT_EQ(result.attempts, 3u);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(result.errorKind, "std");
    EXPECT_EQ(result.error, "deterministic logic bug");
}

TEST(GridRetry, DeadlineAndInterruptAreNeverRetried)
{
    std::size_t calls = 0;
    const auto timed = sim::runWithRetry(
        fastPolicy(5), 0, [&](std::size_t) {
            ++calls;
            throw DeadlineExceededError("watchdog fired");
        });
    EXPECT_EQ(timed.status, sim::CellStatus::TimedOut);
    EXPECT_EQ(timed.attempts, 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(timed.errorKind, "deadline");

    calls = 0;
    const auto stopped = sim::runWithRetry(
        fastPolicy(5), 0, [&](std::size_t) {
            ++calls;
            throw InterruptedError();
        });
    EXPECT_EQ(stopped.status, sim::CellStatus::Interrupted);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(stopped.errorKind, "interrupt");
}

TEST(GridRetry, NonStdThrowKeepsCellIdentity)
{
    const auto result = sim::runWithRetry(
        fastPolicy(2), 7, [](std::size_t) { throw 42; });
    EXPECT_EQ(result.status, sim::CellStatus::Quarantined);
    EXPECT_EQ(result.attempts, 2u);
    EXPECT_EQ(result.errorKind, "non-std::exception");
    EXPECT_EQ(result.error, "non-std::exception thrown by cell 7");
}

// --------------------------------------------------------------------
// Failure report.
// --------------------------------------------------------------------

TEST(GridFailureReport, ExtractsQuotedFailpointNames)
{
    const auto names = sim::extractFailpointNames(
        "cell died: injected fault at failpoint 'serialize.read',"
        " then injected fault at failpoint 'trace.decode'");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "serialize.read");
    EXPECT_EQ(names[1], "trace.decode");
    EXPECT_TRUE(sim::extractFailpointNames("plain io error").empty());
}

TEST(GridFailureReport, JsonCarriesSchemaOutcomesAndCounts)
{
    std::vector<sim::CellReport> cells(3);
    cells[0].index = 0;
    cells[0].label = "BH";
    cells[1].index = 1;
    cells[1].label = "CP_SD";
    cells[1].attempts = 2;
    cells[1].status = sim::CellStatus::Recovered;
    cells[1].error = "injected fault at failpoint 'grid.cell.throw'";
    cells[1].errorKind = "io";
    cells[1].failpoints = { "grid.cell.throw" };
    cells[2].index = 2;
    cells[2].label = "CA \"quoted\"";
    cells[2].attempts = 3;
    cells[2].status = sim::CellStatus::Quarantined;
    cells[2].errorKind = "std";

    const std::string json = sim::failureReportToJson(cells);
    EXPECT_NE(json.find("\"schema\": \"hllc-failures-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"ok\""), std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"recovered\""),
              std::string::npos);
    EXPECT_NE(json.find("\"outcome\": \"quarantined\""),
              std::string::npos);
    EXPECT_NE(json.find("\"failpoints\": [\"grid.cell.throw\"]"),
              std::string::npos);
    EXPECT_NE(json.find("\"CA \\\"quoted\\\"\""), std::string::npos);
    EXPECT_NE(json.find("\"total\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"ok\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"recovered\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"quarantined\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"timed_out\": 0"), std::string::npos);
}

// --------------------------------------------------------------------
// Interruptible sleep and the watchdog.
// --------------------------------------------------------------------

class InterruptibleSleep : public ::testing::Test
{
  protected:
    void SetUp() override { clearInterrupt(); }
    void TearDown() override { clearInterrupt(); }
};

TEST_F(InterruptibleSleep, CompletesWhenNoInterruptIsPending)
{
    EXPECT_FALSE(interruptibleSleepMs(1));
}

TEST_F(InterruptibleSleep, WakesEarlyOnInterrupt)
{
    const auto start = std::chrono::steady_clock::now();
    std::thread poker([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        requestInterrupt(SIGINT);
    });
    EXPECT_TRUE(interruptibleSleepMs(30'000));
    poker.join();
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_LT(elapsed.count(), 10'000);
}

TEST(GridWatchdogFlag, FlagsOverrunAndStaysInertAtTimeoutZero)
{
    sim::GridWatchdog inert(0);
    sim::GridWatchdog::Scope idle(inert, 0, "idle");
    ASSERT_NE(idle.cancelFlag(), nullptr);
    EXPECT_FALSE(idle.cancelFlag()->load());

    sim::GridWatchdog watchdog(30);
    sim::GridWatchdog::Scope scope(watchdog, 1, "slow");
    ASSERT_NE(scope.cancelFlag(), nullptr);
    // The monitor wakes at a fraction of the 30 ms deadline; poll for
    // the flag with a generous ceiling so slow machines stay green.
    bool cancelled = false;
    for (int i = 0; i < 2'000 && !cancelled; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        cancelled = scope.cancelFlag()->load();
    }
    EXPECT_TRUE(cancelled);
    EXPECT_FALSE(idle.cancelFlag()->load());
}

// --------------------------------------------------------------------
// End-to-end: self-healing forecast grid.
// --------------------------------------------------------------------

class ResilientGrid : public ::testing::Test
{
  protected:
    std::string dir_;

    void SetUp() override
    {
        clearInterrupt();
        failpoint::reset();
        dir_ = std::string("/tmp/hllc_test_resilience_") +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
    }

    void TearDown() override
    {
        clearInterrupt();
        failpoint::reset();
        for (std::size_t i = 0; i < entries().size(); ++i) {
            const std::string p = sim::checkpointCellPath(
                checkpoint(), i, entries()[i].label);
            std::remove(p.c_str());
            std::remove((p + ".tmp").c_str());
        }
        std::remove(failuresPath().c_str());
        std::remove((failuresPath() + ".tmp").c_str());
        ::rmdir(dir_.c_str());
    }

    std::string failuresPath() const { return dir_ + "/failures.json"; }

    sim::CheckpointOptions
    checkpoint(bool resume = false) const
    {
        sim::CheckpointOptions options;
        options.dir = dir_;
        options.resume = resume;
        return options;
    }

    static sim::ResilienceOptions
    resilience(std::size_t attempts, std::uint64_t timeout_ms = 0)
    {
        sim::ResilienceOptions options;
        options.retry.maxAttempts = attempts;
        options.retry.baseDelayMs = 1;
        options.retry.maxDelayMs = 5;
        options.cellTimeoutMs = timeout_ms;
        return options;
    }

    static const sim::Experiment &
    experiment()
    {
        static const sim::Experiment e = [] {
            sim::SystemConfig config = sim::SystemConfig::tableIV(0.5);
            config.refsPerCore = 30'000;
            config.jobs = 2;
            return sim::Experiment(config, 2);
        }();
        return e;
    }

    static const std::vector<sim::StudyEntry> &
    entries()
    {
        static const std::vector<sim::StudyEntry> e = {
            { "BH", experiment().config().llcConfig(PolicyKind::Bh) },
            { "CP_SD",
              experiment().config().llcConfig(PolicyKind::CpSd) },
        };
        return e;
    }

    static void
    expectSummariesIdentical(const std::vector<sim::ForecastSummary> &a,
                             const std::vector<sim::ForecastSummary> &b)
    {
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].label, b[i].label);
            EXPECT_EQ(a[i].lifetimeMonths, b[i].lifetimeMonths);
            EXPECT_EQ(a[i].initialIpc, b[i].initialIpc);
            ASSERT_EQ(a[i].series.size(), b[i].series.size());
            for (std::size_t t = 0; t < a[i].series.size(); ++t) {
                EXPECT_EQ(a[i].series[t].time, b[i].series[t].time);
                EXPECT_EQ(a[i].series[t].capacity,
                          b[i].series[t].capacity);
                EXPECT_EQ(a[i].series[t].meanIpc,
                          b[i].series[t].meanIpc);
            }
        }
    }
};

TEST_F(ResilientGrid, InjectedCellFaultRecoversByteIdentically)
{
    const auto plain = sim::runForecastGrid(experiment(), entries());

    // jobs=1 pins the failpoint hit order: cell 0 takes the injected
    // fault on its first attempt and must recover on its second.
    failpoint::configure("grid.cell.throw=nth:1");
    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, {}, resilience(3), 1);
    EXPECT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.reports.size(), 2u);
    EXPECT_EQ(outcome.reports[0].status, sim::CellStatus::Recovered);
    EXPECT_EQ(outcome.reports[0].attempts, 2u);
    EXPECT_EQ(outcome.reports[0].errorKind, "io");
    ASSERT_EQ(outcome.reports[0].failpoints.size(), 1u);
    EXPECT_EQ(outcome.reports[0].failpoints[0], "grid.cell.throw");
    EXPECT_EQ(outcome.reports[1].status, sim::CellStatus::Ok);
    expectSummariesIdentical(outcome.summaries, plain);
}

TEST_F(ResilientGrid, CheckpointSaveFaultRecoversViaResume)
{
    const auto plain = sim::runForecastGrid(experiment(), entries());

    // The first checkpoint save of the grid fails; the retry resumes
    // the cell (from nothing, the failed save landed no file) and the
    // grid still reproduces the fault-free results bit-for-bit.
    failpoint::configure("forecast.checkpoint.save=nth:1");
    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint(), resilience(2), 1);
    EXPECT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.reports.size(), 2u);
    EXPECT_EQ(outcome.reports[0].status, sim::CellStatus::Recovered);
    ASSERT_EQ(outcome.reports[0].failpoints.size(), 1u);
    EXPECT_EQ(outcome.reports[0].failpoints[0],
              "forecast.checkpoint.save");
    expectSummariesIdentical(outcome.summaries, plain);
}

TEST_F(ResilientGrid, ExhaustedBudgetQuarantinesAndWritesReport)
{
    failpoint::configure("grid.cell.throw=every:1");
    auto options = resilience(2);
    options.failuresOut = failuresPath();
    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), entries(), {}, checkpoint(), options, 1);
    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.exitCode(), 1);
    EXPECT_TRUE(outcome.summaries.empty());
    ASSERT_EQ(outcome.failures.size(), 2u);
    ASSERT_EQ(outcome.reports.size(), 2u);
    for (const auto &report : outcome.reports) {
        EXPECT_EQ(report.status, sim::CellStatus::Quarantined);
        EXPECT_EQ(report.attempts, 2u);
        EXPECT_FALSE(report.error.empty());
    }

    const auto bytes = serial::readFileBytes(failuresPath());
    const std::string json(bytes.begin(), bytes.end());
    EXPECT_NE(json.find("\"schema\": \"hllc-failures-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"quarantined\": 2"), std::string::npos);
    EXPECT_NE(json.find("grid.cell.throw"), std::string::npos);
}

TEST_F(ResilientGrid, WatchdogCancelsStalledCellAndResumeCompletes)
{
    const std::vector<sim::StudyEntry> one = { entries()[0] };
    const auto plain = sim::runForecastGrid(experiment(), one);

    // The stall site sleeps past the 200 ms deadline, the watchdog
    // sets the cancel flag, and the cell unwinds at its first step
    // boundary with a final checkpoint in place. Timeouts are never
    // retried.
    failpoint::configure("grid.cell.stall=nth:1");
    const auto outcome = sim::runForecastGridCheckpointed(
        experiment(), one, {}, checkpoint(), resilience(3, 200), 1);
    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.failures.size(), 1u);
    ASSERT_EQ(outcome.reports.size(), 1u);
    EXPECT_EQ(outcome.reports[0].status, sim::CellStatus::TimedOut);
    EXPECT_EQ(outcome.reports[0].attempts, 1u);
    EXPECT_EQ(outcome.reports[0].errorKind, "deadline");

    // With the chaos cleared, a resume finishes the cell from its
    // final checkpoint and matches the uninterrupted reference.
    failpoint::reset();
    const auto resumed = sim::runForecastGridCheckpointed(
        experiment(), one, {}, checkpoint(true), {}, 1);
    EXPECT_TRUE(resumed.ok());
    expectSummariesIdentical(resumed.summaries, plain);
}

} // namespace
