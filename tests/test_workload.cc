/**
 * @file
 * Workload tests: block-content synthesis hits its compressibility
 * targets, content mixes reproduce the Figure 2 class fractions, the
 * twenty profiles and ten mixes (Table V) are well-formed, and the
 * reference streams behave as specified.
 */

#include <gtest/gtest.h>

#include <set>

#include "compression/bdi.hh"
#include "workload/mixes.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace hllc;
using namespace hllc::workload;
using compression::BdiCompressor;
using compression::Ce;
using compression::ceInfo;
using compression::CompressClass;
using compression::ecbSize;

/** synthesizeBlock must achieve its target across every encoding. */
class SynthTarget : public ::testing::TestWithParam<Ce>
{
};

TEST_P(SynthTarget, AchievesExactTargetSize)
{
    const Ce ce = GetParam();
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const BlockData data = synthesizeBlock(ce, seed);
        EXPECT_EQ(BdiCompressor::compress(data).ecbBytes, ecbSize(ce))
            << std::string(ceInfo(ce).name) << " seed " << seed;
    }
}

TEST_P(SynthTarget, DeterministicInSeed)
{
    const Ce ce = GetParam();
    EXPECT_EQ(synthesizeBlock(ce, 7), synthesizeBlock(ce, 7));
}

INSTANTIATE_TEST_SUITE_P(
    AllTargets, SynthTarget,
    ::testing::Values(Ce::Zeros, Ce::Rep8, Ce::B8D1, Ce::B8D2, Ce::B8D3,
                      Ce::B8D4, Ce::B8D5, Ce::B8D6, Ce::B8D7, Ce::B4D1,
                      Ce::B4D2, Ce::B4D3, Ce::B2D1, Ce::Uncompressed),
    [](const auto &info) {
        return std::string(ceInfo(info.param).name);
    });

TEST(ContentMix, ClassFractionsRealised)
{
    const ContentMix mix = ContentMix::fromClassFractions(0.5, 0.3);
    Xoshiro256StarStar rng(5);
    int hcr = 0, lcr = 0, inc = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Ce ce = mix.draw(rng.nextDouble());
        switch (compression::classify(ecbSize(ce))) {
          case CompressClass::Hcr: ++hcr; break;
          case CompressClass::Lcr: ++lcr; break;
          default: ++inc; break;
        }
    }
    EXPECT_NEAR(hcr / double(n), 0.5, 0.02);
    EXPECT_NEAR(lcr / double(n), 0.3, 0.02);
    EXPECT_NEAR(inc / double(n), 0.2, 0.02);
}

TEST(ContentMix, FullyIncompressible)
{
    const ContentMix mix = ContentMix::fromClassFractions(0.0, 0.0);
    for (double u : { 0.0, 0.3, 0.7, 0.999 })
        EXPECT_EQ(mix.draw(u), Ce::Uncompressed);
}

TEST(SpecProfiles, TwentyWellFormedApps)
{
    const auto &profiles = specProfiles();
    EXPECT_EQ(profiles.size(), 20u);
    std::set<std::string> names;
    double hcr_sum = 0.0, lcr_sum = 0.0;
    for (const auto &p : profiles) {
        names.insert(p.name);
        EXPECT_LE(p.pLoop + p.pStream + p.pRandom, 1.0 + 1e-9) << p.name;
        EXPECT_GE(p.hcrFraction, 0.0);
        EXPECT_LE(p.hcrFraction + p.lcrFraction, 1.0 + 1e-9) << p.name;
        EXPECT_GT(p.memIntensity, 0.0);
        EXPECT_GT(p.baseCpi, 0.0);
        hcr_sum += p.hcrFraction;
        lcr_sum += p.lcrFraction;
    }
    EXPECT_EQ(names.size(), 20u); // unique
    // Figure 2 averages: ~49% HCR, ~29% LCR across the suite.
    EXPECT_NEAR(hcr_sum / 20.0, 0.49, 0.08);
    EXPECT_NEAR(lcr_sum / 20.0, 0.29, 0.10);
}

TEST(SpecProfiles, PaperExtremesPresent)
{
    // Fig. 2: xz17/milc06 incompressible; GemsFDTD/zeusmp almost all HCR.
    EXPECT_DOUBLE_EQ(profileByName("xz17").hcrFraction, 0.0);
    EXPECT_DOUBLE_EQ(profileByName("milc06").lcrFraction, 0.0);
    EXPECT_GT(profileByName("GemsFDTD06").hcrFraction, 0.85);
    EXPECT_GT(profileByName("zeusmp06").hcrFraction, 0.8);
}

TEST(SpecProfilesDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(profileByName("notabenchmark"), "unknown application");
}

TEST(Mixes, TableVHasTenMixesOfKnownApps)
{
    const auto &mixes = tableVMixes();
    EXPECT_EQ(mixes.size(), 10u);
    for (const auto &mix : mixes) {
        for (const auto &app : mix.apps)
            EXPECT_NO_FATAL_FAILURE(profileByName(app)) << mix.name;
    }
    // Spot-check two rows against Table V.
    EXPECT_EQ(mixes[0].apps[0], "zeusmp06");
    EXPECT_EQ(mixes[5].apps[1], "xz17");
}

TEST(Mixes, InstancesHaveDisjointAddressSpaces)
{
    const auto apps = instantiateMix(tableVMixes()[0], 2048, 1);
    ASSERT_EQ(apps.size(), appsPerMix);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        for (std::size_t j = i + 1; j < apps.size(); ++j) {
            const Addr end_i =
                apps[i]->addrBase() + apps[i]->footprintBlocks();
            EXPECT_LE(end_i, apps[j]->addrBase());
        }
    }
}

TEST(AppModel, StreamStaysInFootprint)
{
    const AppProfile &profile = profileByName("bwaves17");
    AppModel app(profile, 1 << 20, 2048, Xoshiro256StarStar(3));
    for (int i = 0; i < 50000; ++i) {
        const MemRef ref = app.next();
        EXPECT_GE(ref.blockNum, app.addrBase());
        EXPECT_LT(ref.blockNum,
                  app.addrBase() + app.footprintBlocks());
    }
}

TEST(AppModel, SameSeedSameStream)
{
    const AppProfile &profile = profileByName("mcf17");
    AppModel a(profile, 0, 2048, Xoshiro256StarStar(9));
    AppModel b(profile, 0, 2048, Xoshiro256StarStar(9));
    for (int i = 0; i < 1000; ++i) {
        const MemRef ra = a.next();
        const MemRef rb = b.next();
        EXPECT_EQ(ra.blockNum, rb.blockNum);
        EXPECT_EQ(ra.write, rb.write);
    }
}

TEST(AppModel, WriteFractionRoughlyRealised)
{
    const AppProfile &profile = profileByName("lbm17"); // write-heavy
    AppModel app(profile, 0, 2048, Xoshiro256StarStar(11));
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += app.next().write;
    // Write-cycle bursts write ~half their refs, plus residual
    // dirtiness; expect a clearly write-heavy stream.
    EXPECT_GT(writes / double(n), 0.1);
    EXPECT_LT(writes / double(n), 0.6);
}

TEST(AppModel, EcbSizeMatchesRealCompression)
{
    const AppProfile &profile = profileByName("zeusmp06");
    AppModel app(profile, 0, 2048, Xoshiro256StarStar(13));
    for (Addr block = 0; block < 200; ++block) {
        const unsigned cached = app.ecbSizeOf(block);
        const BlockData data = app.contentOf(block, 0);
        EXPECT_EQ(cached, BdiCompressor::compress(data).ecbBytes);
        // Cached lookup is stable.
        EXPECT_EQ(app.ecbSizeOf(block), cached);
    }
}

TEST(AppModel, IncompressibleAppProducesOnly64ByteEcbs)
{
    const AppProfile &profile = profileByName("xz17");
    AppModel app(profile, 0, 2048, Xoshiro256StarStar(17));
    for (Addr block = 0; block < 100; ++block)
        EXPECT_EQ(app.ecbSizeOf(block), 64u);
}

TEST(AppModel, CompressibilityProfileObserved)
{
    const AppProfile &profile = profileByName("GemsFDTD06"); // ~92% HCR
    AppModel app(profile, 0, 2048, Xoshiro256StarStar(19));
    int hcr = 0;
    const int n = 2000;
    for (Addr block = 0; block < n; ++block) {
        if (compression::classify(app.ecbSizeOf(block)) ==
            CompressClass::Hcr) {
            ++hcr;
        }
    }
    EXPECT_NEAR(hcr / double(n), 0.92, 0.04);
}

TEST(AppModel, WorkingSetsScaleWithLlc)
{
    const AppProfile &profile = profileByName("zeusmp06");
    AppModel small(profile, 0, 1024, Xoshiro256StarStar(1));
    AppModel large(profile, 0, 4096, Xoshiro256StarStar(1));
    EXPECT_NEAR(static_cast<double>(large.loopBlocks()) /
                    static_cast<double>(small.loopBlocks()),
                4.0, 0.5);
    EXPECT_NEAR(static_cast<double>(large.footprintBlocks()) /
                    static_cast<double>(small.footprintBlocks()),
                4.0, 0.5);
}

} // namespace
