/**
 * @file
 * hllc-serve daemon tests: protocol round-trips, framing fuzz against a
 * live server (truncations, over-declared lengths, every-byte-flip — the
 * daemon must answer with an error frame and keep serving, never crash),
 * backpressure (bounded queues answer OVERLOADED), the serve.* chaos
 * sites, and the drain guarantee: a drain under pipelined load loses
 * zero accepted requests (framesAccepted == repliesSent, every client
 * receives every reply).
 *
 * All servers bind 127.0.0.1 with an ephemeral port (--port 0
 * equivalent), so tests never collide with each other or the host.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hh"
#include "common/failpoint.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/socket.hh"

namespace
{

using namespace hllc;
using namespace hllc::serve;

/** Every test starts and ends with no chaos configured. */
class ServeSpec : public ::testing::Test
{
  protected:
    void SetUp() override { failpoint::reset(); }
    void TearDown() override { failpoint::reset(); }
};

/** An ephemeral-port loopback server with test-friendly limits. */
ServerConfig
testConfig()
{
    ServerConfig config;
    config.endpoint.tcpPort = 0; // ephemeral
    config.shards = 2;
    config.limits.maxRefsPerCore = 2'000;
    config.limits.maxBatchEvents = 4'096;
    config.limits.traceCacheEntries = 4;
    config.statsIntervalMs = 100;
    return config;
}

Fd
connectPort(std::uint16_t port)
{
    Endpoint endpoint;
    endpoint.tcpPort = port;
    Fd fd = connectTo(endpoint);
    setRecvTimeoutMs(fd.get(), 50);
    return fd;
}

void
sendRequest(const Fd &fd, const Request &request)
{
    const auto framed = frame(encodeRequest(request));
    sendAll(fd.get(), framed.data(), framed.size());
}

/** Read one response, riding out timeouts; nullopt on EOF. */
std::optional<Response>
recvResponse(const Fd &fd, unsigned max_timeouts = 600)
{
    std::vector<std::uint8_t> payload;
    for (unsigned i = 0; i < max_timeouts; ++i) {
        const RecvStatus status =
            recvFrame(fd.get(), payload, defaultMaxFrameBytes);
        if (status == RecvStatus::Eof)
            return std::nullopt;
        if (status == RecvStatus::Frame)
            return parseResponse(payload.data(), payload.size());
    }
    throw IoError("recvResponse: no reply within the deadline");
}

Request
pingRequest(std::uint64_t id)
{
    Request request;
    request.type = RequestType::Ping;
    request.id = id;
    return request;
}

Request
replayRequest(std::uint64_t id, std::uint64_t refs = 200)
{
    Request request;
    request.type = RequestType::Replay;
    request.id = id;
    request.replay.mix = 1;
    request.replay.refsPerCore = refs;
    request.replay.seed = 7;
    request.replay.policy = "CP_SD";
    return request;
}

Request
batchRequest(std::uint64_t id)
{
    Request request;
    request.type = RequestType::Batch;
    request.id = id;
    request.batch.policy = "BH_CP";
    for (std::uint64_t i = 0; i < 128; ++i) {
        hybrid::LlcEvent event;
        event.blockNum = (i * 37) % 512;
        event.type = i % 3 == 0 ? hybrid::LlcEventType::GetX
                                : hybrid::LlcEventType::GetS;
        event.ecbBytes = static_cast<std::uint8_t>(2 + i % 63);
        event.core = static_cast<CoreId>(i % 4);
        request.batch.events.push_back(event);
    }
    return request;
}

TEST_F(ServeSpec, ReplayRequestRoundTripsThroughTheWireFormat)
{
    const Request request = replayRequest(42, 1'000);
    const auto payload = encodeRequest(request);
    const Request parsed =
        parseRequest(payload.data(), payload.size(), 4'096);
    EXPECT_EQ(parsed.type, RequestType::Replay);
    EXPECT_EQ(parsed.id, 42u);
    EXPECT_EQ(parsed.replay.mix, request.replay.mix);
    EXPECT_EQ(parsed.replay.refsPerCore, request.replay.refsPerCore);
    EXPECT_EQ(parsed.replay.seed, request.replay.seed);
    EXPECT_EQ(parsed.replay.policy, request.replay.policy);
}

TEST_F(ServeSpec, BatchRequestRoundTripsEveryEvent)
{
    const Request request = batchRequest(7);
    const auto payload = encodeRequest(request);
    const Request parsed =
        parseRequest(payload.data(), payload.size(), 4'096);
    ASSERT_EQ(parsed.batch.events.size(), request.batch.events.size());
    for (std::size_t i = 0; i < parsed.batch.events.size(); ++i) {
        EXPECT_EQ(parsed.batch.events[i].blockNum,
                  request.batch.events[i].blockNum);
        EXPECT_EQ(parsed.batch.events[i].type,
                  request.batch.events[i].type);
        EXPECT_EQ(parsed.batch.events[i].ecbBytes,
                  request.batch.events[i].ecbBytes);
    }
}

TEST_F(ServeSpec, ResponseRoundTripsEveryStatus)
{
    Response ok;
    ok.status = Status::Ok;
    ok.id = 1;
    ok.type = RequestType::Replay;
    ok.result.measuredEvents = 123;
    ok.result.hitRate = 0.25;
    ok.result.policyName = "CP_SD";
    auto payload = encodeResponse(ok);
    Response parsed = parseResponse(payload.data(), payload.size());
    EXPECT_EQ(parsed.status, Status::Ok);
    EXPECT_EQ(parsed.result.measuredEvents, 123u);
    EXPECT_EQ(parsed.result.policyName, "CP_SD");

    Response error;
    error.status = Status::Error;
    error.id = 2;
    error.message = "bad request";
    payload = encodeResponse(error);
    parsed = parseResponse(payload.data(), payload.size());
    EXPECT_EQ(parsed.status, Status::Error);
    EXPECT_EQ(parsed.message, "bad request");

    Response overloaded;
    overloaded.status = Status::Overloaded;
    overloaded.id = 3;
    overloaded.shard = 5;
    overloaded.queueDepth = 64;
    payload = encodeResponse(overloaded);
    parsed = parseResponse(payload.data(), payload.size());
    EXPECT_EQ(parsed.status, Status::Overloaded);
    EXPECT_EQ(parsed.shard, 5u);
    EXPECT_EQ(parsed.queueDepth, 64u);
}

TEST_F(ServeSpec, EveryTruncationOfAValidPayloadIsRejected)
{
    const auto payload = encodeRequest(batchRequest(9));
    for (std::size_t len = 0; len < payload.size(); ++len) {
        EXPECT_THROW(parseRequest(payload.data(), len, 4'096), IoError)
            << "truncation at " << len << " parsed";
    }
    // ... and so are trailing bytes.
    auto padded = payload;
    padded.push_back(0);
    EXPECT_THROW(parseRequest(padded.data(), padded.size(), 4'096),
                 IoError);
}

TEST_F(ServeSpec, OverDeclaredBatchCountIsRejectedBeforeAllocation)
{
    Request request;
    request.type = RequestType::Batch;
    request.id = 1;
    request.batch.policy = "BH";
    hybrid::LlcEvent event;
    event.blockNum = 1;
    event.type = hybrid::LlcEventType::GetS;
    event.ecbBytes = 64;
    event.core = 0;
    request.batch.events.push_back(event);
    auto payload = encodeRequest(request);
    // The count field sits right after the u64 policy length + "BH";
    // rewrite it to claim 2^31 events with 11 bytes of data following.
    const std::size_t count_at = 4 + 1 + 1 + 8 + 1 + 8 + (8 + 2);
    payload[count_at + 0] = 0;
    payload[count_at + 1] = 0;
    payload[count_at + 2] = 0;
    payload[count_at + 3] = 0x80;
    EXPECT_THROW(parseRequest(payload.data(), payload.size(), 1u << 31),
                 IoError);
}

TEST_F(ServeSpec, PingAndStatsAnswerInline)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    sendRequest(fd, pingRequest(11));
    auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);
    EXPECT_EQ(reply->id, 11u);
    EXPECT_EQ(reply->type, RequestType::Ping);

    Request stats;
    stats.type = RequestType::Stats;
    stats.id = 12;
    sendRequest(fd, stats);
    reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    ASSERT_EQ(reply->status, Status::Ok);
    EXPECT_NE(reply->statsJson.find("hllc-serve"), std::string::npos);
    EXPECT_NE(reply->statsJson.find("frames_accepted"),
              std::string::npos);
    server.drain();
}

TEST_F(ServeSpec, EvaluationResultsAreAPureFunctionOfTheRequestBytes)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    auto roundTrip = [&](const Request &request) {
        sendRequest(fd, request);
        const auto reply = recvResponse(fd);
        EXPECT_TRUE(reply && reply->status == Status::Ok);
        return reply->result;
    };
    const EvalResult first = roundTrip(replayRequest(1));
    const EvalResult again = roundTrip(replayRequest(2, 200));
    EXPECT_EQ(first.measuredEvents, again.measuredEvents);
    EXPECT_EQ(first.demandAccesses, again.demandAccesses);
    EXPECT_EQ(first.demandHits, again.demandHits);
    EXPECT_EQ(first.nvmWrites, again.nvmWrites);
    EXPECT_EQ(first.nvmBytesWritten, again.nvmBytesWritten);
    EXPECT_EQ(first.policyName, again.policyName);

    const EvalResult b1 = roundTrip(batchRequest(3));
    const EvalResult b2 = roundTrip(batchRequest(4));
    EXPECT_EQ(b1.measuredEvents, b2.measuredEvents);
    EXPECT_EQ(b1.demandHits, b2.demandHits);
    EXPECT_EQ(b1.nvmBytesWritten, b2.nvmBytesWritten);
    server.drain();
}

TEST_F(ServeSpec, MalformedPayloadGetsAnErrorReplyAndServiceContinues)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    // Garbage payload in a well-formed frame.
    const std::vector<std::uint8_t> garbage = { 0xde, 0xad, 0xbe, 0xef,
                                                0x01, 0x02 };
    const auto framed = frame(garbage);
    sendAll(fd.get(), framed.data(), framed.size());
    auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Error);

    // The connection still serves well-formed requests afterwards.
    sendRequest(fd, pingRequest(21));
    reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);
    server.drain();
}

TEST_F(ServeSpec, EveryByteFlipGetsExactlyOneReplyAndNeverKillsService)
{
    ServerConfig config = testConfig();
    config.limits.maxRefsPerCore = 500; // flips into refs stay cheap
    Server server(config);
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    const auto base = encodeRequest(replayRequest(31, 100));
    for (std::size_t i = 0; i < base.size(); ++i) {
        auto mutated = base;
        mutated[i] ^= 0xff;
        const auto framed = frame(mutated);
        sendAll(fd.get(), framed.data(), framed.size());
        // Every mutation gets exactly one reply: an error for damaged
        // structure, a normal reply when the flip lands in a don't-care
        // field (id, seed) — either way the daemon answers and lives.
        const auto reply = recvResponse(fd);
        ASSERT_TRUE(reply) << "connection died on flipped byte " << i;
    }

    sendRequest(fd, pingRequest(32));
    const auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.framesAccepted, base.size() + 1);
    server.drain();
    const ServerStats drained = server.stats();
    EXPECT_EQ(drained.framesAccepted,
              drained.repliesSent + drained.replyFailures);
}

TEST_F(ServeSpec, OverDeclaredFrameLengthGetsAnErrorReply)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    // Frame header declaring more than the server's frame bound: the
    // reader rejects it before allocating and answers with an error.
    const std::uint32_t huge = defaultMaxFrameBytes + 1;
    std::uint8_t header[4] = {
        static_cast<std::uint8_t>(huge & 0xff),
        static_cast<std::uint8_t>((huge >> 8) & 0xff),
        static_cast<std::uint8_t>((huge >> 16) & 0xff),
        static_cast<std::uint8_t>((huge >> 24) & 0xff),
    };
    sendAll(fd.get(), header, sizeof header);
    const auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Error);
    // The stream cannot be resynchronised: the server closes it.
    EXPECT_FALSE(recvResponse(fd));

    // ... but keeps serving fresh connections.
    const Fd fresh = connectPort(server.tcpPort());
    sendRequest(fresh, pingRequest(41));
    const auto pong = recvResponse(fresh);
    ASSERT_TRUE(pong);
    EXPECT_EQ(pong->status, Status::Ok);
    server.drain();
}

TEST_F(ServeSpec, TruncatedFrameThenEofGetsAnErrorReply)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    // Declare 64 payload bytes, deliver 5, half-close. The reader sees
    // a mid-frame EOF, answers with an error frame (our read side is
    // still open) and drops the connection.
    const std::uint8_t partial[9] = { 64, 0, 0, 0, 1, 2, 3, 4, 5 };
    sendAll(fd.get(), partial, sizeof partial);
    ::shutdown(fd.get(), SHUT_WR);
    const auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Error);
    EXPECT_FALSE(recvResponse(fd));

    const Fd fresh = connectPort(server.tcpPort());
    sendRequest(fresh, pingRequest(51));
    const auto pong = recvResponse(fresh);
    ASSERT_TRUE(pong);
    EXPECT_EQ(pong->status, Status::Ok);
    server.drain();
}

TEST_F(ServeSpec, FullShardQueueAnswersOverloadedNotUnboundedGrowth)
{
    ServerConfig config = testConfig();
    config.shards = 1;
    config.queueDepth = 1;
    config.batchMax = 1;
    Server server(config);
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    // Pipeline far more work than a depth-1 queue holds; every frame
    // must be answered, the excess with OVERLOADED.
    constexpr unsigned burst = 30;
    for (unsigned i = 0; i < burst; ++i)
        sendRequest(fd, replayRequest(100 + i, 400));
    unsigned ok = 0, overloaded = 0;
    for (unsigned i = 0; i < burst; ++i) {
        const auto reply = recvResponse(fd);
        ASSERT_TRUE(reply);
        if (reply->status == Status::Overloaded) {
            ++overloaded;
            EXPECT_EQ(reply->queueDepth, 1u);
        } else {
            EXPECT_EQ(reply->status, Status::Ok);
            ++ok;
        }
    }
    EXPECT_EQ(ok + overloaded, burst);
    EXPECT_GE(ok, 1u);
    EXPECT_GE(overloaded, 1u);
    EXPECT_EQ(server.stats().overloaded, overloaded);
    server.drain();
}

TEST_F(ServeSpec, DecodeFailpointForcesAnErrorReplyOnce)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    failpoint::configure("serve.decode=nth:1");
    sendRequest(fd, pingRequest(61));
    auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Error);
    EXPECT_NE(reply->message.find("serve.decode"), std::string::npos);

    sendRequest(fd, pingRequest(62));
    reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);
    server.drain();
}

TEST_F(ServeSpec, DispatchFailpointForcesAnOverloadedReply)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    failpoint::configure("serve.dispatch=nth:1");
    sendRequest(fd, replayRequest(71));
    auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Overloaded);

    sendRequest(fd, replayRequest(72));
    reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);
    server.drain();
}

TEST_F(ServeSpec, ReplyFailpointCountsAFailureAndKeepsTheBooks)
{
    Server server(testConfig());
    server.start();
    const Fd fd = connectPort(server.tcpPort());

    failpoint::configure("serve.reply=nth:1");
    sendRequest(fd, pingRequest(81));
    // The reply write was injected to fail; nothing arrives, but the
    // accounting must still balance: accepted == sent + failed.
    for (unsigned i = 0; i < 100; ++i) {
        const ServerStats stats = server.stats();
        if (stats.replyFailures > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.replyFailures, 1u);
    EXPECT_EQ(stats.framesAccepted, stats.repliesSent + 1);
    server.drain();
}

TEST_F(ServeSpec, AcceptFailpointDropsTheConnectionNotTheDaemon)
{
    Server server(testConfig());
    server.start();

    failpoint::configure("serve.accept=nth:1");
    {
        const Fd dropped = connectPort(server.tcpPort());
        // The daemon closed it before reading anything: clean EOF.
        EXPECT_FALSE(recvResponse(dropped));
    }
    const Fd fd = connectPort(server.tcpPort());
    sendRequest(fd, pingRequest(91));
    const auto reply = recvResponse(fd);
    ASSERT_TRUE(reply);
    EXPECT_EQ(reply->status, Status::Ok);
    EXPECT_EQ(server.stats().acceptInjectedDrops, 1u);
    server.drain();
}

TEST_F(ServeSpec, DrainUnderPipelinedLoadLosesZeroAcceptedRequests)
{
    ServerConfig config = testConfig();
    config.shards = 4;
    Server server(config);
    server.start();
    const std::uint16_t port = server.tcpPort();

    constexpr unsigned clients = 4;
    constexpr unsigned perClient = 25;
    std::atomic<unsigned> sent{ 0 };
    std::atomic<unsigned> received{ 0 };
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            const Fd fd = connectPort(port);
            // Fire the whole pipeline without reading a single reply
            // (loopback sendAll returns once the bytes are in the
            // server's receive buffer, so after this loop every frame
            // is guaranteed to be read and accepted by a reader).
            for (unsigned i = 0; i < perClient; ++i) {
                sendRequest(fd, replayRequest(
                                    1 + c + i * clients, 150));
                sent.fetch_add(1);
            }
            // Then count replies until the drain closes the stream.
            while (recvResponse(fd))
                received.fetch_add(1);
        });
    }

    // Begin the drain while requests are still queued and in flight.
    while (sent.load() < clients * perClient)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.drain();
    for (auto &thread : threads)
        thread.join();

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.framesAccepted, clients * perClient);
    EXPECT_EQ(stats.repliesSent, clients * perClient);
    EXPECT_EQ(stats.replyFailures, 0u);
    EXPECT_EQ(stats.overloaded, 0u);
    // The client-side half of the guarantee: every accepted request's
    // reply was delivered before the connection closed.
    EXPECT_EQ(received.load(), clients * perClient);
}

} // namespace
