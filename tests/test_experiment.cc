/**
 * @file
 * Experiment/forecast-summary contract tests: deterministic forecasts,
 * series well-formedness, lifetime arithmetic against the scale factor,
 * and endurance-fabric sharing across policies.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace
{

using namespace hllc;
using namespace hllc::sim;
using hybrid::PolicyKind;

const Experiment &
experiment()
{
    static const Experiment exp = [] {
        SystemConfig cfg = SystemConfig::tableIV(0.5);
        cfg.refsPerCore = 50'000;
        return Experiment(cfg, 2);
    }();
    return exp;
}

TEST(ExperimentForecast, SummaryWellFormed)
{
    const auto &cfg = experiment().config();
    const auto summary = experiment().runForecast(
        cfg.llcConfig(PolicyKind::CpSd), "CP_SD");

    ASSERT_FALSE(summary.series.empty());
    EXPECT_EQ(summary.label, "CP_SD");
    EXPECT_GT(summary.initialIpc, 0.0);
    EXPECT_DOUBLE_EQ(summary.series.front().capacity, 1.0);
    EXPECT_GT(summary.lifetimeMonths, 0.0);
    EXPECT_LE(summary.lifetimeMonths,
              summary.series.back().months() + 1e-9);
    // Capacity is non-increasing and time non-decreasing.
    for (std::size_t i = 1; i < summary.series.size(); ++i) {
        EXPECT_LE(summary.series[i].capacity,
                  summary.series[i - 1].capacity);
        EXPECT_GE(summary.series[i].time, summary.series[i - 1].time);
    }
}

TEST(ExperimentForecast, Deterministic)
{
    const auto &cfg = experiment().config();
    const auto a = experiment().runForecast(
        cfg.llcConfig(PolicyKind::BhCp), "a");
    const auto b = experiment().runForecast(
        cfg.llcConfig(PolicyKind::BhCp), "b");
    ASSERT_EQ(a.series.size(), b.series.size());
    EXPECT_DOUBLE_EQ(a.lifetimeMonths, b.lifetimeMonths);
    EXPECT_DOUBLE_EQ(a.initialIpc, b.initialIpc);
    for (std::size_t i = 0; i < a.series.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.series[i].capacity, b.series[i].capacity);
        EXPECT_DOUBLE_EQ(a.series[i].meanIpc, b.series[i].meanIpc);
    }
}

TEST(ExperimentForecast, SharedEnduranceFabricAcrossPolicies)
{
    // Same geometry => same per-byte limits, the fair-comparison setup.
    const auto &cfg = experiment().config();
    const auto a = experiment().makeEndurance(
        cfg.llcConfig(PolicyKind::Bh));
    const auto b = experiment().makeEndurance(
        cfg.llcConfig(PolicyKind::CpSd));
    for (std::uint32_t f = 0; f < 8; ++f)
        for (unsigned byte = 0; byte < 64; ++byte)
            EXPECT_DOUBLE_EQ(a.limit(f, byte), b.limit(f, byte));
}

TEST(ExperimentForecast, FullScaleFactorArithmetic)
{
    EXPECT_DOUBLE_EQ(SystemConfig::tableIV(0.5).fullScaleFactor(), 32.0);
    EXPECT_DOUBLE_EQ(SystemConfig::tableIV(4.0).fullScaleFactor(), 4.0);
}

TEST(ExperimentForecast, CapacityFloorRespected)
{
    const auto &cfg = experiment().config();
    forecast::ForecastConfig fc;
    fc.capacityFloor = 0.8; // stop early
    const auto summary = experiment().runForecast(
        cfg.llcConfig(PolicyKind::Bh), "BH", fc);
    ASSERT_FALSE(summary.series.empty());
    // The last point is at or just below the floor; the one before it
    // (if any) is above.
    EXPECT_LE(summary.series.back().capacity, 0.8 + 0.05);
    if (summary.series.size() >= 2) {
        EXPECT_GT(summary.series[summary.series.size() - 2].capacity,
                  0.8);
    }
}

TEST(ExperimentForecast, FasterWearMeansShorterLife)
{
    // Same policy, 10x lower endurance => ~10x shorter lifetime.
    SystemConfig weak = experiment().config();
    weak.endurance.meanWrites /= 10.0;
    const Experiment weak_exp(weak, 1);
    const Experiment strong_exp(experiment().config(), 1);

    const auto llc =
        experiment().config().llcConfig(PolicyKind::BhCp);
    const double weak_life =
        weak_exp.runForecast(llc, "w").lifetimeMonths;
    const double strong_life =
        strong_exp.runForecast(llc, "s").lifetimeMonths;
    EXPECT_GT(strong_life, 5.0 * weak_life);
}

} // namespace
