/**
 * @file
 * Private-stack and hierarchy tests: L1/L2 inclusion, GetX upgrades,
 * Put generation on L2 evictions, trace capture invariance and the
 * timing model's monotonicity.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hierarchy/hierarchy.hh"
#include "hierarchy/private_cache.hh"
#include "hierarchy/timing.hh"
#include "hierarchy/trace_recorder.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace hllc;
using namespace hllc::hierarchy;
using hybrid::AccessOutcome;
using hybrid::LlcEvent;
using hybrid::LlcEventType;

/** Sink capturing demands/puts for inspection. */
class SpySink : public LlcSink
{
  public:
    struct Demand { Addr block; bool getx; };
    struct Put { Addr block; bool dirty; unsigned ecb; };

    AccessOutcome
    demand(Addr block, bool getx, CoreId) override
    {
        demands.push_back({ block, getx });
        return AccessOutcome::Miss;
    }

    void
    put(Addr block, bool dirty, CoreId, unsigned ecb) override
    {
        puts.push_back({ block, dirty, ecb });
    }

    std::vector<Demand> demands;
    std::vector<Put> puts;
};

struct CoreRig
{
    workload::AppModel app;
    SpySink sink;
    CoreHierarchy core;

    explicit CoreRig(const PrivateCacheConfig &config)
        : app(workload::profileByName("zeusmp06"), 0, 2048,
              Xoshiro256StarStar(1)),
          core(0, config, &app, &sink)
    {
    }
};

PrivateCacheConfig
tinyConfig()
{
    // L1: 4 blocks (1 set x 4 ways); L2: 16 blocks (1 set x 16 ways).
    return PrivateCacheConfig{ 4 * 64, 4, 16 * 64, 16 };
}

TEST(CoreHierarchy, ColdReadMissesToLlcAsGetS)
{
    CoreRig rig(tinyConfig());
    const auto level = rig.core.access({ 100, false });
    EXPECT_EQ(level, ServiceLevel::Memory); // spy answers Miss
    ASSERT_EQ(rig.sink.demands.size(), 1u);
    EXPECT_EQ(rig.sink.demands[0].block, 100u);
    EXPECT_FALSE(rig.sink.demands[0].getx);
}

TEST(CoreHierarchy, ColdWriteMissesToLlcAsGetX)
{
    CoreRig rig(tinyConfig());
    rig.core.access({ 100, true });
    ASSERT_EQ(rig.sink.demands.size(), 1u);
    EXPECT_TRUE(rig.sink.demands[0].getx);
}

TEST(CoreHierarchy, L1HitIsSilent)
{
    CoreRig rig(tinyConfig());
    rig.core.access({ 100, false });
    const auto level = rig.core.access({ 100, false });
    EXPECT_EQ(level, ServiceLevel::L1);
    EXPECT_EQ(rig.sink.demands.size(), 1u);
    EXPECT_EQ(rig.core.l1Hits(), 1u);
}

TEST(CoreHierarchy, WriteToReadOnlyCopyUpgradesWithGetX)
{
    CoreRig rig(tinyConfig());
    rig.core.access({ 100, false }); // GetS fill, read-only
    rig.core.access({ 100, true }); // store: needs ownership
    ASSERT_EQ(rig.sink.demands.size(), 2u);
    EXPECT_TRUE(rig.sink.demands[1].getx);
    // Subsequent stores are silent (writable now).
    rig.core.access({ 100, true });
    EXPECT_EQ(rig.sink.demands.size(), 2u);
}

TEST(CoreHierarchy, L2EvictionGeneratesPut)
{
    CoreRig rig(tinyConfig());
    // Fill the single 16-way L2 set plus one: evicts block 0.
    for (Addr b = 0; b <= 16; ++b)
        rig.core.access({ b, false });
    ASSERT_GE(rig.sink.puts.size(), 1u);
    EXPECT_EQ(rig.sink.puts[0].block, 0u);
    EXPECT_FALSE(rig.sink.puts[0].dirty);
    EXPECT_GE(rig.sink.puts[0].ecb, 2u);
    EXPECT_LE(rig.sink.puts[0].ecb, 64u);
}

TEST(CoreHierarchy, DirtyBlocksPutDirtyWithL1Merge)
{
    CoreRig rig(tinyConfig());
    rig.core.access({ 0, true }); // dirty in L1
    for (Addr b = 1; b <= 16; ++b)
        rig.core.access({ b, false });
    ASSERT_GE(rig.sink.puts.size(), 1u);
    // Block 0's dirtiness lived in L1; the Put must carry it.
    EXPECT_EQ(rig.sink.puts[0].block, 0u);
    EXPECT_TRUE(rig.sink.puts[0].dirty);
}

TEST(CoreHierarchy, InclusionMaintainedUnderPressure)
{
    CoreRig rig(tinyConfig());
    Xoshiro256StarStar rng(3);
    // Random storm; inclusion violations would trip internal asserts.
    for (int i = 0; i < 20000; ++i)
        rig.core.access({ rng.nextBounded(64), rng.nextBool(0.3) });
    // Every L1-resident block must be in L2.
    for (Addr b = 0; b < 64; ++b) {
        if (rig.core.l1().contains(b)) {
            EXPECT_TRUE(rig.core.l2().contains(b)) << b;
        }
    }
}

TEST(MixSimulation, CountersCoverAllCores)
{
    MixSimulation sim(workload::tableVMixes()[0], 2048,
                      PrivateCacheConfig{ 2048, 4, 8192, 16 }, 42);
    SpySink sink;
    sim.run(2000, sink);
    for (std::size_t c = 0; c < sim.numCores(); ++c) {
        const CoreActivity a = sim.activityOf(c);
        EXPECT_EQ(a.refs, 2000u) << c;
        EXPECT_GT(a.instructions, a.refs); // memIntensity < 1
        EXPECT_GT(a.l1Hits, 0u);
    }
}

TEST(TraceCapture, DeterministicAndWellFormed)
{
    const auto &mix = workload::tableVMixes()[0];
    const PrivateCacheConfig config{ 2048, 4, 8192, 16 };
    const auto t1 = captureTrace(mix, 2048, config, 2000, 7);
    const auto t2 = captureTrace(mix, 2048, config, 2000, 7);
    ASSERT_EQ(t1.size(), t2.size());
    EXPECT_GT(t1.size(), 0u);
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1.events()[i].blockNum, t2.events()[i].blockNum);
        EXPECT_EQ(t1.events()[i].type, t2.events()[i].type);
        EXPECT_EQ(t1.events()[i].ecbBytes, t2.events()[i].ecbBytes);
    }
    EXPECT_EQ(t1.meta().mixName, "mix 1");
    for (const auto &core : t1.meta().cores) {
        EXPECT_EQ(core.refs, 2000u);
        EXPECT_GT(core.llcDemands, 0u);
    }
}

TEST(TraceCapture, PutsCarryRealEcbSizes)
{
    const auto trace = captureTrace(workload::tableVMixes()[5], 2048,
                                    PrivateCacheConfig{ 2048, 4, 8192, 16 },
                                    2000, 7);
    bool saw_put = false;
    for (const LlcEvent &ev : trace.events()) {
        if (ev.type == LlcEventType::PutClean ||
            ev.type == LlcEventType::PutDirty) {
            saw_put = true;
            EXPECT_GE(ev.ecbBytes, 2u);
            EXPECT_LE(ev.ecbBytes, 64u);
        }
    }
    EXPECT_TRUE(saw_put);
}

TEST(Timing, DeeperServiceLevelsCostMore)
{
    const TimingParams params;
    CoreActivity base;
    base.instructions = 1'000'000;
    base.refs = 300'000;
    base.baseCpi = 0.4;

    CoreActivity l2 = base;
    l2.l2Hits = 100'000;
    CoreActivity sram = base;
    sram.llcHitsSram = 100'000;
    CoreActivity nvm = base;
    nvm.llcHitsNvm = 100'000;
    CoreActivity mem = base;
    mem.llcMisses = 100'000;

    EXPECT_LT(coreCycles(base, params), coreCycles(l2, params));
    EXPECT_LT(coreCycles(l2, params), coreCycles(sram, params));
    EXPECT_LT(coreCycles(sram, params), coreCycles(nvm, params));
    EXPECT_LT(coreCycles(nvm, params), coreCycles(mem, params));

    EXPECT_GT(coreIpc(base, params), coreIpc(mem, params));
}

TEST(Timing, NvmWritesStallCores)
{
    const TimingParams params;
    CoreActivity a;
    a.instructions = 1'000'000;
    a.baseCpi = 0.4;
    const double before = coreCycles(a, params);
    a.nvmWrites = 100'000;
    EXPECT_GT(coreCycles(a, params), before);
}

TEST(Timing, IdleCoreHasZeroIpc)
{
    EXPECT_DOUBLE_EQ(coreIpc(CoreActivity{}, TimingParams{}), 0.0);
}

} // namespace
