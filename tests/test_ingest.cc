/**
 * @file
 * Ingest decoder tests: CRC2 record decoding and validation, the
 * conversion mapping onto replay events, determinism of fixtures and
 * conversions, and the byte-level fuzz contract — every truncation and
 * byte-flip mutant of a valid stream is exactly rejected-or-converted,
 * never a crash or partial output. Committed `.bad` reproducers from
 * tests/corpus pin the rejection paths forever.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/bytefuzz.hh"
#include "check/differential.hh"
#include "check/manifest.hh"
#include "common/error.hh"
#include "common/serialize.hh"
#include "ingest/byte_source.hh"
#include "ingest/champsim.hh"
#include "replay/llc_trace.hh"

namespace
{

using namespace hllc;
using ingest::ChampSimType;
using ingest::champSimRecordBytes;

/** Hand-assemble one CRC2 record (little-endian, 5 pad bytes). */
std::vector<std::uint8_t>
record(std::uint64_t pc, std::uint64_t addr, std::uint8_t type,
       std::uint8_t cpu, std::uint8_t fill = 0)
{
    std::vector<std::uint8_t> bytes(champSimRecordBytes, 0);
    for (int i = 0; i < 8; ++i) {
        bytes[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(pc >> (8 * i));
        bytes[static_cast<std::size_t>(8 + i)] =
            static_cast<std::uint8_t>(addr >> (8 * i));
    }
    bytes[16] = type;
    bytes[17] = cpu;
    bytes[18] = fill;
    return bytes;
}

/** Concatenate records into one stream. */
std::vector<std::uint8_t>
stream(const std::vector<std::vector<std::uint8_t>> &records)
{
    std::vector<std::uint8_t> bytes;
    for (const auto &r : records)
        bytes.insert(bytes.end(), r.begin(), r.end());
    return bytes;
}

replay::LlcTrace
convert(std::vector<std::uint8_t> bytes,
        const ingest::ConvertOptions &options = {},
        ingest::ConvertStats *stats = nullptr)
{
    ingest::MemorySource source(std::move(bytes));
    return ingest::convertChampSim(source, options, stats);
}

TEST(IngestDecode, FieldsRoundTripThroughTheWireLayout)
{
    const auto bytes =
        record(0x1122334455667788ULL, 0xdeadbeefcafeULL, 1, 3, 1);
    const ingest::ChampSimRecord rec =
        ingest::decodeChampSimRecord(bytes.data(), 0);
    EXPECT_EQ(rec.pc, 0x1122334455667788ULL);
    EXPECT_EQ(rec.addr, 0xdeadbeefcafeULL);
    EXPECT_EQ(rec.type, ChampSimType::Rfo);
    EXPECT_EQ(rec.cpu, 3);
}

TEST(IngestDecode, BadTypeAndBadCpuAreTypedErrorsNamingTheRecord)
{
    const auto bad_type = record(1, 64, 4, 0);
    try {
        ingest::decodeChampSimRecord(bad_type.data(), 17);
        FAIL() << "type 4 decoded";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("17"), std::string::npos)
            << e.what();
    }
    const auto bad_cpu = record(1, 64, 0, 4);
    EXPECT_THROW(ingest::decodeChampSimRecord(bad_cpu.data(), 0),
                 IoError);
    // Ignored fields (fill hint, padding) never affect validity.
    auto noisy = record(1, 64, 0, 0, 0xff);
    noisy[19] = 0xff;
    noisy[23] = 0xff;
    EXPECT_NO_THROW(ingest::decodeChampSimRecord(noisy.data(), 0));
}

TEST(IngestConvert, TypesMapOntoTheReplayVocabulary)
{
    ingest::ConvertStats stats;
    const replay::LlcTrace trace = convert(
        stream({ record(1, 0x1000, 0, 0), record(2, 0x2000, 1, 1),
                 record(3, 0x3000, 2, 2), record(4, 0x4000, 3, 3) }),
        {}, &stats);

    ASSERT_EQ(trace.size(), 4u);
    const auto &ev = trace.events();
    EXPECT_EQ(ev[0].type, hybrid::LlcEventType::GetS);
    EXPECT_EQ(ev[1].type, hybrid::LlcEventType::GetX);
    EXPECT_EQ(ev[2].type, hybrid::LlcEventType::GetS);
    EXPECT_EQ(ev[3].type, hybrid::LlcEventType::PutDirty);
    // Byte addresses become block numbers; cores pass through.
    EXPECT_EQ(ev[0].blockNum, 0x1000u >> 6);
    EXPECT_EQ(ev[3].blockNum, 0x4000u >> 6);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ev[i].core, i);
        EXPECT_GE(ev[i].ecbBytes, 2);
        EXPECT_LE(ev[i].ecbBytes, 64);
    }
    EXPECT_EQ(stats.records, 4u);
    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.rfos, 1u);
    EXPECT_EQ(stats.prefetches, 1u);
    EXPECT_EQ(stats.writebacks, 1u);
    EXPECT_EQ(stats.bytesIn, 4 * champSimRecordBytes);
}

TEST(IngestConvert, TrailingBytesAtEndOfStreamAreRejected)
{
    auto bytes = stream({ record(1, 0x1000, 0, 0) });
    bytes.resize(bytes.size() + 5, 0xab);
    try {
        convert(bytes);
        FAIL() << "trailing bytes converted";
    } catch (const IoError &e) {
        EXPECT_NE(std::string(e.what()).find("trailing"),
                  std::string::npos)
            << e.what();
    }
}

TEST(IngestConvert, DropPrefetchesAndMaxEventsAreHonoured)
{
    const auto bytes =
        stream({ record(1, 0x1000, 2, 0), record(2, 0x2000, 0, 0),
                 record(3, 0x3000, 0, 0) });

    ingest::ConvertOptions drop;
    drop.dropPrefetches = true;
    ingest::ConvertStats stats;
    EXPECT_EQ(convert(bytes, drop, &stats).size(), 2u);
    EXPECT_EQ(stats.prefetches, 1u);
    EXPECT_EQ(stats.dropped, 1u);

    ingest::ConvertOptions capped;
    capped.maxEvents = 2;
    EXPECT_EQ(convert(bytes, capped).size(), 2u);
}

TEST(IngestConvert, FixtureAndConversionAreDeterministic)
{
    const auto one = ingest::synthesizeChampSimFixture(256, 7);
    const auto two = ingest::synthesizeChampSimFixture(256, 7);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one.size(), 256 * champSimRecordBytes);
    EXPECT_NE(one, ingest::synthesizeChampSimFixture(256, 8));

    const replay::LlcTrace a = convert(one);
    const replay::LlcTrace b = convert(two);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].blockNum, b.events()[i].blockNum);
        EXPECT_EQ(a.events()[i].type, b.events()[i].type);
        EXPECT_EQ(a.events()[i].ecbBytes, b.events()[i].ecbBytes);
        EXPECT_EQ(a.events()[i].core, b.events()[i].core);
    }
}

TEST(IngestConvert, SynthesizedCaptureMetaMatchesDemandCounts)
{
    const replay::LlcTrace trace =
        convert(ingest::synthesizeChampSimFixture(512, 3));
    std::array<std::uint64_t, replay::traceCores> demands{};
    for (const hybrid::LlcEvent &e : trace.events()) {
        if (e.type == hybrid::LlcEventType::GetS ||
            e.type == hybrid::LlcEventType::GetX)
            ++demands[e.core];
    }
    for (std::size_t c = 0; c < replay::traceCores; ++c) {
        const replay::CoreMeta &meta = trace.meta().cores[c];
        EXPECT_EQ(meta.llcDemands, demands[c]) << "core " << c;
        if (demands[c] > 0) {
            EXPECT_GT(meta.instructions, 0u) << "core " << c;
            EXPECT_GT(meta.baseCpi, 0.0) << "core " << c;
        }
    }
    EXPECT_EQ(trace.meta().mixName, "champsim");
}

TEST(IngestConvert, ContentMixControlsSynthesizedCompressibility)
{
    const auto fixture = ingest::synthesizeChampSimFixture(512, 3);

    ingest::ConvertOptions hostile;
    hostile.hcrFraction = 0.0;
    hostile.lcrFraction = 0.0;
    const replay::LlcTrace incompressible = convert(fixture, hostile);
    for (const hybrid::LlcEvent &e : incompressible.events())
        EXPECT_EQ(e.ecbBytes, 64);

    ingest::ConvertOptions friendly;
    friendly.hcrFraction = 1.0;
    friendly.lcrFraction = 0.0;
    std::uint64_t compressed = 0;
    const replay::LlcTrace trace = convert(fixture, friendly);
    for (const hybrid::LlcEvent &e : trace.events())
        compressed += e.ecbBytes < 64 ? 1 : 0;
    EXPECT_GT(compressed, trace.size() / 2);
}

// --------------------------------------------------------------------
// The fuzz contract: reject-or-convert, never crash, on every mutant.
// --------------------------------------------------------------------

TEST(IngestFuzz, EveryTruncationIsExactlyRejectOrConvert)
{
    const auto fixture = ingest::synthesizeChampSimFixture(64, 1);
    std::size_t converted = 0;
    std::size_t rejected = 0;
    check::forEachTruncation(
        fixture,
        [&](const std::vector<std::uint8_t> &mutant, std::size_t len) {
            try {
                const replay::LlcTrace trace = convert(mutant);
                // A clean cut at a record boundary is a shorter valid
                // stream; anywhere else must have been rejected.
                EXPECT_EQ(len % champSimRecordBytes, 0u) << len;
                EXPECT_EQ(trace.size(), len / champSimRecordBytes);
                ++converted;
            } catch (const IoError &) {
                EXPECT_NE(len % champSimRecordBytes, 0u) << len;
                ++rejected;
            }
        });
    EXPECT_EQ(converted, 64u);
    EXPECT_EQ(rejected, 64u * (champSimRecordBytes - 1));
}

TEST(IngestFuzz, EveryByteFlipIsExactlyRejectOrConvert)
{
    const auto fixture = ingest::synthesizeChampSimFixture(64, 1);
    std::size_t converted = 0;
    std::size_t rejected = 0;
    check::forEachByteFlip(
        fixture, check::byteFlipMasks(),
        [&](const std::vector<std::uint8_t> &mutant, std::size_t pos,
            std::uint8_t mask) {
            try {
                const replay::LlcTrace trace = convert(mutant);
                // Whatever survived validation must still be a fully
                // legal trace: bounded ECBs, in-range cores.
                for (const hybrid::LlcEvent &e : trace.events()) {
                    ASSERT_GE(e.ecbBytes, 2);
                    ASSERT_LE(e.ecbBytes, 64);
                    ASSERT_LT(e.core, replay::traceCores);
                }
                ++converted;
            } catch (const IoError &) {
                ++rejected;
            }
            (void)pos;
            (void)mask;
        });
    // Both outcomes must actually occur: flips in pc/addr/padding
    // convert, flips escaping the type/cpu enums reject.
    EXPECT_GT(converted, 0u);
    EXPECT_GT(rejected, 0u);
    EXPECT_EQ(converted + rejected,
              fixture.size() * check::byteFlipMasks().size());
}

TEST(IngestFuzz, CommittedBadReproducersStayRejected)
{
    for (const char *name :
         { "/champsim_bad_type.ct.bad", "/champsim_truncated.ct.bad" }) {
        const std::string path = std::string(HLLC_TESTS_CORPUS_DIR) + name;
        EXPECT_THROW(convert(serial::readFileBytes(path)), IoError)
            << name;
    }
}

// --------------------------------------------------------------------
// The committed fixture end to end.
// --------------------------------------------------------------------

TEST(IngestFixture, CommittedFixtureConvertsVerifiesAndPassesGolden)
{
    const std::string in =
        std::string(HLLC_TESTS_CORPUS_DIR) + "/champsim_seed1.ct";
    const std::string out = "/tmp/hllc_test_ingest_fixture.hlt";
    const std::string manifest = check::manifestPathFor(out);

    const ingest::ConvertStats stats =
        ingest::convertChampSimFile(in, out, {});
    EXPECT_EQ(stats.records, 1024u);
    EXPECT_EQ(stats.events, stats.records);
    EXPECT_EQ(stats.container, ingest::ContainerKind::Raw);

    const replay::LlcTrace trace = replay::LlcTrace::load(out);
    EXPECT_EQ(trace.size(), stats.events);
    EXPECT_EQ(check::verifyManifest(out, trace), std::nullopt);

    hybrid::HybridLlcConfig config;
    config.numSets = 32;
    config.epochCycles = 20'000;
    for (const auto mode : { check::DegenerateMode::Pristine,
                             check::DegenerateMode::CompressionOff,
                             check::DegenerateMode::SramOnly }) {
        const auto diff = check::diffGolden(trace, config, mode);
        EXPECT_TRUE(diff.ok())
            << check::degenerateModeName(mode) << ": "
            << diff.divergence->description;
    }
    std::remove(out.c_str());
    std::remove(manifest.c_str());
}

TEST(IngestFixture, GzipContainerConvertsIdenticallyToRaw)
{
    const auto fixture = ingest::synthesizeChampSimFixture(256, 5);
    const std::string raw = "/tmp/hllc_test_ingest_gzip.ct";
    serial::writeFileAtomic(raw, fixture.data(), fixture.size());
    const std::string gz = raw + ".gz";
    if (std::system(("gzip -c " + raw + " > " + gz + " 2>/dev/null")
                        .c_str()) != 0) {
        std::remove(raw.c_str());
        GTEST_SKIP() << "no gzip binary available";
    }
    EXPECT_EQ(ingest::detectContainer(gz), ingest::ContainerKind::Gzip);

    const std::string out_raw = raw + ".raw.hlt";
    const std::string out_gz = raw + ".gz.hlt";
    ingest::ConvertStats stats;
    ingest::convertChampSimFile(raw, out_raw, {});
    stats = ingest::convertChampSimFile(gz, out_gz, {});
    EXPECT_EQ(stats.container, ingest::ContainerKind::Gzip);
    EXPECT_EQ(serial::readFileBytes(out_raw),
              serial::readFileBytes(out_gz));

    for (const std::string &p :
         { raw, gz, out_raw, out_gz, check::manifestPathFor(out_raw),
           check::manifestPathFor(out_gz) })
        std::remove(p.c_str());
}

TEST(IngestFixture, TruncatedContainerFileIsRejectedWithoutOutput)
{
    // The same contract as the in-memory sweep, at the file level: a
    // mid-record cut converts to a typed error and no partial .hlt.
    const auto fixture = ingest::synthesizeChampSimFixture(64, 2);
    const std::string in = "/tmp/hllc_test_ingest_trunc.ct";
    serial::writeFileAtomic(in, fixture.data(),
                            fixture.size() - champSimRecordBytes / 2);
    const std::string out = in + ".hlt";
    EXPECT_THROW(ingest::convertChampSimFile(in, out, {}), IoError);
    EXPECT_THROW(static_cast<void>(serial::readFileBytes(out)), IoError);
    std::remove(in.c_str());
}

} // namespace
