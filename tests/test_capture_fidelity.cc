/**
 * @file
 * Capture-fidelity integration test: driving the LLC live behind the
 * private stacks (the gem5-like detailed path) and replaying the
 * captured trace of the same workload must produce *identical* LLC
 * behaviour — the property that justifies the paper's
 * capture-once/replay-many methodology (HyCSim, Sec. V-A).
 */

#include <gtest/gtest.h>

#include <memory>

#include "hierarchy/hierarchy.hh"
#include "hierarchy/trace_recorder.hh"
#include "replay/replayer.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;
using hybrid::HybridLlc;
using hybrid::HybridLlcConfig;
using hybrid::PolicyKind;

constexpr std::uint32_t kSets = 64;
constexpr std::uint64_t kRefs = 25'000;
constexpr std::uint64_t kSeed = 1234;

struct LlcRig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<HybridLlc> llc;
};

LlcRig
makeLlc(PolicyKind policy)
{
    LlcRig rig;
    HybridLlcConfig config;
    config.numSets = kSets;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = policy;
    config.epochCycles = 20'000;

    const fault::NvmGeometry geom{ kSets, config.nvmWays, 64 };
    rig.endurance = std::make_unique<fault::EnduranceModel>(
        geom, fault::EnduranceParams{ 1e12, 0.0 },
        Xoshiro256StarStar(9));
    rig.map = std::make_unique<fault::FaultMap>(
        *rig.endurance,
        hybrid::InsertionPolicy::create(policy)->granularity());
    rig.llc = std::make_unique<HybridLlc>(config, rig.map.get());
    return rig;
}

class CaptureFidelity : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(CaptureFidelity, LiveAndReplayedLlcAgreeExactly)
{
    const PolicyKind policy = GetParam();
    const auto &mix = workload::tableVMixes()[0];
    const hierarchy::PrivateCacheConfig private_config{ 1024, 4,
                                                        4096, 16 };

    // Detailed path: the LLC is live behind the private stacks.
    LlcRig live = makeLlc(policy);
    {
        hierarchy::HybridLlcSink sink(live.llc.get());
        hierarchy::MixSimulation sim(mix, kSets * 16, private_config,
                                     kSeed);
        sim.run(kRefs, sink);
    }

    // Capture path: record the trace, then replay it (no warm-up so the
    // event-for-event behaviour is comparable).
    const replay::LlcTrace trace = hierarchy::captureTrace(
        mix, kSets * 16, private_config, kRefs, kSeed);
    LlcRig replayed = makeLlc(policy);
    replay::TraceReplayer(0.0).replay(trace, *replayed.llc);

    // Every counter of the two LLCs must agree exactly.
    for (const char *counter :
         { "gets", "gets_hits_sram", "gets_hits_nvm", "gets_misses",
           "getx", "getx_hits_sram", "getx_hits_nvm", "getx_misses",
           "puts_clean", "puts_dirty", "puts_present", "inserts_sram",
           "inserts_nvm", "nvm_writes", "nvm_bytes_written",
           "migrations_to_nvm", "evictions_sram", "evictions_nvm",
           "writebacks_dirty", "invalidate_on_getx" }) {
        EXPECT_EQ(live.llc->stats().counterValue(counter),
                  replayed.llc->stats().counterValue(counter))
            << counter;
    }
    EXPECT_DOUBLE_EQ(live.llc->hitRate(), replayed.llc->hitRate());

    // And the fault maps saw the same wear.
    for (std::uint32_t f = 0; f < live.map->geometry().numFrames(); ++f) {
        EXPECT_DOUBLE_EQ(live.map->pendingWrites(f),
                         replayed.map->pendingWrites(f))
            << "frame " << f;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CaptureFidelity,
    ::testing::Values(PolicyKind::Bh, PolicyKind::BhCp,
                      PolicyKind::CaRwr, PolicyKind::CpSd,
                      PolicyKind::LHybrid, PolicyKind::Tap),
    [](const auto &info) {
        return std::string(hybrid::policyName(info.param));
    });

} // namespace
