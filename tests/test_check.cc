/**
 * @file
 * Tests for the src/check self-validation subsystem: golden-model
 * agreement across the policy × degenerate-mode grid, mutation testing
 * of the checker via a deliberately buggy golden LRU, the Belady/OPT
 * bound, manifest tamper detection, differential rerun/jobs/resume
 * equivalence and ddmin shrink minimality.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "check/differential.hh"
#include "check/manifest.hh"
#include "check/oracle.hh"
#include "check/trace_fuzz.hh"
#include "common/error.hh"

namespace
{

using namespace hllc;
using check::DegenerateMode;
using hybrid::LlcEvent;
using hybrid::LlcEventType;
using hybrid::PolicyKind;

constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::Bh,     PolicyKind::BhCp,    PolicyKind::Ca,
    PolicyKind::CaRwr,  PolicyKind::CpSd,    PolicyKind::CpSdTh,
    PolicyKind::LHybrid, PolicyKind::Tap,    PolicyKind::SramOnly,
};
constexpr DegenerateMode kAllModes[] = {
    DegenerateMode::Pristine, DegenerateMode::CompressionOff,
    DegenerateMode::SramOnly,
};

hybrid::HybridLlcConfig
smallConfig(PolicyKind policy)
{
    hybrid::HybridLlcConfig config;
    config.numSets = 32;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = policy;
    config.epochCycles = 20'000; // dueling flips within the test traces
    return config;
}

LlcEvent
event(LlcEventType type, Addr block, unsigned ecb = 64)
{
    LlcEvent ev{};
    ev.type = type;
    ev.blockNum = block;
    ev.ecbBytes = static_cast<std::uint8_t>(ecb);
    return ev;
}

TEST(GoldenDiff, AgreesAcrossPoliciesAndModes)
{
    const replay::LlcTrace trace = check::generateTrace(3, 6'000, 32);
    for (PolicyKind policy : kAllPolicies) {
        for (DegenerateMode mode : kAllModes) {
            const check::GoldenDiffResult diff =
                check::diffGolden(trace, smallConfig(policy), mode);
            EXPECT_TRUE(diff.ok())
                << check::degenerateModeName(mode) << ": "
                << diff.divergence->description;
            EXPECT_EQ(diff.eventsCompared, trace.size());
        }
    }
}

TEST(GoldenDiff, InjectedLruOffByOneDiverges)
{
    // Mutation test: a golden model with a deliberate second-least-
    // recently-used victim pick must disagree with the real LLC.
    const replay::LlcTrace trace = check::generateTrace(3, 6'000, 32);
    const check::GoldenOptions buggy{ /*buggyLruOffByOne=*/true };
    const check::GoldenDiffResult diff = check::diffGolden(
        trace, smallConfig(PolicyKind::Bh), DegenerateMode::Pristine,
        buggy);
    ASSERT_FALSE(diff.ok());
    EXPECT_NE(diff.divergence->description.find("decisions"),
              std::string::npos);
}

TEST(Fuzz, InjectedBugShrinksToSmallReproducer)
{
    check::FuzzConfig config;
    config.seed = 5;
    config.budgetSeconds = 120.0;
    config.maxIterations = 10; // the bug trips on the first trace
    const check::GoldenOptions buggy{ /*buggyLruOffByOne=*/true };

    const check::FuzzReport report = check::fuzz(config, buggy);
    ASSERT_FALSE(report.ok()) << "injected off-by-one was not detected";
    EXPECT_LE(report.failure->reproducer.size(), 100u)
        << "reproducer did not shrink below 100 events";
    EXPECT_GT(report.failure->originalEvents,
              report.failure->reproducer.size());
    // The shrunk trace must still reproduce the divergence.
    EXPECT_FALSE(check::diffGolden(report.failure->reproducer,
                                   report.failure->config,
                                   report.failure->mode, buggy)
                     .ok());
}

TEST(Fuzz, CleanSimulatorSurvivesShortCampaign)
{
    check::FuzzConfig config;
    config.seed = 21;
    config.budgetSeconds = 30.0;
    config.maxIterations = 3;
    config.eventsPerTrace = 2'048;
    const check::FuzzReport report = check::fuzz(config);
    EXPECT_TRUE(report.ok())
        << report.failure->description << "\n(reproducer: "
        << report.failure->reproducer.size() << " events)";
}

TEST(Oracle, BeladyCountsSimplePatterns)
{
    // Resident after a Put; every following GetS hits until a GetX
    // invalidates the copy.
    std::vector<LlcEvent> events = {
        event(LlcEventType::PutClean, 0),
        event(LlcEventType::GetS, 0),
        event(LlcEventType::GetS, 0),
        event(LlcEventType::GetX, 0),
        event(LlcEventType::GetS, 0), // invalidated: miss
    };
    const check::OracleHits hits =
        check::beladyHits(check::makeTrace(events), 16, 4);
    EXPECT_EQ(hits.total, 3u);
    EXPECT_EQ(hits.perSet[0], 3u);
}

TEST(Oracle, BoundHoldsForEveryPolicy)
{
    const replay::LlcTrace trace = check::generateTrace(17, 6'000, 32);
    for (PolicyKind policy : kAllPolicies) {
        const auto why =
            check::checkPolicyAgainstOracle(trace, smallConfig(policy));
        EXPECT_FALSE(why.has_value()) << *why;
    }
}

TEST(Manifest, RoundTripsAndVerifies)
{
    const replay::LlcTrace trace = check::generateTrace(2, 500, 32);
    const std::string path =
        ::testing::TempDir() + "manifest_roundtrip.hlt";
    trace.save(path);

    check::TraceManifest manifest = check::computeManifest(path, trace);
    manifest.hasSeed = true;
    manifest.seed = 2;
    check::saveManifest(path, manifest);

    const auto loaded = check::loadManifest(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->events, trace.size());
    EXPECT_EQ(loaded->bytes, manifest.bytes);
    EXPECT_EQ(loaded->crc32, manifest.crc32);
    EXPECT_EQ(loaded->mix, "fuzz");
    EXPECT_TRUE(loaded->hasSeed);
    EXPECT_EQ(loaded->seed, 2u);

    EXPECT_EQ(check::verifyManifest(path, trace), std::nullopt);
}

TEST(Manifest, DetectsTamperedTrace)
{
    const replay::LlcTrace trace = check::generateTrace(2, 500, 32);
    const replay::LlcTrace other = check::generateTrace(9, 400, 32);
    const std::string path = ::testing::TempDir() + "manifest_tamper.hlt";
    trace.save(path);
    check::saveManifest(path, check::computeManifest(path, trace));

    // Swap in a different (valid) trace under the same manifest.
    other.save(path);
    const replay::LlcTrace reloaded = replay::LlcTrace::load(path);
    const auto mismatch = check::verifyManifest(path, reloaded);
    ASSERT_TRUE(mismatch.has_value());
    EXPECT_NE(mismatch->find("manifest"), std::string::npos);
}

TEST(Manifest, CrcVariesWithContentNotJustLength)
{
    // .hlt containers end with their own CRC32 word, so a CRC over the
    // whole file is the fixed residue 0x2144df1c for EVERY well-formed
    // trace — same length or not. The manifest CRC must exclude that
    // trailer or it verifies nothing; pin both properties.
    const replay::LlcTrace a = check::generateTrace(1, 500, 32);
    const replay::LlcTrace b = check::generateTrace(2, 500, 32);
    const std::string pa = ::testing::TempDir() + "manifest_crc_a.hlt";
    const std::string pb = ::testing::TempDir() + "manifest_crc_b.hlt";
    a.save(pa);
    b.save(pb);
    const check::TraceManifest ma = check::computeManifest(pa, a);
    const check::TraceManifest mb = check::computeManifest(pb, b);
    ASSERT_EQ(ma.bytes, mb.bytes) << "need same-length traces to make "
                                     "the collision case meaningful";
    EXPECT_NE(ma.crc32, mb.crc32);
    EXPECT_NE(ma.crc32, 0x2144df1cu);

    // Same-length content swap must be flagged (the byte-size check
    // cannot see it; only the CRC can).
    check::saveManifest(pa, ma);
    b.save(pa);
    const auto mismatch = check::verifyManifest(pa, b);
    ASSERT_TRUE(mismatch.has_value());
    EXPECT_NE(mismatch->find("CRC32"), std::string::npos);
}

TEST(Manifest, MissingSidecarIsTolerated)
{
    const replay::LlcTrace trace = check::generateTrace(2, 100, 32);
    const std::string path = ::testing::TempDir() + "manifest_none.hlt";
    trace.save(path);
    EXPECT_EQ(check::loadManifest(path), std::nullopt);
    EXPECT_EQ(check::verifyManifest(path, trace), std::nullopt);
}

TEST(Manifest, MalformedSidecarThrows)
{
    EXPECT_THROW(check::parseManifest("not-a-manifest\n"), IoError);
    EXPECT_THROW(
        check::parseManifest("hllc-trace-manifest-v1\nevents 10\n"),
        IoError); // bytes/crc32 missing
    EXPECT_THROW(check::parseManifest(
                     "hllc-trace-manifest-v1\nevents ten\nbytes 1\n"
                     "crc32 0x0\n"),
                 IoError);
}

TEST(Differential, RerunIsDeterministic)
{
    const replay::LlcTrace trace = check::generateTrace(4, 4'000, 32);
    for (PolicyKind policy :
         { PolicyKind::CpSd, PolicyKind::LHybrid, PolicyKind::CaRwr }) {
        const auto why = check::diffRerun(trace, smallConfig(policy));
        EXPECT_FALSE(why.has_value()) << *why;
    }
}

TEST(Differential, JobsGridMatchesSerial)
{
    const replay::LlcTrace trace = check::generateTrace(4, 4'000, 32);
    std::vector<hybrid::HybridLlcConfig> configs;
    for (PolicyKind policy : kAllPolicies)
        configs.push_back(smallConfig(policy));
    const auto why = check::diffJobs(trace, configs, 4);
    EXPECT_FALSE(why.has_value()) << *why;
}

TEST(Differential, ResumedForecastMatchesStraightThrough)
{
    const replay::LlcTrace trace = check::generateTrace(6, 8'000, 32);
    const auto why = check::diffResume(
        trace, smallConfig(PolicyKind::CpSd), ::testing::TempDir());
    EXPECT_FALSE(why.has_value()) << *why;
}

TEST(Shrink, DdminIsOneMinimal)
{
    // Predicate independent of the simulator: "at least 3 GetX events".
    // ddmin must land on exactly 3 events, all GetX.
    const replay::LlcTrace trace = check::generateTrace(8, 2'000, 32);
    const auto fails = [](const replay::LlcTrace &t) {
        std::size_t getx = 0;
        for (const LlcEvent &ev : t.events())
            getx += ev.type == LlcEventType::GetX;
        return getx >= 3;
    };
    ASSERT_TRUE(fails(trace));
    const replay::LlcTrace shrunk = check::shrinkTrace(trace, fails);
    ASSERT_EQ(shrunk.size(), 3u);
    for (const LlcEvent &ev : shrunk.events())
        EXPECT_EQ(ev.type, LlcEventType::GetX);
}

TEST(Shrink, PreservesTraceMeta)
{
    replay::LlcTrace trace = check::generateTrace(8, 300, 32);
    const auto fails = [](const replay::LlcTrace &t) {
        return t.size() >= 1;
    };
    const replay::LlcTrace shrunk = check::shrinkTrace(trace, fails);
    EXPECT_EQ(shrunk.size(), 1u);
    EXPECT_EQ(shrunk.meta().mixName, trace.meta().mixName);
}

} // namespace
