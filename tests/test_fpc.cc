/**
 * @file
 * Frequent Pattern Compression tests: word classification, hand-built
 * pattern blocks, zero-run collapsing and randomized roundtrips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "compression/fpc.hh"
#include "workload/block_synth.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

using Pattern = FpcCompressor::Pattern;

BlockData
blockOfWords(const std::vector<std::uint32_t> &words)
{
    BlockData data{};
    for (std::size_t i = 0; i < words.size() && i < 16; ++i)
        std::memcpy(data.data() + 4 * i, &words[i], 4);
    return data;
}

TEST(Fpc, WordClassification)
{
    EXPECT_EQ(FpcCompressor::classifyWord(0), Pattern::ZeroRun);
    EXPECT_EQ(FpcCompressor::classifyWord(7), Pattern::SignExt4);
    EXPECT_EQ(FpcCompressor::classifyWord(0xfffffff9u),
              Pattern::SignExt4); // -7
    EXPECT_EQ(FpcCompressor::classifyWord(100), Pattern::SignExt8);
    EXPECT_EQ(FpcCompressor::classifyWord(30000), Pattern::SignExt16);
    EXPECT_EQ(FpcCompressor::classifyWord(0x00120000u),
              Pattern::HalfwordPadded);
    EXPECT_EQ(FpcCompressor::classifyWord(0x00640032u),
              Pattern::TwoHalfwords);
    EXPECT_EQ(FpcCompressor::classifyWord(0xabababab),
              Pattern::RepeatedBytes);
    EXPECT_EQ(FpcCompressor::classifyWord(0x12345678u),
              Pattern::Uncompressed);
}

TEST(Fpc, ZeroBlockCompressesToAFewBytes)
{
    const FpcCompressor fpc;
    BlockData zeros{};
    // 16 zero words = two runs of 8: 2 x 6 bits + header.
    EXPECT_LE(fpc.ecbSize(zeros), 4u);
    EXPECT_EQ(fpc.decompress(fpc.compress(zeros)), zeros);
}

TEST(Fpc, RandomBlockFallsBackToRaw)
{
    const FpcCompressor fpc;
    Xoshiro256StarStar rng(3);
    BlockData data;
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(fpc.ecbSize(data), 64u);
    EXPECT_EQ(fpc.decompress(fpc.compress(data)), data);
}

TEST(Fpc, MixedPatternsRoundtrip)
{
    const FpcCompressor fpc;
    const BlockData data = blockOfWords({
        0, 0, 0, 5, 0xffffff80u, 30000, 0x00120000u, 0x00640032u,
        0xabababab, 0x12345678u, 0, 1, 0xdeadbeef, 0x7fff, 0, 0xff00ff00,
    });
    const auto ecb = fpc.compress(data);
    EXPECT_LT(ecb.size(), 64u);
    EXPECT_EQ(fpc.decompress(ecb), data);
}

TEST(Fpc, PayloadBitsTable)
{
    EXPECT_EQ(FpcCompressor::payloadBits(Pattern::ZeroRun), 3u);
    EXPECT_EQ(FpcCompressor::payloadBits(Pattern::SignExt4), 4u);
    EXPECT_EQ(FpcCompressor::payloadBits(Pattern::Uncompressed), 32u);
}

TEST(Fpc, NegativeValuesSurviveRoundtrip)
{
    const FpcCompressor fpc;
    const BlockData data = blockOfWords({
        static_cast<std::uint32_t>(-1), static_cast<std::uint32_t>(-8),
        static_cast<std::uint32_t>(-128),
        static_cast<std::uint32_t>(-32768),
        static_cast<std::uint32_t>(-2), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    });
    EXPECT_EQ(fpc.decompress(fpc.compress(data)), data);
}

TEST(Fpc, RandomizedRoundtripProperty)
{
    const FpcCompressor fpc;
    Xoshiro256StarStar rng(17);
    for (int trial = 0; trial < 300; ++trial) {
        BlockData data{};
        for (unsigned w = 0; w < 16; ++w) {
            // Bias towards compressible kinds to exercise all paths.
            std::uint32_t word;
            switch (rng.nextBounded(6)) {
              case 0: word = 0; break;
              case 1: word = static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(
                              rng.nextBounded(256)) - 128);
                      break;
              case 2: word = static_cast<std::uint32_t>(
                          rng.nextBounded(65536)) << 16;
                      break;
              case 3: {
                  const auto b =
                      static_cast<std::uint32_t>(rng.nextBounded(256));
                  word = b | (b << 8) | (b << 16) | (b << 24);
                  break;
              }
              default: word = static_cast<std::uint32_t>(rng.next());
            }
            std::memcpy(data.data() + 4 * w, &word, 4);
        }
        const auto ecb = fpc.compress(data);
        EXPECT_LE(ecb.size(), 64u);
        EXPECT_GE(ecb.size(), 2u);
        EXPECT_EQ(fpc.decompress(ecb), data) << "trial " << trial;
    }
}

TEST(Fpc, BdiTargetedContentAlsoRoundtrips)
{
    // FPC must roundtrip contents synthesized for BDI targets too.
    const FpcCompressor fpc;
    for (auto ce : { Ce::Zeros, Ce::Rep8, Ce::B8D1, Ce::B4D2, Ce::B2D1,
                     Ce::B8D7, Ce::Uncompressed }) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const BlockData data = workload::synthesizeBlock(ce, seed);
            EXPECT_EQ(fpc.decompress(fpc.compress(data)), data);
        }
    }
}

} // namespace
