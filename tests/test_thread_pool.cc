/**
 * @file
 * ThreadPool / parallelFor / runGrid contract tests: completion,
 * exception propagation out of submit() and parallelFor(), destruction
 * with work still queued, the jobs-resolution knobs, and the
 * determinism guarantee — jobs=1 and jobs=8 grids must be
 * byte-identical (traces, forecasts, phase replays and stats dumps).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/numfmt.hh"
#include "common/thread_pool.hh"
#include "sim/grid.hh"

namespace
{

using namespace hllc;
using hybrid::PolicyKind;

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numWorkers(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroWorkersClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.numWorkers(), 1u);
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto future = pool.submit([]() -> int {
        throw std::runtime_error("boom");
    });
    EXPECT_THROW(future.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructionDrainsQueuedWork)
{
    std::atomic<int> completed{ 0 };
    {
        // One worker, many queued tasks: most are still in the queue
        // when the destructor runs, and all must execute before join.
        ThreadPool pool(1);
        for (int i = 0; i < 64; ++i)
            pool.submit([&completed] { ++completed; });
    }
    EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPool, StopDrainsEveryAcceptedTask)
{
    // Regression (PR 8): the daemon's graceful drain submits shard work
    // right up to stop(); every task accepted before the stop must run,
    // deterministically — never "some ran, some were dropped".
    std::atomic<int> completed{ 0 };
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 128; ++i)
        futures.push_back(pool.submit([&completed] { ++completed; }));
    pool.stop();
    EXPECT_EQ(completed.load(), 128);
    for (auto &f : futures)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, SubmitAfterStopThrowsInsteadOfHanging)
{
    // Regression (PR 8): submit() after stop() used to enqueue onto a
    // pool whose workers were gone — the future never became ready and
    // the caller deadlocked. It must fail loudly instead.
    ThreadPool pool(2);
    pool.stop();
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
    // stop() is idempotent, and the pool stays rejecting.
    pool.stop();
    EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, StopIsSafeBeforeDestruction)
{
    std::atomic<int> completed{ 0 };
    {
        ThreadPool pool(1);
        for (int i = 0; i < 16; ++i)
            pool.submit([&completed] { ++completed; });
        pool.stop(); // destructor's implicit stop() must be a no-op
        EXPECT_EQ(completed.load(), 16);
    }
    EXPECT_EQ(completed.load(), 16);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    for (const unsigned jobs : { 1u, 4u }) {
        std::vector<int> counts(100, 0);
        parallelFor(jobs, counts.size(),
                    [&](std::size_t i) { ++counts[i]; });
        EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 100)
            << "jobs=" << jobs;
    }
}

TEST(ParallelFor, RethrowsLowestIndexException)
{
    for (const unsigned jobs : { 1u, 4u }) {
        try {
            parallelFor(jobs, 8, [](std::size_t i) {
                if (i % 2 == 1)
                    throw std::out_of_range(formatU64(i));
            });
            FAIL() << "expected an exception (jobs=" << jobs << ")";
        } catch (const std::out_of_range &e) {
            EXPECT_STREQ(e.what(), "1");
        }
    }
}

TEST(Grid, ResolveAndParseJobs)
{
    EXPECT_EQ(sim::resolveJobs(3), 3u);
    EXPECT_GE(sim::resolveJobs(0), 1u); // auto resolves to >= 1

    char prog[] = "bench";
    char flag[] = "--jobs";
    char value[] = "6";
    char *argv[] = { prog, flag, value };
    EXPECT_EQ(sim::parseJobsArg(3, argv), 6u);
    EXPECT_EQ(sim::parseJobsArg(1, argv), 0u); // absent -> auto
}

TEST(Grid, ChildStreamIsOrderAndThreadFree)
{
    // Same keys, same stream — independent of construction order.
    Xoshiro256StarStar a = childStream(42, 3, 5);
    Xoshiro256StarStar b = childStream(42, 5, 3);
    Xoshiro256StarStar c = childStream(42, 3, 5);
    const std::uint64_t a0 = a.next();
    EXPECT_EQ(a0, c.next());
    EXPECT_NE(a0, b.next());
    EXPECT_NE(childSeed(42, 0, 0), childSeed(43, 0, 0));
}

// --------------------------------------------------------------------
// Determinism: the tentpole guarantee. A small policy×mix grid run with
// jobs=1 and jobs=8 must produce byte-identical results end to end.
// --------------------------------------------------------------------

sim::SystemConfig
smallConfig(unsigned jobs)
{
    sim::SystemConfig config = sim::SystemConfig::tableIV(0.5);
    config.refsPerCore = 30'000;
    config.jobs = jobs;
    return config;
}

TEST(GridDeterminism, CaptureIdenticalAcrossJobCounts)
{
    const sim::Experiment serial(smallConfig(1), 2);
    const sim::Experiment parallel(smallConfig(8), 2);

    ASSERT_EQ(serial.traces().size(), parallel.traces().size());
    for (std::size_t m = 0; m < serial.traces().size(); ++m) {
        const auto &a = serial.traces()[m];
        const auto &b = parallel.traces()[m];
        ASSERT_EQ(a.size(), b.size()) << "mix " << m;
        EXPECT_EQ(a.meta().mixName, b.meta().mixName);
        for (std::size_t e = 0; e < a.size(); ++e) {
            const auto &ea = a.events()[e];
            const auto &eb = b.events()[e];
            ASSERT_TRUE(ea.blockNum == eb.blockNum &&
                        ea.type == eb.type &&
                        ea.ecbBytes == eb.ecbBytes && ea.core == eb.core)
                << "mix " << m << " event " << e;
        }
    }
}

TEST(GridDeterminism, ForecastAndPhaseGridsIdenticalAcrossJobCounts)
{
    const sim::Experiment serial(smallConfig(1), 2);
    const sim::Experiment parallel(smallConfig(8), 2);
    const auto &config = serial.config();

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
    };
    const auto s = runForecastGrid(serial, entries, {}, 1);
    const auto p = runForecastGrid(parallel, entries, {}, 8);
    ASSERT_EQ(s.size(), p.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_EQ(s[i].label, p[i].label);
        EXPECT_EQ(s[i].lifetimeMonths, p[i].lifetimeMonths);
        EXPECT_EQ(s[i].initialIpc, p[i].initialIpc);
        ASSERT_EQ(s[i].series.size(), p[i].series.size());
        for (std::size_t t = 0; t < s[i].series.size(); ++t) {
            EXPECT_EQ(s[i].series[t].capacity, p[i].series[t].capacity);
            EXPECT_EQ(s[i].series[t].meanIpc, p[i].series[t].meanIpc);
            EXPECT_EQ(s[i].series[t].time, p[i].series[t].time);
        }
    }

    // Phase grid (policy×mix cells), formatted through a stats-style
    // dump so the comparison is byte-level, as the benches print.
    std::vector<sim::PhaseCell> cells;
    for (const auto policy : { PolicyKind::Bh, PolicyKind::CpSd }) {
        for (std::size_t mix = 0; mix < 2; ++mix) {
            cells.push_back({ "cell", config.llcConfig(policy), 0.9,
                              mix });
        }
    }
    const auto sp = runPhaseGrid(serial, cells, 1);
    const auto pp = runPhaseGrid(parallel, cells, 8);
    ASSERT_EQ(sp.size(), pp.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
        std::ostringstream sa, pa;
        sa << sp[i].aggregate.meanIpc << ' ' << sp[i].aggregate.hitRate
           << ' ' << sp[i].aggregate.demandHits << ' '
           << sp[i].aggregate.nvmBytesWritten;
        pa << pp[i].aggregate.meanIpc << ' ' << pp[i].aggregate.hitRate
           << ' ' << pp[i].aggregate.demandHits << ' '
           << pp[i].aggregate.nvmBytesWritten;
        EXPECT_EQ(sa.str(), pa.str()) << "cell " << i;
    }
}

} // namespace
