/**
 * @file
 * LruState and SetAssocCache tests: recency ordering, constrained victim
 * scans, fills/evictions/invalidations and metadata plumbing.
 */

#include <gtest/gtest.h>

#include "cache/lru.hh"
#include "cache/set_assoc.hh"

namespace
{

using namespace hllc;
using namespace hllc::cache;

TEST(Lru, VictimIsLeastRecentlyTouched)
{
    LruState lru(2, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.touch(0, w);
    lru.touch(0, 1); // refresh way 1

    const auto any = [](std::uint32_t) { return true; };
    EXPECT_EQ(lru.lruWay(0, 0, 4, any), 0);
    EXPECT_EQ(lru.mruWay(0, 0, 4, any), 1);
}

TEST(Lru, UntouchedWaysWinVictimScan)
{
    LruState lru(1, 4);
    lru.touch(0, 0);
    lru.touch(0, 2);
    const auto any = [](std::uint32_t) { return true; };
    const int victim = lru.lruWay(0, 0, 4, any);
    EXPECT_TRUE(victim == 1 || victim == 3);
}

TEST(Lru, PredicateRestrictsScan)
{
    LruState lru(1, 4);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.touch(0, w);
    // Only odd ways eligible.
    const auto odd = [](std::uint32_t w) { return w % 2 == 1; };
    EXPECT_EQ(lru.lruWay(0, 0, 4, odd), 1);
    EXPECT_EQ(lru.mruWay(0, 0, 4, odd), 3);
    // Range restriction.
    const auto any = [](std::uint32_t) { return true; };
    EXPECT_EQ(lru.lruWay(0, 2, 4, any), 2);
    // No eligible way.
    const auto none = [](std::uint32_t) { return false; };
    EXPECT_EQ(lru.lruWay(0, 0, 4, none), -1);
}

TEST(Lru, SetsAreIndependent)
{
    LruState lru(2, 2);
    lru.touch(0, 0);
    lru.touch(1, 1);
    EXPECT_GT(lru.stamp(0, 0), 0u);
    EXPECT_EQ(lru.stamp(0, 1), 0u);
    EXPECT_EQ(lru.stamp(1, 0), 0u);
    EXPECT_GT(lru.stamp(1, 1), 0u);
}

TEST(SetAssoc, GeometryFromSizeAndWays)
{
    SetAssocCache cache("l1", 8 * 1024, 4);
    EXPECT_EQ(cache.numSets(), 32u);
    EXPECT_EQ(cache.numWays(), 4u);
}

TEST(SetAssoc, MissThenFillThenHit)
{
    SetAssocCache cache("c", 4 * 1024, 4);
    EXPECT_FALSE(cache.access(100, false));
    EXPECT_FALSE(cache.fill(100, false, 0).has_value());
    EXPECT_TRUE(cache.access(100, false));
    EXPECT_TRUE(cache.contains(100));
    EXPECT_EQ(cache.stats().counterValue("read_hits"), 1u);
    EXPECT_EQ(cache.stats().counterValue("read_misses"), 1u);
}

TEST(SetAssoc, FillEvictsLruWhenSetFull)
{
    SetAssocCache cache("c", 2 * 64 * 2, 2); // 2 sets x 2 ways
    // Blocks mapping to set 0: even block numbers.
    cache.fill(0, false, 7);
    cache.fill(2, true, 8);
    cache.access(0, false); // make block 0 MRU
    const auto victim = cache.fill(4, false, 9);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->blockNum, 2u);
    EXPECT_TRUE(victim->dirty);
    EXPECT_EQ(victim->meta, 8u);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(2));
}

TEST(SetAssoc, WriteAccessSetsDirty)
{
    SetAssocCache cache("c", 4 * 1024, 4);
    cache.fill(5, false, 0);
    cache.access(5, true);
    const auto dirty = cache.invalidate(5);
    ASSERT_TRUE(dirty.has_value());
    EXPECT_TRUE(*dirty);
}

TEST(SetAssoc, InvalidateAbsentReturnsNullopt)
{
    SetAssocCache cache("c", 4 * 1024, 4);
    EXPECT_FALSE(cache.invalidate(123).has_value());
}

TEST(SetAssoc, MetaRoundtrip)
{
    SetAssocCache cache("c", 4 * 1024, 4);
    cache.fill(9, false, 0x5a);
    EXPECT_EQ(*cache.meta(9), 0x5au);
    cache.setMeta(9, 0xa5);
    EXPECT_EQ(*cache.meta(9), 0xa5u);
    EXPECT_FALSE(cache.meta(10).has_value());
}

TEST(SetAssoc, InvalidWaysPreferredOverEviction)
{
    SetAssocCache cache("c", 2 * 64 * 2, 2);
    cache.fill(0, false, 0);
    cache.fill(2, false, 0);
    cache.invalidate(0);
    // The freed way must absorb the next fill without evicting block 2.
    EXPECT_FALSE(cache.fill(4, false, 0).has_value());
    EXPECT_TRUE(cache.contains(2));
}

TEST(SetAssocDeathTest, DoubleFillPanics)
{
    SetAssocCache cache("c", 4 * 1024, 4);
    cache.fill(1, false, 0);
    EXPECT_DEATH(cache.fill(1, false, 0), "double fill");
}

} // namespace
