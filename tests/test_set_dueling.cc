/**
 * @file
 * Set Dueling tests: leader-group striping, epoch accounting, the
 * max-hits winner (CP_SD) and the Th/Tw rule of Eq. (1) (CP_SD_Th).
 */

#include <gtest/gtest.h>

#include "hybrid/set_dueling.hh"

namespace
{

using namespace hllc;
using namespace hllc::hybrid;

const std::vector<unsigned> kCandidates = { 30, 44, 58, 64 };

SetDueling
makeDueling(double th = 0.0, double tw = 5.0)
{
    return SetDueling(128, kCandidates, 1000, th, tw);
}

TEST(SetDueling, LeaderGroupsStripedMod32)
{
    const SetDueling sd = makeDueling();
    EXPECT_EQ(sd.leaderGroup(0), 0);
    EXPECT_EQ(sd.leaderGroup(1), 1);
    EXPECT_EQ(sd.leaderGroup(3), 3);
    EXPECT_EQ(sd.leaderGroup(4), -1);   // follower
    EXPECT_EQ(sd.leaderGroup(31), -1);
    EXPECT_EQ(sd.leaderGroup(32), 0);   // next stripe
    EXPECT_EQ(sd.leaderGroup(33), 1);
}

TEST(SetDueling, LeadersUseOwnCandidate)
{
    const SetDueling sd = makeDueling();
    EXPECT_EQ(sd.cpthForSet(0), 30u);
    EXPECT_EQ(sd.cpthForSet(1), 44u);
    EXPECT_EQ(sd.cpthForSet(2), 58u);
    EXPECT_EQ(sd.cpthForSet(3), 64u);
    // Followers start on the largest candidate.
    EXPECT_EQ(sd.cpthForSet(5), 64u);
    EXPECT_EQ(sd.winner(), 64u);
}

TEST(SetDueling, MaxHitsWinsEpoch)
{
    SetDueling sd = makeDueling();
    // Candidate 44 (group 1) gets the most hits.
    for (int i = 0; i < 10; ++i)
        sd.recordHit(33); // set 33 -> group 1
    sd.recordHit(0);
    EXPECT_TRUE(sd.tick(1000));
    EXPECT_EQ(sd.winner(), 44u);
    EXPECT_EQ(sd.cpthForSet(5), 44u);
    EXPECT_EQ(sd.epochsCompleted(), 1u);
}

TEST(SetDueling, FollowerHitsDoNotCount)
{
    SetDueling sd = makeDueling();
    for (int i = 0; i < 100; ++i)
        sd.recordHit(5); // follower set
    sd.recordHit(0);     // one hit for candidate 30
    sd.tick(1000);
    EXPECT_EQ(sd.winner(), 30u);
}

TEST(SetDueling, NoHitsKeepsPreviousWinner)
{
    SetDueling sd = makeDueling();
    sd.recordHit(1); // candidate 44 wins epoch 1
    sd.tick(1000);
    EXPECT_EQ(sd.winner(), 44u);
    sd.tick(1000);   // empty epoch
    EXPECT_EQ(sd.winner(), 44u);
    EXPECT_EQ(sd.epochsCompleted(), 2u);
}

TEST(SetDueling, TickAccumulatesAcrossCalls)
{
    SetDueling sd = makeDueling();
    EXPECT_FALSE(sd.tick(400));
    EXPECT_FALSE(sd.tick(400));
    EXPECT_TRUE(sd.tick(400)); // crosses 1000
}

TEST(SetDueling, CountersResetEachEpoch)
{
    SetDueling sd = makeDueling();
    sd.recordHit(0);
    sd.recordNvmBytes(0, 100);
    sd.closeEpoch();
    EXPECT_EQ(sd.epochHits()[0], 0u);
    EXPECT_EQ(sd.epochBytes()[0], 0u);
}

TEST(SetDuelingTh, RuleTradesHitsForBytes)
{
    // Th = 10%, Tw = 5%: candidate 30 sacrifices 5% hits but saves
    // 50% bytes -> must win over the max-hits candidate 64.
    SetDueling sd(128, kCandidates, 1000, 10.0, 5.0);
    for (int i = 0; i < 100; ++i)
        sd.recordHit(3); // candidate 64
    for (int i = 0; i < 95; ++i)
        sd.recordHit(0); // candidate 30
    sd.recordNvmBytes(3, 1000);
    sd.recordNvmBytes(0, 500);
    sd.closeEpoch();
    EXPECT_EQ(sd.winner(), 30u);
}

TEST(SetDuelingTh, InsufficientByteSavingRejectsTrade)
{
    // Bytes saved (2%) below Tw (5%): stay with max-hits winner.
    SetDueling sd(128, kCandidates, 1000, 10.0, 5.0);
    for (int i = 0; i < 100; ++i)
        sd.recordHit(3);
    for (int i = 0; i < 95; ++i)
        sd.recordHit(0);
    sd.recordNvmBytes(3, 1000);
    sd.recordNvmBytes(0, 980);
    sd.closeEpoch();
    EXPECT_EQ(sd.winner(), 64u);
}

TEST(SetDuelingTh, TooLargeHitLossRejectsTrade)
{
    // 20% hit loss exceeds Th = 10%.
    SetDueling sd(128, kCandidates, 1000, 10.0, 5.0);
    for (int i = 0; i < 100; ++i)
        sd.recordHit(3);
    for (int i = 0; i < 80; ++i)
        sd.recordHit(0);
    sd.recordNvmBytes(3, 1000);
    sd.recordNvmBytes(0, 100);
    sd.closeEpoch();
    EXPECT_EQ(sd.winner(), 64u);
}

TEST(SetDuelingTh, SmallestQualifyingCpthWins)
{
    // Both 30 and 44 qualify; Eq. (1) picks the smallest.
    SetDueling sd(128, kCandidates, 1000, 10.0, 5.0);
    for (int i = 0; i < 100; ++i)
        sd.recordHit(3);
    for (int i = 0; i < 95; ++i) {
        sd.recordHit(0);
        sd.recordHit(1);
    }
    sd.recordNvmBytes(3, 1000);
    sd.recordNvmBytes(0, 500);
    sd.recordNvmBytes(1, 400);
    sd.closeEpoch();
    EXPECT_EQ(sd.winner(), 30u);
}

TEST(SetDueling, WinnerHistoryRecordsEpochs)
{
    SetDueling sd = makeDueling();
    sd.recordHit(1);
    sd.tick(1000);
    sd.recordHit(2);
    sd.tick(1000);
    sd.tick(1000); // no hits: not recorded
    EXPECT_EQ(sd.winnerHistory(),
              (std::vector<unsigned>{ 44, 58 }));
}

TEST(SetDueling, NonMultipleOf32SetCountKeepsGroupsEqual)
{
    // 150 = 4 * 32 + 22 sets: the 22 trailing sets used to stripe onto
    // slots 0..21, handing candidates 0..3 a fifth leader set each and
    // biasing the hit race toward small CPth values. They must all be
    // followers so every candidate keeps exactly 4 leader sets.
    const SetDueling sd(150, kCandidates, 1000, 0.0, 5.0);

    std::vector<unsigned> leaders(kCandidates.size(), 0);
    for (std::uint32_t set = 0; set < 150; ++set) {
        const int group = sd.leaderGroup(set);
        if (group >= 0)
            ++leaders[static_cast<std::size_t>(group)];
    }
    for (std::size_t c = 0; c < kCandidates.size(); ++c)
        EXPECT_EQ(leaders[c], 4u) << "candidate " << kCandidates[c];

    // The full stripes still duel; the partial stripe follows.
    EXPECT_EQ(sd.leaderGroup(96), 0);   // last full stripe
    EXPECT_EQ(sd.leaderGroup(99), 3);
    EXPECT_EQ(sd.leaderGroup(128), -1); // trailing partial stripe
    EXPECT_EQ(sd.leaderGroup(149), -1);
    EXPECT_EQ(sd.cpthForSet(149), sd.winner());
}

TEST(SetDueling, TrailingSetHitsDoNotBiasTheRace)
{
    // Hits in the partial stripe must not accumulate for any candidate:
    // set 128 would stripe onto slot 0 (candidate 30) under the buggy
    // mod-32 assignment and steal the epoch here.
    SetDueling sd(150, kCandidates, 1000, 0.0, 5.0);
    for (int i = 0; i < 100; ++i)
        sd.recordHit(128);
    sd.recordNvmBytes(131, 4096); // likewise ignored (would-be slot 3)
    sd.recordHit(1);              // one real leader hit: candidate 44
    sd.tick(1000);
    EXPECT_EQ(sd.winner(), 44u);
}

} // namespace
