/**
 * @file
 * Hamming SECDED codec tests: the (527,516) geometry the paper quotes,
 * roundtrips, exhaustive-ish single-bit correction and double-bit
 * detection.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fault/secded.hh"

namespace
{

using namespace hllc;
using namespace hllc::fault;

std::vector<std::uint8_t>
randomBits(unsigned n, Xoshiro256StarStar &rng)
{
    std::vector<std::uint8_t> bits(n);
    for (auto &b : bits)
        b = static_cast<std::uint8_t>(rng.nextBounded(2));
    return bits;
}

TEST(Secded, LlcCodeIs527_516)
{
    const SecdedCodec &codec = llcSecdedCodec();
    EXPECT_EQ(codec.dataBits(), 516u);
    EXPECT_EQ(codec.checkBits(), 10u);
    EXPECT_EQ(codec.codewordBits(), 527u);
}

TEST(Secded, CleanRoundtrip)
{
    Xoshiro256StarStar rng(5);
    const SecdedCodec codec(32);
    for (int trial = 0; trial < 50; ++trial) {
        const auto data = randomBits(32, rng);
        const auto cw = codec.encode(data);
        EXPECT_EQ(cw.size(), codec.codewordBits());
        const auto decoded = codec.decode(cw);
        EXPECT_EQ(decoded.status, SecdedStatus::Ok);
        EXPECT_EQ(decoded.data, data);
        EXPECT_EQ(decoded.correctedBit, -1);
    }
}

/** Single-bit error correction, parameterized over data widths. */
class SecdedWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SecdedWidth, EverySingleBitFlipIsCorrected)
{
    const unsigned width = GetParam();
    const SecdedCodec codec(width);
    Xoshiro256StarStar rng(width);
    const auto data = randomBits(width, rng);
    const auto cw = codec.encode(data);

    for (unsigned flip = 0; flip < codec.codewordBits(); ++flip) {
        auto corrupted = cw;
        corrupted[flip] ^= 1;
        const auto decoded = codec.decode(corrupted);
        EXPECT_EQ(decoded.status, SecdedStatus::Corrected) << flip;
        EXPECT_EQ(decoded.data, data) << flip;
        EXPECT_EQ(decoded.correctedBit, static_cast<int>(flip));
    }
}

TEST_P(SecdedWidth, DoubleBitFlipsAreDetected)
{
    const unsigned width = GetParam();
    const SecdedCodec codec(width);
    Xoshiro256StarStar rng(width * 3 + 1);
    const auto data = randomBits(width, rng);
    const auto cw = codec.encode(data);

    for (int trial = 0; trial < 100; ++trial) {
        const unsigned a =
            static_cast<unsigned>(rng.nextBounded(cw.size()));
        unsigned b;
        do {
            b = static_cast<unsigned>(rng.nextBounded(cw.size()));
        } while (b == a);
        auto corrupted = cw;
        corrupted[a] ^= 1;
        corrupted[b] ^= 1;
        const auto decoded = codec.decode(corrupted);
        EXPECT_EQ(decoded.status, SecdedStatus::Uncorrectable)
            << a << "," << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SecdedWidth,
                         ::testing::Values(8u, 32u, 64u, 516u));

TEST(Secded, CheckBitCountMatchesHammingBound)
{
    EXPECT_EQ(SecdedCodec(4).checkBits(), 3u);
    EXPECT_EQ(SecdedCodec(11).checkBits(), 4u);
    EXPECT_EQ(SecdedCodec(26).checkBits(), 5u);
    EXPECT_EQ(SecdedCodec(512).checkBits(), 10u);
}

} // namespace
