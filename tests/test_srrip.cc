/**
 * @file
 * SRRIP replacement tests: re-reference promotion, distant-future
 * insertion, aging convergence and scan resistance compared with LRU.
 */

#include <gtest/gtest.h>

#include <memory>

#include "hybrid/hybrid_llc.hh"

namespace
{

using namespace hllc;
using namespace hllc::hybrid;

constexpr std::uint32_t kSets = 32;

struct Rig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<HybridLlc> llc;

    HybridLlc *operator->() { return llc.get(); }
};

Rig
makeRig(ReplacementKind replacement, std::uint32_t sram_ways = 4,
        std::uint32_t nvm_ways = 0)
{
    Rig rig;
    HybridLlcConfig config;
    config.numSets = kSets;
    config.sramWays = sram_ways;
    config.nvmWays = nvm_ways;
    config.policy =
        nvm_ways == 0 ? PolicyKind::SramOnly : PolicyKind::Ca;
    config.replacement = replacement;

    if (nvm_ways > 0) {
        const fault::NvmGeometry geom{ kSets, nvm_ways, 64 };
        rig.endurance = std::make_unique<fault::EnduranceModel>(
            geom, fault::EnduranceParams{ 1e12, 0.0 },
            Xoshiro256StarStar(1));
        rig.map = std::make_unique<fault::FaultMap>(
            *rig.endurance, fault::DisableGranularity::Byte);
    }
    rig.llc = std::make_unique<HybridLlc>(config, rig.map.get());
    return rig;
}

Addr
blk(unsigned i)
{
    return static_cast<Addr>(i) * kSets;
}

TEST(Srrip, ReReferencedBlockSurvivesScans)
{
    // A 4-way set holding one hot block; a long stream of single-use
    // blocks must not evict it under SRRIP.
    Rig rig = makeRig(ReplacementKind::Srrip);
    rig->onPut(blk(0), false, 64);
    rig->onGetS(blk(0)); // promote to near-immediate re-reference

    for (unsigned i = 1; i <= 12; ++i) {
        rig->onPut(blk(i), false, 64);
        rig->onGetS(blk(0)); // keep re-referencing the hot block
    }
    EXPECT_TRUE(rig->contains(blk(0)));
}

TEST(Lru, SameScanEvictsUnderLruWithoutReReference)
{
    // Control: without re-references even LRU-protected blocks go.
    Rig rig = makeRig(ReplacementKind::Lru);
    rig->onPut(blk(0), false, 64);
    for (unsigned i = 1; i <= 12; ++i)
        rig->onPut(blk(i), false, 64);
    EXPECT_FALSE(rig->contains(blk(0)));
}

TEST(Srrip, NeverReferencedBlocksEvictFirst)
{
    Rig rig = makeRig(ReplacementKind::Srrip);
    rig->onPut(blk(0), false, 64);
    rig->onPut(blk(1), false, 64);
    rig->onPut(blk(2), false, 64);
    rig->onPut(blk(3), false, 64);
    rig->onGetS(blk(0)); // block 0 promoted; 1..3 still distant
    rig->onPut(blk(4), false, 64);
    // One of the unreferenced blocks was evicted, never block 0.
    EXPECT_TRUE(rig->contains(blk(0)));
    int present = 0;
    for (unsigned i = 1; i <= 3; ++i)
        present += rig->contains(blk(i));
    EXPECT_EQ(present, 2);
}

TEST(Srrip, HonoursFitConstraintsInNvm)
{
    Rig rig = makeRig(ReplacementKind::Srrip, 2, 2);
    // Degrade NVM frame (set 0, way 0) to 40 live bytes.
    for (unsigned b = 0; b < 24; ++b)
        rig.map->killByte(rig.map->geometry().frameIndex(0, 0), b);

    rig->onPut(blk(1), false, 44); // only fits frame 1
    rig->onGetS(blk(1));           // promote it hard
    rig->onPut(blk(2), false, 44); // must still evict block 1 (only fit)
    EXPECT_EQ(rig->stats().counterValue("inserts_nvm"), 2u);
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_TRUE(rig->contains(blk(2)));
}

TEST(Srrip, RandomStormKeepsInvariants)
{
    Rig rig = makeRig(ReplacementKind::Srrip, 4, 12);
    Xoshiro256StarStar rng(3);
    for (int i = 0; i < 20000; ++i) {
        const Addr block = rng.nextBounded(1024);
        switch (rng.nextBounded(3)) {
          case 0:
            rig->onGetS(block);
            break;
          case 1:
            rig->onGetX(block);
            break;
          default:
            rig->onPut(block, rng.nextBool(0.3),
                       30 + static_cast<unsigned>(rng.nextBounded(35)));
        }
    }
    EXPECT_LE(rig->hitRate(), 1.0);
    EXPECT_EQ(rig->stats().counterValue("gets"),
              rig->stats().counterValue("gets_hits_sram") +
                  rig->stats().counterValue("gets_hits_nvm") +
                  rig->stats().counterValue("gets_misses"));
}

} // namespace
