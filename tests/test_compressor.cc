/**
 * @file
 * Cross-scheme BlockCompressor tests: interface contract, factory,
 * bitstream utility, and scheme-agnostic integration with the workload
 * layer.
 */

#include <gtest/gtest.h>

#include "common/bitstream.hh"
#include "common/rng.hh"
#include "compression/compressor.hh"
#include "workload/spec_profiles.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

TEST(Bitstream, WriteReadRoundtrip)
{
    BitWriter writer;
    writer.write(0b101, 3);
    writer.write(0xdead, 16);
    writer.write(1, 1);
    writer.write(0x123456789abcdefull, 60);
    EXPECT_EQ(writer.bitCount(), 80u);
    EXPECT_EQ(writer.byteCount(), 10u);

    BitReader reader(writer.bytes());
    EXPECT_EQ(reader.read(3), 0b101u);
    EXPECT_EQ(reader.read(16), 0xdeadu);
    EXPECT_EQ(reader.read(1), 1u);
    EXPECT_EQ(reader.read(60), 0x123456789abcdefull);
}

TEST(Bitstream, RandomizedChunks)
{
    Xoshiro256StarStar rng(9);
    for (int trial = 0; trial < 50; ++trial) {
        BitWriter writer;
        std::vector<std::pair<std::uint64_t, unsigned>> chunks;
        for (int c = 0; c < 40; ++c) {
            const unsigned bits =
                1 + static_cast<unsigned>(rng.nextBounded(64));
            const std::uint64_t value =
                bits == 64 ? rng.next()
                           : rng.next() & ((1ull << bits) - 1);
            chunks.emplace_back(value, bits);
            writer.write(value, bits);
        }
        BitReader reader(writer.bytes());
        for (const auto &[value, bits] : chunks)
            EXPECT_EQ(reader.read(bits), value);
    }
}

class CompressorContract : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(CompressorContract, RoundtripsWorkloadContents)
{
    const auto compressor = BlockCompressor::create(GetParam());
    ASSERT_NE(compressor, nullptr);
    EXPECT_EQ(compressor->scheme(), GetParam());

    workload::AppModel app(workload::profileByName("dealII06"), 0, 2048,
                           Xoshiro256StarStar(3));
    for (Addr block = 0; block < 300; ++block) {
        const BlockData data = app.contentOf(block, 0);
        const unsigned size = compressor->ecbSize(data);
        EXPECT_GE(size, 2u);
        EXPECT_LE(size, 64u);
        const auto ecb = compressor->compress(data);
        EXPECT_EQ(ecb.size(), size);
        EXPECT_EQ(compressor->decompress(ecb), data);
    }
}

TEST_P(CompressorContract, ZeroBlockIsHighlyCompressible)
{
    const auto compressor = BlockCompressor::create(GetParam());
    BlockData zeros{};
    EXPECT_LE(compressor->ecbSize(zeros), 8u);
}

TEST_P(CompressorContract, DecompressionLatencyDeclared)
{
    const auto compressor = BlockCompressor::create(GetParam());
    EXPECT_GE(compressor->decompressionCycles(), 1u);
    EXPECT_LE(compressor->decompressionCycles(), 16u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CompressorContract,
                         ::testing::Values(Scheme::Bdi, Scheme::Fpc,
                                           Scheme::CPack),
                         [](const auto &info) {
                             std::string n(schemeName(info.param));
                             n.erase(std::remove(n.begin(), n.end(), '-'),
                                     n.end());
                             return n;
                         });

TEST(CompressorIntegration, AppModelUsesInjectedScheme)
{
    const auto &profile = workload::profileByName("zeusmp06");
    std::shared_ptr<const BlockCompressor> fpc =
        BlockCompressor::create(Scheme::Fpc);
    workload::AppModel bdi_app(profile, 0, 2048,
                               Xoshiro256StarStar(5));
    workload::AppModel fpc_app(profile, 0, 2048,
                               Xoshiro256StarStar(5), fpc);

    EXPECT_EQ(bdi_app.compressor().scheme(), Scheme::Bdi);
    EXPECT_EQ(fpc_app.compressor().scheme(), Scheme::Fpc);

    // Same contents, scheme-specific sizes; both must be in range and
    // differ somewhere across a sample of blocks.
    bool differed = false;
    for (Addr block = 0; block < 200; ++block) {
        const unsigned a = bdi_app.ecbSizeOf(block);
        const unsigned b = fpc_app.ecbSizeOf(block);
        EXPECT_GE(a, 2u);
        EXPECT_LE(a, 64u);
        EXPECT_GE(b, 2u);
        EXPECT_LE(b, 64u);
        differed = differed || a != b;
    }
    EXPECT_TRUE(differed);
}

TEST(CompressorIntegration, SchemeNames)
{
    EXPECT_EQ(schemeName(Scheme::Bdi), "BDI");
    EXPECT_EQ(schemeName(Scheme::Fpc), "FPC");
    EXPECT_EQ(schemeName(Scheme::CPack), "C-Pack");
}

} // namespace
