/**
 * @file
 * Compressor round-trip tests through the src/check reference
 * decompressor: boundary payloads (all-zero, all-0xFF, per-encoding
 * maximum deltas, deltas one past the representable bound, segments one
 * byte short of a boundary) and randomized sweeps, for BDI against the
 * independent reference decoder and for FPC/C-Pack against their own
 * inverses plus the size-accounting contract.
 */

#include <gtest/gtest.h>

#include "check/golden_compress.hh"
#include "common/rng.hh"
#include "compression/bdi.hh"
#include "compression/compressor.hh"

namespace
{

using namespace hllc;
using compression::BlockCompressor;
using compression::Scheme;

TEST(RoundTrip, BoundaryBlocksThroughBdiReference)
{
    for (const check::NamedBlock &nb : check::boundaryBlocks()) {
        const auto why = check::verifyBdiBlock(nb.data);
        EXPECT_FALSE(why.has_value()) << nb.name << ": " << *why;
    }
}

TEST(RoundTrip, BoundaryBlocksThroughFpcAndCpack)
{
    const auto fpc = BlockCompressor::create(Scheme::Fpc);
    const auto cpack = BlockCompressor::create(Scheme::CPack);
    for (const check::NamedBlock &nb : check::boundaryBlocks()) {
        const auto why_fpc = check::verifyCompressorBlock(*fpc, nb.data);
        EXPECT_FALSE(why_fpc.has_value()) << nb.name << ": " << *why_fpc;
        const auto why_cpack =
            check::verifyCompressorBlock(*cpack, nb.data);
        EXPECT_FALSE(why_cpack.has_value())
            << nb.name << ": " << *why_cpack;
    }
}

TEST(RoundTrip, BoundaryBlocksCoverTheExpectedCases)
{
    const std::vector<check::NamedBlock> blocks = check::boundaryBlocks();
    const auto has = [&](const std::string &name) {
        for (const check::NamedBlock &nb : blocks) {
            if (nb.name == name)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(has("all-zero"));
    EXPECT_TRUE(has("all-0xff"));
    EXPECT_TRUE(has("B8D1-max-delta"));
    EXPECT_TRUE(has("B8D1-delta-overflow"));
    EXPECT_TRUE(has("last-byte-short"));
    EXPECT_GE(blocks.size(), 20u);
}

TEST(RoundTrip, RandomBlocksSweep)
{
    const auto fpc = BlockCompressor::create(Scheme::Fpc);
    const auto cpack = BlockCompressor::create(Scheme::CPack);
    Xoshiro256StarStar rng(123);
    for (int i = 0; i < 500; ++i) {
        BlockData data{};
        if (rng.nextBool(0.5)) {
            for (std::uint8_t &b : data)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
        } else {
            // Structured base + small deltas (the BDI sweet spot).
            const std::uint64_t base = rng.next();
            const unsigned k = 1u << (1 + rng.nextBounded(3));
            const unsigned spread = 1 + rng.nextBounded(16);
            for (std::size_t v = 0; v < blockBytes / k; ++v) {
                const std::uint64_t value =
                    base + rng.nextBounded(spread) - spread / 2;
                for (unsigned b = 0; b < k; ++b) {
                    data[v * k + b] =
                        static_cast<std::uint8_t>(value >> (8 * b));
                }
            }
        }
        const auto why = check::verifyBdiBlock(data);
        ASSERT_FALSE(why.has_value()) << "block " << i << ": " << *why;
        const auto why_fpc = check::verifyCompressorBlock(*fpc, data);
        ASSERT_FALSE(why_fpc.has_value())
            << "block " << i << ": " << *why_fpc;
        const auto why_cpack = check::verifyCompressorBlock(*cpack, data);
        ASSERT_FALSE(why_cpack.has_value())
            << "block " << i << ": " << *why_cpack;
    }
}

TEST(ReferenceDecoder, RejectsMalformedImages)
{
    std::string why;
    // Wrong payload size for the encoding.
    const std::vector<std::uint8_t> short_image = {
        static_cast<std::uint8_t>(compression::Ce::Zeros)
    };
    EXPECT_EQ(check::referenceBdiDecode(compression::Ce::B8D1,
                                        short_image, &why),
              std::nullopt);
    EXPECT_FALSE(why.empty());

    // Header byte names a different encoding than claimed.
    std::vector<std::uint8_t> mislabeled(
        compression::ceInfo(compression::Ce::Zeros).ecbBytes, 0);
    mislabeled[0] = static_cast<std::uint8_t>(compression::Ce::Rep8);
    EXPECT_EQ(check::referenceBdiDecode(compression::Ce::Zeros,
                                        mislabeled, &why),
              std::nullopt);
}

TEST(ReferenceDecoder, DecodesZerosAndRep8ByHand)
{
    // Hand-built images, not produced by the encoder under test.
    const std::vector<std::uint8_t> zeros = {
        static_cast<std::uint8_t>(compression::Ce::Zeros), 0
    };
    const auto z =
        check::referenceBdiDecode(compression::Ce::Zeros, zeros);
    ASSERT_TRUE(z.has_value());
    for (std::uint8_t b : *z)
        EXPECT_EQ(b, 0);

    std::vector<std::uint8_t> rep8 = {
        static_cast<std::uint8_t>(compression::Ce::Rep8),
        0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88
    };
    const auto r = check::referenceBdiDecode(compression::Ce::Rep8, rep8);
    ASSERT_TRUE(r.has_value());
    for (std::size_t i = 0; i < blockBytes; ++i)
        EXPECT_EQ((*r)[i], rep8[1 + i % 8]) << "byte " << i;
}

} // namespace
