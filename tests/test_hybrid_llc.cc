/**
 * @file
 * HybridLlc behavioural tests: the non-inclusive protocol edge
 * (GetS/GetX/Put, invalidate-on-GetX-hit), part steering, Fit-LRU over
 * faulty frames, SRAM-eviction migration, LHybrid replacement, global
 * (Fit-)LRU baselines, wear recording and fault-map revalidation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "compression/encoding.hh"
#include "hybrid/hybrid_llc.hh"

namespace
{

using namespace hllc;
using namespace hllc::hybrid;
using fault::DisableGranularity;
using fault::EnduranceModel;
using fault::FaultMap;
using fault::NvmGeometry;

constexpr std::uint32_t kSets = 32;

/** Bundle of LLC + its fault fabric for one test. */
struct Rig
{
    std::unique_ptr<EnduranceModel> endurance;
    std::unique_ptr<FaultMap> map;
    std::unique_ptr<HybridLlc> llc;

    HybridLlc *operator->() { return llc.get(); }
    HybridLlc &operator*() { return *llc; }
};

Rig
makeRig(PolicyKind policy, std::uint32_t sram_ways = 2,
        std::uint32_t nvm_ways = 2, PolicyParams params = {})
{
    Rig rig;
    HybridLlcConfig config;
    config.numSets = kSets;
    config.sramWays = sram_ways;
    config.nvmWays = nvm_ways;
    config.policy = policy;
    config.params = params;
    config.epochCycles = 1u << 20;

    if (nvm_ways > 0) {
        const NvmGeometry geom{ kSets, nvm_ways, 64 };
        rig.endurance = std::make_unique<EnduranceModel>(
            geom, fault::EnduranceParams{ 1e12, 0.0 },
            Xoshiro256StarStar(1));
        rig.map = std::make_unique<FaultMap>(
            *rig.endurance,
            InsertionPolicy::create(policy, params)->granularity());
    }
    rig.llc = std::make_unique<HybridLlc>(config, rig.map.get());
    return rig;
}

/** Block number landing in set 0 with a unique tag. */
Addr
blk(unsigned i)
{
    return static_cast<Addr>(i) * kSets;
}

TEST(HybridLlc, MissFillHitCycle)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    EXPECT_EQ(rig->onGetS(blk(1)), AccessOutcome::Miss);
    rig->onPut(blk(1), false, 30);
    EXPECT_TRUE(rig->contains(blk(1)));
    EXPECT_NE(rig->onGetS(blk(1)), AccessOutcome::Miss);
}

TEST(HybridLlc, GetXHitInvalidates)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    EXPECT_NE(rig->onGetX(blk(1)), AccessOutcome::Miss);
    // Invalidate-on-hit: the copy is gone.
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_EQ(rig->stats().counterValue("invalidate_on_getx"), 1u);
}

TEST(HybridLlc, CleanPutOfResidentBlockWritesNothing)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    const auto bytes = rig->nvmBytesWritten();
    rig->onPut(blk(1), false, 30);
    EXPECT_EQ(rig->nvmBytesWritten(), bytes);
    EXPECT_EQ(rig->stats().counterValue("puts_present"), 1u);
}

TEST(HybridLlc, CaSteersBySize)
{
    Rig rig = makeRig(PolicyKind::Ca); // fixedCpth 58
    rig->onPut(blk(1), false, 30);
    rig->onPut(blk(2), false, 64);
    EXPECT_EQ(rig->partOf(blk(1)), Part::Nvm);
    EXPECT_EQ(rig->partOf(blk(2)), Part::Sram);
}

TEST(HybridLlc, CompressedSizeIsWhatNvmWears)
{
    Rig rig = makeRig(PolicyKind::Ca);
    rig->onPut(blk(1), false, 30);
    EXPECT_EQ(rig->nvmBytesWritten(), 30u);
    // The fault map saw the same 30 pending bytes.
    const auto frames = rig.map->geometry().numFrames();
    double pending = 0.0;
    for (std::uint32_t f = 0; f < frames; ++f)
        pending += rig.map->pendingWrites(f);
    EXPECT_DOUBLE_EQ(pending, 30.0);
}

TEST(HybridLlc, UncompressedPoliciesWearFullFrames)
{
    Rig rig = makeRig(PolicyKind::Bh);
    rig->onPut(blk(1), false, 30); // compressible, but BH stores raw
    std::uint64_t nvm_bytes = rig->nvmBytesWritten();
    if (rig->partOf(blk(1)) == Part::Nvm)
        EXPECT_EQ(nvm_bytes, 64u);
    else
        EXPECT_EQ(nvm_bytes, 0u);
}

TEST(HybridLlc, ReadReuseClassification)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    rig->onGetS(blk(1)); // clean hit -> read reuse
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::Read);
}

TEST(HybridLlc, WriteReuseClassification)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    rig->onGetX(blk(1)); // write-permission hit -> write reuse
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::Write);
    // The dirty block comes back: write-reused blocks go to SRAM even
    // when highly compressed (paper Table II).
    rig->onPut(blk(1), true, 2);
    EXPECT_EQ(rig->partOf(blk(1)), Part::Sram);
}

TEST(HybridLlc, DirtyHitAlsoMeansWriteReuse)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), true, 30); // dirty insert (small -> NVM)
    rig->onGetS(blk(1));          // hit on a dirty copy
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::Write);
}

TEST(HybridLlc, MissResetsReuseHistory)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    rig->onGetS(blk(1));
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::Read);
    rig->onGetX(blk(1)); // invalidates
    rig->onGetS(blk(1)); // miss: refetched from memory
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::None);
}

TEST(HybridLlc, ReadReuseGoesToNvmEvenWhenBig)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 64); // big -> SRAM
    EXPECT_EQ(rig->partOf(blk(1)), Part::Sram);
    rig->onGetS(blk(1)); // read reuse
    // Evict it from SRAM by filling the SRAM ways; the read-reused
    // victim must migrate to NVM (paper Sec. IV-B).
    rig->onPut(blk(2), false, 64);
    rig->onPut(blk(3), false, 64);
    EXPECT_EQ(rig->partOf(blk(1)), Part::Nvm);
    EXPECT_EQ(rig->stats().counterValue("migrations_to_nvm"), 1u);
}

TEST(HybridLlc, FitLruSkipsTooSmallFrames)
{
    Rig rig = makeRig(PolicyKind::Ca);
    // Degrade NVM frame (set 0, way 0): only 40 live bytes left.
    for (unsigned b = 0; b < 24; ++b)
        rig.map->killByte(rig.map->geometry().frameIndex(0, 0), b);
    // A 44-byte block fits only frame 1; a 30-byte block fits both.
    rig->onPut(blk(1), false, 44);
    rig->onPut(blk(2), false, 44);
    // Only one NVM frame can hold 44 bytes: second 44B block must not
    // evict the first from frame 1 into frame 0.
    EXPECT_EQ(rig->stats().counterValue("inserts_nvm"), 2u);
    EXPECT_EQ(rig->stats().counterValue("evictions_nvm"), 1u);
}

TEST(HybridLlc, NvmFallbackToSramWhenNothingFits)
{
    Rig rig = makeRig(PolicyKind::Ca);
    // Both NVM frames of set 0 down to 20 live bytes.
    for (unsigned w = 0; w < 2; ++w)
        for (unsigned b = 0; b < 44; ++b)
            rig.map->killByte(rig.map->geometry().frameIndex(0, w), b);
    rig->onPut(blk(1), false, 30); // small, but does not fit NVM
    EXPECT_EQ(rig->partOf(blk(1)), Part::Sram);
    EXPECT_EQ(rig->stats().counterValue("insert_nvm_fallback_sram"), 1u);
    // A tiny block still lands in NVM.
    rig->onPut(blk(2), false, 9);
    EXPECT_EQ(rig->partOf(blk(2)), Part::Nvm);
}

TEST(HybridLlc, BhGlobalLruSpansBothParts)
{
    Rig rig = makeRig(PolicyKind::Bh);
    // 4 ways total in set 0; fill them all.
    for (unsigned i = 1; i <= 4; ++i)
        rig->onPut(blk(i), false, 64);
    EXPECT_EQ(rig->stats().counterValue("inserts_sram") +
                  rig->stats().counterValue("inserts_nvm"), 4u);
    // Fifth insert evicts the global LRU (block 1), wherever it lives.
    rig->onPut(blk(5), false, 64);
    EXPECT_FALSE(rig->contains(blk(1)));
}

TEST(HybridLlc, BhSkipsDeadFrames)
{
    Rig rig = makeRig(PolicyKind::Bh);
    // Frame-disabling: kill both NVM frames of set 0.
    rig.map->killFrame(rig.map->geometry().frameIndex(0, 0));
    rig.map->killFrame(rig.map->geometry().frameIndex(0, 1));
    for (unsigned i = 1; i <= 4; ++i)
        rig->onPut(blk(i), false, 64);
    // Everything must have gone to the two SRAM ways.
    EXPECT_EQ(rig->stats().counterValue("inserts_nvm"), 0u);
    EXPECT_EQ(rig->stats().counterValue("inserts_sram"), 4u);
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_FALSE(rig->contains(blk(2)));
}

TEST(HybridLlc, LHybridMigratesMruLoopBlock)
{
    Rig rig = makeRig(PolicyKind::LHybrid);
    // Two clean blocks fill SRAM; one becomes a loop-block via a hit.
    rig->onPut(blk(1), false, 64);
    rig->onPut(blk(2), false, 64);
    rig->onGetS(blk(2)); // block 2 is now a loop-block (LB)
    EXPECT_EQ(rig->partOf(blk(2)), Part::Sram);
    // SRAM is full; inserting an NLB must migrate the MRU LB to NVM.
    rig->onPut(blk(3), false, 64);
    EXPECT_EQ(rig->partOf(blk(2)), Part::Nvm);
    EXPECT_TRUE(rig->contains(blk(3)));
    EXPECT_EQ(rig->stats().counterValue("migrations_to_nvm"), 1u);
}

TEST(HybridLlc, LHybridEvictsLruWhenNoLoopBlocks)
{
    Rig rig = makeRig(PolicyKind::LHybrid);
    rig->onPut(blk(1), false, 64);
    rig->onPut(blk(2), false, 64);
    rig->onPut(blk(3), false, 64); // no LBs: LRU (block 1) evicted
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_EQ(rig->stats().counterValue("inserts_nvm"), 0u);
}

TEST(HybridLlc, DirtyEvictionWritesBack)
{
    Rig rig = makeRig(PolicyKind::LHybrid);
    rig->onPut(blk(1), true, 64);
    rig->onPut(blk(2), true, 64);
    rig->onPut(blk(3), true, 64); // evicts dirty block 1
    EXPECT_EQ(rig->stats().counterValue("writebacks_dirty"), 1u);
}

TEST(HybridLlc, InPlaceDirtyUpdateRewrites)
{
    Rig rig = makeRig(PolicyKind::Ca);
    rig->onPut(blk(1), false, 30);
    EXPECT_EQ(rig->partOf(blk(1)), Part::Nvm);
    const auto bytes_before = rig->nvmBytesWritten();
    // Dirty Put over the (stale) resident copy: in-place rewrite.
    rig->onPut(blk(1), true, 24);
    EXPECT_EQ(rig->stats().counterValue("inplace_updates"), 1u);
    EXPECT_EQ(rig->nvmBytesWritten(), bytes_before + 24);
}

TEST(HybridLlc, RevalidateDropsBlocksThatNoLongerFit)
{
    Rig rig = makeRig(PolicyKind::Ca);
    rig->onPut(blk(1), false, 44);
    ASSERT_EQ(rig->partOf(blk(1)), Part::Nvm);
    // Age the frame below 44 live bytes.
    const auto frames = rig.map->geometry().numFrames();
    for (std::uint32_t f = 0; f < frames; ++f)
        for (unsigned b = 0; b < 30; ++b)
            rig.map->killByte(f, b);
    rig->revalidateAgainstFaultMap();
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_EQ(rig->stats().counterValue("aged_out"), 1u);
}

TEST(HybridLlc, ResetClearsContentsAndTracker)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onPut(blk(1), false, 30);
    rig->onGetS(blk(1));
    rig->reset();
    EXPECT_FALSE(rig->contains(blk(1)));
    EXPECT_EQ(rig->tracker().classOf(blk(1)), ReuseClass::None);
    EXPECT_EQ(rig->tracker().size(), 0u);
}

TEST(HybridLlc, SramOnlyNeverTouchesNvm)
{
    Rig rig = makeRig(PolicyKind::SramOnly, 4, 0);
    for (unsigned i = 1; i <= 8; ++i) {
        rig->onPut(blk(i), false, 30);
        rig->onGetS(blk(i));
    }
    EXPECT_EQ(rig->nvmBytesWritten(), 0u);
    EXPECT_EQ(rig->stats().counterValue("inserts_nvm"), 0u);
}

TEST(HybridLlc, DuelingEnabledOnlyForCpSd)
{
    EXPECT_NE(makeRig(PolicyKind::CpSd)->dueling(), nullptr);
    EXPECT_EQ(makeRig(PolicyKind::Ca)->dueling(), nullptr);
    EXPECT_EQ(makeRig(PolicyKind::LHybrid)->dueling(), nullptr);
}

TEST(HybridLlc, CpSdLeaderSetsUseTheirCandidate)
{
    Rig rig = makeRig(PolicyKind::CpSd);
    const auto &candidates = hllc::compression::cpthCandidates();
    for (std::size_t c = 0; c < candidates.size(); ++c)
        EXPECT_EQ(rig->cpthForSet(static_cast<std::uint32_t>(c)),
                  candidates[c]);
    // Follower sets track the winner.
    EXPECT_EQ(rig->cpthForSet(20), rig->dueling()->winner());
}

TEST(HybridLlc, HandleDispatchesAndTicksEpochs)
{
    Rig rig = makeRig(PolicyKind::CpSd);
    LlcEvent ev{ blk(1), LlcEventType::GetS, 64, 0 };
    EXPECT_EQ(rig->handle(ev), AccessOutcome::Miss);
    ev.type = LlcEventType::PutClean;
    ev.ecbBytes = 30;
    rig->handle(ev);
    ev.type = LlcEventType::GetS;
    EXPECT_NE(rig->handle(ev), AccessOutcome::Miss);
    // Epoch clock advanced 3 * cyclesPerEvent.
    EXPECT_EQ(rig->demandAccesses(), 2u);
}

TEST(HybridLlc, HitRateArithmetic)
{
    Rig rig = makeRig(PolicyKind::CaRwr);
    rig->onGetS(blk(1));           // miss
    rig->onPut(blk(1), false, 30);
    rig->onGetS(blk(1));           // hit
    rig->onGetS(blk(2));           // miss
    EXPECT_EQ(rig->demandAccesses(), 3u);
    EXPECT_EQ(rig->demandHits(), 1u);
    EXPECT_NEAR(rig->hitRate(), 1.0 / 3.0, 1e-12);
}

} // namespace
