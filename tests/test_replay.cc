/**
 * @file
 * Trace replay tests: policy-independence of the captured stream,
 * warm-up handling, per-core outcome attribution and replay determinism.
 */

#include <gtest/gtest.h>

#include "hierarchy/hierarchy.hh"
#include "replay/replayer.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;
using namespace hllc::replay;
using hybrid::HybridLlc;
using hybrid::HybridLlcConfig;
using hybrid::PolicyKind;

LlcTrace
smallTrace(std::size_t mix_index = 0)
{
    return hierarchy::captureTrace(
        workload::tableVMixes()[mix_index], 512,
        hierarchy::PrivateCacheConfig{ 1024, 4, 4096, 16 }, 4000, 21);
}

struct LlcRig
{
    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    std::unique_ptr<HybridLlc> llc;
};

LlcRig
makeLlc(PolicyKind policy)
{
    LlcRig rig;
    HybridLlcConfig config;
    config.numSets = 32;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = policy;
    config.epochCycles = 10'000;

    const fault::NvmGeometry geom{ config.numSets, config.nvmWays, 64 };
    rig.endurance = std::make_unique<fault::EnduranceModel>(
        geom, fault::EnduranceParams{ 1e12, 0.0 },
        Xoshiro256StarStar(5));
    rig.map = std::make_unique<fault::FaultMap>(
        *rig.endurance,
        hybrid::InsertionPolicy::create(policy)->granularity());
    rig.llc = std::make_unique<HybridLlc>(config, rig.map.get());
    return rig;
}

TEST(Replay, DeterministicResults)
{
    const LlcTrace trace = smallTrace();
    TraceReplayer replayer(0.2);

    LlcRig a = makeLlc(PolicyKind::CpSd);
    LlcRig b = makeLlc(PolicyKind::CpSd);
    const ReplayResult ra = replayer.replay(trace, *a.llc);
    const ReplayResult rb = replayer.replay(trace, *b.llc);
    EXPECT_EQ(ra.demandHits, rb.demandHits);
    EXPECT_EQ(ra.nvmBytesWritten, rb.nvmBytesWritten);
    for (std::size_t c = 0; c < traceCores; ++c) {
        EXPECT_EQ(ra.cores[c].llcHitsSram, rb.cores[c].llcHitsSram);
        EXPECT_EQ(ra.cores[c].llcMisses, rb.cores[c].llcMisses);
    }
}

TEST(Replay, OutcomesPartitionDemands)
{
    const LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc(PolicyKind::CaRwr);
    const ReplayResult res = TraceReplayer(0.2).replay(trace, *rig.llc);

    std::uint64_t outcomes = 0;
    for (const auto &core : res.cores) {
        outcomes += core.llcHitsSram + core.llcHitsNvm + core.llcMisses;
    }
    EXPECT_EQ(outcomes, res.demandAccesses);
    EXPECT_LE(res.demandHits, res.demandAccesses);
    EXPECT_GT(res.demandAccesses, 0u);
}

TEST(Replay, WarmupExcludedFromStats)
{
    const LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc(PolicyKind::Bh);
    const ReplayResult with_warmup =
        TraceReplayer(0.5).replay(trace, *rig.llc);
    const ReplayResult without =
        TraceReplayer(0.0).replay(trace, *rig.llc);
    EXPECT_LT(with_warmup.measuredEvents, without.measuredEvents);
    // Warm-up keeps contents: the measured window must not look colder
    // than the full-trace replay.
    EXPECT_GT(with_warmup.measuredEvents, 0u);
}

TEST(Replay, WarmedCacheHitsMore)
{
    // Replaying the same trace twice without reset would be cheating;
    // instead compare hit rate with 0% vs 40% warm-up: the warmed
    // window must show an equal-or-better hit rate (cold misses fall in
    // the warm-up).
    const LlcTrace trace = smallTrace();
    LlcRig a = makeLlc(PolicyKind::Bh);
    LlcRig b = makeLlc(PolicyKind::Bh);
    const double cold = TraceReplayer(0.0).replay(trace, *a.llc).hitRate;
    const double warm = TraceReplayer(0.4).replay(trace, *b.llc).hitRate;
    EXPECT_GE(warm, cold - 0.02);
}

TEST(Replay, WearRecordedInFaultMap)
{
    const LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc(PolicyKind::BhCp);
    TraceReplayer(0.2).replay(trace, *rig.llc);
    double pending = 0.0;
    for (std::uint32_t f = 0; f < rig.map->geometry().numFrames(); ++f)
        pending += rig.map->pendingWrites(f);
    EXPECT_GT(pending, 0.0);
}

TEST(Replay, TraceIsPolicyIndependentButOutcomesDiffer)
{
    const LlcTrace trace = smallTrace();
    LlcRig bh = makeLlc(PolicyKind::Bh);
    LlcRig lh = makeLlc(PolicyKind::LHybrid);
    TraceReplayer replayer(0.2);
    const ReplayResult rb = replayer.replay(trace, *bh.llc);
    const ReplayResult rl = replayer.replay(trace, *lh.llc);
    // Same demand stream...
    EXPECT_EQ(rb.demandAccesses, rl.demandAccesses);
    // ...but the conservative policy hits less and writes less NVM.
    EXPECT_GT(rb.demandHits, rl.demandHits);
    EXPECT_GT(rb.nvmBytesWritten, rl.nvmBytesWritten);
}

TEST(Replay, ResetsLlcBetweenCalls)
{
    const LlcTrace trace = smallTrace();
    LlcRig rig = makeLlc(PolicyKind::Bh);
    TraceReplayer replayer(0.2);
    const ReplayResult r1 = replayer.replay(trace, *rig.llc);
    const ReplayResult r2 = replayer.replay(trace, *rig.llc);
    EXPECT_EQ(r1.demandHits, r2.demandHits);
    EXPECT_EQ(r1.nvmBytesWritten, r2.nvmBytesWritten);
}

} // namespace
