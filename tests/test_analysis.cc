/**
 * @file
 * Semantic-analysis tests: per-engine mutation corpora (each bad
 * snippet must yield exactly ONE finding at the right file and line),
 * the clean counterparts, suppression/baseline semantics for the five
 * semantic rules, the incremental cache, the FileIndex serialization
 * round-trip and the SARIF report shape.
 *
 * Every corpus snippet lives in a C++ string literal so the linter —
 * which also scans tests/ — sees them as string tokens and stays quiet
 * about this file itself.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <vector>
#include <unistd.h>

#include "analysis/analysis.hh"
#include "analysis/engines.hh"
#include "analysis/index.hh"
#include "common/error.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"
#include "lint/lint.hh"

namespace
{

namespace fs = std::filesystem;
using namespace hllc;

// --------------------------------------------------------------------
// Helpers.
// --------------------------------------------------------------------

class TempTree
{
  public:
    TempTree()
        : root_(fs::temp_directory_path() /
                ("hllc_test_analysis_" + formatI64(::getpid())))
    {
        fs::remove_all(root_);
    }
    ~TempTree() { fs::remove_all(root_); }

    void
    add(const std::string &rel, const std::string &content)
    {
        const fs::path path = root_ / rel;
        fs::create_directories(path.parent_path());
        serial::writeFileAtomic(path.string(), content.data(),
                                content.size());
    }

    std::string rootStr() const { return root_.string(); }

  private:
    fs::path root_;
};

/** Options with every rule disabled except @p rule. */
lint::Options
only(const std::string &rule)
{
    lint::Options options;
    for (const std::string &name : lint::allRules()) {
        if (name != rule)
            options.disabledRules.push_back(name);
    }
    return options;
}

lint::RunResult
runRule(const TempTree &tree, const std::string &rule,
        analysis::RunStats *stats = nullptr,
        const std::string &cache = "", const std::string &baseline = "")
{
    analysis::RunOptions options;
    options.rules = only(rule);
    options.paths = { "src" };
    options.cachePath = cache;
    options.baselinePath = baseline;
    return analysis::analyzeTree(tree.rootStr(), options, stats);
}

/** The catalog fixture: allFailpoints() with "cache.io" (+ extras). */
void
addCatalog(TempTree &tree, const std::string &extra_line = "")
{
    tree.add("src/common/failpoint.cc",
             "const char *allFailpoints() {\n"
             "    static const char *names[] = {\n"
             "        \"cache.io\",\n" +
             extra_line +
             "    };\n"
             "    return names[0];\n"
             "}\n");
}

/** A failpoint-guarded wrapper whose callee holds the real ::open. */
void
addGuardedOpen(TempTree &tree)
{
    tree.add("src/cache/ok.cc",
             "int lowOpen() { return ::open(\"f\", 0); }\n"
             "void g() { HLLC_FAILPOINT(\"cache.io\"); lowOpen(); }\n");
}

// --------------------------------------------------------------------
// failpoint-coverage
// --------------------------------------------------------------------

TEST(AnalysisFailpoint, UncoveredSyscallIsExactlyOneFinding)
{
    TempTree tree;
    addCatalog(tree);
    addGuardedOpen(tree);
    tree.add("src/cache/orphan.cc",
             "int orphan() { return ::open(\"g\", 0); }\n");

    const lint::RunResult result = runRule(tree, "failpoint-coverage");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/orphan.cc");
    EXPECT_EQ(result.findings[0].line, 1);
    EXPECT_EQ(result.findings[0].rule, "failpoint-coverage");
}

TEST(AnalysisFailpoint, ReachableThroughCallGraphIsClean)
{
    TempTree tree;
    addCatalog(tree);
    addGuardedOpen(tree);
    EXPECT_TRUE(runRule(tree, "failpoint-coverage").findings.empty());
}

TEST(AnalysisFailpoint, SiteNameOutsideCatalogIsExactlyOneFinding)
{
    TempTree tree;
    addCatalog(tree);
    addGuardedOpen(tree);
    tree.add("src/cache/drift.cc",
             "void h() { HLLC_FAILPOINT(\"cache.unknown\"); }\n");

    const lint::RunResult result = runRule(tree, "failpoint-coverage");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/drift.cc");
    EXPECT_EQ(result.findings[0].line, 1);
    EXPECT_NE(result.findings[0].message.find("cache.unknown"),
              std::string::npos);
}

TEST(AnalysisFailpoint, CatalogEntryWithoutSiteIsExactlyOneFinding)
{
    TempTree tree;
    addCatalog(tree, "        \"cache.gone\",\n");
    addGuardedOpen(tree);

    const lint::RunResult result = runRule(tree, "failpoint-coverage");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/common/failpoint.cc");
    EXPECT_EQ(result.findings[0].line, 4);
    EXPECT_NE(result.findings[0].message.find("cache.gone"),
              std::string::npos);
}

// --------------------------------------------------------------------
// lock-discipline
// --------------------------------------------------------------------

TEST(AnalysisLock, UnlockedGuardedFieldIsExactlyOneFinding)
{
    TempTree tree;
    tree.add("src/cache/reg.hh",
             "struct Reg {\n"
             "    Mutex mutex_;\n"
             "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
             "    void good() { MutexLock lock(mutex_); hits_ = 1; }\n"
             "    void bad() { hits_ = 2; }\n"
             "};\n");

    const lint::RunResult result = runRule(tree, "lock-discipline");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/reg.hh");
    EXPECT_EQ(result.findings[0].line, 5);
    EXPECT_EQ(result.findings[0].rule, "lock-discipline");
}

TEST(AnalysisLock, RequiresAnnotationShiftsTheObligation)
{
    TempTree tree;
    tree.add("src/cache/reg.hh",
             "struct Reg {\n"
             "    Mutex mutex_;\n"
             "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
             "    void touch() HLLC_REQUIRES(mutex_) { hits_ = 1; }\n"
             "};\n");
    EXPECT_TRUE(runRule(tree, "lock-discipline").findings.empty());
}

TEST(AnalysisLock, CrossFileUseViaIncludeIsChecked)
{
    TempTree tree;
    tree.add("src/cache/reg.hh",
             "struct Reg {\n"
             "    Mutex mutex_;\n"
             "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
             "};\n");
    tree.add("src/cache/user.cc",
             "#include \"cache/reg.hh\"\n"
             "void t(Reg &r) { r.hits_ = 3; }\n");

    const lint::RunResult result = runRule(tree, "lock-discipline");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/user.cc");
    EXPECT_EQ(result.findings[0].line, 2);
}

TEST(AnalysisLock, UnrelatedSameNameWithoutIncludeIsNotFlagged)
{
    TempTree tree;
    tree.add("src/cache/reg.hh",
             "struct Reg {\n"
             "    Mutex mutex_;\n"
             "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
             "};\n");
    // No include: this `hits_` is some other variable entirely.
    tree.add("src/fault/other.cc",
             "int hits_ = 0;\n"
             "void u() { hits_ = 4; }\n");
    EXPECT_TRUE(runRule(tree, "lock-discipline").findings.empty());
}

// --------------------------------------------------------------------
// rng-discipline
// --------------------------------------------------------------------

TEST(AnalysisRng, BannedEngineIsExactlyOneFinding)
{
    TempTree tree;
    tree.add("src/cache/r.cc",
             "void f() { std::mt19937 gen; gen(); }\n");

    const lint::RunResult result = runRule(tree, "rng-discipline");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/r.cc");
    EXPECT_EQ(result.findings[0].line, 1);
    EXPECT_NE(result.findings[0].message.find("mt19937"),
              std::string::npos);
}

TEST(AnalysisRng, AdHocXoshiroSeedInSimIsExactlyOneFinding)
{
    TempTree tree;
    tree.add("src/sim/s.cc",
             "void f() { rng::Xoshiro256StarStar r(12345); }\n");

    const lint::RunResult result = runRule(tree, "rng-discipline");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/sim/s.cc");
    EXPECT_EQ(result.findings[0].line, 1);
}

TEST(AnalysisRng, SeedDerivedXoshiroIsClean)
{
    TempTree tree;
    tree.add("src/sim/s.cc",
             "void f(unsigned long long seed) {\n"
             "    rng::Xoshiro256StarStar r(rng::childSeed(seed, 0));\n"
             "}\n");
    EXPECT_TRUE(runRule(tree, "rng-discipline").findings.empty());
}

TEST(AnalysisRng, XoshiroOutsideStreamScopedLayersIsClean)
{
    TempTree tree;
    // The seeding contract only binds sim/serve/ingest.
    tree.add("src/cache/c.cc",
             "void f() { rng::Xoshiro256StarStar r(99); }\n");
    EXPECT_TRUE(runRule(tree, "rng-discipline").findings.empty());
}

// --------------------------------------------------------------------
// schema-drift
// --------------------------------------------------------------------

/** metrics.cc emitting \"schema\" (+ optionally \"extra\"). */
void
addStatsExporter(TempTree &tree, bool with_extra)
{
    std::string body =
        "std::string statsJson() {\n"
        "    std::string out = \"{\";\n"
        "    out += \"  \\\"schema\\\": \\\"hllc-stats-v1\\\",\";\n";
    if (with_extra)
        body += "    out += \"  \\\"extra\\\": 1,\";\n";
    body += "    return out + \"}\";\n}\n";
    tree.add("src/common/metrics.cc", body);
}

TEST(AnalysisSchema, UndocumentedKeyIsExactlyOneFinding)
{
    TempTree tree;
    addStatsExporter(tree, true);
    tree.add("EXPERIMENTS.md", "schema-keys: hllc-stats-v1\nschema\n");

    const lint::RunResult result = runRule(tree, "schema-drift");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/common/metrics.cc");
    EXPECT_EQ(result.findings[0].line, 4);
    EXPECT_NE(result.findings[0].message.find("extra"),
              std::string::npos);
}

TEST(AnalysisSchema, DocumentedButGoneKeyIsExactlyOneFinding)
{
    TempTree tree;
    addStatsExporter(tree, false);
    tree.add("EXPERIMENTS.md",
             "schema-keys: hllc-stats-v1\nschema cells\n");

    const lint::RunResult result = runRule(tree, "schema-drift");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/common/metrics.cc");
    EXPECT_EQ(result.findings[0].line, 1);
    EXPECT_NE(result.findings[0].message.find("cells"),
              std::string::npos);
}

TEST(AnalysisSchema, MissingTableIsExactlyOneFinding)
{
    TempTree tree;
    addStatsExporter(tree, false);
    tree.add("EXPERIMENTS.md", "no tables here\n");

    const lint::RunResult result = runRule(tree, "schema-drift");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].line, 1);
    EXPECT_NE(result.findings[0].message.find("schema-keys"),
              std::string::npos);
}

TEST(AnalysisSchema, MatchingTableIsClean)
{
    TempTree tree;
    addStatsExporter(tree, false);
    tree.add("EXPERIMENTS.md", "schema-keys: hllc-stats-v1\nschema\n");
    EXPECT_TRUE(runRule(tree, "schema-drift").findings.empty());
}

TEST(AnalysisSchema, ParseSchemaTablesShape)
{
    const auto tables = analysis::parseSchemaTables(
        "intro prose\n"
        "schema-keys: hllc-stats-v1\n"
        "schema cells\n"
        "label\n"
        "\n"
        "schema-keys: hllc-lint-v1\n"
        "findings\n"
        "```\n"
        "ignored\n");
    ASSERT_EQ(tables.size(), 2u);
    const auto &stats = tables.at("hllc-stats-v1");
    EXPECT_EQ(stats.size(), 3u);
    EXPECT_TRUE(stats.count("label"));
    const auto &lint_keys = tables.at("hllc-lint-v1");
    EXPECT_EQ(lint_keys.size(), 1u);
    EXPECT_FALSE(lint_keys.count("ignored"));
}

// --------------------------------------------------------------------
// include-graph
// --------------------------------------------------------------------

TEST(AnalysisInclude, UnusedIncludeIsExactlyOneFinding)
{
    TempTree tree;
    tree.add("src/cache/used.hh", "struct Foo { int x; };\n");
    tree.add("src/cache/unused.hh", "struct Bar { int y; };\n");
    tree.add("src/cache/user.cc",
             "#include \"cache/used.hh\"\n"
             "#include \"cache/unused.hh\"\n"
             "Foo makeFoo() { return Foo{}; }\n");

    const lint::RunResult result = runRule(tree, "include-graph");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].file, "src/cache/user.cc");
    EXPECT_EQ(result.findings[0].line, 2);
    EXPECT_NE(result.findings[0].message.find("cache/unused.hh"),
              std::string::npos);
}

TEST(AnalysisInclude, OwnHeaderIsExemptFromUnusedCheck)
{
    TempTree tree;
    tree.add("src/cache/impl.hh", "struct Impl { int z; };\n");
    tree.add("src/cache/impl.cc",
             "#include \"cache/impl.hh\"\n"
             "int unrelated() { return 0; }\n");
    EXPECT_TRUE(runRule(tree, "include-graph").findings.empty());
}

TEST(AnalysisInclude, HeaderCycleIsReported)
{
    TempTree tree;
    tree.add("src/cache/a.hh",
             "#include \"cache/b.hh\"\nstruct A { B *b; };\n");
    tree.add("src/cache/b.hh",
             "#include \"cache/a.hh\"\nstruct B { A *a; };\n");

    const lint::RunResult result = runRule(tree, "include-graph");
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_NE(result.findings[0].message.find("include cycle"),
              std::string::npos);
}

// --------------------------------------------------------------------
// Suppression semantics on the semantic rules.
// --------------------------------------------------------------------

TEST(AnalysisSuppression, InlineWaiverCoversSemanticFindings)
{
    TempTree tree;
    tree.add("src/cache/r.cc",
             "void f() { std::mt19937 g; g(); }"
             " // hllc-lint: allow(rng-discipline) corpus\n");
    EXPECT_TRUE(runRule(tree, "rng-discipline").findings.empty());
}

TEST(AnalysisSuppression, StandaloneWaiverCoversNextLine)
{
    TempTree tree;
    addCatalog(tree);
    addGuardedOpen(tree);
    tree.add("src/cache/orphan.cc",
             "// hllc-lint: allow(failpoint-coverage) corpus\n"
             "int orphan() { return ::open(\"g\", 0); }\n");
    EXPECT_TRUE(runRule(tree, "failpoint-coverage").findings.empty());
}

TEST(AnalysisSuppression, WaiverForOtherRuleDoesNotCover)
{
    TempTree tree;
    tree.add("src/cache/r.cc",
             "void f() { std::mt19937 g; g(); }"
             " // hllc-lint: allow(determinism) wrong rule\n");
    EXPECT_EQ(runRule(tree, "rng-discipline").findings.size(), 1u);
}

TEST(AnalysisSuppression, WaiversCoverLockAndIncludeRules)
{
    TempTree tree;
    tree.add("src/cache/reg.hh",
             "struct Reg {\n"
             "    Mutex mutex_;\n"
             "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
             "    // hllc-lint: allow(lock-discipline) corpus\n"
             "    void bad() { hits_ = 2; }\n"
             "};\n");
    tree.add("src/cache/used.hh", "struct Foo { int x; };\n");
    tree.add("src/cache/user.cc",
             "// hllc-lint: allow(include-graph) re-export\n"
             "#include \"cache/used.hh\"\n"
             "int unrelated() { return 0; }\n");
    EXPECT_TRUE(runRule(tree, "lock-discipline").findings.empty());
    EXPECT_TRUE(runRule(tree, "include-graph").findings.empty());
}

TEST(AnalysisSuppression, BaselineAbsorbsAndReportsStale)
{
    TempTree tree;
    tree.add("src/cache/r.cc",
             "void f() { std::mt19937 g; g(); }\n");

    lint::RunResult first = runRule(tree, "rng-discipline");
    ASSERT_EQ(first.findings.size(), 1u);
    // Semantic findings must carry the line-text fingerprint so the
    // baseline stays stable across unrelated edits above them.
    EXPECT_EQ(first.findings[0].lineText,
              "void f() { std::mt19937 g; g(); }");

    const std::string baseline =
        lint::formatBaseline(first.findings) +
        "src/cache/gone.cc|rng-discipline|stale entry\n";
    tree.add("lint.baseline", baseline);

    const lint::RunResult second =
        runRule(tree, "rng-discipline", nullptr, "", "lint.baseline");
    EXPECT_TRUE(second.findings.empty());
    EXPECT_EQ(second.baselined, 1u);
    EXPECT_EQ(second.staleBaseline, 1u);
}

// --------------------------------------------------------------------
// Incremental cache.
// --------------------------------------------------------------------

TEST(AnalysisCache, WarmRunHitsEveryFileAndKeepsFindings)
{
    TempTree tree;
    tree.add("src/cache/a.cc", "int a() { return 1; }\n");
    tree.add("src/cache/b.cc", "void f() { std::mt19937 g; g(); }\n");
    const std::string cache = tree.rootStr() + "/.cache";

    analysis::RunStats cold, warm;
    const lint::RunResult first =
        runRule(tree, "rng-discipline", &cold, cache);
    EXPECT_EQ(cold.filesIndexed, 2u);
    EXPECT_EQ(cold.cacheHits, 0u);
    ASSERT_EQ(first.findings.size(), 1u);

    const lint::RunResult second =
        runRule(tree, "rng-discipline", &warm, cache);
    EXPECT_EQ(warm.cacheHits, 2u);
    ASSERT_EQ(second.findings.size(), 1u);
    EXPECT_EQ(second.findings[0].file, first.findings[0].file);
    EXPECT_EQ(second.findings[0].line, first.findings[0].line);
}

TEST(AnalysisCache, EditedFileMissesOnlyItself)
{
    TempTree tree;
    tree.add("src/cache/a.cc", "int a() { return 1; }\n");
    tree.add("src/cache/b.cc", "int b() { return 2; }\n");
    const std::string cache = tree.rootStr() + "/.cache";

    runRule(tree, "rng-discipline", nullptr, cache);
    tree.add("src/cache/a.cc", "int a() { return 42; }\n");

    analysis::RunStats stats;
    runRule(tree, "rng-discipline", &stats, cache);
    EXPECT_EQ(stats.cacheHits, 1u);
}

TEST(AnalysisCache, RuleSetChangeInvalidatesTheCache)
{
    TempTree tree;
    tree.add("src/cache/a.cc", "int a() { return 1; }\n");
    const std::string cache = tree.rootStr() + "/.cache";

    runRule(tree, "rng-discipline", nullptr, cache);
    analysis::RunStats stats;
    runRule(tree, "lock-discipline", &stats, cache);
    EXPECT_EQ(stats.cacheHits, 0u);
}

TEST(AnalysisCache, CorruptCacheIsDiscardedNotTrusted)
{
    TempTree tree;
    tree.add("src/cache/a.cc", "int a() { return 1; }\n");
    const std::string cache = tree.rootStr() + "/.cache";

    runRule(tree, "rng-discipline", nullptr, cache);
    const std::string junk = "not a container";
    serial::writeFileAtomic(cache, junk.data(), junk.size());

    analysis::RunStats stats;
    const lint::RunResult result =
        runRule(tree, "rng-discipline", &stats, cache);
    EXPECT_EQ(stats.cacheHits, 0u);
    EXPECT_TRUE(result.findings.empty());
}

TEST(AnalysisCache, TokenLevelFindingsReplayFromCache)
{
    TempTree tree;
    tree.add("src/cache/bad.cc", "int g() { return rand(); }\n");
    const std::string cache = tree.rootStr() + "/.cache";

    const lint::RunResult first =
        runRule(tree, "determinism", nullptr, cache);
    ASSERT_EQ(first.findings.size(), 1u);

    analysis::RunStats stats;
    const lint::RunResult second =
        runRule(tree, "determinism", &stats, cache);
    EXPECT_EQ(stats.cacheHits, 1u);
    ASSERT_EQ(second.findings.size(), 1u);
    EXPECT_EQ(second.findings[0].rule, "determinism");
    EXPECT_EQ(second.findings[0].line, first.findings[0].line);
}

// --------------------------------------------------------------------
// FileIndex serialization.
// --------------------------------------------------------------------

TEST(AnalysisIndex, EncodeDecodeRoundTrip)
{
    const std::string source =
        "#include \"cache/reg.hh\"\n"
        "struct Reg {\n"
        "    Mutex mutex_;\n"
        "    int hits_ HLLC_GUARDED_BY(mutex_);\n"
        "};\n"
        "void g() { HLLC_FAILPOINT(\"cache.io\"); ::open(\"f\", 0); }\n";
    const analysis::FileIndex index =
        analysis::buildFileIndex("src/cache/x.cc", source);

    serial::Encoder enc;
    analysis::encodeFileIndex(enc, index);
    serial::Decoder dec(enc.bytes());
    const analysis::FileIndex back = analysis::decodeFileIndex(dec);

    EXPECT_EQ(back.path, index.path);
    EXPECT_EQ(back.contentHash, index.contentHash);
    EXPECT_EQ(back.symbols, index.symbols);
    EXPECT_EQ(back.refs.size(), index.refs.size());
    ASSERT_EQ(back.includes.size(), 1u);
    EXPECT_EQ(back.includes[0].path, "cache/reg.hh");
    ASSERT_EQ(back.guardedFields.size(), 1u);
    EXPECT_EQ(back.guardedFields[0].name, "hits_");
    EXPECT_EQ(back.guardedFields[0].mutex, "mutex_");
    ASSERT_EQ(back.failpoints.size(), 1u);
    EXPECT_EQ(back.failpoints[0].name, "cache.io");
    ASSERT_EQ(back.syscalls.size(), 1u);
    EXPECT_EQ(back.syscalls[0].name, "open");
    EXPECT_EQ(back.identifierSet(), index.identifierSet());
}

// --------------------------------------------------------------------
// SARIF report.
// --------------------------------------------------------------------

TEST(AnalysisSarif, ReportCarriesRuleFileAndLine)
{
    TempTree tree;
    tree.add("src/cache/r.cc",
             "void f() { std::mt19937 g; g(); }\n");
    const lint::RunResult result = runRule(tree, "rng-discipline");
    ASSERT_EQ(result.findings.size(), 1u);

    const std::string sarif = analysis::formatSarif(result);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"hllc_lint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\": \"rng-discipline\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"uri\": \"src/cache/r.cc\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

// --------------------------------------------------------------------
// Whole-tree self-check: the real repository must stay clean.
// --------------------------------------------------------------------

TEST(AnalysisSelfCheck, RepositoryTreeIsCleanUnderEveryRule)
{
#ifdef HLLC_TESTS_CORPUS_DIR
    const fs::path repo_root =
        fs::path(HLLC_TESTS_CORPUS_DIR).parent_path().parent_path();
    if (!fs::is_regular_file(repo_root / "src/lint/rules.cc"))
        GTEST_SKIP() << "repo sources not present";
    analysis::RunOptions options;
    const lint::RunResult result =
        analysis::analyzeTree(repo_root.string(), options);
    for (const lint::Finding &finding : result.findings) {
        ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                      << finding.rule << "] " << finding.message;
    }
    EXPECT_GT(result.filesScanned, 100u);
#else
    GTEST_SKIP() << "corpus dir not defined";
#endif
}

// --------------------------------------------------------------------
// Failpoint catalog pinning (the closed-catalog regression test).
// --------------------------------------------------------------------

TEST(AnalysisCatalogPin, EveryCatalogNameHasASiteAndViceVersa)
{
#ifdef HLLC_TESTS_CORPUS_DIR
    const fs::path repo_root =
        fs::path(HLLC_TESTS_CORPUS_DIR).parent_path().parent_path();
    if (!fs::is_regular_file(repo_root / "src/common/failpoint.cc"))
        GTEST_SKIP() << "repo sources not present";

    // Index the real src/ + tools/ trees and compare the catalog
    // against the union of HLLC_FAILPOINT/shouldFail literal sites —
    // set-based, so reordering the catalog stays legal.
    analysis::TreeIndex tree;
    const std::vector<std::string> walk = { "src", "tools" };
    for (const std::string &rel :
         lint::collectLintFiles(repo_root.string(), walk)) {
        const std::vector<std::uint8_t> bytes =
            serial::readFileBytes((repo_root / rel).string());
        tree.files.push_back(analysis::buildFileIndex(
            rel, std::string(bytes.begin(), bytes.end())));
    }

    std::set<std::string> catalog;
    const analysis::FileIndex *cat =
        tree.byPath("src/common/failpoint.cc");
    ASSERT_NE(cat, nullptr);
    for (const analysis::CatalogEntry &entry : cat->catalog)
        catalog.insert(entry.name);
    ASSERT_GE(catalog.size(), 15u);

    std::set<std::string> sites;
    for (const analysis::FileIndex &file : tree.files) {
        for (const analysis::FailpointSite &site : file.failpoints)
            sites.insert(site.name);
    }
    EXPECT_EQ(catalog, sites);
#else
    GTEST_SKIP() << "corpus dir not defined";
#endif
}

} // anonymous namespace
