/**
 * @file
 * Scenario-library tests: every family generates deterministically
 * through the same trace+manifest path the converter uses, the
 * adversarial families actually defeat LRU at their target geometry,
 * the Belady bound holds on generated traces, and the serve evaluator
 * reproduces a direct replay of scenario events byte for byte.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/manifest.hh"
#include "check/oracle.hh"
#include "check/rig.hh"
#include "common/error.hh"
#include "ingest/champsim.hh"
#include "ingest/scenarios.hh"
#include "replay/replayer.hh"
#include "serve/eval.hh"
#include "sim/config.hh"

namespace
{

using namespace hllc;

ingest::ScenarioOptions
smallOptions(std::uint64_t events = 8'000, std::uint64_t seed = 3)
{
    ingest::ScenarioOptions options;
    options.events = events;
    options.seed = seed;
    return options;
}

/** The LLC configuration matching what the scenario targeted. */
hybrid::HybridLlcConfig
matchingConfig(const ingest::ScenarioOptions &options,
               hybrid::PolicyKind policy)
{
    hybrid::HybridLlcConfig config;
    config.numSets = options.numSets;
    config.sramWays = 4;
    config.nvmWays = options.totalWays - 4;
    config.policy = policy;
    config.epochCycles = 50'000;
    return config;
}

double
replayHitRate(const replay::LlcTrace &trace,
              const hybrid::HybridLlcConfig &config)
{
    check::FastRig rig = check::makeFastRig(config);
    const replay::TraceReplayer replayer(0.2);
    return replayer.replay(trace, *rig.llc).hitRate;
}

TEST(IngestScenarios, EveryCatalogFamilyGeneratesAValidTrace)
{
    const auto &catalog = ingest::scenarioCatalog();
    ASSERT_EQ(catalog.size(), 7u);
    for (const ingest::ScenarioInfo &info : catalog) {
        const replay::LlcTrace trace = ingest::generateScenario(
            std::string(info.name), smallOptions(2'000));
        EXPECT_EQ(trace.size(), 2'000u) << info.name;
        EXPECT_EQ(trace.meta().mixName, info.name);
        for (const hybrid::LlcEvent &e : trace.events()) {
            ASSERT_GE(e.ecbBytes, 2) << info.name;
            ASSERT_LE(e.ecbBytes, 64) << info.name;
            ASSERT_LT(e.core, replay::traceCores) << info.name;
        }
        std::uint64_t demands = 0;
        for (const hybrid::LlcEvent &e : trace.events()) {
            if (e.type == hybrid::LlcEventType::GetS ||
                e.type == hybrid::LlcEventType::GetX)
                ++demands;
        }
        // A scenario that degenerates to all-Puts (or all-demands)
        // would exercise neither insertion nor reuse paths.
        EXPECT_GT(demands, trace.size() / 4) << info.name;
        EXPECT_LT(demands, trace.size()) << info.name;
    }
    EXPECT_THROW(ingest::generateScenario("no-such-family", {}), IoError);
}

TEST(IngestScenarios, GenerationIsDeterministicInTheSeed)
{
    for (const char *name : { "kv-server", "thrash", "phase-shift" }) {
        const replay::LlcTrace a =
            ingest::generateScenario(name, smallOptions(3'000, 9));
        const replay::LlcTrace b =
            ingest::generateScenario(name, smallOptions(3'000, 9));
        ASSERT_EQ(a.size(), b.size()) << name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a.events()[i].blockNum, b.events()[i].blockNum);
            ASSERT_EQ(a.events()[i].type, b.events()[i].type);
            ASSERT_EQ(a.events()[i].ecbBytes, b.events()[i].ecbBytes);
            ASSERT_EQ(a.events()[i].core, b.events()[i].core);
        }
        // Thrash's block sequence is deliberately seed-independent
        // (a fixed cyclic sweep), but its synthesized payloads are
        // not, so comparing ECBs too covers every family.
        const replay::LlcTrace other =
            ingest::generateScenario(name, smallOptions(3'000, 10));
        bool differs = other.size() != a.size();
        for (std::size_t i = 0; !differs && i < a.size(); ++i) {
            differs =
                a.events()[i].blockNum != other.events()[i].blockNum ||
                a.events()[i].ecbBytes != other.events()[i].ecbBytes;
        }
        EXPECT_TRUE(differs) << name;
    }
}

TEST(IngestScenarios, WrittenTracesRoundTripWithVerifiedManifests)
{
    const std::string out = "/tmp/hllc_test_scenario_manifest.hlt";
    const std::string manifest = check::manifestPathFor(out);
    const replay::LlcTrace trace =
        ingest::generateScenario("kv-server", smallOptions(2'000));
    ingest::writeTraceWithManifest(out, trace, 3);

    const replay::LlcTrace loaded = replay::LlcTrace::load(out);
    EXPECT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(check::verifyManifest(out, loaded), std::nullopt);
    const auto parsed = check::loadManifest(out);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->hasSeed);
    EXPECT_EQ(parsed->seed, 3u);
    EXPECT_EQ(parsed->mix, "kv-server");

    // A manifest that disagrees with the file must be reported.
    check::TraceManifest wrong = *parsed;
    wrong.events += 1;
    wrong.bytes += 1;
    check::saveManifest(out, wrong);
    EXPECT_NE(check::verifyManifest(out, loaded), std::nullopt);

    std::remove(out.c_str());
    std::remove(manifest.c_str());
}

TEST(IngestScenarios, AdversarialFamiliesDefeatLruAtTargetGeometry)
{
    // The oracle-sanity satellite: thrash and streaming-scan must give
    // near-zero demand reuse under the LRU baseline at the geometry
    // they were generated against, while kv-server shows real locality
    // on the same cache — the library spans both extremes.
    const ingest::ScenarioOptions options = smallOptions(24'000);
    const hybrid::HybridLlcConfig config =
        matchingConfig(options, hybrid::PolicyKind::Bh);

    const double thrash = replayHitRate(
        ingest::generateScenario("thrash", options), config);
    EXPECT_LT(thrash, 0.02);
    const double scan = replayHitRate(
        ingest::generateScenario("analytics-scan", options), config);
    EXPECT_LT(scan, 0.02);
    const double kv = replayHitRate(
        ingest::generateScenario("kv-server", options), config);
    EXPECT_GT(kv, 0.3);
}

TEST(IngestScenarios, BeladyBoundHoldsOnGeneratedTraces)
{
    const ingest::ScenarioOptions options = smallOptions(6'000);
    for (const char *name : { "kv-server", "thrash", "multi-tenant" }) {
        const replay::LlcTrace trace =
            ingest::generateScenario(name, options);
        const auto violation = check::checkPolicyAgainstOracle(
            trace, matchingConfig(options, hybrid::PolicyKind::CpSd));
        EXPECT_EQ(violation, std::nullopt)
            << name << ": " << violation.value_or("");
    }
}

TEST(IngestScenarios, EntropyHostileTracesAreFullyIncompressible)
{
    const replay::LlcTrace trace =
        ingest::generateScenario("entropy-hostile", smallOptions(4'000));
    for (const hybrid::LlcEvent &e : trace.events())
        ASSERT_EQ(e.ecbBytes, 64);

    // ... while kv-server at the default mix has compressible mass.
    const replay::LlcTrace kv =
        ingest::generateScenario("kv-server", smallOptions(4'000));
    std::uint64_t compressed = 0;
    for (const hybrid::LlcEvent &e : kv.events())
        compressed += e.ecbBytes < 64 ? 1 : 0;
    EXPECT_GT(compressed, kv.size() / 4);
}

TEST(IngestScenarios, ServeBatchEvaluationMatchesADirectReplay)
{
    // End-to-end wiring into the serving daemon: a Batch request
    // carrying scenario events must evaluate to exactly what a direct
    // replay of the same trace under the same configuration produces.
    const ingest::ScenarioOptions options = smallOptions(4'000);
    const replay::LlcTrace trace =
        ingest::generateScenario("multi-tenant", options);

    sim::SystemConfig system;
    ASSERT_EQ(system.llcSets, options.numSets);
    ASSERT_EQ(system.sramWays + system.nvmWays, options.totalWays);

    serve::Request request;
    request.type = serve::RequestType::Batch;
    request.id = 1;
    request.batch.policy = "CP_SD";
    request.batch.events = trace.events();
    serve::Evaluator evaluator(system, {});
    const serve::EvalResult served = evaluator.evaluate(request);

    const auto kind = serve::policyFromName("CP_SD");
    ASSERT_TRUE(kind.has_value());
    check::FastRig rig =
        check::makeFastRig(system.llcConfig(*kind, {}));
    // Batch evaluation replays without warm-up (the caller sent
    // exactly the window to measure).
    const replay::ReplayResult direct =
        replay::TraceReplayer(0.0).replay(trace, *rig.llc);

    EXPECT_EQ(served.measuredEvents, direct.measuredEvents);
    EXPECT_EQ(served.demandAccesses, direct.demandAccesses);
    EXPECT_EQ(served.demandHits, direct.demandHits);
    EXPECT_EQ(served.nvmBytesWritten, direct.nvmBytesWritten);
    EXPECT_DOUBLE_EQ(served.hitRate, direct.hitRate);
    EXPECT_GT(served.demandAccesses, 0u);
}

} // namespace
