/**
 * @file
 * Forecasting-procedure tests: aging-step selection, capacity
 * monotonicity, lifetime interpolation and the headline policy ordering
 * on a miniature system.
 */

#include <gtest/gtest.h>

#include "forecast/forecast.hh"
#include "hierarchy/hierarchy.hh"
#include "workload/mixes.hh"

namespace
{

using namespace hllc;
using namespace hllc::forecast;
using hybrid::HybridLlcConfig;
using hybrid::PolicyKind;

fault::NvmGeometry
geom()
{
    return { 32, 12, 64 };
}

TEST(AgingStep, NoTrafficGivesMaxStep)
{
    const fault::EnduranceModel endurance(
        geom(), { 1e10, 0.2 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte);
    const AgingStepConfig config;
    EXPECT_DOUBLE_EQ(
        chooseAgingStep(map, endurance, 1.0, config), config.maxStep);
}

TEST(AgingStep, HeavyTrafficGivesShortStep)
{
    const fault::EnduranceModel endurance(
        geom(), { 1000.0, 0.2 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte);
    // Enormous write rate on every frame.
    for (std::uint32_t f = 0; f < geom().numFrames(); ++f)
        map.recordWrite(f, 64 * 100);
    const AgingStepConfig config;
    const Seconds step = chooseAgingStep(map, endurance, 1.0, config);
    EXPECT_LT(step, config.maxStep);
    EXPECT_GE(step, config.minStep);
}

TEST(AgingStep, StepScalesInverselyWithRate)
{
    // Limits sized so both steps fall inside (minStep, maxStep).
    const fault::EnduranceModel endurance(
        geom(), { 1e6, 0.2 }, Xoshiro256StarStar(2));
    AgingStepConfig config;
    config.minStep = 1e-6;

    fault::FaultMap slow(endurance, fault::DisableGranularity::Byte);
    fault::FaultMap fast(endurance, fault::DisableGranularity::Byte);
    for (std::uint32_t f = 0; f < geom().numFrames(); ++f) {
        slow.recordWrite(f, 64);
        fast.recordWrite(f, 64 * 10);
    }
    const Seconds s_slow = chooseAgingStep(slow, endurance, 1.0, config);
    const Seconds s_fast = chooseAgingStep(fast, endurance, 1.0, config);
    EXPECT_NEAR(s_slow / s_fast, 10.0, 1.0);
}

TEST(Lifetime, InterpolatesCrossing)
{
    std::vector<ForecastPoint> series(3);
    series[0].time = 0.0;
    series[0].capacity = 1.0;
    series[1].time = 10.0 * secondsPerMonth;
    series[1].capacity = 0.8;
    series[2].time = 20.0 * secondsPerMonth;
    series[2].capacity = 0.2;
    // 0.5 crossing lies halfway between months 10 and 20.
    EXPECT_NEAR(ForecastEngine::lifetimeMonths(series, 0.5), 15.0, 0.01);
}

TEST(Lifetime, NeverCrossingReturnsHorizon)
{
    std::vector<ForecastPoint> series(2);
    series[1].time = 5.0 * secondsPerMonth;
    series[1].capacity = 0.9;
    EXPECT_NEAR(ForecastEngine::lifetimeMonths(series, 0.5), 5.0, 0.01);
}

/** End-to-end forecast on a miniature system; shared fixture. */
class ForecastEndToEnd : public ::testing::Test
{
  protected:
    static constexpr std::uint32_t kSets = 64;

    static const replay::LlcTrace &trace()
    {
        static const replay::LlcTrace t = hierarchy::captureTrace(
            workload::tableVMixes()[0], kSets * 16,
            hierarchy::PrivateCacheConfig{ 1024, 4, 4096, 16 }, 30000,
            33);
        return t;
    }

    static HybridLlcConfig
    llcConfig(PolicyKind policy)
    {
        HybridLlcConfig config;
        config.numSets = kSets;
        config.sramWays = 4;
        config.nvmWays = 12;
        config.policy = policy;
        config.epochCycles = 50'000;
        return config;
    }

    static std::vector<ForecastPoint>
    run(PolicyKind policy)
    {
        const auto config = llcConfig(policy);
        const fault::EnduranceModel endurance(
            { kSets, 12, 64 }, { 1e8, 0.2 }, Xoshiro256StarStar(3));
        ForecastConfig fc;
        fc.maxSteps = 120;
        ForecastEngine engine(endurance, config, { &trace() },
                              hierarchy::TimingParams{}, fc);
        return engine.run();
    }
};

TEST_F(ForecastEndToEnd, CapacityMonotonicallyDecreases)
{
    const auto series = run(PolicyKind::CpSd);
    ASSERT_GE(series.size(), 3u);
    EXPECT_DOUBLE_EQ(series.front().capacity, 1.0);
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_LE(series[i].capacity, series[i - 1].capacity);
        EXPECT_GE(series[i].time, series[i - 1].time);
    }
    EXPECT_LE(series.back().capacity, 0.5 + 0.05);
}

TEST_F(ForecastEndToEnd, PerformanceDegradesWithCapacity)
{
    const auto series = run(PolicyKind::CpSd);
    ASSERT_GE(series.size(), 3u);
    EXPECT_GT(series.front().meanIpc, 0.0);
    // End-of-life IPC must be below fresh-cache IPC.
    EXPECT_LT(series.back().meanIpc, series.front().meanIpc);
}

TEST_F(ForecastEndToEnd, PolicyLifetimeOrdering)
{
    // The paper's headline ordering: BH wears out far sooner than the
    // NVM-aware policies; LHybrid lasts at least as long as CP_SD.
    const double bh =
        ForecastEngine::lifetimeMonths(run(PolicyKind::Bh), 0.5);
    const double bhcp =
        ForecastEngine::lifetimeMonths(run(PolicyKind::BhCp), 0.5);
    const double cpsd =
        ForecastEngine::lifetimeMonths(run(PolicyKind::CpSd), 0.5);
    const double lhybrid =
        ForecastEngine::lifetimeMonths(run(PolicyKind::LHybrid), 0.5);

    EXPECT_GT(bhcp, bh * 1.5);
    EXPECT_GT(cpsd, bhcp);
    EXPECT_GT(lhybrid, cpsd * 0.8);
    EXPECT_GT(cpsd, bh * 3.0);
}

TEST_F(ForecastEndToEnd, SramOnlyForecastIsASinglePoint)
{
    HybridLlcConfig config = llcConfig(PolicyKind::SramOnly);
    config.sramWays = 16;
    config.nvmWays = 0;
    const fault::EnduranceModel endurance(
        { kSets, 12, 64 }, { 1e8, 0.2 }, Xoshiro256StarStar(3));
    ForecastEngine engine(endurance, config, { &trace() },
                          hierarchy::TimingParams{}, ForecastConfig{});
    const auto series = engine.run();
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series.front().capacity, 1.0);
    EXPECT_GT(series.front().meanIpc, 0.0);
}

} // namespace
