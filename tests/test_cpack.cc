/**
 * @file
 * C-Pack tests: dictionary matching codes, compressor/decompressor
 * dictionary agreement and randomized roundtrips.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "compression/cpack.hh"
#include "workload/block_synth.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

BlockData
blockOfWords(const std::vector<std::uint32_t> &words)
{
    BlockData data{};
    for (std::size_t i = 0; i < words.size() && i < 16; ++i)
        std::memcpy(data.data() + 4 * i, &words[i], 4);
    return data;
}

TEST(CPack, ZeroBlockIsTiny)
{
    const CPackCompressor cpack;
    BlockData zeros{};
    // 16 zzzz codes = 32 bits + header = 5 bytes.
    EXPECT_EQ(cpack.ecbSize(zeros), 5u);
    EXPECT_EQ(cpack.decompress(cpack.compress(zeros)), zeros);
}

TEST(CPack, FullMatchesUseDictionary)
{
    const CPackCompressor cpack;
    // One distinct word repeated: first xxxx (push), then 15 mmmm.
    std::vector<std::uint32_t> words(16, 0xdeadbeef);
    const BlockData data = blockOfWords(words);
    // 2+32 + 15*(2+4) bits = 124 bits = 16 bytes + header.
    EXPECT_LE(cpack.ecbSize(data), 17u);
    EXPECT_EQ(cpack.decompress(cpack.compress(data)), data);
}

TEST(CPack, PartialMatchesRoundtrip)
{
    const CPackCompressor cpack;
    const BlockData data = blockOfWords({
        0xaabbcc00, 0xaabbcc11, 0xaabbdd22, // upper-24 / upper-16
        0x00000042,                         // zzzx
        0, 0xaabbcc00,                      // zzzz, full match
        0x11223344, 0x11223355, 0x11224466, // more partials
        0, 0, 0x00000001, 0xaabbccdd, 0x55667788, 0x5566aabb, 0,
    });
    const auto ecb = cpack.compress(data);
    EXPECT_LT(ecb.size(), 64u);
    EXPECT_EQ(cpack.decompress(ecb), data);
}

TEST(CPack, IncompressibleFallsBackToRaw)
{
    const CPackCompressor cpack;
    Xoshiro256StarStar rng(5);
    BlockData data;
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(cpack.ecbSize(data), 64u);
    EXPECT_EQ(cpack.decompress(cpack.compress(data)), data);
}

TEST(CPack, RandomizedRoundtripProperty)
{
    const CPackCompressor cpack;
    Xoshiro256StarStar rng(23);
    for (int trial = 0; trial < 300; ++trial) {
        BlockData data{};
        std::uint32_t pool[4] = {
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()),
            static_cast<std::uint32_t>(rng.next()),
        };
        for (unsigned w = 0; w < 16; ++w) {
            std::uint32_t word;
            switch (rng.nextBounded(6)) {
              case 0: word = 0; break;
              case 1: word = pool[rng.nextBounded(4)]; break;
              case 2: // upper-bits variation of a pool word
                  word = (pool[rng.nextBounded(4)] & 0xffffff00u) |
                         static_cast<std::uint32_t>(rng.nextBounded(256));
                  break;
              case 3:
                  word = static_cast<std::uint32_t>(rng.nextBounded(256));
                  break;
              default: word = static_cast<std::uint32_t>(rng.next());
            }
            std::memcpy(data.data() + 4 * w, &word, 4);
        }
        const auto ecb = cpack.compress(data);
        EXPECT_LE(ecb.size(), 64u);
        EXPECT_EQ(cpack.decompress(ecb), data) << "trial " << trial;
    }
}

TEST(CPack, BdiTargetedContentAlsoRoundtrips)
{
    const CPackCompressor cpack;
    for (auto ce : { Ce::Zeros, Ce::Rep8, Ce::B8D2, Ce::B4D1,
                     Ce::B8D6, Ce::Uncompressed }) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            const BlockData data = workload::synthesizeBlock(ce, seed);
            EXPECT_EQ(cpack.decompress(cpack.compress(data)), data);
        }
    }
}

} // namespace
