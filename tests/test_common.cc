/**
 * @file
 * Tests for the common substrate: RNG determinism and distributions,
 * stats containers, logging levels and address helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace
{

using namespace hllc;

TEST(Types, BlockArithmetic)
{
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockNumber(0x12345), 0x48Du);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockNumber(63), 0u);
}

TEST(Types, TimeConversionsRoundtrip)
{
    const Cycle cycles = 3'500'000'000ull; // one second at 3.5 GHz
    EXPECT_DOUBLE_EQ(cyclesToSeconds(cycles), 1.0);
    EXPECT_EQ(secondsToCycles(1.0), cycles);
}

TEST(Rng, Deterministic)
{
    Xoshiro256StarStar a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Xoshiro256StarStar a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds)
{
    Xoshiro256StarStar rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Xoshiro256StarStar rng(11);
    std::array<int, 8> counts{};
    const int trials = 80000;
    for (int i = 0; i < trials; ++i)
        ++counts[rng.nextBounded(8)];
    for (int c : counts)
        EXPECT_NEAR(c, trials / 8, trials / 8 / 5);
}

TEST(Rng, DoubleInUnitInterval)
{
    Xoshiro256StarStar rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Xoshiro256StarStar rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalCvRespectsFloor)
{
    Xoshiro256StarStar rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.nextNormalCv(10.0, 5.0, 1.0), 1.0);
}

TEST(Rng, NormalCvMoments)
{
    Xoshiro256StarStar rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    const double mu = 1e6, cv = 0.2;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextNormalCv(mu, cv);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double stddev = std::sqrt(sq / n - mean * mean);
    EXPECT_NEAR(mean, mu, 0.01 * mu);
    EXPECT_NEAR(stddev, cv * mu, 0.05 * cv * mu);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Xoshiro256StarStar root(31);
    auto a = root.fork(0);
    auto b = root.fork(1);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Consecutive inputs land far apart (avalanche sanity).
    EXPECT_GT(std::popcount(mix64(1) ^ mix64(2)), 16);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketsAndMean)
{
    Histogram h(4, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(15.0);
    h.sample(100.0); // clamped into the last bucket
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), (5.0 + 15.0 + 15.0 + 100.0) / 4.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, HistogramClampsNegativeSamples)
{
    // Regression: negative samples used to index bucket_[-…] through
    // the size_t cast. They belong in bucket 0, like any underflow.
    Histogram h(4, 10.0);
    h.sample(-3.0);
    h.sample(-1e30);
    h.sample(5.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.bucket(0), 3u);
    EXPECT_EQ(h.nanDropped(), 0u);
    // The clamp applies to the sum too: the mean matches the buckets.
    EXPECT_DOUBLE_EQ(h.mean(), (0.0 + 0.0 + 5.0) / 3.0);
}

TEST(Stats, HistogramDropsNanAndClampsInfinity)
{
    Histogram h(4, 10.0);
    h.sample(std::nan(""));
    h.sample(-std::nan(""));
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.nanDropped(), 2u);

    // +inf clamps into the last bucket, -inf into bucket 0; neither is
    // dropped.
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.nanDropped(), 2u);

    h.reset();
    EXPECT_EQ(h.nanDropped(), 0u);
}

TEST(Stats, GroupCreatesAndDumps)
{
    StatGroup g("test");
    ++g.counter("a");
    g.counter("b") += 7;
    EXPECT_EQ(g.counterValue("a"), 1u);
    EXPECT_EQ(g.counterValue("b"), 7u);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("test.a 1"), std::string::npos);
    EXPECT_NE(os.str().find("test.b 7"), std::string::npos);

    g.resetAll();
    EXPECT_EQ(g.counterValue("b"), 0u);
}

TEST(Stats, UnknownCounterLookupThrows)
{
    // A silent 0 for a typo'd name poisons whole experiments; the
    // throwing lookup pairs with tryCounterValue() for legal probes.
    StatGroup g("test");
    ++g.counter("a");
    EXPECT_THROW(g.counterValue("missing"), StatError);
    EXPECT_FALSE(g.hasCounter("missing"));
    EXPECT_TRUE(g.hasCounter("a"));
    EXPECT_EQ(g.tryCounterValue("missing"), std::nullopt);
    EXPECT_EQ(g.tryCounterValue("a"), std::optional<std::uint64_t>(1u));
}

TEST(Logging, LevelsGate)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    // warn/inform must be safe no-ops at Quiet.
    warn("suppressed %d", 1);
    inform("suppressed %d", 2);
    setLogLevel(old);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeathTest, AssertMacroAborts)
{
    EXPECT_DEATH(HLLC_ASSERT(1 == 2, "ctx %d", 7), "ctx 7");
}

} // namespace
