/**
 * @file
 * Tests of the modified-BDI encoding table (paper Table I): sizes,
 * classification boundaries and the CPth candidate set.
 */

#include <gtest/gtest.h>

#include "compression/encoding.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

TEST(Encoding, TableCoversAllCes)
{
    EXPECT_EQ(ceTable().size(), numCe);
    for (std::size_t i = 0; i < numCe; ++i)
        EXPECT_EQ(static_cast<std::size_t>(ceTable()[i].ce), i);
}

TEST(Encoding, PaperQuotedSizes)
{
    // The sizes the paper quotes explicitly.
    EXPECT_EQ(ecbSize(Ce::B8D3), 30u);
    EXPECT_EQ(ecbSize(Ce::B8D4), 37u);   // HCR/LCR boundary
    EXPECT_EQ(ecbSize(Ce::B8D5), 44u);
    EXPECT_EQ(ecbSize(Ce::B8D6), 51u);
    EXPECT_EQ(ecbSize(Ce::B8D7), 58u);   // fits frames with <= 6 dead bytes
    EXPECT_EQ(ecbSize(Ce::Uncompressed), 64u);
}

TEST(Encoding, CbPlusHeaderEqualsEcb)
{
    for (const CeInfo &info : ceTable()) {
        if (info.ce == Ce::Uncompressed) {
            EXPECT_EQ(info.cbBytes, info.ecbBytes);
        } else {
            EXPECT_EQ(info.cbBytes + 1, info.ecbBytes)
                << std::string(info.name);
        }
    }
}

TEST(Encoding, BaseDeltaSizesFollowFormula)
{
    for (const CeInfo &info : ceTable()) {
        if (info.deltaBytes == 0)
            continue;
        const unsigned values = 64 / info.baseBytes;
        EXPECT_EQ(info.cbBytes,
                  info.baseBytes + (values - 1) * info.deltaBytes)
            << std::string(info.name);
    }
}

TEST(Encoding, ClassificationBoundaries)
{
    EXPECT_EQ(classify(2), CompressClass::Hcr);
    EXPECT_EQ(classify(37), CompressClass::Hcr);
    EXPECT_EQ(classify(38), CompressClass::Lcr);
    EXPECT_EQ(classify(58), CompressClass::Lcr);
    EXPECT_EQ(classify(63), CompressClass::Lcr);
    EXPECT_EQ(classify(64), CompressClass::Incompressible);
}

TEST(Encoding, CompressClassNames)
{
    EXPECT_EQ(compressClassName(CompressClass::Hcr), "HCR");
    EXPECT_EQ(compressClassName(CompressClass::Lcr), "LCR");
    EXPECT_EQ(compressClassName(CompressClass::Incompressible), "INC");
}

TEST(Encoding, CpthCandidatesArePaperSweepPoints)
{
    const auto &c = cpthCandidates();
    EXPECT_EQ(c, (std::vector<unsigned>{ 30, 34, 37, 44, 51, 58, 64 }));
    // Candidates must be achievable ECB sizes, ascending.
    for (unsigned v : c) {
        bool found = false;
        for (const CeInfo &info : ceTable())
            found = found || info.ecbBytes == v;
        EXPECT_TRUE(found) << v;
    }
}

TEST(Encoding, EverySizeWithinFrame)
{
    for (const CeInfo &info : ceTable()) {
        EXPECT_GE(info.ecbBytes, 2u) << std::string(info.name);
        EXPECT_LE(info.ecbBytes, 64u) << std::string(info.name);
    }
}

} // namespace
