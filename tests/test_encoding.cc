/**
 * @file
 * Tests of the modified-BDI encoding table (paper Table I): sizes,
 * classification boundaries, the CPth candidate set, and boundary-value
 * coverage of the BDI sign-extension/delta-fit edge cases.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "compression/bdi.hh"
#include "compression/encoding.hh"

namespace
{

using namespace hllc;
using namespace hllc::compression;

TEST(Encoding, TableCoversAllCes)
{
    EXPECT_EQ(ceTable().size(), numCe);
    for (std::size_t i = 0; i < numCe; ++i)
        EXPECT_EQ(static_cast<std::size_t>(ceTable()[i].ce), i);
}

TEST(Encoding, PaperQuotedSizes)
{
    // The sizes the paper quotes explicitly.
    EXPECT_EQ(ecbSize(Ce::B8D3), 30u);
    EXPECT_EQ(ecbSize(Ce::B8D4), 37u);   // HCR/LCR boundary
    EXPECT_EQ(ecbSize(Ce::B8D5), 44u);
    EXPECT_EQ(ecbSize(Ce::B8D6), 51u);
    EXPECT_EQ(ecbSize(Ce::B8D7), 58u);   // fits frames with <= 6 dead bytes
    EXPECT_EQ(ecbSize(Ce::Uncompressed), 64u);
}

TEST(Encoding, CbPlusHeaderEqualsEcb)
{
    for (const CeInfo &info : ceTable()) {
        if (info.ce == Ce::Uncompressed) {
            EXPECT_EQ(info.cbBytes, info.ecbBytes);
        } else {
            EXPECT_EQ(info.cbBytes + 1, info.ecbBytes)
                << std::string(info.name);
        }
    }
}

TEST(Encoding, BaseDeltaSizesFollowFormula)
{
    for (const CeInfo &info : ceTable()) {
        if (info.deltaBytes == 0)
            continue;
        const unsigned values = 64 / info.baseBytes;
        EXPECT_EQ(info.cbBytes,
                  info.baseBytes + (values - 1) * info.deltaBytes)
            << std::string(info.name);
    }
}

TEST(Encoding, ClassificationBoundaries)
{
    EXPECT_EQ(classify(2), CompressClass::Hcr);
    EXPECT_EQ(classify(37), CompressClass::Hcr);
    EXPECT_EQ(classify(38), CompressClass::Lcr);
    EXPECT_EQ(classify(58), CompressClass::Lcr);
    EXPECT_EQ(classify(63), CompressClass::Lcr);
    EXPECT_EQ(classify(64), CompressClass::Incompressible);
}

TEST(Encoding, CompressClassNames)
{
    EXPECT_EQ(compressClassName(CompressClass::Hcr), "HCR");
    EXPECT_EQ(compressClassName(CompressClass::Lcr), "LCR");
    EXPECT_EQ(compressClassName(CompressClass::Incompressible), "INC");
}

TEST(Encoding, CpthCandidatesArePaperSweepPoints)
{
    const auto &c = cpthCandidates();
    EXPECT_EQ(c, (std::vector<unsigned>{ 30, 34, 37, 44, 51, 58, 64 }));
    // Candidates must be achievable ECB sizes, ascending.
    for (unsigned v : c) {
        bool found = false;
        for (const CeInfo &info : ceTable())
            found = found || info.ecbBytes == v;
        EXPECT_TRUE(found) << v;
    }
}

TEST(Encoding, EverySizeWithinFrame)
{
    for (const CeInfo &info : ceTable()) {
        EXPECT_GE(info.ecbBytes, 2u) << std::string(info.name);
        EXPECT_LE(info.ecbBytes, 64u) << std::string(info.name);
    }
}

// ---------------------------------------------------------------------
// Boundary-value audit of the BDI sign-extension / delta-fit edge cases
// (bdi.cc signExtend/fitsSigned): deltas exactly at +-2^(8d-1), bases at
// the k-byte lower bound (INT64_MIN for k == 8), and the deliberate
// k == 8 wrap-around semantics of the 64-bit subtractor.
// ---------------------------------------------------------------------

/** Base at slot 0, base + delta (mod 2^(8k)) in every other slot. */
BlockData
baseDeltaBlock(unsigned k, std::uint64_t base, std::uint64_t delta)
{
    BlockData data{};
    const std::uint64_t mask =
        k >= 8 ? ~std::uint64_t{0} : ((std::uint64_t{1} << (8 * k)) - 1);
    for (unsigned i = 0; i < blockBytes / k; ++i) {
        const std::uint64_t v =
            (i == 0 ? base : base + delta) & mask;
        std::memcpy(data.data() + static_cast<std::size_t>(i) * k, &v, k);
    }
    return data;
}

TEST(BdiBoundary, DeltaBoundsExhaustive)
{
    // For every base-delta CE: -2^(8d-1) and 2^(8d-1)-1 are the extreme
    // representable deltas (asymmetric two's-complement bounds);
    // +2^(8d-1) and -2^(8d-1)-1 must be rejected.
    for (const CeInfo &info : ceTable()) {
        if (info.deltaBytes == 0) // Zeros/Rep8/Uncompressed: no deltas
            continue;
        const unsigned d = info.deltaBytes;
        const std::uint64_t bound = std::uint64_t{1} << (8 * d - 1);
        // A mid-range base so k < 8 arithmetic never wraps at width k.
        const std::uint64_t base = bound + 1;

        EXPECT_TRUE(BdiCompressor::applicable(
            baseDeltaBlock(info.baseBytes, base, bound - 1), info.ce))
            << std::string(info.name) << " +max";
        EXPECT_TRUE(BdiCompressor::applicable(
            baseDeltaBlock(info.baseBytes, base, -bound), info.ce))
            << std::string(info.name) << " -min";
        EXPECT_FALSE(BdiCompressor::applicable(
            baseDeltaBlock(info.baseBytes, base, bound), info.ce))
            << std::string(info.name) << " +max+1";
        EXPECT_FALSE(BdiCompressor::applicable(
            baseDeltaBlock(info.baseBytes, base, -bound - 1), info.ce))
            << std::string(info.name) << " -min-1";
    }
}

TEST(BdiBoundary, RoundTripAtDeltaBounds)
{
    // Both extreme representable deltas must encode/decode bit-exactly
    // (the lower bound exercises signExtend's 0x80..00 payload).
    for (const CeInfo &info : ceTable()) {
        if (info.deltaBytes == 0) // Zeros/Rep8/Uncompressed: no deltas
            continue;
        const unsigned d = info.deltaBytes;
        const std::uint64_t bound = std::uint64_t{1} << (8 * d - 1);
        const std::uint64_t base = bound + 1;
        for (const std::uint64_t delta : { bound - 1, 0 - bound }) {
            const BlockData data =
                baseDeltaBlock(info.baseBytes, base, delta);
            ASSERT_TRUE(BdiCompressor::applicable(data, info.ce));
            const auto ecb = BdiCompressor::encode(data, info.ce);
            ASSERT_EQ(ecb.size(), info.ecbBytes);
            EXPECT_EQ(BdiCompressor::decode(info.ce, ecb), data)
                << std::string(info.name);
        }
    }
}

TEST(BdiBoundary, Int64MinBaseWrapsAtFullWidth)
{
    // k == 8: the 64-bit subtractor wraps, so INT64_MIN base with
    // INT64_MAX values is delta -1 and B8D1-compressible...
    const auto min64 =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::min());
    const BlockData wrap = baseDeltaBlock(8, min64, ~std::uint64_t{0});
    EXPECT_TRUE(BdiCompressor::applicable(wrap, Ce::B8D1));
    const auto ecb = BdiCompressor::encode(wrap, Ce::B8D1);
    EXPECT_EQ(BdiCompressor::decode(Ce::B8D1, ecb), wrap);

    // ...while INT64_MIN base with value 0 (delta +2^63, wrapping to
    // INT64_MIN) exceeds every d < 8 bound and must stay uncompressed
    // by the base-delta CEs.
    const BlockData far = baseDeltaBlock(8, min64, min64);
    for (const CeInfo &info : ceTable()) {
        if (info.baseBytes == 8) {
            EXPECT_FALSE(BdiCompressor::applicable(far, info.ce))
                << std::string(info.name);
        }
    }
}

TEST(BdiBoundary, NoWrapAroundBelowFullWidth)
{
    // k < 8 deltas are arithmetic (no mod-2^(8k) wrap): the k-byte
    // analogue of the INT64_MIN/INT64_MAX pair does not fit, even
    // though the stored low bytes alone would round-trip.
    for (const unsigned k : { 2u, 4u }) {
        const std::uint64_t min_k = std::uint64_t{1} << (8 * k - 1);
        const BlockData data =
            baseDeltaBlock(k, min_k, (std::uint64_t{1} << (8 * k)) - 1);
        for (const CeInfo &info : ceTable()) {
            if (info.baseBytes == k) {
                EXPECT_FALSE(BdiCompressor::applicable(data, info.ce))
                    << std::string(info.name);
            }
        }
    }
}

TEST(BdiBoundary, CompressPicksSmallestEcbAtBoundary)
{
    // A delta of exactly 2^7 - 1 fits d = 1; 2^7 needs d = 2: the
    // priority tree must step to the next ECB size, never misclassify.
    const BlockData fits_d1 = baseDeltaBlock(8, 1000, 127);
    const BlockData needs_d2 = baseDeltaBlock(8, 1000, 128);
    EXPECT_EQ(BdiCompressor::compress(fits_d1).ce, Ce::B8D1);
    EXPECT_EQ(BdiCompressor::compress(needs_d2).ce, Ce::B8D2);
}

} // namespace
