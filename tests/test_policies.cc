/**
 * @file
 * Insertion-policy decision tests: the steering tables of paper
 * Sec. II-C (LHybrid, TAP) and Sec. IV (CA, CA_RWR), policy structural
 * flags, and the factory.
 */

#include <gtest/gtest.h>

#include "hybrid/insertion_policy.hh"
#include "hybrid/policy_ca.hh"
#include "hybrid/policy_cpsd.hh"

namespace
{

using namespace hllc;
using namespace hllc::hybrid;

InsertContext
ctx(ReuseClass reuse, unsigned ecb, bool dirty = false,
    unsigned hits = 0, unsigned cpth = 58)
{
    return InsertContext{ 0x1000, dirty, ecb, reuse, hits, 0, cpth };
}

TEST(PolicyFactory, CreatesEveryKind)
{
    for (auto kind : { PolicyKind::SramOnly, PolicyKind::Bh,
                       PolicyKind::BhCp, PolicyKind::Ca,
                       PolicyKind::CaRwr, PolicyKind::CpSd,
                       PolicyKind::CpSdTh, PolicyKind::LHybrid,
                       PolicyKind::Tap }) {
        const auto policy = InsertionPolicy::create(kind);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->kind(), kind);
        EXPECT_FALSE(policy->name().empty());
    }
}

TEST(PolicyFlags, CompressionImpliesByteDisabling)
{
    for (auto kind : { PolicyKind::BhCp, PolicyKind::Ca, PolicyKind::CaRwr,
                       PolicyKind::CpSd, PolicyKind::CpSdTh }) {
        const auto policy = InsertionPolicy::create(kind);
        EXPECT_TRUE(policy->usesCompression());
        EXPECT_EQ(policy->granularity(), fault::DisableGranularity::Byte);
    }
    for (auto kind : { PolicyKind::Bh, PolicyKind::LHybrid,
                       PolicyKind::Tap }) {
        const auto policy = InsertionPolicy::create(kind);
        EXPECT_FALSE(policy->usesCompression());
        EXPECT_EQ(policy->granularity(),
                  fault::DisableGranularity::Frame);
    }
}

TEST(PolicyFlags, StructuralHooks)
{
    EXPECT_TRUE(InsertionPolicy::create(PolicyKind::Bh)
                    ->globalReplacement());
    EXPECT_TRUE(InsertionPolicy::create(PolicyKind::BhCp)
                    ->globalReplacement());
    EXPECT_FALSE(InsertionPolicy::create(PolicyKind::CaRwr)
                     ->globalReplacement());
    EXPECT_TRUE(InsertionPolicy::create(PolicyKind::CaRwr)
                    ->migrateReadReuseOnSramEviction());
    EXPECT_TRUE(InsertionPolicy::create(PolicyKind::LHybrid)
                    ->lhybridSramReplacement());
    EXPECT_TRUE(InsertionPolicy::create(PolicyKind::CpSd)
                    ->usesSetDueling());
    EXPECT_FALSE(InsertionPolicy::create(PolicyKind::Ca)
                     ->usesSetDueling());
    EXPECT_DOUBLE_EQ(InsertionPolicy::create(PolicyKind::CpSd)
                         ->thPercent(), 0.0);
    PolicyParams params;
    params.thPercent = 8.0;
    params.twPercent = 5.0;
    const auto th = InsertionPolicy::create(PolicyKind::CpSdTh, params);
    EXPECT_DOUBLE_EQ(th->thPercent(), 8.0);
    EXPECT_DOUBLE_EQ(th->twPercent(), 5.0);
}

TEST(CaPolicy, SteersBySizeOnly)
{
    const CaPolicy ca(58);
    // ctx.cpth is what matters (set-level threshold).
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::None, 30)), Part::Nvm);
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::None, 58)), Part::Nvm);
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::None, 59)), Part::Sram);
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::None, 64)), Part::Sram);
    // Reuse is ignored by naive CA.
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::Write, 30)), Part::Nvm);
    EXPECT_EQ(ca.choosePart(ctx(ReuseClass::Read, 64)), Part::Sram);
}

TEST(CaRwrPolicy, PaperTableII)
{
    const CaRwrPolicy policy(58);
    // Read reuse -> NVM regardless of size.
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::Read, 64)), Part::Nvm);
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::Read, 2)), Part::Nvm);
    // Write reuse -> SRAM regardless of size.
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::Write, 2)), Part::Sram);
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::Write, 64)), Part::Sram);
    // No reuse -> by compressed size.
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::None, 37)), Part::Nvm);
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::None, 64)), Part::Sram);
}

TEST(CaRwrPolicy, RespectsPerSetCpth)
{
    const CaRwrPolicy policy(58);
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::None, 44, false, 0, 30)),
              Part::Sram);
    EXPECT_EQ(policy.choosePart(ctx(ReuseClass::None, 44, false, 0, 44)),
              Part::Nvm);
}

TEST(LHybridPolicy, OnlyCleanLoopBlocksToNvm)
{
    const auto policy = InsertionPolicy::create(PolicyKind::LHybrid);
    // Loop-block (read-reused, clean) -> NVM.
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, false)),
              Part::Nvm);
    // Dirty Put can never be a loop-block.
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, true)),
              Part::Sram);
    // Non-loop-blocks -> SRAM.
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::None, 64, false)),
              Part::Sram);
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Write, 64, false)),
              Part::Sram);
}

TEST(TapPolicy, CleanThrashingBlocksOnly)
{
    PolicyParams params;
    params.tapThreshold = 2;
    const auto policy = InsertionPolicy::create(PolicyKind::Tap, params);
    // Enough hits and clean -> NVM.
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, false, 2)),
              Part::Nvm);
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, false, 5)),
              Part::Nvm);
    // Not enough reuse -> SRAM (more conservative than LHybrid).
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, false, 1)),
              Part::Sram);
    // Dirty or write-reused -> SRAM.
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Read, 64, true, 5)),
              Part::Sram);
    EXPECT_EQ(policy->choosePart(ctx(ReuseClass::Write, 64, false, 5)),
              Part::Sram);
}

TEST(PolicyNames, MatchPaperLabels)
{
    EXPECT_EQ(policyName(PolicyKind::Bh), "BH");
    EXPECT_EQ(policyName(PolicyKind::BhCp), "BH_CP");
    EXPECT_EQ(policyName(PolicyKind::CpSd), "CP_SD");
    EXPECT_EQ(policyName(PolicyKind::CpSdTh), "CP_SD_Th");
    EXPECT_EQ(policyName(PolicyKind::LHybrid), "LHybrid");
    EXPECT_EQ(policyName(PolicyKind::Tap), "TAP");
}

} // namespace
