/**
 * @file
 * Table I: the modified-BDI compression encodings, their base/delta
 * widths and resulting sizes, and an empirically measured coverage
 * check (every encoding must be exactly attainable by real contents).
 */

#include <cstdio>
#include <string>

#include "compression/bdi.hh"
#include "workload/block_synth.hh"

using namespace hllc;
using namespace hllc::compression;

int
main()
{
    std::printf("# Table I: modified-BDI compression encodings\n");
    std::printf("# (ECB = CB + 1-byte CE header; SECDED (527,516) lives "
                "in a per-frame ECC field)\n");
    std::printf("%-14s %6s %7s %8s %9s %7s %10s\n", "encoding", "base",
                "delta", "CB (B)", "ECB (B)", "class", "attainable");

    for (const CeInfo &info : ceTable()) {
        // Verify with the real compressor that synthesized contents hit
        // exactly this encoding.
        bool attainable = true;
        for (std::uint64_t seed = 0; seed < 8 && attainable; ++seed) {
            const BlockData data =
                workload::synthesizeBlock(info.ce, seed);
            attainable =
                BdiCompressor::compress(data).ecbBytes == info.ecbBytes;
        }
        std::printf("%-14s %6u %7u %8u %9u %7s %10s\n",
                    std::string(info.name).c_str(), info.baseBytes,
                    info.deltaBytes, info.cbBytes, info.ecbBytes,
                    std::string(compressClassName(
                        classify(info.ecbBytes))).c_str(),
                    attainable ? "yes" : "NO");
    }

    std::printf("\n# HCR/LCR boundary: %u bytes; CPth candidates:",
                hcrThresholdBytes);
    for (unsigned c : cpthCandidates())
        std::printf(" %u", c);
    std::printf("\n");
    return 0;
}
