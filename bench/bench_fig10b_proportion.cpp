/**
 * @file
 * Figure 10b: SRAM/NVM proportion sensitivity — the hybrid LLC with a
 * 3-way SRAM + 13-way NVM split instead of 4 + 12.
 *
 * Paper reference: BH/BH_CP barely change; LHybrid detects less read
 * reuse (2.2% lower performance, 14% longer lifetime); the CP_SD family
 * loses ~2.1-2.6% performance and gains 3-7% lifetime.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    config.sramWays = 3;
    config.nvmWays = 13;
    sim::printConfigHeader(
        config, "Figure 10b: 3w SRAM + 13w NVM proportion sensitivity");
    const sim::Experiment experiment(config);

    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
        { "CP_SD_Th4", config.llcConfig(PolicyKind::CpSdTh, th4) },
        { "CP_SD_Th8", config.llcConfig(PolicyKind::CpSdTh, th8) },
    };
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
