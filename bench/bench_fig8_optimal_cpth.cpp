/**
 * @file
 * Figure 8: distribution of the per-epoch optimal CPth (the candidate
 * with the most hits among the Set Dueling leader groups), (a) as the
 * NVM part loses capacity from 100% to 50%, and (b) per workload mix at
 * 100% capacity.
 *
 * Paper reference: at 100% capacity, CPth 58/64 win most epochs but
 * ~30% of epochs prefer smaller values; smaller CPth values win more
 * often as capacity shrinks, and the per-mix variation is large (up to
 * 96% small-CPth epochs for mix 5).
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "compression/encoding.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

void
printDistribution(const char *row_label,
                  const std::vector<unsigned> &history)
{
    std::map<unsigned, unsigned> counts;
    for (unsigned winner : history)
        ++counts[winner];
    std::printf("%-10s", row_label);
    const double total = history.empty() ? 1.0 : history.size();
    for (unsigned c : compression::cpthCandidates())
        std::printf(" %6.1f%%", 100.0 * counts[c] / total);
    std::printf("   (%zu epochs)\n", history.size());
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(
        config, "Figure 8: distribution of per-epoch optimal CPth");
    const sim::Experiment experiment(config);

    // One grid over both sub-figures: the capacity sweep (a) followed
    // by the per-mix cells (b), replayed in parallel and printed in
    // cell order.
    const std::vector<double> capacities = { 1.0, 0.9, 0.8,
                                             0.7, 0.6, 0.5 };
    const std::size_t num_mixes = experiment.traces().size();
    std::vector<sim::PhaseCell> cells;
    for (double capacity : capacities) {
        cells.push_back({ "CP_SD_cap" +
                              formatI64(static_cast<int>(
                                  100.0 * capacity)),
                          config.llcConfig(PolicyKind::CpSd), capacity,
                          sim::allMixes });
    }
    for (std::size_t mix = 0; mix < num_mixes; ++mix) {
        cells.push_back({ "CP_SD_mix" + formatU64(mix + 1),
                          config.llcConfig(PolicyKind::CpSd), 1.0, mix });
    }
    const auto phases = sim::runPhaseGrid(experiment, cells);
    sim::exportPhaseStudy(sim::parseStatsOutArg(argc, argv),
                          "fig8-optimal-cpth", phases);

    std::printf("\ncolumns: CPth =");
    for (unsigned c : compression::cpthCandidates())
        std::printf(" %u", c);
    std::printf("\n\n# (a) by NVM effective capacity, all mixes\n");

    for (std::size_t i = 0; i < capacities.size(); ++i) {
        char label[16];
        std::snprintf(label, sizeof(label), "%3.0f%%",
                      100.0 * capacities[i]);
        printDistribution(label, phases[i].winnerHistory);
    }

    std::printf("\n# (b) by mix, 100%% NVM capacity\n");
    for (std::size_t mix = 0; mix < num_mixes; ++mix) {
        char label[32];
        std::snprintf(label, sizeof(label), "mix %zu", mix + 1);
        printDistribution(label,
                          phases[capacities.size() + mix].winnerHistory);
    }
    return 0;
}
