/**
 * @file
 * Figure 2: block classification by compression ratio (HCR / LCR /
 * incompressible) for the twenty SPEC-like applications, measured by
 * running every application's block contents through the real BDI
 * compressor. Also prints the Table V mixes.
 *
 * Paper reference: on average 49% HCR, 29% LCR, 22% incompressible;
 * GemsFDTD/zeusmp almost fully compressible, xz17/milc incompressible.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/config.hh"
#include "workload/mixes.hh"
#include "workload/spec_profiles.hh"

using namespace hllc;
using namespace hllc::workload;
using compression::CompressClass;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();

    std::printf("# Figure 2: block classification by compression ratio\n");
    std::printf("%-14s %8s %8s %8s %10s\n", "app", "HCR", "LCR", "INC",
                "avg ECB");

    const int blocks_per_app = 4000;
    double hcr_sum = 0.0, lcr_sum = 0.0, inc_sum = 0.0;

    for (const AppProfile &profile : specProfiles()) {
        AppModel app(profile, 0, config.llcBlocks(),
                     Xoshiro256StarStar(config.seed));
        int hcr = 0, lcr = 0, inc = 0;
        std::uint64_t ecb_total = 0;
        for (Addr block = 0; block < blocks_per_app; ++block) {
            const unsigned ecb = app.ecbSizeOf(block);
            ecb_total += ecb;
            switch (compression::classify(ecb)) {
              case CompressClass::Hcr: ++hcr; break;
              case CompressClass::Lcr: ++lcr; break;
              default: ++inc; break;
            }
        }
        const double n = blocks_per_app;
        std::printf("%-14s %7.1f%% %7.1f%% %7.1f%% %10.1f\n",
                    profile.name.c_str(), 100.0 * hcr / n,
                    100.0 * lcr / n, 100.0 * inc / n, ecb_total / n);
        hcr_sum += hcr / n;
        lcr_sum += lcr / n;
        inc_sum += inc / n;
    }

    std::printf("%-14s %7.1f%% %7.1f%% %7.1f%%   (paper: 49%% / 29%% / "
                "22%%)\n", "average", 100.0 * hcr_sum / 20.0,
                100.0 * lcr_sum / 20.0, 100.0 * inc_sum / 20.0);

    std::printf("\n# Table V: multi-programmed mixes\n");
    for (const MixSpec &mix : tableVMixes()) {
        std::printf("%-8s %s %s %s %s\n", mix.name.c_str(),
                    mix.apps[0].c_str(), mix.apps[1].c_str(),
                    mix.apps[2].c_str(), mix.apps[3].c_str());
    }
    return 0;
}
