/**
 * @file
 * Figure 11c: equal-storage comparison — the byte fault map costs
 * CP_SD ~8.6% more storage than LHybrid, so CP_SD/CP_SD_Th are re-run
 * with 11 and 10 NVM ways (+1.8% / -5.2% cost vs LHybrid's 12 ways).
 *
 * Paper reference: all CP_SD configurations lose some performance and
 * lifetime with fewer ways, but even the 10-way CP_SD_Th8 beats
 * LHybrid's IPC by ~6.4% over the first two years.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(
        config, "Figure 11c: equal-storage comparison (fault-map "
                "overhead)");
    const sim::Experiment experiment(config);

    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "LHybrid-12w", config.llcConfig(PolicyKind::LHybrid) },
    };
    for (std::uint32_t nvm_ways : { 12u, 11u, 10u }) {
        auto cpsd = config.llcConfig(PolicyKind::CpSd);
        cpsd.nvmWays = nvm_ways;
        entries.push_back({ "CP_SD-" + formatU64(nvm_ways) + "w",
                            cpsd });
        auto th = config.llcConfig(PolicyKind::CpSdTh, th8);
        th.nvmWays = nvm_ways;
        entries.push_back({ "CP_SD_Th8-" + formatU64(nvm_ways) +
                                "w",
                            th });
    }
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
