/**
 * @file
 * Ablation: compression-scheme sensitivity of the CP_SD design.
 *
 * The paper states its policies are orthogonal to the compression
 * mechanism (Sec. II-B). This harness swaps the modified BDI for FPC
 * and C-Pack (traces recaptured so block sizes reflect each scheme) and
 * compares compressibility, hit rate and NVM write traffic under CP_SD
 * and BH_CP.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using compression::Scheme;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const unsigned jobs = sim::parseJobsArg(argc, argv);

    std::printf("# Ablation: CP_SD under different compression schemes\n");
    std::printf("%-8s %10s %12s %12s %12s %12s\n", "scheme", "avg ECB",
                "BH bytes", "CPSD/BH hit", "CPSD/BH BW", "norm.IPC");

    for (const Scheme scheme :
         { Scheme::Bdi, Scheme::Fpc, Scheme::CPack }) {
        sim::SystemConfig config = sim::SystemConfig::tableIV();
        config.scheme = scheme;
        config.jobs = jobs;
        const sim::Experiment experiment(config, 10);

        // Both policy phases of this scheme replay in parallel.
        const auto phases = sim::runPhaseGrid(
            experiment,
            { { "BH", config.llcConfig(PolicyKind::Bh), 1.0,
                sim::allMixes },
              { "CP_SD", config.llcConfig(PolicyKind::CpSd), 1.0,
                sim::allMixes } });
        const auto &bh = phases[0];
        const auto &cpsd = phases[1];

        // Mean ECB over the captured Put events.
        std::uint64_t ecb_sum = 0, puts = 0;
        for (const auto &trace : experiment.traces()) {
            for (const auto &ev : trace.events()) {
                if (ev.type == hybrid::LlcEventType::PutClean ||
                    ev.type == hybrid::LlcEventType::PutDirty) {
                    ecb_sum += ev.ecbBytes;
                    ++puts;
                }
            }
        }

        std::printf("%-8s %10.1f %12llu %12.4f %12.4f %12.4f\n",
                    std::string(compression::schemeName(scheme)).c_str(),
                    puts ? static_cast<double>(ecb_sum) /
                               static_cast<double>(puts)
                         : 0.0,
                    static_cast<unsigned long long>(
                        bh.aggregate.nvmBytesWritten),
                    bh.aggregate.hitRate > 0
                        ? cpsd.aggregate.hitRate / bh.aggregate.hitRate
                        : 0.0,
                    bh.aggregate.nvmBytesWritten > 0
                        ? static_cast<double>(
                              cpsd.aggregate.nvmBytesWritten) /
                              static_cast<double>(
                                  bh.aggregate.nvmBytesWritten)
                        : 0.0,
                    bh.aggregate.meanIpc > 0
                        ? cpsd.aggregate.meanIpc / bh.aggregate.meanIpc
                        : 0.0);
    }

    std::printf("\n# (the policies only consume ECB sizes, so any scheme "
                "with similar coverage reproduces the paper's shape)\n");
    return 0;
}
