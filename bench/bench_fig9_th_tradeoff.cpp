/**
 * @file
 * Figure 9: hits and NVM bytes written of CP_SD_Th for Th in
 * {0, 2, 4, 6, 8}% (Tw = 5%) at NVM capacities 100/90/80%, normalized
 * to BH at 100% capacity.
 *
 * Paper reference: increasing Th decreases both hits and bytes written,
 * with a much larger relative decrease in bytes written, especially at
 * lower capacities (e.g. Th 0->8 at 80% capacity: hits 0.925->0.916,
 * bytes 0.059->0.035).
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(
        config,
        "Figure 9: CP_SD_Th hits vs NVM bytes written (Tw = 5%)");
    const sim::Experiment experiment(config);

    const auto bh = experiment.runPhase(
        config.llcConfig(PolicyKind::Bh), "BH", 1.0);
    const double bh_hits =
        static_cast<double>(bh.aggregate.demandHits);
    const double bh_bytes =
        static_cast<double>(bh.aggregate.nvmBytesWritten);

    std::printf("\n%8s %6s %12s %12s\n", "capacity", "Th",
                "norm.hits", "norm.bytes");
    for (double capacity : { 1.0, 0.9, 0.8 }) {
        for (double th : { 0.0, 2.0, 4.0, 6.0, 8.0 }) {
            hybrid::PolicyParams params;
            params.thPercent = th;
            params.twPercent = 5.0;
            // Th = 0 is plain CP_SD (max-hits winner).
            const auto policy = th == 0.0 ? PolicyKind::CpSd
                                          : PolicyKind::CpSdTh;
            const auto phase = experiment.runPhase(
                config.llcConfig(policy, params), "CP_SD_Th", capacity);
            std::printf("%7.0f%% %6.0f %12.4f %12.4f\n",
                        100.0 * capacity, th,
                        phase.aggregate.demandHits / bh_hits,
                        phase.aggregate.nvmBytesWritten / bh_bytes);
        }
    }
    return 0;
}
