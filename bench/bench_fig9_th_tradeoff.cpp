/**
 * @file
 * Figure 9: hits and NVM bytes written of CP_SD_Th for Th in
 * {0, 2, 4, 6, 8}% (Tw = 5%) at NVM capacities 100/90/80%, normalized
 * to BH at 100% capacity.
 *
 * Paper reference: increasing Th decreases both hits and bytes written,
 * with a much larger relative decrease in bytes written, especially at
 * lower capacities (e.g. Th 0->8 at 80% capacity: hits 0.925->0.916,
 * bytes 0.059->0.035).
 */

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

constexpr double kCapacities[] = { 1.0, 0.9, 0.8 };
constexpr double kThValues[] = { 0.0, 2.0, 4.0, 6.0, 8.0 };

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(
        config,
        "Figure 9: CP_SD_Th hits vs NVM bytes written (Tw = 5%)");
    const sim::Experiment experiment(config);

    // Cell 0 is the BH baseline; the capacity x Th sweep follows in
    // row-major order, so the printout below is byte-identical to the
    // historical serial loop for any --jobs value.
    std::vector<sim::PhaseCell> cells;
    cells.push_back({ "BH", config.llcConfig(PolicyKind::Bh), 1.0,
                      sim::allMixes });
    for (double capacity : kCapacities) {
        for (double th : kThValues) {
            hybrid::PolicyParams params;
            params.thPercent = th;
            params.twPercent = 5.0;
            // Th = 0 is plain CP_SD (max-hits winner).
            const auto policy = th == 0.0 ? PolicyKind::CpSd
                                          : PolicyKind::CpSdTh;
            cells.push_back(
                { "CP_SD_Th" + formatI64(static_cast<int>(th)) +
                      "_cap" +
                      formatI64(static_cast<int>(100.0 * capacity)),
                  config.llcConfig(policy, params), capacity,
                  sim::allMixes });
        }
    }
    const auto phases = sim::runPhaseGrid(experiment, cells);
    sim::exportPhaseStudy(sim::parseStatsOutArg(argc, argv),
                          "fig9-th-tradeoff", phases);

    const double bh_hits =
        static_cast<double>(phases[0].aggregate.demandHits);
    const double bh_bytes =
        static_cast<double>(phases[0].aggregate.nvmBytesWritten);

    std::printf("\n%8s %6s %12s %12s\n", "capacity", "Th",
                "norm.hits", "norm.bytes");
    std::size_t cell = 1;
    for (double capacity : kCapacities) {
        for (double th : kThValues) {
            const auto &phase = phases[cell++];
            std::printf("%7.0f%% %6.0f %12.4f %12.4f\n",
                        100.0 * capacity, th,
                        phase.aggregate.demandHits / bh_hits,
                        phase.aggregate.nvmBytesWritten / bh_bytes);
        }
    }
    return 0;
}
