/**
 * @file
 * Figure 6: LLC hit rate of the CA and CA_RWR insertion policies for
 * each compression threshold CPth, plus the CP_SD adaptive line, all
 * normalized to the BH baseline. Ten Table V mixes, 100% NVM capacity.
 *
 * Paper reference: CA varies between 0.89 (CPth 30) and 0.99 (CPth 58);
 * CA_RWR slightly better at small CPth, marginally worse at large;
 * CP_SD matches the best CA_RWR.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "compression/encoding.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const std::string stats_out = sim::parseStatsOutArg(argc, argv);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config,
                           "Figure 6: normalized LLC hit rate vs CPth");
    const sim::Experiment experiment(config);

    std::vector<sim::PhaseSummary> summaries;
    const auto bh =
        experiment.runPhase(config.llcConfig(PolicyKind::Bh), "BH");
    const double bh_hits = bh.aggregate.hitRate;
    summaries.push_back(bh);
    std::printf("# BH hit rate: %.4f (normalization basis)\n\n",
                bh_hits);

    std::printf("%6s %12s %12s\n", "CPth", "CA", "CA_RWR");
    for (unsigned cpth : compression::cpthCandidates()) {
        hybrid::PolicyParams params;
        params.fixedCpth = cpth;
        const std::string suffix = "_cpth" + formatU64(cpth);
        const auto ca = experiment.runPhase(
            config.llcConfig(PolicyKind::Ca, params), "CA" + suffix);
        const auto rwr = experiment.runPhase(
            config.llcConfig(PolicyKind::CaRwr, params),
            "CA_RWR" + suffix);
        std::printf("%6u %12.4f %12.4f\n", cpth,
                    ca.aggregate.hitRate / bh_hits,
                    rwr.aggregate.hitRate / bh_hits);
        summaries.push_back(ca);
        summaries.push_back(rwr);
    }

    const auto cpsd =
        experiment.runPhase(config.llcConfig(PolicyKind::CpSd), "CP_SD");
    std::printf("\nCP_SD (Set Dueling): %.4f of BH  (paper: ~ best "
                "CA_RWR, ~0.97-1.0)\n",
                cpsd.aggregate.hitRate / bh_hits);
    summaries.push_back(cpsd);

    sim::exportPhaseStudy(stats_out, "fig6-hitrate", summaries);
    return 0;
}
