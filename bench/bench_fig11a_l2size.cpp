/**
 * @file
 * Figure 11a: L2-size sensitivity — private L2 doubled from 128 KB to
 * 256 KB (scaled), traces recaptured behind the larger filter.
 *
 * Paper reference: overall performance rises; the bigger L2 filters
 * writes so most policies gain 8-19% lifetime, while LHybrid LOSES 11%
 * (longer SRAM residency detects more loop-blocks -> more NVM writes).
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    config.privateCaches.l2Bytes *= 2;
    sim::printConfigHeader(config,
                           "Figure 11a: doubled L2 size sensitivity");
    const sim::Experiment experiment(config);

    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
        { "CP_SD_Th4", config.llcConfig(PolicyKind::CpSdTh, th4) },
        { "CP_SD_Th8", config.llcConfig(PolicyKind::CpSdTh, th8) },
    };
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
