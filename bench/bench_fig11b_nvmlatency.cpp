/**
 * @file
 * Figure 11b: NVM latency sensitivity — NVM data-array read latency
 * raised 1.5x (load-use 32 -> 38 cycles before the +2 decompression).
 *
 * Paper reference: policies inserting aggressively into NVM lose a bit
 * more performance (CP_SD -0.7%, LHybrid -0.4%); no drastic change in
 * either performance or lifetime.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    // Data-array read 8 -> 12 cycles: load-use 32 -> 36 (+2 decomp).
    config.timing.llcNvmLoadUse = 38;
    sim::printConfigHeader(config,
                           "Figure 11b: 1.5x NVM read latency");
    const sim::Experiment experiment(config);

    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
        { "CP_SD_Th4", config.llcConfig(PolicyKind::CpSdTh, th4) },
        { "CP_SD_Th8", config.llcConfig(PolicyKind::CpSdTh, th8) },
    };
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
