/**
 * @file
 * Ablation: intra-frame wear leveling (paper Sec. III-B, after [24]).
 *
 * The paper's design pairs byte-disabling with a rotation counter that
 * spreads each frame's writes over its live bytes. This harness
 * forecasts CP_SD and BH_CP with leveling on (the paper's assumption)
 * and off (every write starts at the frame's first live byte). Without
 * leveling the frames' leading bytes wear out quickly; byte-disabling
 * and Fit-LRU soften the blow (worn frames keep serving compressed
 * blocks), but lifetime still drops substantially.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using fault::WearDistribution;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(config,
                           "Ablation: intra-frame wear leveling");
    const sim::Experiment experiment(config, 10);

    const std::vector<PolicyKind> policies = { PolicyKind::BhCp,
                                               PolicyKind::CpSd };
    const std::vector<WearDistribution> dists = {
        WearDistribution::Leveled, WearDistribution::FrontLoaded
    };

    // Forecast cells differ in ForecastConfig (not just geometry), so
    // this sweep uses the generic runGrid directly.
    const auto summaries = sim::runGrid(
        policies.size() * dists.size(),
        [&](std::size_t i) {
            const PolicyKind policy = policies[i / dists.size()];
            forecast::ForecastConfig fc;
            fc.wearDistribution = dists[i % dists.size()];
            return experiment.runForecast(
                config.llcConfig(policy),
                std::string(policyName(policy)), fc);
        },
        config.jobs);

    std::printf("\n%-10s %-12s %10s %10s %12s\n", "policy", "leveling",
                "months", "fs.months", "cap@end");
    std::size_t cell = 0;
    for (const PolicyKind policy : policies) {
        for (const WearDistribution dist : dists) {
            const auto &summary = summaries[cell++];
            std::printf("%-10s %-12s %10.3f %10.2f %12.4f\n",
                        std::string(policyName(policy)).c_str(),
                        dist == WearDistribution::Leveled
                            ? "rotation"
                            : "none",
                        summary.lifetimeMonths,
                        summary.lifetimeMonths *
                            config.fullScaleFactor(),
                        summary.series.empty()
                            ? 0.0
                            : summary.series.back().capacity);
        }
    }
    return 0;
}
