/**
 * @file
 * Ablation: intra-frame wear leveling (paper Sec. III-B, after [24]).
 *
 * The paper's design pairs byte-disabling with a rotation counter that
 * spreads each frame's writes over its live bytes. This harness
 * forecasts CP_SD and BH_CP with leveling on (the paper's assumption)
 * and off (every write starts at the frame's first live byte). Without
 * leveling the frames' leading bytes wear out quickly; byte-disabling
 * and Fit-LRU soften the blow (worn frames keep serving compressed
 * blocks), but lifetime still drops substantially.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace hllc;
using fault::WearDistribution;
using hybrid::PolicyKind;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config,
                           "Ablation: intra-frame wear leveling");
    const sim::Experiment experiment(config, 10);

    std::printf("\n%-10s %-12s %10s %10s %12s\n", "policy", "leveling",
                "months", "fs.months", "cap@end");
    for (const PolicyKind policy :
         { PolicyKind::BhCp, PolicyKind::CpSd }) {
        for (const WearDistribution dist :
             { WearDistribution::Leveled,
               WearDistribution::FrontLoaded }) {
            forecast::ForecastConfig fc;
            fc.wearDistribution = dist;
            const auto summary = experiment.runForecast(
                config.llcConfig(policy),
                std::string(policyName(policy)), fc);
            std::printf("%-10s %-12s %10.3f %10.2f %12.4f\n",
                        std::string(policyName(policy)).c_str(),
                        dist == WearDistribution::Leveled
                            ? "rotation"
                            : "none",
                        summary.lifetimeMonths,
                        summary.lifetimeMonths *
                            config.fullScaleFactor(),
                        summary.series.empty()
                            ? 0.0
                            : summary.series.back().capacity);
        }
    }
    return 0;
}
