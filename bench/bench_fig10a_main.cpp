/**
 * @file
 * Figures 1 and 10a — the headline result: performance evolution over
 * time (normalized IPC) and lifetime (months to 50% NVM capacity) of
 * BH, BH_CP, LHybrid, TAP, CP_SD, CP_SD_Th4 and CP_SD_Th8, between the
 * 16-way and 4-way SRAM bounds. Ten Table V mixes, endurance
 * mu = 1e10 / cv = 0.2.
 *
 * Paper reference (lifetime factors over BH): BH_CP 4.8x, CP_SD 16.8x,
 * LHybrid 19.7x, TAP 39x; CP_SD keeps ~97% of BH performance while
 * LHybrid loses 11.2% and TAP ~15%. CP_SD_Th4/Th8 trade 1.1%/1.9%
 * performance for 28%/44% more lifetime than CP_SD.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(
        config, "Figures 1 / 10a: performance vs lifetime (main result)");

    std::printf("# Table III policies: BH (frame-dis., no compr., "
                "NVM-unaware) | BH_CP (byte-dis., compr., NVM-unaware) "
                "| LHybrid/TAP (frame-dis., NVM-aware) | CP_SD[,Th] "
                "(byte-dis., compr., NVM-aware)\n");

    const sim::Experiment experiment(config);

    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "TAP", config.llcConfig(PolicyKind::Tap) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
        { "CP_SD_Th4", config.llcConfig(PolicyKind::CpSdTh, th4) },
        { "CP_SD_Th8", config.llcConfig(PolicyKind::CpSdTh, th8) },
    };
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
