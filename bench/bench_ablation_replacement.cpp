/**
 * @file
 * Ablation: (Fit-)LRU vs Fit-SRRIP replacement inside the hybrid LLC.
 *
 * The paper uses LRU throughout; SRRIP's scan resistance interacts with
 * the thrashing traffic the mixes contain. This harness compares hit
 * rate and NVM write traffic for the main policies under both.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;
using hybrid::ReplacementKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    sim::printConfigHeader(config,
                           "Ablation: LRU vs SRRIP replacement");
    const sim::Experiment experiment(config, 10);

    const std::vector<PolicyKind> policies = {
        PolicyKind::Bh, PolicyKind::LHybrid, PolicyKind::CpSd
    };
    const std::vector<ReplacementKind> replacements = {
        ReplacementKind::Lru, ReplacementKind::Srrip
    };

    // policy x replacement grid, row-major.
    std::vector<sim::PhaseCell> cells;
    for (const PolicyKind policy : policies) {
        for (const ReplacementKind repl : replacements) {
            auto llc = config.llcConfig(policy);
            llc.replacement = repl;
            cells.push_back({ std::string(policyName(policy)), llc,
                              1.0, sim::allMixes });
        }
    }
    const auto phases = sim::runPhaseGrid(experiment, cells);
    sim::exportPhaseStudy(sim::parseStatsOutArg(argc, argv),
                          "ablation-replacement", phases);

    std::printf("\n%-10s %-7s %10s %14s %10s\n", "policy", "repl",
                "hit rate", "NVM bytes", "IPC");
    std::size_t cell = 0;
    for (const PolicyKind policy : policies) {
        for (const ReplacementKind repl : replacements) {
            const auto &phase = phases[cell++];
            std::printf("%-10s %-7s %10.4f %14llu %10.4f\n",
                        std::string(policyName(policy)).c_str(),
                        repl == ReplacementKind::Lru ? "LRU" : "SRRIP",
                        phase.aggregate.hitRate,
                        static_cast<unsigned long long>(
                            phase.aggregate.nvmBytesWritten),
                        phase.aggregate.meanIpc);
        }
    }
    return 0;
}
