/**
 * @file
 * Ablation: (Fit-)LRU vs Fit-SRRIP replacement inside the hybrid LLC.
 *
 * The paper uses LRU throughout; SRRIP's scan resistance interacts with
 * the thrashing traffic the mixes contain. This harness compares hit
 * rate and NVM write traffic for the main policies under both.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;
using hybrid::ReplacementKind;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config,
                           "Ablation: LRU vs SRRIP replacement");
    const sim::Experiment experiment(config, 10);

    std::printf("\n%-10s %-7s %10s %14s %10s\n", "policy", "repl",
                "hit rate", "NVM bytes", "IPC");
    for (const PolicyKind policy :
         { PolicyKind::Bh, PolicyKind::LHybrid, PolicyKind::CpSd }) {
        for (const ReplacementKind repl :
             { ReplacementKind::Lru, ReplacementKind::Srrip }) {
            auto llc = config.llcConfig(policy);
            llc.replacement = repl;
            const auto phase = experiment.runPhase(
                llc, std::string(policyName(policy)));
            std::printf("%-10s %-7s %10.4f %14llu %10.4f\n",
                        std::string(policyName(policy)).c_str(),
                        repl == ReplacementKind::Lru ? "LRU" : "SRRIP",
                        phase.aggregate.hitRate,
                        static_cast<unsigned long long>(
                            phase.aggregate.nvmBytesWritten),
                        phase.aggregate.meanIpc);
        }
    }
    return 0;
}
