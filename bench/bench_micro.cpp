/**
 * @file
 * Hot-path performance harness with a machine-readable trajectory.
 *
 * Replays one captured LLC trace against the fig10a policy grid (BH,
 * BH_CP, LHybrid, TAP, CP_SD, CP_SD_Th4, CP_SD_Th8) and against the
 * brute-force golden shadow model, timing each, plus a per-compressor
 * (BDI / FPC / C-Pack) block-compression sweep, and writes the results
 * as a "hllc-bench-v1" JSON document (BENCH_micro.json by default) so
 * CI can track the events/sec trajectory across commits.
 *
 * Two properties make the numbers trustworthy:
 *  - the golden reference is measured in the same run on the same trace
 *    and host, so speedup_vs_reference is not a stale constant;
 *  - every policy's replay is differentially checked against the golden
 *    model (decision streams, outcomes, final tag stores) before its
 *    timing is reported — a fast-but-wrong LLC fails the run.
 *
 * The document deliberately carries no wall-clock dates or hostnames:
 * timings vary run to run, but the schema keys are stable and the
 * provenance (compiler, build type, SIMD) is what comparisons need.
 */

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"
#include "compression/compressor.hh"
#include "fault/fault_map.hh"
#include "hierarchy/hierarchy.hh"
#include "hybrid/hybrid_llc.hh"
#include "replay/replayer.hh"
#include "workload/block_synth.hh"
#include "workload/mixes.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

/** One fig10a grid entry. */
struct PolicyEntry
{
    const char *name;
    PolicyKind kind;
    hybrid::PolicyParams params;
};

std::vector<PolicyEntry>
fig10aGrid()
{
    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;
    return {
        { "BH", PolicyKind::Bh, {} },
        { "BH_CP", PolicyKind::BhCp, {} },
        { "LHybrid", PolicyKind::LHybrid, {} },
        { "TAP", PolicyKind::Tap, {} },
        { "CP_SD", PolicyKind::CpSd, {} },
        { "CP_SD_Th4", PolicyKind::CpSdTh, th4 },
        { "CP_SD_Th8", PolicyKind::CpSdTh, th8 },
    };
}

/** Bench geometry: the Table IV LLC at scale 1. */
hybrid::HybridLlcConfig
benchLlcConfig(const PolicyEntry &entry)
{
    hybrid::HybridLlcConfig config;
    config.numSets = 128;
    config.sramWays = 4;
    config.nvmWays = 12;
    config.policy = entry.kind;
    config.params = entry.params;
    return config;
}

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Best-of-N wall time of @p body, in seconds. */
template <typename Body>
double
bestOf(unsigned repeats, const Body &body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        body();
        const double s = seconds(std::chrono::steady_clock::now() - t0);
        if (r == 0 || s < best)
            best = s;
    }
    return best;
}

struct Timing
{
    double eventsPerSec = 0.0;
    double nsPerAccess = 0.0;
};

Timing
timingFrom(double secs, std::uint64_t events)
{
    Timing t;
    if (secs > 0.0 && events > 0) {
        t.eventsPerSec = static_cast<double>(events) / secs;
        t.nsPerAccess = secs * 1e9 / static_cast<double>(events);
    }
    return t;
}

struct PolicyResult
{
    std::string name;
    Timing timing;
    bool identical = false;
    std::uint64_t eventsCompared = 0;
};

struct CompressorResult
{
    std::string name;
    Timing timing; //!< blocks/sec, ns/block
};

/** Replay timing of one policy (fresh pristine LLC per repetition). */
Timing
timePolicy(const replay::LlcTrace &trace,
           const hybrid::HybridLlcConfig &config, unsigned repeats)
{
    const double secs = bestOf(repeats, [&] {
        const fault::NvmGeometry geom{ config.numSets, config.nvmWays,
                                       blockBytes };
        const auto granularity =
            hybrid::InsertionPolicy::create(config.policy, config.params)
                ->granularity();
        const fault::EnduranceModel endurance(geom, { 1e12, 0.0 },
                                              Xoshiro256StarStar(1));
        fault::FaultMap map(endurance, granularity);
        hybrid::HybridLlc llc(config, &map);
        const replay::TraceReplayer replayer(0.2);
        replayer.replay(trace, llc);
    });
    return timingFrom(secs, trace.size());
}

/** Replay timing of the golden shadow model over the same trace. */
Timing
timeGolden(const replay::LlcTrace &trace,
           const hybrid::HybridLlcConfig &config)
{
    std::uint64_t sink = 0;
    const double secs = bestOf(1, [&] {
        check::GoldenLlc golden(config);
        for (const auto &ev : trace.events())
            sink += static_cast<std::uint64_t>(golden.handle(ev, nullptr));
    });
    // Keep the accumulated outcome observable so the loop cannot be
    // optimised away.
    if (sink == ~std::uint64_t{0})
        std::fputc(' ', stderr);
    return timingFrom(secs, trace.size());
}

/** Per-compressor throughput over a synthesized block corpus. */
CompressorResult
timeCompressor(compression::Scheme scheme, unsigned repeats)
{
    const auto compressor = compression::BlockCompressor::create(scheme);

    // One block per encoding class plus incompressible fill: exercises
    // every path of the scheme, not just its fastest exit.
    std::vector<BlockData> corpus;
    for (const auto &info : compression::ceTable())
        corpus.push_back(workload::synthesizeBlock(info.ce, 1));
    for (std::uint64_t s = 2; s < 10; ++s) {
        corpus.push_back(workload::synthesizeBlock(
            compression::Ce::Uncompressed, s));
    }

    constexpr unsigned rounds = 20'000;
    unsigned sink = 0;
    const double secs = bestOf(repeats, [&] {
        for (unsigned r = 0; r < rounds; ++r) {
            for (const BlockData &block : corpus)
                sink += compressor->ecbSize(block);
        }
    });
    if (sink == 0xffffffffu)
        std::fputc(' ', stderr);

    CompressorResult result;
    result.name = compression::schemeName(scheme);
    result.timing = timingFrom(
        secs, static_cast<std::uint64_t>(rounds) * corpus.size());
    return result;
}

void
appendTiming(std::string &json, const Timing &t, const char *rate_key,
             const char *per_key)
{
    json += "\"";
    json += rate_key;
    json += "\": " + formatFixed(t.eventsPerSec, 1) + ", \"";
    json += per_key;
    json += "\": " + formatFixed(t.nsPerAccess, 3);
}

std::string
jsonEscapeLite(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Strict decimal u64 parse (from_chars: locale-free, full-string). */
bool
parseU64Arg(const char *text, std::uint64_t &out)
{
    const char *end = text + std::strlen(text);
    const auto [ptr, ec] = std::from_chars(text, end, out);
    return ec == std::errc{} && ptr == end;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--events N] [--repeats N] "
                 "[--skip-identity]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_micro.json";
    std::uint64_t refs_per_core = 100'000;
    unsigned repeats = 3;
    bool check_identity = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else if (arg == "--events" && i + 1 < argc) {
            if (!parseU64Arg(argv[++i], refs_per_core))
                return usage(argv[0]);
        } else if (arg == "--repeats" && i + 1 < argc) {
            std::uint64_t n = 0;
            if (!parseU64Arg(argv[++i], n))
                return usage(argv[0]);
            repeats = static_cast<unsigned>(n);
        } else if (arg == "--skip-identity") {
            check_identity = false;
        } else {
            return usage(argv[0]);
        }
    }
    if (repeats == 0)
        repeats = 1;

    setLogLevel(LogLevel::Warn);

    // One capture feeds every measurement: identical event streams make
    // the per-policy numbers and the golden reference comparable.
    const replay::LlcTrace trace = hierarchy::captureTrace(
        workload::tableVMixes()[0], 2048,
        hierarchy::PrivateCacheConfig{ 2048, 4, 8192, 16 },
        refs_per_core, 1);
    std::fprintf(stderr, "captured %zu events (%s)\n", trace.size(),
                 trace.meta().mixName.c_str());

    // Reference: the brute-force golden shadow model, measured in this
    // run, on this host, over this trace.
    const Timing reference =
        timeGolden(trace, benchLlcConfig(fig10aGrid()[4] /* CP_SD */));
    std::fprintf(stderr, "golden reference: %.0f events/s\n",
                 reference.eventsPerSec);

    std::vector<PolicyResult> policies;
    bool all_identical = true;
    for (const PolicyEntry &entry : fig10aGrid()) {
        const hybrid::HybridLlcConfig config = benchLlcConfig(entry);

        PolicyResult result;
        result.name = entry.name;
        if (check_identity) {
            const check::GoldenDiffResult diff = check::diffGolden(
                trace, config, check::DegenerateMode::Pristine);
            result.identical = diff.ok();
            result.eventsCompared = diff.eventsCompared;
            if (!diff.ok()) {
                all_identical = false;
                std::fprintf(stderr,
                             "FAIL %s diverged from golden: %s\n",
                             entry.name,
                             diff.divergence->description.c_str());
            }
        }
        result.timing = timePolicy(trace, config, repeats);
        std::fprintf(stderr, "%-10s %12.0f events/s  %8.2f ns/access\n",
                     entry.name, result.timing.eventsPerSec,
                     result.timing.nsPerAccess);
        policies.push_back(std::move(result));
    }

    std::vector<CompressorResult> compressors;
    for (const auto scheme :
         { compression::Scheme::Bdi, compression::Scheme::Fpc,
           compression::Scheme::CPack }) {
        compressors.push_back(timeCompressor(scheme, repeats));
    }

    double min_rate = 0.0, sum_log = 0.0;
    for (const PolicyResult &p : policies) {
        if (min_rate == 0.0 || p.timing.eventsPerSec < min_rate)
            min_rate = p.timing.eventsPerSec;
        sum_log += std::log(p.timing.eventsPerSec);
    }
    const double geomean =
        policies.empty()
            ? 0.0
            : std::exp(sum_log / static_cast<double>(policies.size()));

    std::string json;
    json += "{\n";
    json += "  \"schema\": \"hllc-bench-v1\",\n";
    json += "  \"host\": {\n";
    json += "    \"compiler\": \"" + jsonEscapeLite(__VERSION__) + "\",\n";
#ifdef NDEBUG
    json += "    \"build_type\": \"Release\",\n";
#else
    json += "    \"build_type\": \"Debug\",\n";
#endif
#ifdef HLLC_ENABLE_SIMD
    json += "    \"simd\": true,\n";
#else
    json += "    \"simd\": false,\n";
#endif
    json += "    \"hardware_concurrency\": " +
            formatU64(std::thread::hardware_concurrency()) + "\n";
    json += "  },\n";
    json += "  \"workload\": {\n";
    json += "    \"mix\": \"" +
            jsonEscapeLite(trace.meta().mixName) + "\",\n";
    json += "    \"events\": " + formatU64(trace.size()) + ",\n";
    json += "    \"num_sets\": 128, \"sram_ways\": 4, \"nvm_ways\": 12,\n";
    json += "    \"warmup_fraction\": 0.2, \"repeats\": " +
            formatU64(repeats) + "\n";
    json += "  },\n";
    json += "  \"reference\": {\n";
    json += "    \"model\": \"golden-shadow\",\n    ";
    appendTiming(json, reference, "events_per_sec", "ns_per_access");
    json += "\n  },\n";
    json += "  \"policies\": [\n";
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const PolicyResult &p = policies[i];
        json += "    { \"name\": \"" + p.name + "\", ";
        appendTiming(json, p.timing, "events_per_sec", "ns_per_access");
        json += ", \"speedup_vs_reference\": " +
                formatFixed(reference.eventsPerSec > 0.0
                                ? p.timing.eventsPerSec /
                                      reference.eventsPerSec
                                : 0.0,
                            2);
        if (check_identity) {
            json += std::string(", \"identical_to_reference\": ") +
                    (p.identical ? "true" : "false");
            json += ", \"events_compared\": " +
                    formatU64(p.eventsCompared);
        }
        json += i + 1 < policies.size() ? " },\n" : " }\n";
    }
    json += "  ],\n";
    json += "  \"compressors\": [\n";
    for (std::size_t i = 0; i < compressors.size(); ++i) {
        const CompressorResult &c = compressors[i];
        json += "    { \"name\": \"" + jsonEscapeLite(c.name) + "\", ";
        appendTiming(json, c.timing, "blocks_per_sec", "ns_per_block");
        json += i + 1 < compressors.size() ? " },\n" : " }\n";
    }
    json += "  ],\n";
    json += "  \"summary\": {\n";
    json += "    \"min_events_per_sec\": " + formatFixed(min_rate, 1) +
            ",\n";
    json += "    \"geomean_events_per_sec\": " + formatFixed(geomean, 1) +
            ",\n";
    json += "    \"speedup_vs_reference\": " +
            formatFixed(reference.eventsPerSec > 0.0
                            ? geomean / reference.eventsPerSec
                            : 0.0,
                        2) +
            ",\n";
    json += std::string("    \"all_identical_to_reference\": ") +
            (check_identity ? (all_identical ? "true" : "false")
                            : "null") +
            "\n";
    json += "  }\n";
    json += "}\n";

    serial::writeFileAtomic(out, json.data(), json.size());
    std::fprintf(stderr, "wrote %s\n", out.c_str());

    return all_identical ? 0 : 1;
}
