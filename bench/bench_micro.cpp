/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths: BDI
 * compression/decompression, rearrangement scatter/gather, SECDED
 * encode/decode, hybrid-LLC event handling and full-trace replay.
 */

#include <benchmark/benchmark.h>

#include "compression/bdi.hh"
#include "fault/rearrangement.hh"
#include "fault/secded.hh"
#include "hierarchy/hierarchy.hh"
#include "replay/replayer.hh"
#include "workload/block_synth.hh"
#include "workload/mixes.hh"

using namespace hllc;
using compression::BdiCompressor;
using compression::Ce;

namespace
{

void
BM_BdiCompress(benchmark::State &state)
{
    const auto ce = static_cast<Ce>(state.range(0));
    const BlockData data = workload::synthesizeBlock(ce, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(BdiCompressor::compress(data));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * blockBytes);
}
BENCHMARK(BM_BdiCompress)
    ->Arg(static_cast<int>(Ce::Zeros))
    ->Arg(static_cast<int>(Ce::B8D2))
    ->Arg(static_cast<int>(Ce::B8D7))
    ->Arg(static_cast<int>(Ce::Uncompressed));

void
BM_BdiEncodeDecode(benchmark::State &state)
{
    const auto ce = static_cast<Ce>(state.range(0));
    const BlockData data = workload::synthesizeBlock(ce, 1);
    for (auto _ : state) {
        const auto ecb = BdiCompressor::encode(data, ce);
        benchmark::DoNotOptimize(BdiCompressor::decode(ce, ecb));
    }
}
BENCHMARK(BM_BdiEncodeDecode)
    ->Arg(static_cast<int>(Ce::B8D2))
    ->Arg(static_cast<int>(Ce::B2D1));

void
BM_RearrangementScatterGather(benchmark::State &state)
{
    const auto n = static_cast<unsigned>(state.range(0));
    std::vector<std::uint8_t> ecb(n, 0xab);
    // A frame with a few faulty bytes, as in Fig. 5.
    const std::uint64_t live = ~std::uint64_t{0} & ~0x120ull;
    for (auto _ : state) {
        const auto scattered =
            fault::RearrangementCircuit::scatter(ecb, live, 17);
        benchmark::DoNotOptimize(fault::RearrangementCircuit::gather(
            std::span<const std::uint8_t, blockBytes>(scattered.recb),
            live, 17, n));
    }
}
BENCHMARK(BM_RearrangementScatterGather)->Arg(9)->Arg(37)->Arg(58);

void
BM_Secded527(benchmark::State &state)
{
    const fault::SecdedCodec &codec = fault::llcSecdedCodec();
    Xoshiro256StarStar rng(7);
    std::vector<std::uint8_t> data(codec.dataBits());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.nextBounded(2));
    const auto cw = codec.encode(data);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.decode(cw));
}
BENCHMARK(BM_Secded527);

void
BM_LlcDemandHit(benchmark::State &state)
{
    hybrid::HybridLlcConfig config;
    config.numSets = 128;
    config.policy = hybrid::PolicyKind::CpSd;
    const fault::NvmGeometry geom{ config.numSets, config.nvmWays, 64 };
    const fault::EnduranceModel endurance(
        geom, { 1e12, 0.0 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte);
    hybrid::HybridLlc llc(config, &map);

    llc.onPut(1024, false, 30);
    for (auto _ : state)
        benchmark::DoNotOptimize(llc.onGetS(1024));
}
BENCHMARK(BM_LlcDemandHit);

void
BM_TraceReplay(benchmark::State &state)
{
    static const replay::LlcTrace trace = hierarchy::captureTrace(
        workload::tableVMixes()[0], 2048,
        hierarchy::PrivateCacheConfig{ 2048, 4, 8192, 16 }, 100'000, 1);

    hybrid::HybridLlcConfig config;
    config.numSets = 128;
    config.policy = hybrid::PolicyKind::CpSd;
    const fault::NvmGeometry geom{ config.numSets, config.nvmWays, 64 };
    const fault::EnduranceModel endurance(
        geom, { 1e12, 0.0 }, Xoshiro256StarStar(1));
    fault::FaultMap map(endurance, fault::DisableGranularity::Byte);
    hybrid::HybridLlc llc(config, &map);

    const replay::TraceReplayer replayer(0.2);
    for (auto _ : state)
        benchmark::DoNotOptimize(replayer.replay(trace, llc));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * trace.size());
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
