/**
 * @file
 * Figure 10c: endurance-variability sensitivity — coefficient of
 * variation raised from 0.20 to 0.25 (same mean 1e10).
 *
 * Paper reference: frame-disabling caches suffer drastically (BH 2.7 ->
 * 1.6 months, LHybrid 53 -> 30), byte-disabling caches barely move
 * (CP_SD 45 -> 42), so the CP_SD family beats LHybrid on BOTH axes.
 */

#include <cstdio>

#include "common/logging.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    sim::SystemConfig config = sim::SystemConfig::tableIV();
    config.jobs = sim::parseJobsArg(argc, argv);
    config.endurance.cv = 0.25;
    sim::printConfigHeader(config,
                           "Figure 10c: endurance cv = 0.25 sensitivity");
    const sim::Experiment experiment(config);

    hybrid::PolicyParams th4;
    th4.thPercent = 4.0;
    hybrid::PolicyParams th8;
    th8.thPercent = 8.0;

    const std::vector<sim::StudyEntry> entries = {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "BH_CP", config.llcConfig(PolicyKind::BhCp) },
        { "LHybrid", config.llcConfig(PolicyKind::LHybrid) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
        { "CP_SD_Th4", config.llcConfig(PolicyKind::CpSdTh, th4) },
        { "CP_SD_Th8", config.llcConfig(PolicyKind::CpSdTh, th8) },
    };
    return sim::runAndPrintForecastStudy(
        experiment, entries, {}, sim::parseCheckpointArgs(argc, argv),
        sim::parseStatsOutArg(argc, argv),
        sim::parseResilienceArgs(argc, argv));
}
