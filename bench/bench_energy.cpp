/**
 * @file
 * LLC energy comparison across insertion policies.
 *
 * TAP's original motivation is energy (25% reduction vs LRU, paper
 * Sec. I); this harness converts each policy's LLC event counters into
 * an energy breakdown: SRAM leakage dominates statically, NVM writes
 * dominate dynamically, and both compression (fewer bytes switched) and
 * conservative NVM insertion cut the write energy.
 */

#include <cstdio>
#include <memory>

#include "common/logging.hh"
#include "hierarchy/energy.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(config, "LLC energy by insertion policy");
    const sim::Experiment experiment(config, 10);

    std::printf("\n%-10s %12s %12s %12s %12s %12s %10s\n", "policy",
                "SRAM dyn", "NVM read", "NVM write", "off-chip",
                "total (mJ)", "vs BH");

    double bh_total = 0.0;
    for (const PolicyKind policy :
         { PolicyKind::Bh, PolicyKind::BhCp, PolicyKind::LHybrid,
           PolicyKind::Tap, PolicyKind::CpSd }) {
        // Re-run the phase with a dedicated LLC so we can read its
        // counters (PhaseSummary only carries aggregates).
        const auto llc_config = config.llcConfig(policy);
        std::unique_ptr<fault::EnduranceModel> endurance;
        std::unique_ptr<fault::FaultMap> map;
        endurance = std::make_unique<fault::EnduranceModel>(
            experiment.makeEndurance(llc_config));
        map = std::make_unique<fault::FaultMap>(
            *endurance, hybrid::InsertionPolicy::create(policy)
                            ->granularity());
        hybrid::HybridLlc llc(llc_config, map.get());
        const auto agg = forecast::replayAllTraces(
            experiment.tracePtrs(), llc, config.timing, 0.2);

        const auto energy = hierarchy::llcEnergy(
            llc.stats(), llc_config.sramWays, agg.measuredSeconds);
        if (policy == PolicyKind::Bh)
            bh_total = energy.total();

        std::printf("%-10s %12.3f %12.3f %12.3f %12.3f %12.3f %10.3f\n",
                    std::string(policyName(policy)).c_str(),
                    energy.sramDynamic / 1e6, energy.nvmRead / 1e6,
                    energy.nvmWrite / 1e6, energy.offChip / 1e6,
                    energy.total() / 1e6,
                    bh_total > 0 ? energy.total() / bh_total : 1.0);
    }
    std::printf("\n# (leakage omitted from columns; included in "
                "totals)\n");
    return 0;
}
