/**
 * @file
 * Figure 7: bytes written to the NVM part by CA and CA_RWR for each
 * CPth, plus the CP_SD adaptive line, normalized to BH. Ten Table V
 * mixes, 100% NVM capacity.
 *
 * Paper reference: CA varies between ~5% (CPth 30) and ~80% (CPth 64)
 * of BH; CA_RWR reduces bytes written substantially at high CPth
 * (up to 73% below CA at CPth 51); CP_SD writes ~16.6% of BH.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "compression/encoding.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const std::string stats_out = sim::parseStatsOutArg(argc, argv);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(
        config, "Figure 7: normalized NVM bytes written vs CPth");
    const sim::Experiment experiment(config);

    std::vector<sim::PhaseSummary> summaries;
    const auto bh =
        experiment.runPhase(config.llcConfig(PolicyKind::Bh), "BH");
    const auto bh_bytes =
        static_cast<double>(bh.aggregate.nvmBytesWritten);
    summaries.push_back(bh);
    std::printf("# BH bytes written: %.0f (normalization basis)\n\n",
                bh_bytes);

    std::printf("%6s %12s %12s\n", "CPth", "CA", "CA_RWR");
    for (unsigned cpth : compression::cpthCandidates()) {
        hybrid::PolicyParams params;
        params.fixedCpth = cpth;
        const std::string suffix = "_cpth" + formatU64(cpth);
        const auto ca = experiment.runPhase(
            config.llcConfig(PolicyKind::Ca, params), "CA" + suffix);
        const auto rwr = experiment.runPhase(
            config.llcConfig(PolicyKind::CaRwr, params),
            "CA_RWR" + suffix);
        std::printf("%6u %12.4f %12.4f\n", cpth,
                    ca.aggregate.nvmBytesWritten / bh_bytes,
                    rwr.aggregate.nvmBytesWritten / bh_bytes);
        summaries.push_back(ca);
        summaries.push_back(rwr);
    }

    const auto cpsd =
        experiment.runPhase(config.llcConfig(PolicyKind::CpSd), "CP_SD");
    std::printf("\nCP_SD (Set Dueling): %.4f of BH\n",
                cpsd.aggregate.nvmBytesWritten / bh_bytes);
    summaries.push_back(cpsd);

    sim::exportPhaseStudy(stats_out, "fig7-byteswritten", summaries);
    return 0;
}
