/**
 * @file
 * Figure 7: bytes written to the NVM part by CA and CA_RWR for each
 * CPth, plus the CP_SD adaptive line, normalized to BH. Ten Table V
 * mixes, 100% NVM capacity.
 *
 * Paper reference: CA varies between ~5% (CPth 30) and ~80% (CPth 64)
 * of BH; CA_RWR reduces bytes written substantially at high CPth
 * (up to 73% below CA at CPth 51); CP_SD writes ~16.6% of BH.
 */

#include <cstdio>

#include "common/logging.hh"
#include "compression/encoding.hh"
#include "sim/experiment.hh"

using namespace hllc;
using hybrid::PolicyKind;

int
main()
{
    setLogLevel(LogLevel::Warn);
    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    sim::printConfigHeader(
        config, "Figure 7: normalized NVM bytes written vs CPth");
    const sim::Experiment experiment(config);

    const auto bh =
        experiment.runPhase(config.llcConfig(PolicyKind::Bh), "BH");
    const auto bh_bytes =
        static_cast<double>(bh.aggregate.nvmBytesWritten);
    std::printf("# BH bytes written: %.0f (normalization basis)\n\n",
                bh_bytes);

    std::printf("%6s %12s %12s\n", "CPth", "CA", "CA_RWR");
    for (unsigned cpth : compression::cpthCandidates()) {
        hybrid::PolicyParams params;
        params.fixedCpth = cpth;
        const auto ca = experiment.runPhase(
            config.llcConfig(PolicyKind::Ca, params), "CA");
        const auto rwr = experiment.runPhase(
            config.llcConfig(PolicyKind::CaRwr, params), "CA_RWR");
        std::printf("%6u %12.4f %12.4f\n", cpth,
                    ca.aggregate.nvmBytesWritten / bh_bytes,
                    rwr.aggregate.nvmBytesWritten / bh_bytes);
    }

    const auto cpsd =
        experiment.runPhase(config.llcConfig(PolicyKind::CpSd), "CP_SD");
    std::printf("\nCP_SD (Set Dueling): %.4f of BH\n",
                cpsd.aggregate.nvmBytesWritten / bh_bytes);
    return 0;
}
