# Empty compiler generated dependencies file for bench_fig11b_nvmlatency.
# This may be replaced when dependencies are built.
