file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_nvmlatency.dir/bench_fig11b_nvmlatency.cpp.o"
  "CMakeFiles/bench_fig11b_nvmlatency.dir/bench_fig11b_nvmlatency.cpp.o.d"
  "bench_fig11b_nvmlatency"
  "bench_fig11b_nvmlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_nvmlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
