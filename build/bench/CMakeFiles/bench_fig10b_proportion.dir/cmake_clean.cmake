file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_proportion.dir/bench_fig10b_proportion.cpp.o"
  "CMakeFiles/bench_fig10b_proportion.dir/bench_fig10b_proportion.cpp.o.d"
  "bench_fig10b_proportion"
  "bench_fig10b_proportion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_proportion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
