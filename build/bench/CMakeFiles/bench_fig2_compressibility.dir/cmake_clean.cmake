file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_compressibility.dir/bench_fig2_compressibility.cpp.o"
  "CMakeFiles/bench_fig2_compressibility.dir/bench_fig2_compressibility.cpp.o.d"
  "bench_fig2_compressibility"
  "bench_fig2_compressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_compressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
