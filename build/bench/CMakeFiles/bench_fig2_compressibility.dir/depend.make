# Empty dependencies file for bench_fig2_compressibility.
# This may be replaced when dependencies are built.
