# Empty compiler generated dependencies file for bench_fig10c_cv.
# This may be replaced when dependencies are built.
