file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10c_cv.dir/bench_fig10c_cv.cpp.o"
  "CMakeFiles/bench_fig10c_cv.dir/bench_fig10c_cv.cpp.o.d"
  "bench_fig10c_cv"
  "bench_fig10c_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10c_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
