file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_l2size.dir/bench_fig11a_l2size.cpp.o"
  "CMakeFiles/bench_fig11a_l2size.dir/bench_fig11a_l2size.cpp.o.d"
  "bench_fig11a_l2size"
  "bench_fig11a_l2size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_l2size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
