# Empty compiler generated dependencies file for bench_fig11a_l2size.
# This may be replaced when dependencies are built.
