# Empty dependencies file for bench_fig7_byteswritten.
# This may be replaced when dependencies are built.
