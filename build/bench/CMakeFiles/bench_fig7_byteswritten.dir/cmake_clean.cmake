file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_byteswritten.dir/bench_fig7_byteswritten.cpp.o"
  "CMakeFiles/bench_fig7_byteswritten.dir/bench_fig7_byteswritten.cpp.o.d"
  "bench_fig7_byteswritten"
  "bench_fig7_byteswritten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_byteswritten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
