# Empty dependencies file for bench_fig10a_main.
# This may be replaced when dependencies are built.
