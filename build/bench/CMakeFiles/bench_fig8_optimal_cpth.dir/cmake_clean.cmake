file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_optimal_cpth.dir/bench_fig8_optimal_cpth.cpp.o"
  "CMakeFiles/bench_fig8_optimal_cpth.dir/bench_fig8_optimal_cpth.cpp.o.d"
  "bench_fig8_optimal_cpth"
  "bench_fig8_optimal_cpth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_optimal_cpth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
