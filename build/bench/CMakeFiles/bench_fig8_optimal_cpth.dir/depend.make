# Empty dependencies file for bench_fig8_optimal_cpth.
# This may be replaced when dependencies are built.
