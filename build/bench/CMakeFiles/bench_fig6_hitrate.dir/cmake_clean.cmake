file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hitrate.dir/bench_fig6_hitrate.cpp.o"
  "CMakeFiles/bench_fig6_hitrate.dir/bench_fig6_hitrate.cpp.o.d"
  "bench_fig6_hitrate"
  "bench_fig6_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
