file(REMOVE_RECURSE
  "CMakeFiles/lifetime_forecast.dir/lifetime_forecast.cpp.o"
  "CMakeFiles/lifetime_forecast.dir/lifetime_forecast.cpp.o.d"
  "lifetime_forecast"
  "lifetime_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
