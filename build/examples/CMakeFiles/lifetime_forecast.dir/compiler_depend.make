# Empty compiler generated dependencies file for lifetime_forecast.
# This may be replaced when dependencies are built.
