# Empty dependencies file for compressibility_survey.
# This may be replaced when dependencies are built.
