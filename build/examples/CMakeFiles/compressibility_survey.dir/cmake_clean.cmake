file(REMOVE_RECURSE
  "CMakeFiles/compressibility_survey.dir/compressibility_survey.cpp.o"
  "CMakeFiles/compressibility_survey.dir/compressibility_survey.cpp.o.d"
  "compressibility_survey"
  "compressibility_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressibility_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
