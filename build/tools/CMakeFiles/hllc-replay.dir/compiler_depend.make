# Empty compiler generated dependencies file for hllc-replay.
# This may be replaced when dependencies are built.
