file(REMOVE_RECURSE
  "CMakeFiles/hllc-replay.dir/hllc_replay.cpp.o"
  "CMakeFiles/hllc-replay.dir/hllc_replay.cpp.o.d"
  "hllc-replay"
  "hllc-replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc-replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
