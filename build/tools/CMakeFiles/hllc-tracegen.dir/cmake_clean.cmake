file(REMOVE_RECURSE
  "CMakeFiles/hllc-tracegen.dir/hllc_tracegen.cpp.o"
  "CMakeFiles/hllc-tracegen.dir/hllc_tracegen.cpp.o.d"
  "hllc-tracegen"
  "hllc-tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc-tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
