# Empty dependencies file for hllc-tracegen.
# This may be replaced when dependencies are built.
