file(REMOVE_RECURSE
  "libhllc_hybrid.a"
)
