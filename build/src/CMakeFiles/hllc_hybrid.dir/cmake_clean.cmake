file(REMOVE_RECURSE
  "CMakeFiles/hllc_hybrid.dir/hybrid/hybrid_llc.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/hybrid_llc.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/insertion_policy.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/insertion_policy.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_bh.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_bh.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_ca.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_ca.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_cpsd.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_cpsd.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_lhybrid.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_lhybrid.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_tap.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/policy_tap.cc.o.d"
  "CMakeFiles/hllc_hybrid.dir/hybrid/set_dueling.cc.o"
  "CMakeFiles/hllc_hybrid.dir/hybrid/set_dueling.cc.o.d"
  "libhllc_hybrid.a"
  "libhllc_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
