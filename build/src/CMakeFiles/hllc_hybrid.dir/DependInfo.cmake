
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hybrid/hybrid_llc.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/hybrid_llc.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/hybrid_llc.cc.o.d"
  "/root/repo/src/hybrid/insertion_policy.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/insertion_policy.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/insertion_policy.cc.o.d"
  "/root/repo/src/hybrid/policy_bh.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_bh.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_bh.cc.o.d"
  "/root/repo/src/hybrid/policy_ca.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_ca.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_ca.cc.o.d"
  "/root/repo/src/hybrid/policy_cpsd.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_cpsd.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_cpsd.cc.o.d"
  "/root/repo/src/hybrid/policy_lhybrid.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_lhybrid.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_lhybrid.cc.o.d"
  "/root/repo/src/hybrid/policy_tap.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_tap.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/policy_tap.cc.o.d"
  "/root/repo/src/hybrid/set_dueling.cc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/set_dueling.cc.o" "gcc" "src/CMakeFiles/hllc_hybrid.dir/hybrid/set_dueling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
