# Empty compiler generated dependencies file for hllc_hybrid.
# This may be replaced when dependencies are built.
