# Empty compiler generated dependencies file for hllc_forecast.
# This may be replaced when dependencies are built.
