file(REMOVE_RECURSE
  "CMakeFiles/hllc_forecast.dir/forecast/aging.cc.o"
  "CMakeFiles/hllc_forecast.dir/forecast/aging.cc.o.d"
  "CMakeFiles/hllc_forecast.dir/forecast/forecast.cc.o"
  "CMakeFiles/hllc_forecast.dir/forecast/forecast.cc.o.d"
  "libhllc_forecast.a"
  "libhllc_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
