file(REMOVE_RECURSE
  "libhllc_forecast.a"
)
