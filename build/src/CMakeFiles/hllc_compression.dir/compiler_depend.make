# Empty compiler generated dependencies file for hllc_compression.
# This may be replaced when dependencies are built.
