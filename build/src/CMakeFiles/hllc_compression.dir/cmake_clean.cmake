file(REMOVE_RECURSE
  "CMakeFiles/hllc_compression.dir/compression/bdi.cc.o"
  "CMakeFiles/hllc_compression.dir/compression/bdi.cc.o.d"
  "CMakeFiles/hllc_compression.dir/compression/compressor.cc.o"
  "CMakeFiles/hllc_compression.dir/compression/compressor.cc.o.d"
  "CMakeFiles/hllc_compression.dir/compression/cpack.cc.o"
  "CMakeFiles/hllc_compression.dir/compression/cpack.cc.o.d"
  "CMakeFiles/hllc_compression.dir/compression/encoding.cc.o"
  "CMakeFiles/hllc_compression.dir/compression/encoding.cc.o.d"
  "CMakeFiles/hllc_compression.dir/compression/fpc.cc.o"
  "CMakeFiles/hllc_compression.dir/compression/fpc.cc.o.d"
  "libhllc_compression.a"
  "libhllc_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
