file(REMOVE_RECURSE
  "libhllc_compression.a"
)
