
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/bdi.cc" "src/CMakeFiles/hllc_compression.dir/compression/bdi.cc.o" "gcc" "src/CMakeFiles/hllc_compression.dir/compression/bdi.cc.o.d"
  "/root/repo/src/compression/compressor.cc" "src/CMakeFiles/hllc_compression.dir/compression/compressor.cc.o" "gcc" "src/CMakeFiles/hllc_compression.dir/compression/compressor.cc.o.d"
  "/root/repo/src/compression/cpack.cc" "src/CMakeFiles/hllc_compression.dir/compression/cpack.cc.o" "gcc" "src/CMakeFiles/hllc_compression.dir/compression/cpack.cc.o.d"
  "/root/repo/src/compression/encoding.cc" "src/CMakeFiles/hllc_compression.dir/compression/encoding.cc.o" "gcc" "src/CMakeFiles/hllc_compression.dir/compression/encoding.cc.o.d"
  "/root/repo/src/compression/fpc.cc" "src/CMakeFiles/hllc_compression.dir/compression/fpc.cc.o" "gcc" "src/CMakeFiles/hllc_compression.dir/compression/fpc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
