file(REMOVE_RECURSE
  "CMakeFiles/hllc_cache.dir/cache/lru.cc.o"
  "CMakeFiles/hllc_cache.dir/cache/lru.cc.o.d"
  "CMakeFiles/hllc_cache.dir/cache/set_assoc.cc.o"
  "CMakeFiles/hllc_cache.dir/cache/set_assoc.cc.o.d"
  "libhllc_cache.a"
  "libhllc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
