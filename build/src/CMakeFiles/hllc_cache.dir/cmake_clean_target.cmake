file(REMOVE_RECURSE
  "libhllc_cache.a"
)
