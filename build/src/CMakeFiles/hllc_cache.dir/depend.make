# Empty dependencies file for hllc_cache.
# This may be replaced when dependencies are built.
