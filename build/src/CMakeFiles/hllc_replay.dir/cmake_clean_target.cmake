file(REMOVE_RECURSE
  "libhllc_replay.a"
)
