# Empty compiler generated dependencies file for hllc_replay.
# This may be replaced when dependencies are built.
