file(REMOVE_RECURSE
  "CMakeFiles/hllc_replay.dir/replay/llc_trace.cc.o"
  "CMakeFiles/hllc_replay.dir/replay/llc_trace.cc.o.d"
  "CMakeFiles/hllc_replay.dir/replay/replayer.cc.o"
  "CMakeFiles/hllc_replay.dir/replay/replayer.cc.o.d"
  "libhllc_replay.a"
  "libhllc_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
