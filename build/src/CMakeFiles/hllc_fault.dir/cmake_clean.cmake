file(REMOVE_RECURSE
  "CMakeFiles/hllc_fault.dir/fault/endurance.cc.o"
  "CMakeFiles/hllc_fault.dir/fault/endurance.cc.o.d"
  "CMakeFiles/hllc_fault.dir/fault/fault_map.cc.o"
  "CMakeFiles/hllc_fault.dir/fault/fault_map.cc.o.d"
  "CMakeFiles/hllc_fault.dir/fault/rearrangement.cc.o"
  "CMakeFiles/hllc_fault.dir/fault/rearrangement.cc.o.d"
  "CMakeFiles/hllc_fault.dir/fault/secded.cc.o"
  "CMakeFiles/hllc_fault.dir/fault/secded.cc.o.d"
  "CMakeFiles/hllc_fault.dir/fault/wear_level.cc.o"
  "CMakeFiles/hllc_fault.dir/fault/wear_level.cc.o.d"
  "libhllc_fault.a"
  "libhllc_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
