
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/endurance.cc" "src/CMakeFiles/hllc_fault.dir/fault/endurance.cc.o" "gcc" "src/CMakeFiles/hllc_fault.dir/fault/endurance.cc.o.d"
  "/root/repo/src/fault/fault_map.cc" "src/CMakeFiles/hllc_fault.dir/fault/fault_map.cc.o" "gcc" "src/CMakeFiles/hllc_fault.dir/fault/fault_map.cc.o.d"
  "/root/repo/src/fault/rearrangement.cc" "src/CMakeFiles/hllc_fault.dir/fault/rearrangement.cc.o" "gcc" "src/CMakeFiles/hllc_fault.dir/fault/rearrangement.cc.o.d"
  "/root/repo/src/fault/secded.cc" "src/CMakeFiles/hllc_fault.dir/fault/secded.cc.o" "gcc" "src/CMakeFiles/hllc_fault.dir/fault/secded.cc.o.d"
  "/root/repo/src/fault/wear_level.cc" "src/CMakeFiles/hllc_fault.dir/fault/wear_level.cc.o" "gcc" "src/CMakeFiles/hllc_fault.dir/fault/wear_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
