# Empty compiler generated dependencies file for hllc_fault.
# This may be replaced when dependencies are built.
