file(REMOVE_RECURSE
  "libhllc_fault.a"
)
