file(REMOVE_RECURSE
  "CMakeFiles/hllc_common.dir/common/logging.cc.o"
  "CMakeFiles/hllc_common.dir/common/logging.cc.o.d"
  "CMakeFiles/hllc_common.dir/common/rng.cc.o"
  "CMakeFiles/hllc_common.dir/common/rng.cc.o.d"
  "CMakeFiles/hllc_common.dir/common/stats.cc.o"
  "CMakeFiles/hllc_common.dir/common/stats.cc.o.d"
  "libhllc_common.a"
  "libhllc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
