file(REMOVE_RECURSE
  "libhllc_common.a"
)
