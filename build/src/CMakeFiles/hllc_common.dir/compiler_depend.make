# Empty compiler generated dependencies file for hllc_common.
# This may be replaced when dependencies are built.
