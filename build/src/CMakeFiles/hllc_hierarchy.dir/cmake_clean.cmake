file(REMOVE_RECURSE
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/energy.cc.o"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/energy.cc.o.d"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/hierarchy.cc.o"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/hierarchy.cc.o.d"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/private_cache.cc.o"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/private_cache.cc.o.d"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/timing.cc.o"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/timing.cc.o.d"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/trace_recorder.cc.o"
  "CMakeFiles/hllc_hierarchy.dir/hierarchy/trace_recorder.cc.o.d"
  "libhllc_hierarchy.a"
  "libhllc_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
