file(REMOVE_RECURSE
  "libhllc_hierarchy.a"
)
