
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/energy.cc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/energy.cc.o" "gcc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/energy.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy.cc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/hierarchy.cc.o" "gcc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/private_cache.cc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/private_cache.cc.o" "gcc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/private_cache.cc.o.d"
  "/root/repo/src/hierarchy/timing.cc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/timing.cc.o" "gcc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/timing.cc.o.d"
  "/root/repo/src/hierarchy/trace_recorder.cc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/trace_recorder.cc.o" "gcc" "src/CMakeFiles/hllc_hierarchy.dir/hierarchy/trace_recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
