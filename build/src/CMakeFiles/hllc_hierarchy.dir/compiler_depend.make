# Empty compiler generated dependencies file for hllc_hierarchy.
# This may be replaced when dependencies are built.
