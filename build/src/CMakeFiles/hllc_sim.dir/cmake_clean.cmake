file(REMOVE_RECURSE
  "CMakeFiles/hllc_sim.dir/sim/config.cc.o"
  "CMakeFiles/hllc_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/hllc_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/hllc_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/hllc_sim.dir/sim/system.cc.o"
  "CMakeFiles/hllc_sim.dir/sim/system.cc.o.d"
  "libhllc_sim.a"
  "libhllc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
