file(REMOVE_RECURSE
  "libhllc_sim.a"
)
