# Empty compiler generated dependencies file for hllc_sim.
# This may be replaced when dependencies are built.
