
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_model.cc" "src/CMakeFiles/hllc_workload.dir/workload/app_model.cc.o" "gcc" "src/CMakeFiles/hllc_workload.dir/workload/app_model.cc.o.d"
  "/root/repo/src/workload/block_synth.cc" "src/CMakeFiles/hllc_workload.dir/workload/block_synth.cc.o" "gcc" "src/CMakeFiles/hllc_workload.dir/workload/block_synth.cc.o.d"
  "/root/repo/src/workload/mixes.cc" "src/CMakeFiles/hllc_workload.dir/workload/mixes.cc.o" "gcc" "src/CMakeFiles/hllc_workload.dir/workload/mixes.cc.o.d"
  "/root/repo/src/workload/spec_profiles.cc" "src/CMakeFiles/hllc_workload.dir/workload/spec_profiles.cc.o" "gcc" "src/CMakeFiles/hllc_workload.dir/workload/spec_profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
