# Empty compiler generated dependencies file for hllc_workload.
# This may be replaced when dependencies are built.
