file(REMOVE_RECURSE
  "CMakeFiles/hllc_workload.dir/workload/app_model.cc.o"
  "CMakeFiles/hllc_workload.dir/workload/app_model.cc.o.d"
  "CMakeFiles/hllc_workload.dir/workload/block_synth.cc.o"
  "CMakeFiles/hllc_workload.dir/workload/block_synth.cc.o.d"
  "CMakeFiles/hllc_workload.dir/workload/mixes.cc.o"
  "CMakeFiles/hllc_workload.dir/workload/mixes.cc.o.d"
  "CMakeFiles/hllc_workload.dir/workload/spec_profiles.cc.o"
  "CMakeFiles/hllc_workload.dir/workload/spec_profiles.cc.o.d"
  "libhllc_workload.a"
  "libhllc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hllc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
