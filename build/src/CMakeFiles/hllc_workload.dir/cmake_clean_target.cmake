file(REMOVE_RECURSE
  "libhllc_workload.a"
)
