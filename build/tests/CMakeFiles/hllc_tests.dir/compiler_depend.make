# Empty compiler generated dependencies file for hllc_tests.
# This may be replaced when dependencies are built.
