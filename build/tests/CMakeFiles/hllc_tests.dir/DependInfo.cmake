
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bdi.cc" "tests/CMakeFiles/hllc_tests.dir/test_bdi.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_bdi.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/hllc_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_capture_fidelity.cc" "tests/CMakeFiles/hllc_tests.dir/test_capture_fidelity.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_capture_fidelity.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/hllc_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_compressor.cc" "tests/CMakeFiles/hllc_tests.dir/test_compressor.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_compressor.cc.o.d"
  "/root/repo/tests/test_cpack.cc" "tests/CMakeFiles/hllc_tests.dir/test_cpack.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_cpack.cc.o.d"
  "/root/repo/tests/test_encoding.cc" "tests/CMakeFiles/hllc_tests.dir/test_encoding.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_encoding.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/hllc_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/hllc_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fault.cc" "tests/CMakeFiles/hllc_tests.dir/test_fault.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_fault.cc.o.d"
  "/root/repo/tests/test_forecast.cc" "tests/CMakeFiles/hllc_tests.dir/test_forecast.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_forecast.cc.o.d"
  "/root/repo/tests/test_fpc.cc" "tests/CMakeFiles/hllc_tests.dir/test_fpc.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_fpc.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/hllc_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_hybrid_llc.cc" "tests/CMakeFiles/hllc_tests.dir/test_hybrid_llc.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_hybrid_llc.cc.o.d"
  "/root/repo/tests/test_llc_properties.cc" "tests/CMakeFiles/hllc_tests.dir/test_llc_properties.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_llc_properties.cc.o.d"
  "/root/repo/tests/test_policies.cc" "tests/CMakeFiles/hllc_tests.dir/test_policies.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_policies.cc.o.d"
  "/root/repo/tests/test_rearrangement.cc" "tests/CMakeFiles/hllc_tests.dir/test_rearrangement.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_rearrangement.cc.o.d"
  "/root/repo/tests/test_replay.cc" "tests/CMakeFiles/hllc_tests.dir/test_replay.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_replay.cc.o.d"
  "/root/repo/tests/test_secded.cc" "tests/CMakeFiles/hllc_tests.dir/test_secded.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_secded.cc.o.d"
  "/root/repo/tests/test_set_dueling.cc" "tests/CMakeFiles/hllc_tests.dir/test_set_dueling.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_set_dueling.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/hllc_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_srrip.cc" "tests/CMakeFiles/hllc_tests.dir/test_srrip.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_srrip.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/hllc_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/hllc_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hllc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_hybrid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hllc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
