/**
 * @file
 * hllc_replay: replay a captured .hlt trace against a chosen LLC
 * insertion policy and print hit rate, NVM write traffic, IPC and the
 * LLC's full statistics.
 *
 * Usage: hllc_replay <trace.hlt> [policy] [cpth]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "forecast/forecast.hh"
#include "sim/config.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

PolicyKind
parsePolicy(const char *name)
{
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (std::strcmp(name, label) == 0)
            return kind;
    }
    fatal("unknown policy '%s'", name);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <trace.hlt> [policy] [cpth]\n",
                     argv[0]);
        return 2;
    }
    const replay::LlcTrace trace = replay::LlcTrace::load(argv[1]);
    const PolicyKind policy =
        argc > 2 ? parsePolicy(argv[2]) : PolicyKind::CpSd;

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    hybrid::PolicyParams params;
    if (argc > 3)
        params.fixedCpth = static_cast<unsigned>(std::atoi(argv[3]));
    const auto llc_config = policy == PolicyKind::SramOnly
        ? config.llcConfigSramBound(config.sramWays + config.nvmWays)
        : config.llcConfig(policy, params);

    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    if (llc_config.nvmWays > 0) {
        endurance = std::make_unique<fault::EnduranceModel>(
            config.nvmGeometry(), config.endurance,
            Xoshiro256StarStar(config.seed));
        map = std::make_unique<fault::FaultMap>(
            *endurance, hybrid::InsertionPolicy::create(
                            llc_config.policy, llc_config.params)
                            ->granularity());
    }
    hybrid::HybridLlc llc(llc_config, map.get());

    const auto agg = forecast::replayAllTraces(
        { &trace }, llc, config.timing, 0.2);

    std::printf("trace %s (%s): %zu events\n", argv[1],
                trace.meta().mixName.c_str(), trace.size());
    std::printf("policy %s | hit rate %.4f | NVM bytes %llu | "
                "mean IPC %.4f\n",
                std::string(llc.policy().name()).c_str(), agg.hitRate,
                static_cast<unsigned long long>(agg.nvmBytesWritten),
                agg.meanIpc);
    std::printf("\nLLC statistics:\n");
    llc.stats().dump(std::cout);
    return 0;
}
