/**
 * @file
 * hllc_replay: replay a captured .hlt trace against one or more LLC
 * insertion policies and print hit rate, NVM write traffic, IPC and the
 * LLC's full statistics.
 *
 * Usage: hllc_replay <trace.hlt> [policy[,policy...]] [cpth] [--jobs N]
 *                    [--stats-out <file>.{json,csv}]
 *
 * Several comma-separated policies form a grid replayed in parallel
 * (sim::runGrid); results print in the order given on the command line
 * and are byte-identical for every --jobs value. With --stats-out the
 * measured window of every policy cell is additionally sampled at 20
 * interval boundaries (per-interval IPC, hit rate, NVM writes/bytes and
 * the Set Dueling CPth winner) and exported in the hllc-stats-v1
 * schema.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>

#include "check/manifest.hh"
#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "forecast/forecast.hh"
#include "hierarchy/timing.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

PolicyKind
parsePolicy(const std::string &name)
{
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (name == label)
            return kind;
    }
    fatal("unknown policy '%s'", name.c_str());
}

std::vector<PolicyKind>
parsePolicyList(const char *arg)
{
    std::vector<PolicyKind> policies;
    std::stringstream stream(arg);
    std::string token;
    while (std::getline(stream, token, ','))
        policies.push_back(parsePolicy(token));
    if (policies.empty())
        fatal("empty policy list '%s'", arg);
    return policies;
}

/** Everything one grid cell reports, pre-formatted off-thread. */
struct ReplayResult
{
    std::string policyName;
    forecast::PhaseAggregate aggregate;
    std::string statsDump;
    /** Per-interval series (only filled under --stats-out). */
    metrics::MetricRegistry registry;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/** Measured-window intervals sampled per cell under --stats-out. */
constexpr std::size_t statsIntervals = 20;

/**
 * The trace's private-level activity summed over cores, for the
 * per-interval IPC estimate: intervals slice the LLC event stream, not
 * per-core windows, so the interval IPC is that of one virtual core
 * carrying the whole mix (baseCPI weighted by instruction count).
 */
struct AggregateMeta
{
    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    double baseCpi = 0.4;
};

AggregateMeta
aggregateMeta(const replay::LlcTrace &trace)
{
    AggregateMeta meta;
    double cpi_weight = 0.0;
    for (const replay::CoreMeta &m : trace.meta().cores) {
        if (m.refs == 0)
            continue;
        meta.instructions += m.instructions;
        meta.refs += m.refs;
        meta.l1Hits += m.l1Hits;
        meta.l2Hits += m.l2Hits;
        cpi_weight += m.baseCpi * static_cast<double>(m.instructions);
    }
    if (meta.instructions > 0)
        meta.baseCpi =
            cpi_weight / static_cast<double>(meta.instructions);
    return meta;
}

/** Cumulative state at the previous interval boundary (deltas). */
struct IntervalState
{
    std::uint64_t events = 0;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t hitsSram = 0;
    std::uint64_t hitsNvm = 0;
    std::uint64_t nvmWrites = 0;
    std::uint64_t nvmBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <trace.hlt> [policy[,policy...]] [cpth] "
                     "[--jobs N] [--stats-out <file>.{json,csv}]\n",
                     argv[0]);
        return 2;
    }
    const unsigned jobs = sim::parseJobsArg(argc, argv);
    const std::string stats_out = sim::parseStatsOutArg(argc, argv);
    replay::LlcTrace trace;
    try {
        trace = replay::LlcTrace::load(argv[1]);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }
    // A present-but-mismatching sidecar manifest means the trace on disk
    // is not the one that was captured; refuse to replay it.
    if (const auto mismatch = check::verifyManifest(argv[1], trace))
        fatal("%s", mismatch->c_str());
    const std::vector<PolicyKind> policies =
        argc > 2 && argv[2][0] != '-' ? parsePolicyList(argv[2])
                                      : std::vector<PolicyKind>{
                                            PolicyKind::CpSd };

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    hybrid::PolicyParams params;
    if (argc > 3 && argv[3][0] != '-') {
        // CPth is a byte threshold within a 64-byte block.
        const auto cpth = parseUnsigned(argv[3], 1, 64);
        if (!cpth) {
            std::fprintf(stderr,
                         "%s: bad cpth '%s' (expected an integer in "
                         "1..64)\n"
                         "usage: %s <trace.hlt> [policy[,policy...]] "
                         "[cpth] [--jobs N]\n",
                         argv[0], argv[3], argv[0]);
            return 2;
        }
        params.fixedCpth = *cpth;
    }

    const auto results = sim::runGrid(
        policies.size(),
        [&](std::size_t i) {
            const PolicyKind policy = policies[i];
            const auto llc_config = policy == PolicyKind::SramOnly
                ? config.llcConfigSramBound(config.sramWays +
                                            config.nvmWays)
                : config.llcConfig(policy, params);

            std::unique_ptr<fault::EnduranceModel> endurance;
            std::unique_ptr<fault::FaultMap> map;
            if (llc_config.nvmWays > 0) {
                // Same fabric for every policy cell (fair comparison):
                // keyed on the master seed only.
                endurance = std::make_unique<fault::EnduranceModel>(
                    config.nvmGeometry(), config.endurance,
                    Xoshiro256StarStar(config.seed));
                map = std::make_unique<fault::FaultMap>(
                    *endurance, hybrid::InsertionPolicy::create(
                                    llc_config.policy, llc_config.params)
                                    ->granularity());
            }
            hybrid::HybridLlc llc(llc_config, map.get());

            ReplayResult result;

            // Per-interval sampling: pure function of trace + LLC state
            // (deterministic for every --jobs value). The snapshot's
            // cumulative counts delta into interval values; the SRAM/NVM
            // hit split and the CPth winner read the live LLC, which is
            // safe because the callback fires synchronously mid-replay.
            replay::TraceReplayer::IntervalCallback on_interval;
            const double warmup_fraction = 0.2;
            if (!stats_out.empty()) {
                const std::size_t warmup_end = static_cast<std::size_t>(
                    warmup_fraction *
                    static_cast<double>(trace.size()));
                const double total_measured =
                    static_cast<double>(trace.size() - warmup_end);
                const AggregateMeta meta = aggregateMeta(trace);
                const double measured_frac = 1.0 - warmup_fraction;
                auto prev = std::make_shared<IntervalState>();
                on_interval =
                    [&llc, &config, meta, total_measured, measured_frac,
                     prev, &result](
                        const replay::IntervalSnapshot &snap) {
                    const StatGroup &s = llc.stats();
                    IntervalState now;
                    now.events = snap.measuredEvents;
                    now.accesses = snap.demandAccesses;
                    now.hits = snap.demandHits;
                    now.hitsSram = s.counterValue("gets_hits_sram") +
                                   s.counterValue("getx_hits_sram");
                    now.hitsNvm = s.counterValue("gets_hits_nvm") +
                                  s.counterValue("getx_hits_nvm");
                    now.nvmWrites = snap.nvmWrites;
                    now.nvmBytes = snap.nvmBytesWritten;

                    // Virtual-core activity for this event slice.
                    const double frac = total_measured > 0.0
                        ? static_cast<double>(now.events - prev->events) /
                          total_measured
                        : 0.0;
                    hierarchy::CoreActivity a;
                    a.instructions = static_cast<std::uint64_t>(
                        static_cast<double>(meta.instructions) *
                        measured_frac * frac);
                    a.refs = static_cast<std::uint64_t>(
                        static_cast<double>(meta.refs) * measured_frac *
                        frac);
                    a.l1Hits = static_cast<std::uint64_t>(
                        static_cast<double>(meta.l1Hits) *
                        measured_frac * frac);
                    a.l2Hits = static_cast<std::uint64_t>(
                        static_cast<double>(meta.l2Hits) *
                        measured_frac * frac);
                    a.llcHitsSram = now.hitsSram - prev->hitsSram;
                    a.llcHitsNvm = now.hitsNvm - prev->hitsNvm;
                    const std::uint64_t d_acc =
                        now.accesses - prev->accesses;
                    const std::uint64_t d_hits = now.hits - prev->hits;
                    a.llcMisses = d_acc - d_hits;
                    a.nvmWrites = now.nvmWrites - prev->nvmWrites;
                    a.baseCpi = meta.baseCpi;

                    metrics::MetricRegistry &reg = result.registry;
                    reg.series("interval").append(
                        static_cast<double>(snap.interval));
                    reg.series("mean_ipc").append(
                        hierarchy::coreIpc(a, config.timing));
                    reg.series("hit_rate").append(
                        d_acc == 0 ? 0.0
                                   : static_cast<double>(d_hits) /
                                     static_cast<double>(d_acc));
                    reg.series("nvm_writes").append(static_cast<double>(
                        now.nvmWrites - prev->nvmWrites));
                    reg.series("nvm_bytes_written")
                        .append(static_cast<double>(now.nvmBytes -
                                                    prev->nvmBytes));
                    reg.series("cpth_winner")
                        .append(llc.dueling()
                                    ? static_cast<double>(
                                          llc.dueling()->winner())
                                    : -1.0);
                    *prev = now;
                };
            }

            result.aggregate = forecast::replayAllTraces(
                { &trace }, llc, config.timing, warmup_fraction,
                on_interval, statsIntervals);
            result.policyName = std::string(llc.policy().name());
            for (const auto &[name, c] : llc.stats().counters())
                result.counters.emplace_back(name, c.value());
            std::ostringstream stats;
            llc.stats().dump(stats);
            result.statsDump = stats.str();
            return result;
        },
        jobs);

    std::printf("trace %s (%s): %zu events\n", argv[1],
                trace.meta().mixName.c_str(), trace.size());
    for (const auto &result : results) {
        std::printf("policy %s | hit rate %.4f | NVM bytes %llu | "
                    "mean IPC %.4f\n",
                    result.policyName.c_str(), result.aggregate.hitRate,
                    static_cast<unsigned long long>(
                        result.aggregate.nvmBytesWritten),
                    result.aggregate.meanIpc);
        std::printf("\nLLC statistics:\n%s", result.statsDump.c_str());
    }

    if (!stats_out.empty()) {
        std::vector<metrics::CellExport> cells;
        for (const auto &result : results) {
            metrics::CellExport cell;
            cell.label = result.policyName;
            cell.metrics = &result.registry;
            cell.counters = result.counters;
            cell.scalars = {
                { "hit_rate", result.aggregate.hitRate },
                { "mean_ipc", result.aggregate.meanIpc },
                { "nvm_bytes_written",
                  static_cast<double>(
                      result.aggregate.nvmBytesWritten) },
            };
            cells.push_back(std::move(cell));
        }
        try {
            metrics::writeStatsFile(stats_out, cells, "hllc-replay");
        } catch (const IoError &e) {
            fatal("%s", e.what());
        }
        inform("wrote stats to '%s'", stats_out.c_str());
    }

    // Wall-clock attribution (replacement dominates replays) when
    // HLLC_TIMERS=1; stderr keeps stdout byte-identical.
    const std::string timers = metrics::PhaseTimers::report();
    if (!timers.empty())
        std::fputs(timers.c_str(), stderr);
    return 0;
}
