/**
 * @file
 * hllc_replay: replay a captured .hlt trace against one or more LLC
 * insertion policies and print hit rate, NVM write traffic, IPC and the
 * LLC's full statistics.
 *
 * Usage: hllc_replay <trace.hlt> [policy[,policy...]] [cpth] [--jobs N]
 *
 * Several comma-separated policies form a grid replayed in parallel
 * (sim::runGrid); results print in the order given on the command line
 * and are byte-identical for every --jobs value.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>

#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "forecast/forecast.hh"
#include "sim/grid.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

PolicyKind
parsePolicy(const std::string &name)
{
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (name == label)
            return kind;
    }
    fatal("unknown policy '%s'", name.c_str());
}

std::vector<PolicyKind>
parsePolicyList(const char *arg)
{
    std::vector<PolicyKind> policies;
    std::stringstream stream(arg);
    std::string token;
    while (std::getline(stream, token, ','))
        policies.push_back(parsePolicy(token));
    if (policies.empty())
        fatal("empty policy list '%s'", arg);
    return policies;
}

/** Everything one grid cell reports, pre-formatted off-thread. */
struct ReplayResult
{
    std::string policyName;
    forecast::PhaseAggregate aggregate;
    std::string statsDump;
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <trace.hlt> [policy[,policy...]] [cpth] "
                     "[--jobs N]\n",
                     argv[0]);
        return 2;
    }
    const unsigned jobs = sim::parseJobsArg(argc, argv);
    replay::LlcTrace trace;
    try {
        trace = replay::LlcTrace::load(argv[1]);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }
    const std::vector<PolicyKind> policies =
        argc > 2 && argv[2][0] != '-' ? parsePolicyList(argv[2])
                                      : std::vector<PolicyKind>{
                                            PolicyKind::CpSd };

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    hybrid::PolicyParams params;
    if (argc > 3 && argv[3][0] != '-') {
        // CPth is a byte threshold within a 64-byte block.
        const auto cpth = parseUnsigned(argv[3], 1, 64);
        if (!cpth) {
            std::fprintf(stderr,
                         "%s: bad cpth '%s' (expected an integer in "
                         "1..64)\n"
                         "usage: %s <trace.hlt> [policy[,policy...]] "
                         "[cpth] [--jobs N]\n",
                         argv[0], argv[3], argv[0]);
            return 2;
        }
        params.fixedCpth = *cpth;
    }

    const auto results = sim::runGrid(
        policies.size(),
        [&](std::size_t i) {
            const PolicyKind policy = policies[i];
            const auto llc_config = policy == PolicyKind::SramOnly
                ? config.llcConfigSramBound(config.sramWays +
                                            config.nvmWays)
                : config.llcConfig(policy, params);

            std::unique_ptr<fault::EnduranceModel> endurance;
            std::unique_ptr<fault::FaultMap> map;
            if (llc_config.nvmWays > 0) {
                // Same fabric for every policy cell (fair comparison):
                // keyed on the master seed only.
                endurance = std::make_unique<fault::EnduranceModel>(
                    config.nvmGeometry(), config.endurance,
                    Xoshiro256StarStar(config.seed));
                map = std::make_unique<fault::FaultMap>(
                    *endurance, hybrid::InsertionPolicy::create(
                                    llc_config.policy, llc_config.params)
                                    ->granularity());
            }
            hybrid::HybridLlc llc(llc_config, map.get());

            ReplayResult result;
            result.aggregate = forecast::replayAllTraces(
                { &trace }, llc, config.timing, 0.2);
            result.policyName = std::string(llc.policy().name());
            std::ostringstream stats;
            llc.stats().dump(stats);
            result.statsDump = stats.str();
            return result;
        },
        jobs);

    std::printf("trace %s (%s): %zu events\n", argv[1],
                trace.meta().mixName.c_str(), trace.size());
    for (const auto &result : results) {
        std::printf("policy %s | hit rate %.4f | NVM bytes %llu | "
                    "mean IPC %.4f\n",
                    result.policyName.c_str(), result.aggregate.hitRate,
                    static_cast<unsigned long long>(
                        result.aggregate.nvmBytesWritten),
                    result.aggregate.meanIpc);
        std::printf("\nLLC statistics:\n%s", result.statsDump.c_str());
    }
    return 0;
}
