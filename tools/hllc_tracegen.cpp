/**
 * @file
 * hllc_tracegen: capture an LLC trace of a Table V mix to a .hlt file.
 *
 * Usage: hllc_tracegen <mix 1..10> <output.hlt> [refs_per_core]
 *
 * The trace records the LLC-bound GetS/GetX/Put stream behind the
 * private L1/L2 stacks at the current HLLC_SCALE; it can then be
 * replayed against any LLC configuration with hllc_replay.
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/config.hh"
#include "workload/mixes.hh"

using namespace hllc;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <mix 1..10> <output.hlt> "
                     "[refs_per_core]\n", argv[0]);
        return 2;
    }
    const int mix_number = std::atoi(argv[1]);
    if (mix_number < 1 || mix_number > 10)
        fatal("mix number must be in 1..10");
    const std::string path = argv[2];

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    const std::uint64_t refs = argc > 3
        ? std::strtoull(argv[3], nullptr, 10)
        : config.refsPerCore;

    const auto &mix = workload::tableVMixes()[mix_number - 1];
    inform("capturing %s: %llu refs/core at scale %.3g...",
           mix.name.c_str(), static_cast<unsigned long long>(refs),
           config.scale);

    const replay::LlcTrace trace = hierarchy::captureTrace(
        mix, config.llcBlocks(), config.privateCaches, refs,
        config.seed + static_cast<std::uint64_t>(mix_number) - 1,
        config.scheme);
    trace.save(path);

    std::printf("%s: %zu LLC events (%s) written\n", path.c_str(),
                trace.size(), mix.name.c_str());
    return 0;
}
