/**
 * @file
 * hllc_tracegen: capture an LLC trace of a Table V mix to a .hlt file.
 *
 * Usage: hllc_tracegen <mix 1..10> <output.hlt> [refs_per_core]
 *
 * The trace records the LLC-bound GetS/GetX/Put stream behind the
 * private L1/L2 stacks at the current HLLC_SCALE; it can then be
 * replayed against any LLC configuration with hllc_replay.
 */

#include <cstdio>
#include <string>

#include "check/manifest.hh"
#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/config.hh"
#include "workload/mixes.hh"

using namespace hllc;

namespace
{

int
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s <mix 1..10> <output.hlt> [refs_per_core]\n",
                 prog);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage(argv[0]);
    const auto mix_number = parseUnsigned(argv[1], 1, 10);
    if (!mix_number) {
        std::fprintf(stderr, "%s: bad mix number '%s'\n", argv[0],
                     argv[1]);
        return usage(argv[0]);
    }
    const std::string path = argv[2];

    const sim::SystemConfig config = sim::SystemConfig::tableIV();
    std::uint64_t refs = config.refsPerCore;
    if (argc > 3) {
        const auto parsed = parseU64(argv[3], 1);
        if (!parsed) {
            std::fprintf(stderr, "%s: bad refs_per_core '%s'\n", argv[0],
                         argv[3]);
            return usage(argv[0]);
        }
        refs = *parsed;
    }

    const auto &mix = workload::tableVMixes()[*mix_number - 1];
    inform("capturing %s: %llu refs/core at scale %.3g...",
           mix.name.c_str(), static_cast<unsigned long long>(refs),
           config.scale);

    const replay::LlcTrace trace = hierarchy::captureTrace(
        mix, config.llcBlocks(), config.privateCaches, refs,
        config.seed + static_cast<std::uint64_t>(*mix_number) - 1,
        config.scheme);
    try {
        trace.save(path);
        // Sidecar manifest: replay tools verify size/CRC32/event count
        // before trusting the trace (see src/check/manifest.hh).
        check::TraceManifest manifest = check::computeManifest(path, trace);
        manifest.hasSeed = true;
        manifest.seed =
            config.seed + static_cast<std::uint64_t>(*mix_number) - 1;
        check::saveManifest(path, manifest);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }

    std::printf("%s: %zu LLC events (%s) written\n", path.c_str(),
                trace.size(), mix.name.c_str());

    // Capture spends most of its time compressing blocks; with
    // HLLC_TIMERS=1 the attribution lands on stderr.
    const std::string timers = metrics::PhaseTimers::report();
    if (!timers.empty())
        std::fputs(timers.c_str(), stderr);
    return 0;
}
