/**
 * @file
 * hllc_ingest: convert external traces and generate scenario-library
 * workloads as verified .hlt traces with sidecar manifests.
 *
 * Converted and generated traces flow through the exact pipeline the
 * rest of the tooling trusts: atomic .hlt write, seed-stamped
 * manifest, and (optionally) an hllc-ingest-v1 JSON conversion report
 * for machine consumption. Exit codes: 0 = success, 1 = failure
 * (malformed input, I/O), 2 = usage error.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"
#include "ingest/champsim.hh"
#include "ingest/scenarios.hh"

using namespace hllc;

namespace
{

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s <action> [options]\n"
        "actions:\n"
        "  --convert <in>        ChampSim CRC2 stream (raw/.gz/.xz) ->\n"
        "                        .hlt + manifest\n"
        "  --scenario <name>     generate a scenario-library trace\n"
        "  --list-scenarios      print the scenario catalog\n"
        "  --gen-fixture <out>   write a synthetic CRC2 fixture stream\n"
        "options:\n"
        "  --out <t.hlt>         output trace (convert/scenario)\n"
        "  --seed S              synthesis/generation seed (default 1)\n"
        "  --hcr F --lcr F       content-class fractions (0.4/0.3)\n"
        "  --events N            scenario events (default 100000)\n"
        "  --max-events N        cap converted events (default: all)\n"
        "  --records N           fixture records (default 4096)\n"
        "  --sets N --ways N     geometry scenarios target (128/16)\n"
        "  --drop-prefetch       do not emit prefetches as events\n"
        "  --mix NAME            mix name recorded on convert\n"
        "  --report <r.json>     write the hllc-ingest-v1 report\n",
        prog);
    return 2;
}

struct Options
{
    std::string action;
    std::string input;      //!< convert input / scenario name /
                            //!< fixture output
    std::string out;
    std::string report;
    std::string mixName = "champsim";
    std::uint64_t seed = 1;
    double hcr = 0.4;
    double lcr = 0.3;
    std::uint64_t events = 100'000;
    std::uint64_t maxEvents = 0;
    std::uint64_t records = 4096;
    unsigned sets = 128;
    unsigned ways = 16;
    bool dropPrefetch = false;
};

/** JSON escaping for the few path/name strings the report carries. */
std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return out + "\"";
}

/** Elapsed seconds of the conversion (report timing only). */
double
elapsedSince(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

void
writeReport(const Options &opt, const ingest::ConvertStats &stats,
            double duration_s)
{
    if (opt.report.empty())
        return;
    const double events_per_sec =
        duration_s > 0.0
            ? static_cast<double>(stats.events) / duration_s
            : 0.0;
    std::string json = "{\n  \"schema\": \"hllc-ingest-v1\",\n";
    json += "  \"action\": " + jsonString(opt.action) + ",\n";
    json += "  \"input\": {\n";
    json += "    \"name\": " + jsonString(opt.input) + ",\n";
    json += "    \"container\": " +
            jsonString(std::string(
                ingest::containerKindName(stats.container))) + ",\n";
    json += "    \"bytes_in\": " + formatU64(stats.bytesIn) + "\n  },\n";
    json += "  \"records\": {\n";
    json += "    \"total\": " + formatU64(stats.records) + ",\n";
    json += "    \"loads\": " + formatU64(stats.loads) + ",\n";
    json += "    \"rfos\": " + formatU64(stats.rfos) + ",\n";
    json += "    \"prefetches\": " + formatU64(stats.prefetches) + ",\n";
    json += "    \"writebacks\": " + formatU64(stats.writebacks) + ",\n";
    json += "    \"dropped\": " + formatU64(stats.dropped) + "\n  },\n";
    json += "  \"trace\": {\n";
    json += "    \"path\": " + jsonString(opt.out) + ",\n";
    json += "    \"events\": " + formatU64(stats.events) + ",\n";
    json += "    \"distinct_blocks\": " +
            formatU64(stats.distinctBlocks) + ",\n";
    json += "    \"seed\": " + formatU64(opt.seed) + ",\n";
    json += "    \"hcr\": " + formatDouble(opt.hcr) + ",\n";
    json += "    \"lcr\": " + formatDouble(opt.lcr) + "\n  },\n";
    json += "  \"timing\": {\n";
    json += "    \"duration_s\": " + formatDouble(duration_s) + ",\n";
    json += "    \"events_per_sec\": " + formatDouble(events_per_sec) +
            "\n  }\n}\n";
    serial::writeFileAtomic(opt.report, json.data(), json.size());
}

int
runConvert(const Options &opt)
{
    const auto start = std::chrono::steady_clock::now();
    ingest::ConvertOptions conv;
    conv.seed = opt.seed;
    conv.hcrFraction = opt.hcr;
    conv.lcrFraction = opt.lcr;
    conv.maxEvents = opt.maxEvents;
    conv.dropPrefetches = opt.dropPrefetch;
    conv.mixName = opt.mixName;
    const ingest::ConvertStats stats =
        ingest::convertChampSimFile(opt.input, opt.out, conv);
    writeReport(opt, stats, elapsedSince(start));
    std::printf("%s: %s records (%s) -> %s events + manifest\n",
                opt.input.c_str(), formatU64(stats.records).c_str(),
                std::string(
                    ingest::containerKindName(stats.container)).c_str(),
                formatU64(stats.events).c_str());
    return 0;
}

int
runScenario(const Options &opt)
{
    const auto start = std::chrono::steady_clock::now();
    ingest::ScenarioOptions gen;
    gen.events = opt.events;
    gen.seed = opt.seed;
    gen.numSets = opt.sets;
    gen.totalWays = opt.ways;
    gen.hcrFraction = opt.hcr;
    gen.lcrFraction = opt.lcr;
    const replay::LlcTrace trace =
        ingest::generateScenario(opt.input, gen);
    ingest::writeTraceWithManifest(opt.out, trace, opt.seed);

    ingest::ConvertStats stats;
    stats.events = trace.size();
    writeReport(opt, stats, elapsedSince(start));
    std::printf("%s: %s events (seed %s) -> %s + manifest\n",
                opt.input.c_str(), formatU64(trace.size()).c_str(),
                formatU64(opt.seed).c_str(), opt.out.c_str());
    return 0;
}

int
runListScenarios()
{
    for (const ingest::ScenarioInfo &info : ingest::scenarioCatalog()) {
        std::printf("%-16s %s\n", std::string(info.name).c_str(),
                    std::string(info.summary).c_str());
    }
    return 0;
}

int
runGenFixture(const Options &opt)
{
    const std::vector<std::uint8_t> bytes =
        ingest::synthesizeChampSimFixture(opt.records, opt.seed);
    serial::writeFileAtomic(opt.input, bytes.data(), bytes.size());
    std::printf("%s: %s CRC2 records (%s bytes, seed %s)\n",
                opt.input.c_str(), formatU64(opt.records).c_str(),
                formatU64(bytes.size()).c_str(),
                formatU64(opt.seed).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    const auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value after %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--convert" || arg == "--scenario" ||
            arg == "--gen-fixture") {
            opt.action = arg.substr(2);
            opt.input = need(i);
        } else if (arg == "--list-scenarios") {
            opt.action = "list-scenarios";
        } else if (arg == "--out") {
            opt.out = need(i);
        } else if (arg == "--report") {
            opt.report = need(i);
        } else if (arg == "--mix") {
            opt.mixName = need(i);
        } else if (arg == "--drop-prefetch") {
            opt.dropPrefetch = true;
        } else if (arg == "--seed" || arg == "--events" ||
                   arg == "--max-events" || arg == "--records") {
            const auto v = parseU64(need(i));
            if (!v)
                fatal("bad value for %s", arg.c_str());
            if (arg == "--seed")
                opt.seed = *v;
            else if (arg == "--events")
                opt.events = *v;
            else if (arg == "--max-events")
                opt.maxEvents = *v;
            else
                opt.records = *v;
        } else if (arg == "--sets" || arg == "--ways") {
            const auto v = parseUnsigned(need(i), 1);
            if (!v)
                fatal("bad value for %s", arg.c_str());
            (arg == "--sets" ? opt.sets : opt.ways) = *v;
        } else if (arg == "--hcr" || arg == "--lcr") {
            const auto v = parseDouble(need(i));
            if (!v || *v < 0.0 || *v > 1.0)
                fatal("bad fraction for %s", arg.c_str());
            (arg == "--hcr" ? opt.hcr : opt.lcr) = *v;
        } else {
            return usage(argv[0]);
        }
    }
    if (opt.action.empty())
        return usage(argv[0]);
    if ((opt.action == "convert" || opt.action == "scenario") &&
        opt.out.empty()) {
        fatal("--out <trace.hlt> is required for --%s",
              opt.action.c_str());
    }

    try {
        if (opt.action == "convert")
            return runConvert(opt);
        if (opt.action == "scenario")
            return runScenario(opt);
        if (opt.action == "list-scenarios")
            return runListScenarios();
        if (opt.action == "gen-fixture")
            return runGenFixture(opt);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }
    return usage(argv[0]);
}
