/**
 * @file
 * hllc_torture — seeded kill/corrupt/retry campaign driver.
 *
 * Turns the crash-safety and self-healing machinery into an automated
 * proof: a small fig10-style forecast grid (BH + CP_SD over two Table V
 * mixes at half scale) is run to completion under three campaigns, and
 * the surviving outputs are asserted byte-identical to a fault-free
 * reference run every time:
 *
 *  - chaos:   deterministic failpoint schedules (common/failpoint.hh)
 *             inject faults into checkpoint writes, trace decode and
 *             worker cells; bounded retry + checkpoint resume must
 *             recover every cell;
 *  - kill:    the grid runs in a worker subprocess that is SIGKILLed
 *             at a seeded delay, then respawned with --resume until it
 *             completes (the CI gate runs >= 25 such iterations);
 *  - corrupt: checkpoints and cached traces get seeded byte flips
 *             between runs; CRC rejection must fall back to scratch /
 *             re-capture, never to wrong results.
 *
 * The worker caches its captured traces as .hlt files in the campaign
 * directory (self-healing: a corrupt cache is re-captured), so process
 * respawns skip the capture cost, and writes:
 *
 *  - stats.json    deterministic per-cell results (one line per cell,
 *                  so partial grids can be compared cell-by-cell);
 *  - failures.json the hllc-failures-v1 resilience report.
 *
 * Usage:
 *   hllc_torture [--mode all|chaos|kill|corrupt] [--iterations N]
 *                [--seed S] [--dir D] [--keep]
 *   hllc_torture --worker --dir D [--retries N] [--chaos SPEC]
 *                  (internal: one grid run; spawned by the kill mode)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "common/argparse.hh"
#include "common/failpoint.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/grid.hh"
#include "workload/mixes.hh"

using namespace hllc;
using hybrid::PolicyKind;

namespace
{

constexpr std::size_t numMixes = 2;

struct TortureConfig
{
    std::string mode = "all";
    std::string dir = "/tmp/hllc_torture";
    std::uint64_t seed = 42;
    std::size_t iterations = 5;
    bool keep = false;
    // worker submode
    bool worker = false;
    std::size_t retries = 0;
    std::string chaos;
};

void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST)
        fatal("cannot create '%s': %s", path.c_str(),
              std::strerror(errno));
}

sim::SystemConfig
tortureSystemConfig()
{
    sim::SystemConfig config = sim::SystemConfig::tableIV(0.5);
    config.refsPerCore = 30'000;
    config.jobs = 2;
    return config;
}

std::string
tracePath(const std::string &dir, std::size_t mix)
{
    return dir + "/traces/mix" + formatU64(mix) + ".hlt";
}

/**
 * Load the cached trace of @p mix, re-capturing (and re-caching) when
 * the cache is missing or fails CRC/decode — the self-healing path the
 * corrupt campaign leans on.
 */
replay::LlcTrace
loadOrCaptureTrace(const sim::SystemConfig &config, const std::string &dir,
                   std::size_t mix)
{
    const std::string path = tracePath(dir, mix);
    try {
        return replay::LlcTrace::load(path);
    } catch (const IoError &e) {
        inform("trace cache '%s' unusable (%s); re-capturing",
               path.c_str(), e.what());
    }
    replay::LlcTrace trace = hierarchy::captureTrace(
        workload::tableVMixes()[mix], config.llcBlocks(),
        config.privateCaches, config.refsPerCore,
        childSeed(config.seed, mix), config.scheme);
    trace.save(path);
    return trace;
}

std::vector<sim::StudyEntry>
tortureEntries(const sim::SystemConfig &config)
{
    return {
        { "BH", config.llcConfig(PolicyKind::Bh) },
        { "CP_SD", config.llcConfig(PolicyKind::CpSd) },
    };
}

/** One deterministic per-cell result line (pure simulation outputs). */
std::string
cellLine(const sim::ForecastSummary &summary)
{
    std::string out = "    {\"label\": \"" + summary.label + "\"";
    out += ", \"lifetime_months\": " + formatDouble(summary.lifetimeMonths);
    out += ", \"initial_ipc\": " + formatDouble(summary.initialIpc);
    out += ", \"series\": [";
    for (std::size_t i = 0; i < summary.series.size(); ++i) {
        const auto &p = summary.series[i];
        if (i > 0)
            out += ", ";
        out += "[" + formatDouble(p.time) + ", " +
               formatDouble(p.capacity) + ", " + formatDouble(p.meanIpc) +
               ", " + formatDouble(p.hitRate) + ", " +
               formatDouble(p.nvmBytesPerSecond) + "]";
    }
    out += "]}";
    return out;
}

/**
 * One full grid run in this process: trace cache, checkpointed grid
 * with resilience, stats + failure report. Returns the process exit
 * code (0 ok, 1 failed cells, 128+sig interrupted).
 */
int
runOnce(const std::string &dir, std::size_t retries)
{
    const sim::SystemConfig config = tortureSystemConfig();
    makeDir(dir + "/traces");

    std::vector<replay::LlcTrace> traces;
    traces.reserve(numMixes);
    for (std::size_t mix = 0; mix < numMixes; ++mix)
        traces.push_back(loadOrCaptureTrace(config, dir, mix));
    const sim::Experiment experiment(config, std::move(traces));

    sim::CheckpointOptions checkpoint;
    checkpoint.dir = dir + "/ckpt";
    checkpoint.every = 1;
    checkpoint.resume = true; // a fresh run has no checkpoint to resume

    sim::ResilienceOptions resilience;
    resilience.retry.maxAttempts = retries + 1;
    resilience.retry.baseDelayMs = 5;
    resilience.retry.maxDelayMs = 50;
    resilience.failuresOut = dir + "/failures.json";

    installInterruptHandlers();
    const sim::ForecastGridOutcome outcome =
        sim::runForecastGridCheckpointed(experiment,
                                         tortureEntries(config), {},
                                         checkpoint, resilience);
    if (outcome.interrupted)
        return interruptExitCode();

    // Stats land even when cells were quarantined (partial results
    // degrade gracefully); one line per cell keeps them comparable
    // cell-by-cell. The write itself retries so write-site chaos
    // cannot fail a recovered grid at the last step.
    std::string body = "{\n  \"schema\": \"hllc-torture-stats-v1\",\n";
    body += "  \"cells\": [";
    for (std::size_t i = 0; i < outcome.summaries.size(); ++i) {
        body += i == 0 ? "\n" : ",\n";
        body += cellLine(outcome.summaries[i]);
    }
    body += outcome.summaries.empty() ? "]\n}\n" : "\n  ]\n}\n";
    const sim::RetryResult write_result = sim::runWithRetry(
        { 5, 5, 50, config.seed }, 0, [&](std::size_t) {
            serial::writeFileAtomic(dir + "/stats.json", body.data(),
                                    body.size());
        });
    if (!(write_result.status == sim::CellStatus::Ok ||
          write_result.status == sim::CellStatus::Recovered))
        fatal("cannot write stats: %s", write_result.error.c_str());
    return outcome.ok() ? 0 : 1;
}

// ---------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------

std::vector<std::string>
listCheckpointFiles(const std::string &dir)
{
    std::vector<std::string> files;
    const sim::SystemConfig config = tortureSystemConfig();
    const auto entries = tortureEntries(config);
    sim::CheckpointOptions checkpoint;
    checkpoint.dir = dir + "/ckpt";
    for (std::size_t i = 0; i < entries.size(); ++i)
        files.push_back(
            sim::checkpointCellPath(checkpoint, i, entries[i].label));
    return files;
}

void
clearRunState(const std::string &dir)
{
    for (const std::string &path : listCheckpointFiles(dir)) {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    std::remove((dir + "/stats.json").c_str());
    std::remove((dir + "/failures.json").c_str());
}

std::string
readFileOrDie(const std::string &path)
{
    const std::vector<std::uint8_t> bytes = serial::readFileBytes(path);
    return std::string(bytes.begin(), bytes.end());
}

/** The "label" result lines of a stats.json, in file order. */
std::vector<std::string>
statsCellLines(const std::string &body)
{
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin < body.size()) {
        std::size_t end = body.find('\n', begin);
        if (end == std::string::npos)
            end = body.size();
        const std::string line = body.substr(begin, end - begin);
        if (line.find("{\"label\":") != std::string::npos)
            lines.push_back(line);
        begin = end + 1;
    }
    return lines;
}

/**
 * Assert every cell line in @p got matches the line of the same label
 * in @p reference byte-for-byte. Cells absent from @p got (quarantined)
 * are allowed; a label missing from the reference is not.
 */
bool
compareSurvivingCells(const std::string &reference, const std::string &got,
                      const char *what)
{
    const auto ref_lines = statsCellLines(reference);
    for (const std::string &line : statsCellLines(got)) {
        bool matched = false;
        bool label_known = false;
        const std::size_t label_end = line.find('"', line.find(": \"") + 3);
        const std::string label = line.substr(0, label_end + 1);
        for (const std::string &ref : ref_lines) {
            if (ref.compare(0, label.size(), label) != 0)
                continue;
            label_known = true;
            matched = ref == line;
            // Strip a trailing comma difference: the last line of a
            // partial grid has none even when the full grid's does.
            if (!matched) {
                std::string a = ref, b = line;
                if (!a.empty() && a.back() == ',')
                    a.pop_back();
                if (!b.empty() && b.back() == ',')
                    b.pop_back();
                matched = a == b;
            }
            break;
        }
        if (!label_known || !matched) {
            std::fprintf(stderr,
                         "FAIL [%s]: surviving cell diverges from the "
                         "fault-free reference:\n  got: %s\n",
                         what, line.c_str());
            return false;
        }
    }
    return true;
}

/** A deterministic chaos schedule per iteration (seeded rotation). */
std::string
chaosSchedule(std::uint64_t seed, std::size_t iteration)
{
    static const std::vector<std::string> schedules = {
        "grid.cell.throw=nth:1",
        "forecast.checkpoint.save=nth:2",
        "serialize.write.fsync=nth:3",
        "serialize.write.rename=nth:2",
        "serialize.write.corrupt=nth:1",
        "serialize.write.short=nth:4",
        "trace.decode=nth:1",
        "grid.cell.throw=every:2",
        "threadpool.task.stall=every:3",
        "stats.export=nth:1",
    };
    const std::uint64_t pick = mix64(seed ^ (0x9e3779b97f4a7c15ULL *
                                             (iteration + 1)));
    std::string spec = schedules[pick % schedules.size()];
    // Every third iteration stacks a seeded-probability write fault on
    // top, so multi-fault schedules get exercised too.
    if (iteration % 3 == 2) {
        spec += ";serialize.write.fsync=prob:0.1@" +
                formatU64(mix64(seed + iteration));
    }
    return spec;
}

int
chaosCampaign(const TortureConfig &torture, const std::string &reference)
{
    for (std::size_t i = 0; i < torture.iterations; ++i) {
        clearRunState(torture.dir);
        const std::string spec = chaosSchedule(torture.seed, i);
        std::printf("chaos %zu/%zu: %s\n", i + 1, torture.iterations,
                    spec.c_str());
        failpoint::reset();
        failpoint::configure(spec);
        const int rc = runOnce(torture.dir, /*retries=*/4);
        failpoint::reset();
        if (rc != 0 && rc != 1) {
            std::fprintf(stderr, "FAIL [chaos]: run exited %d\n", rc);
            return 1;
        }
        const std::string got =
            readFileOrDie(torture.dir + "/stats.json");
        if (!compareSurvivingCells(reference, got, "chaos"))
            return 1;
        // The failure report must exist and carry the schema marker.
        const std::string report =
            readFileOrDie(torture.dir + "/failures.json");
        if (report.find("hllc-failures-v1") == std::string::npos) {
            std::fprintf(stderr,
                         "FAIL [chaos]: failures.json lacks schema\n");
            return 1;
        }
    }
    return 0;
}

std::string
selfExePath()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        fatal("cannot resolve /proc/self/exe: %s", std::strerror(errno));
    buf[n] = '\0';
    return buf;
}

/** Spawn a worker subprocess; returns its pid. */
pid_t
spawnWorker(const std::string &self, const TortureConfig &torture)
{
    // hllc-lint: allow(failpoint-coverage) the torture driver IS the
    // fault injector; killing its own fork() tests nothing.
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("fork failed: %s", std::strerror(errno));
    if (pid == 0) {
        const std::string retries = formatU64(torture.retries);
        const char *argv[] = {
            self.c_str(),    "--worker", "--dir", torture.dir.c_str(),
            "--retries",     retries.c_str(),     nullptr,
        };
        ::execv(self.c_str(), const_cast<char **>(argv));
        // Only reached when exec itself failed.
        std::fprintf(stderr, "execv '%s' failed: %s\n", self.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

int
waitFor(pid_t pid)
{
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        fatal("waitpid failed: %s", std::strerror(errno));
    return status;
}

void
sleepMs(std::uint64_t ms)
{
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1'000'000);
    ::nanosleep(&ts, nullptr);
}

int
killCampaign(const TortureConfig &torture, const std::string &reference)
{
    const std::string self = selfExePath();
    std::size_t killed = 0;
    for (std::size_t i = 0; i < torture.iterations; ++i) {
        clearRunState(torture.dir);
        // Seeded kill delay: sweeps the whole run (capture happens only
        // once per campaign, so most of a worker's life is grid steps).
        const std::uint64_t delay =
            5 + mix64(torture.seed ^ (i * 1000003ULL)) % 400;

        const pid_t victim = spawnWorker(self, torture);
        sleepMs(delay);
        ::kill(victim, SIGKILL);
        const int status = waitFor(victim);
        const bool was_killed =
            WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
        if (was_killed)
            ++killed;

        // Respawn with the checkpoints in place until the grid lands.
        int rc = -1;
        for (int attempt = 0; attempt < 5 && rc != 0; ++attempt) {
            const int resumed = waitFor(spawnWorker(self, torture));
            rc = WIFEXITED(resumed) ? WEXITSTATUS(resumed) : -1;
        }
        if (rc != 0) {
            std::fprintf(stderr,
                         "FAIL [kill]: resume never completed "
                         "(iteration %zu)\n", i + 1);
            return 1;
        }
        const std::string got =
            readFileOrDie(torture.dir + "/stats.json");
        if (got != reference) {
            std::fprintf(stderr,
                         "FAIL [kill]: resumed output differs from the "
                         "fault-free reference (iteration %zu)\n",
                         i + 1);
            return 1;
        }
        std::printf("kill %zu/%zu: %s at %llu ms, resume ok\n", i + 1,
                    torture.iterations,
                    was_killed ? "killed" : "finished",
                    static_cast<unsigned long long>(delay));
    }
    std::printf("kill campaign: %zu/%zu iterations actually killed "
                "mid-run\n", killed, torture.iterations);
    return 0;
}

/** Flip one seeded byte of @p path in place (plain write: simulating
 *  external corruption, not our own I/O discipline). */
void
flipByte(const std::string &path, std::uint64_t seed)
{
    std::vector<std::uint8_t> bytes;
    try {
        bytes = serial::readFileBytes(path);
    } catch (const IoError &) {
        return; // nothing to corrupt (cell finished without this file)
    }
    if (bytes.empty())
        return;
    bytes[mix64(seed) % bytes.size()] ^= 0x40;
    serial::writeFileAtomic(path, bytes.data(), bytes.size());
}

int
corruptCampaign(const TortureConfig &torture, const std::string &reference)
{
    for (std::size_t i = 0; i < torture.iterations; ++i) {
        clearRunState(torture.dir);
        // Stage checkpoints mid-run: run once with an injected failure
        // so checkpoints exist but the grid did not complete cleanly.
        failpoint::reset();
        failpoint::configure("grid.cell.throw=nth:2");
        runOnce(torture.dir, /*retries=*/0);
        failpoint::reset();

        // Corrupt a checkpoint and a cached trace (seeded picks).
        const auto ckpts = listCheckpointFiles(torture.dir);
        const std::uint64_t pick = mix64(torture.seed + i);
        flipByte(ckpts[pick % ckpts.size()], pick);
        flipByte(tracePath(torture.dir, i % numMixes), pick ^ 0xabcdULL);

        // The next run must self-heal: CRC-rejected checkpoints restart
        // from scratch, a bad trace cache is re-captured — and the
        // results still match the fault-free reference exactly.
        const int rc = runOnce(torture.dir, /*retries=*/1);
        if (rc != 0) {
            std::fprintf(stderr,
                         "FAIL [corrupt]: run exited %d (iteration "
                         "%zu)\n", rc, i + 1);
            return 1;
        }
        const std::string got =
            readFileOrDie(torture.dir + "/stats.json");
        if (got != reference) {
            std::fprintf(stderr,
                         "FAIL [corrupt]: output differs from the "
                         "fault-free reference (iteration %zu)\n",
                         i + 1);
            return 1;
        }
        std::printf("corrupt %zu/%zu: self-healed, outputs identical\n",
                    i + 1, torture.iterations);
    }
    return 0;
}

TortureConfig
parseArgs(int argc, char **argv)
{
    TortureConfig torture;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s requires a value", arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--mode") == 0) {
            torture.mode = value();
            if (torture.mode != "all" && torture.mode != "chaos" &&
                torture.mode != "kill" && torture.mode != "corrupt")
                fatal("unknown mode '%s'", torture.mode.c_str());
        } else if (std::strcmp(arg, "--dir") == 0) {
            torture.dir = value();
        } else if (std::strcmp(arg, "--seed") == 0) {
            const auto parsed = parseU64(value());
            if (!parsed)
                fatal("bad --seed value");
            torture.seed = *parsed;
        } else if (std::strcmp(arg, "--iterations") == 0) {
            const auto parsed = parseU64(value(), 1, 10000);
            if (!parsed)
                fatal("bad --iterations value");
            torture.iterations = static_cast<std::size_t>(*parsed);
        } else if (std::strcmp(arg, "--retries") == 0) {
            const auto parsed = parseU64(value(), 0, 100);
            if (!parsed)
                fatal("bad --retries value");
            torture.retries = static_cast<std::size_t>(*parsed);
        } else if (std::strcmp(arg, "--chaos") == 0) {
            torture.chaos = value();
        } else if (std::strcmp(arg, "--worker") == 0) {
            torture.worker = true;
        } else if (std::strcmp(arg, "--keep") == 0) {
            torture.keep = true;
        } else {
            fatal("unknown argument '%s' (see the file comment for "
                  "usage)", arg);
        }
    }
    return torture;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::Warn);
    const TortureConfig torture = parseArgs(argc, argv);
    makeDir(torture.dir);

    if (torture.worker) {
        if (!torture.chaos.empty())
            failpoint::configure(torture.chaos);
        return runOnce(torture.dir, torture.retries);
    }

    // Fault-free reference: also warms the shared trace cache, so every
    // campaign run after this skips capture.
    clearRunState(torture.dir);
    if (runOnce(torture.dir, 0) != 0)
        fatal("fault-free reference run failed");
    const std::string reference =
        readFileOrDie(torture.dir + "/stats.json");
    std::printf("reference run ok (%zu bytes of stats)\n",
                reference.size());

    int rc = 0;
    if (rc == 0 && (torture.mode == "all" || torture.mode == "chaos"))
        rc = chaosCampaign(torture, reference);
    if (rc == 0 && (torture.mode == "all" || torture.mode == "kill"))
        rc = killCampaign(torture, reference);
    if (rc == 0 && (torture.mode == "all" || torture.mode == "corrupt"))
        rc = corruptCampaign(torture, reference);

    if (rc == 0)
        std::printf("torture: all campaigns passed\n");
    if (!torture.keep && rc == 0) {
        clearRunState(torture.dir);
        for (std::size_t mix = 0; mix < numMixes; ++mix)
            std::remove(tracePath(torture.dir, mix).c_str());
        ::rmdir((torture.dir + "/traces").c_str());
        ::rmdir((torture.dir + "/ckpt").c_str());
        ::rmdir(torture.dir.c_str());
    }
    return rc;
}
