/**
 * @file
 * hllc_lint: enforce the project's hard-won invariants as named,
 * suppressible static-analysis rules (see DESIGN.md §11 and §14).
 *
 * Usage: hllc_lint [--root DIR] [--format text|json|sarif]
 *                  [--baseline FILE] [--write-baseline FILE]
 *                  [--cache FILE] [--no-cache]
 *                  [--no-rule RULE]... [--list-rules] [--stats]
 *                  [PATH...]
 *
 * PATHs are directories or files relative to --root (default: the
 * current directory); with none given the project default set
 * `src tools bench tests examples` is walked. The token-level rules
 * and the cross-file semantic engines (failpoint-coverage,
 * lock-discipline, rng-discipline, schema-drift, include-graph) run in
 * one pass, backed by the incremental index cache at
 * `<root>/.hllc-lint-cache` (override with --cache, disable with
 * --no-cache). Exit status: 0 when the tree is clean (beyond the
 * baseline), 1 when findings remain, 2 on usage or I/O errors — the
 * contract the CI lint job relies on.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "lint/lint.hh"

using namespace hllc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--format text|json|sarif]\n"
        "       [--baseline FILE] [--write-baseline FILE]\n"
        "       [--cache FILE] [--no-cache]\n"
        "       [--no-rule RULE]... [--list-rules] [--stats] [PATH...]\n",
        argv0);
    return 2;
}

bool
knownFormat(const std::string &format)
{
    return format == "text" || format == "json" || format == "sarif";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string format = "text";
    std::string write_baseline;
    std::string cache = ".hllc-lint-cache";
    bool use_cache = true;
    bool show_stats = false;
    analysis::RunOptions options;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s requires a value", flag);
            return argv[++i];
        };
        if (std::strcmp(arg, "--root") == 0) {
            root = value("--root");
        } else if (std::strcmp(arg, "--format") == 0) {
            format = value("--format");
            if (!knownFormat(format))
                return usage(argv[0]);
        } else if (std::strncmp(arg, "--format=", 9) == 0) {
            format = arg + 9;
            if (!knownFormat(format))
                return usage(argv[0]);
        } else if (std::strcmp(arg, "--baseline") == 0) {
            options.baselinePath = value("--baseline");
        } else if (std::strcmp(arg, "--write-baseline") == 0) {
            write_baseline = value("--write-baseline");
        } else if (std::strcmp(arg, "--cache") == 0) {
            cache = value("--cache");
        } else if (std::strcmp(arg, "--no-cache") == 0) {
            use_cache = false;
        } else if (std::strcmp(arg, "--stats") == 0) {
            show_stats = true;
        } else if (std::strcmp(arg, "--no-rule") == 0) {
            options.rules.disabledRules.push_back(value("--no-rule"));
        } else if (std::strcmp(arg, "--list-rules") == 0) {
            for (const std::string &rule : lint::allRules())
                std::printf("%s\n", rule.c_str());
            return 0;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(argv[0]);
            return 0;
        } else if (arg[0] == '-') {
            return usage(argv[0]);
        } else {
            options.paths.push_back(arg);
        }
    }
    for (const std::string &rule : options.rules.disabledRules) {
        bool known = false;
        for (const std::string &name : lint::allRules())
            known = known || name == rule;
        if (!known) {
            std::fprintf(stderr, "unknown rule '%s' (--list-rules)\n",
                         rule.c_str());
            return 2;
        }
    }
    if (use_cache) {
        options.cachePath =
            (std::filesystem::path(root) / cache).string();
    }

    try {
        analysis::RunStats stats;
        const lint::RunResult result =
            analysis::analyzeTree(root, options, &stats);
        if (show_stats) {
            std::fprintf(stderr,
                         "hllc_lint: %zu file(s) indexed, %zu cache"
                         " hit(s)\n",
                         stats.filesIndexed, stats.cacheHits);
        }
        if (!write_baseline.empty()) {
            const std::string text =
                lint::formatBaseline(result.findings);
            // Resolve against --root, symmetric with how --baseline is
            // read back.
            const std::string out =
                (std::filesystem::path(root) / write_baseline).string();
            serial::writeFileAtomic(out, text.data(), text.size());
            std::fprintf(stderr, "wrote %zu baseline entr(y/ies) to %s\n",
                         result.findings.size(), write_baseline.c_str());
            return 0;
        }
        const std::string report = format == "json"
            ? lint::formatJson(result)
            : format == "sarif" ? analysis::formatSarif(result)
                                : lint::formatText(result);
        std::fputs(report.c_str(), stdout);
        return result.findings.empty() ? 0 : 1;
    } catch (const Error &e) {
        std::fprintf(stderr, "hllc_lint: %s\n", e.what());
        return 2;
    }
}
