/**
 * @file
 * hllc_loadgen: seeded load generator for the hllc-serve daemon.
 *
 * Usage:
 *   hllc_loadgen (--socket <path> | --port <n>) [--clients K]
 *                [--requests N] [--window W] [--seed S] [--refs N]
 *                [--out BENCH_serve.json] [--results-out <file>]
 *
 * K concurrent clients each open one connection and push N requests
 * through it with up to W frames in flight (pipelining is what makes
 * backpressure observable). The request stream is a pure function of
 * (--seed, client index, sequence number): two same-seed runs issue the
 * same requests, and because the daemon evaluates each request as a pure
 * function of its bytes, the per-request results (--results-out, sorted
 * by id) are byte-identical across runs regardless of sharding, timing
 * or how often the daemon said OVERLOADED in between.
 *
 * OVERLOADED replies are retried with exponential backoff — they shape
 * throughput and the overload counters, never the result set. The tool
 * exits nonzero if any request never received a final reply (the
 * client-side half of the daemon's zero-lost-accepted-requests
 * guarantee).
 *
 * Emits a "hllc-serve-bench-v1" JSON document: requests/sec, events/sec
 * and the request latency distribution (p50/p90/p99/p999/max/mean).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "serve/protocol.hh"
#include "serve/socket.hh"

using namespace hllc;

namespace
{

struct Options
{
    serve::Endpoint endpoint;
    unsigned clients = 8;
    unsigned requests = 50;   //!< per client
    unsigned window = 4;      //!< frames in flight per client
    std::uint64_t seed = 1;
    std::uint64_t refs = 2'000; //!< refsPerCore of Replay requests
    std::uint64_t stallLimitS = 30; //!< silence before reconnecting
    std::string out = "BENCH_serve.json";
    std::string resultsOut;
};

/** What one request resolved to (plus the load-side measurements). */
struct Outcome
{
    std::uint64_t id = 0;
    serve::RequestType type = serve::RequestType::Ping;
    bool replied = false;
    serve::Status status = serve::Status::Ok;
    serve::EvalResult result;
    std::string message;
    double latencyUs = 0.0;   //!< first send → final reply
    std::uint64_t overloads = 0;
};

/** The deterministic request stream of one client. */
serve::Request
makeRequest(std::uint64_t seed, unsigned client, unsigned seq,
            unsigned clients, std::uint64_t refs)
{
    Xoshiro256StarStar rng = childStream(seed, client, seq);
    serve::Request request;
    request.id =
        static_cast<std::uint64_t>(seq) * clients + client + 1;

    const std::uint64_t roll = rng.next() % 100;
    if (roll < 80) {
        request.type = serve::RequestType::Replay;
        request.replay.mix =
            static_cast<std::uint8_t>(1 + rng.next() % 4);
        request.replay.refsPerCore = refs;
        request.replay.seed = 1 + rng.next() % 2;
        static const char *const policies[] = { "CP_SD", "BH", "CA_RWR",
                                                "TAP", "LHybrid" };
        request.replay.policy = policies[rng.next() % 5];
    } else if (roll < 95) {
        request.type = serve::RequestType::Batch;
        request.batch.policy = rng.next() % 2 == 0 ? "CP_SD" : "BH_CP";
        request.batch.seed = rng.next();
        const std::size_t count = 64 + rng.next() % 448;
        request.batch.events.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            hybrid::LlcEvent event;
            event.blockNum = rng.next() % 4096;
            const std::uint64_t t = rng.next() % 10;
            event.type = t < 6 ? hybrid::LlcEventType::GetS
                       : t < 9 ? hybrid::LlcEventType::GetX
                               : hybrid::LlcEventType::PutDirty;
            event.ecbBytes =
                static_cast<std::uint8_t>(2 + rng.next() % 63);
            event.core = static_cast<CoreId>(rng.next() % 4);
            request.batch.events.push_back(event);
        }
    } else {
        request.type = serve::RequestType::Ping;
    }
    return request;
}

using Clock = std::chrono::steady_clock;

/**
 * Pipeline every sequence number in @p todo over one connection,
 * erasing each from @p todo as its final reply lands. OVERLOADED
 * replies back off and resend within the session. Returns normally
 * when @p todo is empty or the stall limit is hit; throws IoError on a
 * connection-level failure (unresolved sequences stay in @p todo for
 * the caller's reconnect).
 */
void
runSession(const Options &opt, unsigned client,
           std::vector<Outcome> &outcomes, std::vector<unsigned> &todo,
           std::vector<Clock::time_point> &first_send)
{
    serve::Fd fd = serve::connectTo(opt.endpoint);
    serve::setRecvTimeoutMs(fd.get(), 100);

    struct Pending
    {
        unsigned seq;
        unsigned attempts = 0; //!< OVERLOADED retries this session
    };
    std::map<std::uint64_t, Pending> inflight;
    std::vector<Pending> retry_queue; //!< OVERLOADED, awaiting backoff
    // On any exit, everything still in flight or awaiting an overload
    // retry goes back on the to-do list so a reconnect (or the final
    // accounting) sees it.
    struct Requeue
    {
        std::vector<unsigned> &todo;
        std::map<std::uint64_t, Pending> &inflight;
        std::vector<Pending> &retry_queue;
        ~Requeue()
        {
            for (const auto &[id, pending] : inflight)
                todo.push_back(pending.seq);
            for (const Pending &pending : retry_queue)
                todo.push_back(pending.seq);
        }
    } requeue{ todo, inflight, retry_queue };

    auto send = [&](Pending pending) {
        const serve::Request request = makeRequest(
            opt.seed, client, pending.seq, opt.clients, opt.refs);
        if (first_send[pending.seq] == Clock::time_point{})
            first_send[pending.seq] = Clock::now();
        const auto framed = serve::frame(serve::encodeRequest(request));
        // Register before writing: if sendAll throws mid-frame the
        // request must survive into the reconnect's to-do list, not
        // evaporate between the pop and the bookkeeping.
        inflight.emplace(request.id, pending);
        serve::sendAll(fd.get(), framed.data(), framed.size());
    };

    std::vector<std::uint8_t> payload;
    // No reply for this long with requests in flight ⇒ this connection
    // is dead (chaos kills reply paths on purpose); hand the
    // unresolved sequences back for a reconnect.
    const auto stallLimit = std::chrono::seconds(opt.stallLimitS);
    auto last_progress = Clock::now();

    while (!todo.empty() || !inflight.empty() || !retry_queue.empty()) {
        // Refill the window: retries first (they are oldest), then the
        // next fresh sequence from the to-do list.
        while (inflight.size() < opt.window &&
               (!retry_queue.empty() || !todo.empty())) {
            if (!retry_queue.empty()) {
                Pending pending = retry_queue.back();
                retry_queue.pop_back();
                // Exponential backoff, capped: the daemon said it is
                // overloaded; hammering it back would stay overloaded.
                const std::uint64_t backoff_ms = std::min<std::uint64_t>(
                    64, 1ull << std::min(pending.attempts, 6u));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff_ms));
                send(pending);
                continue;
            }
            Pending pending;
            pending.seq = todo.back();
            todo.pop_back();
            send(pending);
        }

        serve::RecvStatus status =
            serve::recvFrame(fd.get(), payload,
                             serve::defaultMaxFrameBytes);
        if (status == serve::RecvStatus::Eof)
            throw IoError("server closed the connection");
        if (status == serve::RecvStatus::Timeout) {
            if (Clock::now() - last_progress > stallLimit)
                return; // unresolved sequences stay on the to-do list
            continue;
        }
        last_progress = Clock::now();

        const serve::Response response =
            serve::parseResponse(payload.data(), payload.size());
        const auto it = inflight.find(response.id);
        if (it == inflight.end()) {
            // id 0 marks a reply the daemon could not attribute (a
            // decode chaos hit, for instance): it answers whichever
            // oldest in-flight request the daemon failed to parse.
            warn("client %u: reply for unknown id %llu", client,
                 static_cast<unsigned long long>(response.id));
            continue;
        }
        const Pending pending = it->second;
        inflight.erase(it);
        Outcome &outcome = outcomes[pending.seq];

        if (response.status == serve::Status::Overloaded) {
            ++outcome.overloads;
            retry_queue.push_back(
                Pending{ pending.seq, pending.attempts + 1 });
            continue;
        }
        outcome.replied = true;
        outcome.status = response.status;
        outcome.result = response.result;
        outcome.message = response.message;
        outcome.latencyUs = std::chrono::duration<double, std::micro>(
                                Clock::now() - first_send[pending.seq])
                                .count();
    }
}

/**
 * Run one client: the deterministic request stream, pipelined over a
 * connection that reconnects (bounded attempts) if the daemon drops it
 * — chaos schedules like serve.accept kill connections on purpose, and
 * a client that gives up on the first EOF would misreport every one of
 * its remaining requests as lost.
 */
void
runClient(const Options &opt, unsigned client,
          std::vector<Outcome> &outcomes)
{
    std::vector<unsigned> todo(opt.requests);
    for (unsigned seq = 0; seq < opt.requests; ++seq) {
        // Record identity up front so even never-replied requests
        // appear (as lost) in the results file.
        const serve::Request request =
            makeRequest(opt.seed, client, seq, opt.clients, opt.refs);
        outcomes[seq].id = request.id;
        outcomes[seq].type = request.type;
        todo[seq] = opt.requests - 1 - seq; // pop_back serves in order
    }
    std::vector<Clock::time_point> first_send(opt.requests);

    // A fruitless session burns one attempt; any progress resets the
    // budget (under connection-killing chaos a client may reconnect
    // many times, and that is fine as long as each session resolves
    // something).
    constexpr unsigned maxFruitless = 8;
    unsigned fruitless = 0;
    while (!todo.empty() && fruitless < maxFruitless) {
        if (fruitless > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50 * fruitless));
        }
        const std::size_t before = todo.size();
        try {
            runSession(opt, client, outcomes, todo, first_send);
        } catch (const IoError &e) {
            warn("client %u: %s (%zu requests unresolved)", client,
                 e.what(), todo.size());
        }
        fruitless = todo.size() < before ? 0 : fruitless + 1;
    }
}

double
percentile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t n = sorted.size();
    std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(n));
    if (index >= n)
        index = n - 1;
    return sorted[index];
}

std::string
jsonEscapeLite(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

const char *
typeName(serve::RequestType type)
{
    switch (type) {
    case serve::RequestType::Replay: return "replay";
    case serve::RequestType::Batch:  return "batch";
    case serve::RequestType::Stats:  return "stats";
    case serve::RequestType::Ping:   return "ping";
    }
    return "?";
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--socket <path> | --port <n>) [--clients K]\n"
        "          [--requests N] [--window W] [--seed S] [--refs N]\n"
        "          [--stall-limit-s N] [--out <file>.json]\n"
        "          [--results-out <file>]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    bool endpoint_set = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        auto want = [&](const char *name) {
            if (std::strcmp(arg, name) != 0)
                return false;
            if (value == nullptr)
                fatal("%s needs a value", name);
            ++i;
            return true;
        };
        if (want("--socket")) {
            opt.endpoint.unixPath = value;
            endpoint_set = true;
        } else if (want("--port")) {
            const auto port = parseUnsigned(value, 1, 65535);
            if (!port)
                fatal("bad --port '%s'", value);
            opt.endpoint.tcpPort = static_cast<std::uint16_t>(*port);
            endpoint_set = true;
        } else if (want("--clients")) {
            const auto n = parseUnsigned(value, 1, 4096);
            if (!n)
                fatal("bad --clients '%s'", value);
            opt.clients = *n;
        } else if (want("--requests")) {
            const auto n = parseUnsigned(value, 1, 1u << 20);
            if (!n)
                fatal("bad --requests '%s'", value);
            opt.requests = *n;
        } else if (want("--window")) {
            const auto n = parseUnsigned(value, 1, 1024);
            if (!n)
                fatal("bad --window '%s'", value);
            opt.window = *n;
        } else if (want("--seed")) {
            const auto n = parseU64(value);
            if (!n)
                fatal("bad --seed '%s'", value);
            opt.seed = *n;
        } else if (want("--refs")) {
            const auto n = parseU64(value, 1);
            if (!n)
                fatal("bad --refs '%s'", value);
            opt.refs = *n;
        } else if (want("--stall-limit-s")) {
            const auto n = parseU64(value, 1, 3'600);
            if (!n)
                fatal("bad --stall-limit-s '%s'", value);
            opt.stallLimitS = *n;
        } else if (want("--out")) {
            opt.out = value;
        } else if (want("--results-out")) {
            opt.resultsOut = value;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }
    if (!endpoint_set)
        return usage(argv[0]);

    using Clock = std::chrono::steady_clock;
    std::vector<std::vector<Outcome>> per_client(opt.clients);
    for (auto &outcomes : per_client)
        outcomes.resize(opt.requests);

    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(opt.clients);
    for (unsigned c = 0; c < opt.clients; ++c) {
        threads.emplace_back([&opt, &per_client, c] {
            try {
                runClient(opt, c, per_client[c]);
            } catch (const IoError &e) {
                warn("client %u: %s", c, e.what());
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // Aggregate.
    std::vector<double> latencies;
    std::uint64_t replied = 0, errors = 0, lost = 0, overloads = 0;
    std::uint64_t events = 0;
    std::vector<const Outcome *> all;
    for (const auto &outcomes : per_client) {
        for (const Outcome &o : outcomes) {
            all.push_back(&o);
            overloads += o.overloads;
            if (!o.replied) {
                ++lost;
                continue;
            }
            ++replied;
            latencies.push_back(o.latencyUs);
            if (o.status == serve::Status::Error)
                ++errors;
            else
                events += o.result.measuredEvents;
        }
    }
    std::sort(latencies.begin(), latencies.end());
    double mean_us = 0.0;
    for (double l : latencies)
        mean_us += l;
    if (!latencies.empty())
        mean_us /= static_cast<double>(latencies.size());
    const std::uint64_t total =
        static_cast<std::uint64_t>(opt.clients) * opt.requests;

    std::string json = "{\n";
    json += "  \"schema\": \"hllc-serve-bench-v1\",\n";
    json += "  \"clients\": " + formatU64(opt.clients) + ",\n";
    json += "  \"requests_per_client\": " + formatU64(opt.requests) +
            ",\n";
    json += "  \"window\": " + formatU64(opt.window) + ",\n";
    json += "  \"seed\": " + formatU64(opt.seed) + ",\n";
    json += "  \"refs_per_core\": " + formatU64(opt.refs) + ",\n";
    json += "  \"requests_total\": " + formatU64(total) + ",\n";
    json += "  \"replied\": " + formatU64(replied) + ",\n";
    json += "  \"errors\": " + formatU64(errors) + ",\n";
    json += "  \"lost_replies\": " + formatU64(lost) + ",\n";
    json += "  \"overloaded_replies\": " + formatU64(overloads) + ",\n";
    json += "  \"duration_s\": " + formatFixed(wall_s, 3) + ",\n";
    json += "  \"requests_per_sec\": " +
            formatFixed(wall_s > 0.0
                            ? static_cast<double>(replied) / wall_s
                            : 0.0,
                        1) +
            ",\n";
    json += "  \"events_per_sec\": " +
            formatFixed(wall_s > 0.0
                            ? static_cast<double>(events) / wall_s
                            : 0.0,
                        1) +
            ",\n";
    json += "  \"latency_us\": { \"p50\": " +
            formatFixed(percentile(latencies, 0.50), 1) +
            ", \"p90\": " + formatFixed(percentile(latencies, 0.90), 1) +
            ", \"p99\": " + formatFixed(percentile(latencies, 0.99), 1) +
            ", \"p999\": " +
            formatFixed(percentile(latencies, 0.999), 1) +
            ", \"max\": " +
            formatFixed(latencies.empty() ? 0.0 : latencies.back(), 1) +
            ", \"mean\": " + formatFixed(mean_us, 1) + " }\n";
    json += "}\n";
    // --out '' skips the report (atomic rename must never target a
    // non-regular path like /dev/null).
    if (!opt.out.empty()) {
        try {
            serial::writeFileAtomic(opt.out, json.data(), json.size());
        } catch (const IoError &e) {
            fatal("%s", e.what());
        }
    }
    std::printf("hllc_loadgen: %s/%s replied in %ss (%s overloaded "
                "retries), p50 %sus p99 %sus\n",
                formatU64(replied).c_str(), formatU64(total).c_str(),
                formatFixed(wall_s, 1).c_str(),
                formatU64(overloads).c_str(),
                formatFixed(percentile(latencies, 0.50), 0).c_str(),
                formatFixed(percentile(latencies, 0.99), 0).c_str());

    // The deterministic result set: one line per evaluation request,
    // sorted by id. Latency and overload counts deliberately excluded —
    // this file must be byte-identical across same-seed runs.
    if (!opt.resultsOut.empty()) {
        std::sort(all.begin(), all.end(),
                  [](const Outcome *a, const Outcome *b) {
                      return a->id < b->id;
                  });
        std::string lines;
        for (const Outcome *o : all) {
            lines += formatU64(o->id);
            lines += ' ';
            lines += typeName(o->type);
            if (!o->replied) {
                lines += " lost\n";
                continue;
            }
            if (o->status == serve::Status::Error) {
                lines += " error ";
                lines += jsonEscapeLite(o->message);
                lines += '\n';
                continue;
            }
            lines += " ok";
            if (o->type != serve::RequestType::Ping) {
                lines += ' ';
                lines += o->result.policyName;
                lines += " events=" + formatU64(o->result.measuredEvents);
                lines += " accesses=" +
                         formatU64(o->result.demandAccesses);
                lines += " hits=" + formatU64(o->result.demandHits);
                lines += " nvm_writes=" + formatU64(o->result.nvmWrites);
                lines += " nvm_bytes=" +
                         formatU64(o->result.nvmBytesWritten);
                lines += " hit_rate=" + formatFixed(o->result.hitRate, 6);
            }
            lines += '\n';
        }
        try {
            serial::writeFileAtomic(opt.resultsOut, lines.data(),
                                    lines.size());
        } catch (const IoError &e) {
            fatal("%s", e.what());
        }
    }

    if (lost > 0) {
        std::fprintf(stderr,
                     "hllc_loadgen: %s requests never got a reply\n",
                     formatU64(lost).c_str());
        return 1;
    }
    return 0;
}
