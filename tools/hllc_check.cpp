/**
 * @file
 * hllc_check: simulator self-validation driver.
 *
 * Usage:
 *   hllc_check --gen <out.hlt> [--events N] [--seed S] [--sets N]
 *   hllc_check --diff golden --trace <t.hlt> [--policy LIST] [--mode M]
 *   hllc_check --diff rerun --trace <t.hlt> [--policy P]
 *   hllc_check --diff jobs --trace <t.hlt> [--jobs N]
 *   hllc_check --diff resume --trace <t.hlt> [--dir D]
 *   hllc_check --oracle --trace <t.hlt> [--policy P]
 *   hllc_check --roundtrip [--blocks N] [--seed S]
 *   hllc_check --fuzz [--budget SEC] [--seed S] [--iterations N]
 *              [--corpus DIR] [--out <repro.hlt>]
 *
 * Geometry options (--sets/--sram/--nvm) apply to every replayed
 * configuration; --inject-lru-bug plants a deliberate off-by-one in the
 * golden model's LRU scan to mutation-test the checkers themselves.
 *
 * Exit codes: 0 = all checks passed, 1 = a divergence/failure was found
 * (fuzz failures leave a shrunken reproducer plus manifest at --out),
 * 2 = usage error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "check/differential.hh"
#include "check/golden_compress.hh"
#include "check/manifest.hh"
#include "check/oracle.hh"
#include "check/trace_fuzz.hh"
#include "common/argparse.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "compression/compressor.hh"

using namespace hllc;
using check::DegenerateMode;
using hybrid::PolicyKind;

namespace
{

int
usage(const char *prog)
{
    std::fprintf(
        stderr,
        "usage: %s <action> [options]\n"
        "actions:\n"
        "  --gen <out.hlt>       generate a fuzz-grammar trace + manifest\n"
        "  --diff golden         fast LLC vs. golden shadow model\n"
        "  --diff rerun          same configuration replayed twice\n"
        "  --diff jobs           replay grid at --jobs N vs. jobs=1\n"
        "  --diff resume         forecast straight-through vs. resumed\n"
        "  --oracle              per-set policy hits <= Belady/OPT bound\n"
        "  --roundtrip           compressor round-trip sweeps\n"
        "  --fuzz                fuzz campaign with ddmin shrinking\n"
        "options:\n"
        "  --trace <t.hlt>       input trace (diff/oracle)\n"
        "  --policy <P[,P...]>   policies (default: all nine)\n"
        "  --mode <M>            pristine|compression-off|sram-only|all\n"
        "  --sets/--sram/--nvm   LLC geometry (default 64/4/12)\n"
        "  --events N            events per generated trace\n"
        "  --seed S --jobs N --budget SEC --iterations N --blocks N\n"
        "  --corpus DIR          regression corpus replayed before fuzzing\n"
        "  --out <repro.hlt>     where a shrunken reproducer is written\n"
        "  --dir D               checkpoint directory (diff resume)\n"
        "  --inject-lru-bug      mutation-test the golden model's LRU\n",
        prog);
    return 2;
}

PolicyKind
parsePolicy(const std::string &name)
{
    static const std::pair<const char *, PolicyKind> table[] = {
        { "BH", PolicyKind::Bh },           { "BH_CP", PolicyKind::BhCp },
        { "CA", PolicyKind::Ca },           { "CA_RWR", PolicyKind::CaRwr },
        { "CP_SD", PolicyKind::CpSd },      { "CP_SD_Th", PolicyKind::CpSdTh },
        { "LHybrid", PolicyKind::LHybrid }, { "TAP", PolicyKind::Tap },
        { "SRAM", PolicyKind::SramOnly },
    };
    for (const auto &[label, kind] : table) {
        if (name == label)
            return kind;
    }
    fatal("unknown policy '%s'", name.c_str());
}

std::vector<PolicyKind>
parsePolicyList(const std::string &arg)
{
    std::vector<PolicyKind> policies;
    std::stringstream stream(arg);
    std::string token;
    while (std::getline(stream, token, ','))
        policies.push_back(parsePolicy(token));
    if (policies.empty())
        fatal("empty policy list '%s'", arg.c_str());
    return policies;
}

std::vector<PolicyKind>
allPolicies()
{
    return { PolicyKind::Bh,      PolicyKind::BhCp, PolicyKind::Ca,
             PolicyKind::CaRwr,   PolicyKind::CpSd, PolicyKind::CpSdTh,
             PolicyKind::LHybrid, PolicyKind::Tap,  PolicyKind::SramOnly };
}

std::vector<DegenerateMode>
parseModes(const std::string &arg)
{
    if (arg == "all") {
        return { DegenerateMode::Pristine, DegenerateMode::CompressionOff,
                 DegenerateMode::SramOnly };
    }
    if (arg == "pristine")
        return { DegenerateMode::Pristine };
    if (arg == "compression-off")
        return { DegenerateMode::CompressionOff };
    if (arg == "sram-only")
        return { DegenerateMode::SramOnly };
    fatal("unknown mode '%s' (pristine|compression-off|sram-only|all)",
          arg.c_str());
}

struct Options
{
    std::string action;   // gen | diff | oracle | roundtrip | fuzz
    std::string diffKind; // golden | rerun | jobs | resume
    std::string genPath;
    std::string tracePath;
    std::vector<PolicyKind> policies = allPolicies();
    std::vector<DegenerateMode> modes = parseModes("all");
    std::uint32_t sets = 64;
    std::uint32_t sram = 4;
    std::uint32_t nvm = 12;
    std::uint64_t seed = 1;
    std::uint64_t events = 100'000;
    unsigned jobs = 4;
    double budgetSeconds = 60.0;
    std::uint64_t iterations = 0;
    std::uint64_t blocks = 2000;
    std::string corpusDir;
    std::string outPath = "hllc_check_reproducer.hlt";
    std::string checkpointDir = ".";
    bool injectLruBug = false;
};

/** One LLC configuration per policy at the tool's geometry. */
hybrid::HybridLlcConfig
llcConfigFor(const Options &opt, PolicyKind policy)
{
    hybrid::HybridLlcConfig llc;
    llc.numSets = opt.sets;
    llc.sramWays = opt.sram;
    llc.nvmWays = opt.nvm;
    llc.policy = policy;
    llc.replacement = hybrid::ReplacementKind::Lru;
    // Short epochs relative to typical check traces, so Set Dueling
    // actually flips CPth inside the run.
    llc.epochCycles = 20'000;
    return llc;
}

replay::LlcTrace
loadTrace(const Options &opt)
{
    if (opt.tracePath.empty())
        fatal("--trace <file.hlt> is required for this action");
    replay::LlcTrace trace;
    try {
        trace = replay::LlcTrace::load(opt.tracePath);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }
    if (const auto mismatch = check::verifyManifest(opt.tracePath, trace))
        fatal("%s", mismatch->c_str());
    return trace;
}

int
runGen(const Options &opt)
{
    const replay::LlcTrace trace =
        check::generateTrace(opt.seed, opt.events, opt.sets);
    try {
        trace.save(opt.genPath);
        check::TraceManifest manifest =
            check::computeManifest(opt.genPath, trace);
        manifest.hasSeed = true;
        manifest.seed = opt.seed;
        check::saveManifest(opt.genPath, manifest);
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }
    std::printf("%s: %zu events (seed %llu, %u sets) + manifest\n",
                opt.genPath.c_str(), trace.size(),
                static_cast<unsigned long long>(opt.seed), opt.sets);
    return 0;
}

int
runDiffGolden(const Options &opt)
{
    const replay::LlcTrace trace = loadTrace(opt);
    const check::GoldenOptions golden{ opt.injectLruBug };
    int failures = 0;
    for (PolicyKind policy : opt.policies) {
        const hybrid::HybridLlcConfig llc = llcConfigFor(opt, policy);
        for (DegenerateMode mode : opt.modes) {
            const check::GoldenDiffResult diff =
                check::diffGolden(trace, llc, mode, golden);
            const std::string_view policy_name =
                hybrid::InsertionPolicy::create(policy, llc.params)->name();
            if (diff.ok()) {
                std::printf("ok   %-8s %-15s (%llu events)\n",
                            std::string(policy_name).c_str(),
                            std::string(check::degenerateModeName(mode))
                                .c_str(),
                            static_cast<unsigned long long>(
                                diff.eventsCompared));
                continue;
            }
            ++failures;
            std::printf("FAIL %-8s %-15s\n%s\n",
                        std::string(policy_name).c_str(),
                        std::string(check::degenerateModeName(mode))
                            .c_str(),
                        diff.divergence->description.c_str());
        }
    }
    if (failures > 0) {
        std::fprintf(stderr, "%d golden divergence(s) found\n", failures);
        return 1;
    }
    return 0;
}

int
runDiffRerun(const Options &opt)
{
    const replay::LlcTrace trace = loadTrace(opt);
    int failures = 0;
    for (PolicyKind policy : opt.policies) {
        const hybrid::HybridLlcConfig llc = llcConfigFor(opt, policy);
        if (const auto why = check::diffRerun(trace, llc)) {
            ++failures;
            std::printf("FAIL rerun: %s\n", why->c_str());
        }
    }
    if (failures > 0)
        return 1;
    std::printf("ok   rerun deterministic for %zu policies\n",
                opt.policies.size());
    return 0;
}

int
runDiffJobs(const Options &opt)
{
    const replay::LlcTrace trace = loadTrace(opt);
    std::vector<hybrid::HybridLlcConfig> configs;
    for (PolicyKind policy : opt.policies)
        configs.push_back(llcConfigFor(opt, policy));
    if (const auto why = check::diffJobs(trace, configs, opt.jobs)) {
        std::printf("FAIL jobs: %s\n", why->c_str());
        return 1;
    }
    std::printf("ok   grid identical at jobs=1 and jobs=%u "
                "(%zu cells)\n",
                opt.jobs, configs.size());
    return 0;
}

int
runDiffResume(const Options &opt)
{
    const replay::LlcTrace trace = loadTrace(opt);
    const hybrid::HybridLlcConfig llc =
        llcConfigFor(opt, opt.policies.front());
    if (const auto why =
            check::diffResume(trace, llc, opt.checkpointDir)) {
        std::printf("FAIL resume: %s\n", why->c_str());
        return 1;
    }
    std::printf("ok   resumed forecast identical to straight-through\n");
    return 0;
}

int
runOracle(const Options &opt)
{
    const replay::LlcTrace trace = loadTrace(opt);
    int failures = 0;
    for (PolicyKind policy : opt.policies) {
        const hybrid::HybridLlcConfig llc = llcConfigFor(opt, policy);
        if (const auto why = check::checkPolicyAgainstOracle(trace, llc)) {
            ++failures;
            std::printf("FAIL oracle: %s\n", why->c_str());
        }
    }
    if (failures > 0)
        return 1;
    std::printf("ok   %zu policies within the Belady/OPT bound\n",
                opt.policies.size());
    return 0;
}

int
runRoundtrip(const Options &opt)
{
    const auto fpc =
        compression::BlockCompressor::create(compression::Scheme::Fpc);
    const auto cpack =
        compression::BlockCompressor::create(compression::Scheme::CPack);

    int failures = 0;
    const auto checkBlock = [&](const std::string &name,
                                const BlockData &data) {
        if (const auto why = check::verifyBdiBlock(data)) {
            ++failures;
            std::printf("FAIL bdi/%s: %s\n", name.c_str(), why->c_str());
        }
        if (const auto why = check::verifyCompressorBlock(*fpc, data)) {
            ++failures;
            std::printf("FAIL fpc/%s: %s\n", name.c_str(), why->c_str());
        }
        if (const auto why = check::verifyCompressorBlock(*cpack, data)) {
            ++failures;
            std::printf("FAIL cpack/%s: %s\n", name.c_str(),
                        why->c_str());
        }
    };

    const std::vector<check::NamedBlock> boundary =
        check::boundaryBlocks();
    for (const check::NamedBlock &nb : boundary)
        checkBlock(nb.name, nb.data);

    // Random sweep: raw byte soup and structured base+delta blocks.
    Xoshiro256StarStar rng(opt.seed);
    for (std::uint64_t i = 0; i < opt.blocks; ++i) {
        BlockData data{};
        if (rng.nextBool(0.5)) {
            for (std::uint8_t &b : data)
                b = static_cast<std::uint8_t>(rng.nextBounded(256));
        } else {
            const std::uint64_t base = rng.next();
            const unsigned k = 1u << (1 + rng.nextBounded(3)); // 2/4/8
            const unsigned spread = 1 + rng.nextBounded(16);
            for (std::size_t v = 0; v < blockBytes / k; ++v) {
                const std::uint64_t value =
                    base + rng.nextBounded(spread) - spread / 2;
                for (unsigned b = 0; b < k; ++b) {
                    data[v * k + b] =
                        static_cast<std::uint8_t>(value >> (8 * b));
                }
            }
        }
        checkBlock("random-" + formatU64(i), data);
        if (failures > 8)
            break; // enough context to debug; stop the spam
    }

    if (failures > 0) {
        std::fprintf(stderr, "%d round-trip failure(s)\n", failures);
        return 1;
    }
    std::printf("ok   %zu boundary + %llu random blocks round-trip "
                "(BDI ref-decode, FPC, C-Pack)\n",
                boundary.size(),
                static_cast<unsigned long long>(opt.blocks));
    return 0;
}

/** Replay every corpus trace through the full differential grid. */
int
runCorpus(const Options &opt, const check::GoldenOptions &golden)
{
    std::vector<std::filesystem::path> paths;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.corpusDir, ec)) {
        if (entry.path().extension() == ".hlt")
            paths.push_back(entry.path());
    }
    if (ec)
        fatal("cannot list corpus '%s': %s", opt.corpusDir.c_str(),
              ec.message().c_str());
    std::sort(paths.begin(), paths.end());

    int failures = 0;
    for (const auto &path : paths) {
        replay::LlcTrace trace;
        try {
            trace = replay::LlcTrace::load(path.string());
        } catch (const IoError &e) {
            fatal("%s", e.what());
        }
        if (const auto bad = check::verifyManifest(path.string(), trace))
            fatal("%s", bad->c_str());
        for (PolicyKind policy : opt.policies) {
            const hybrid::HybridLlcConfig llc = llcConfigFor(opt, policy);
            for (DegenerateMode mode : opt.modes) {
                const auto diff =
                    check::diffGolden(trace, llc, mode, golden);
                if (diff.ok())
                    continue;
                ++failures;
                std::printf("FAIL corpus %s\n%s\n",
                            path.string().c_str(),
                            diff.divergence->description.c_str());
            }
        }
    }
    std::printf("corpus: %zu trace(s) replayed, %d failure(s)\n",
                paths.size(), failures);
    return failures > 0 ? 1 : 0;
}

int
runFuzz(const Options &opt)
{
    const check::GoldenOptions golden{ opt.injectLruBug };
    if (!opt.corpusDir.empty()) {
        const int rc = runCorpus(opt, golden);
        if (rc != 0)
            return rc;
    }

    check::FuzzConfig config;
    config.seed = opt.seed;
    config.budgetSeconds = opt.budgetSeconds;
    config.maxIterations = opt.iterations;
    config.numSets = opt.sets;
    config.sramWays = opt.sram;
    config.nvmWays = opt.nvm;

    const check::FuzzReport report = check::fuzz(config, golden);
    if (report.ok()) {
        std::printf("ok   fuzz: %zu iterations, %zu replays, no "
                    "divergence\n",
                    report.iterations, report.tracesReplayed);
        return 0;
    }

    const check::FuzzFailure &failure = *report.failure;
    std::printf("FAIL fuzz (iteration %zu, %s): shrunk %zu -> %zu "
                "events\n%s\n",
                failure.iteration,
                std::string(check::degenerateModeName(failure.mode))
                    .c_str(),
                failure.originalEvents, failure.reproducer.size(),
                failure.description.c_str());
    try {
        failure.reproducer.save(opt.outPath);
        check::TraceManifest manifest =
            check::computeManifest(opt.outPath, failure.reproducer);
        check::saveManifest(opt.outPath, manifest);
        std::printf("reproducer written to %s (+ manifest)\n",
                    opt.outPath.c_str());
    } catch (const IoError &e) {
        std::fprintf(stderr, "cannot save reproducer: %s\n", e.what());
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    const auto need = [&](int i) -> const char * {
        if (i + 1 >= argc)
            fatal("%s expects a value", argv[i]);
        return argv[i + 1];
    };
    const auto setAction = [&](const std::string &action) {
        if (!opt.action.empty())
            fatal("conflicting actions --%s and --%s",
                  opt.action.c_str(), action.c_str());
        opt.action = action;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--gen") {
            setAction("gen");
            opt.genPath = need(i);
            ++i;
        } else if (arg == "--diff") {
            setAction("diff");
            opt.diffKind = need(i);
            ++i;
            if (opt.diffKind != "golden" && opt.diffKind != "rerun" &&
                opt.diffKind != "jobs" && opt.diffKind != "resume") {
                fatal("unknown diff kind '%s' "
                      "(golden|rerun|jobs|resume)",
                      opt.diffKind.c_str());
            }
        } else if (arg == "--oracle") {
            setAction("oracle");
        } else if (arg == "--roundtrip") {
            setAction("roundtrip");
        } else if (arg == "--fuzz") {
            setAction("fuzz");
        } else if (arg == "--trace") {
            opt.tracePath = need(i);
            ++i;
        } else if (arg == "--policy") {
            opt.policies = parsePolicyList(need(i));
            ++i;
        } else if (arg == "--mode") {
            opt.modes = parseModes(need(i));
            ++i;
        } else if (arg == "--corpus") {
            opt.corpusDir = need(i);
            ++i;
        } else if (arg == "--out") {
            opt.outPath = need(i);
            ++i;
        } else if (arg == "--dir") {
            opt.checkpointDir = need(i);
            ++i;
        } else if (arg == "--inject-lru-bug") {
            opt.injectLruBug = true;
        } else if (arg == "--sets" || arg == "--sram" || arg == "--nvm" ||
                   arg == "--jobs") {
            const auto v = parseUnsigned(need(i), arg == "--sets" ? 1 : 0);
            if (!v)
                fatal("bad value '%s' for %s", argv[i + 1], arg.c_str());
            ++i;
            if (arg == "--sets")
                opt.sets = *v;
            else if (arg == "--sram")
                opt.sram = *v;
            else if (arg == "--nvm")
                opt.nvm = *v;
            else
                opt.jobs = *v;
        } else if (arg == "--seed" || arg == "--events" ||
                   arg == "--iterations" || arg == "--blocks") {
            const auto v = parseU64(need(i));
            if (!v)
                fatal("bad value '%s' for %s", argv[i + 1], arg.c_str());
            ++i;
            if (arg == "--seed")
                opt.seed = *v;
            else if (arg == "--events")
                opt.events = *v;
            else if (arg == "--iterations")
                opt.iterations = *v;
            else
                opt.blocks = *v;
        } else if (arg == "--budget") {
            const auto v = parseDouble(need(i));
            if (!v || *v <= 0.0)
                fatal("bad value '%s' for --budget", argv[i + 1]);
            opt.budgetSeconds = *v;
            ++i;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (opt.action.empty())
        return usage(argv[0]);
    if ((opt.sets & (opt.sets - 1)) != 0)
        fatal("--sets must be a power of two");

    if (opt.action == "gen")
        return runGen(opt);
    if (opt.action == "oracle")
        return runOracle(opt);
    if (opt.action == "roundtrip")
        return runRoundtrip(opt);
    if (opt.action == "fuzz")
        return runFuzz(opt);
    if (opt.diffKind == "golden")
        return runDiffGolden(opt);
    if (opt.diffKind == "rerun")
        return runDiffRerun(opt);
    if (opt.diffKind == "jobs")
        return runDiffJobs(opt);
    return runDiffResume(opt);
}
