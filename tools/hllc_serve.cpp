/**
 * @file
 * hllc-serve: run the sharded policy-evaluation daemon.
 *
 * Usage:
 *   hllc_serve [--socket <path> | --port <n>] [--shards N]
 *              [--queue-depth N] [--batch-max N] [--stats-out <f>.json]
 *              [--stats-interval-ms N] [--max-refs N]
 *              [--max-batch-events N]
 *
 * Binds the endpoint (an explicit --port of 0 picks an ephemeral port,
 * printed on the "listening" line so a harness can parse it), serves
 * hllc-req-v1 requests until SIGINT/SIGTERM, then drains: accepted
 * requests are finished and answered, the final hllc-stats-v1 export is
 * written atomically, and the process exits 0.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/argparse.hh"
#include "common/error.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "serve/server.hh"

using namespace hllc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket <path> | --port <n>] [--shards N]\n"
        "          [--queue-depth N] [--batch-max N]\n"
        "          [--stats-out <file>.json] [--stats-interval-ms N]\n"
        "          [--max-refs N] [--max-batch-events N]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig config;
    bool endpoint_set = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const char *value = i + 1 < argc ? argv[i + 1] : nullptr;
        auto want = [&](const char *name) {
            if (std::strcmp(arg, name) != 0)
                return false;
            if (value == nullptr)
                fatal("%s needs a value", name);
            ++i;
            return true;
        };
        if (want("--socket")) {
            config.endpoint.unixPath = value;
            endpoint_set = true;
        } else if (want("--port")) {
            const auto port = parseUnsigned(value, 0, 65535);
            if (!port)
                fatal("bad --port '%s'", value);
            config.endpoint.tcpPort =
                static_cast<std::uint16_t>(*port);
            endpoint_set = true;
        } else if (want("--shards")) {
            const auto n = parseUnsigned(value, 1, 256);
            if (!n)
                fatal("bad --shards '%s' (expected 1..256)", value);
            config.shards = *n;
        } else if (want("--queue-depth")) {
            const auto n = parseUnsigned(value, 1, 1u << 20);
            if (!n)
                fatal("bad --queue-depth '%s'", value);
            config.queueDepth = *n;
        } else if (want("--batch-max")) {
            const auto n = parseUnsigned(value, 1, 4096);
            if (!n)
                fatal("bad --batch-max '%s'", value);
            config.batchMax = *n;
        } else if (want("--stats-out")) {
            config.statsOut = value;
        } else if (want("--stats-interval-ms")) {
            const auto n = parseU64(value, 10, 3'600'000);
            if (!n)
                fatal("bad --stats-interval-ms '%s'", value);
            config.statsIntervalMs = *n;
        } else if (want("--max-refs")) {
            const auto n = parseU64(value, 1);
            if (!n)
                fatal("bad --max-refs '%s'", value);
            config.limits.maxRefsPerCore = *n;
        } else if (want("--max-batch-events")) {
            const auto n = parseUnsigned(value, 1, 1u << 24);
            if (!n)
                fatal("bad --max-batch-events '%s'", value);
            config.limits.maxBatchEvents = *n;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg);
            return usage(argv[0]);
        }
    }
    if (!endpoint_set)
        return usage(argv[0]);

    installInterruptHandlers();

    serve::Server server(config);
    try {
        server.start();
    } catch (const IoError &e) {
        fatal("%s", e.what());
    }

    if (!config.endpoint.unixPath.empty()) {
        std::printf("hllc-serve: listening on unix:%s (%u shards)\n",
                    config.endpoint.unixPath.c_str(), config.shards);
    } else {
        std::printf("hllc-serve: listening on tcp:127.0.0.1:%u "
                    "(%u shards)\n",
                    server.tcpPort(), config.shards);
    }
    std::fflush(stdout); // harnesses parse this line before connecting

    server.serve();

    const serve::ServerStats stats = server.stats();
    std::printf("hllc-serve: drained: %s frames accepted, %s replies "
                "sent, %s reply failures, %s overloaded\n",
                formatU64(stats.framesAccepted).c_str(),
                formatU64(stats.repliesSent).c_str(),
                formatU64(stats.replyFailures).c_str(),
                formatU64(stats.overloaded).c_str());
    if (stats.framesAccepted != stats.repliesSent + stats.replyFailures) {
        // The drain guarantee is the point of the daemon: make a
        // violation loud enough for CI to catch.
        std::fprintf(stderr,
                     "hllc-serve: DRAIN ACCOUNTING VIOLATION: "
                     "accepted %s != replied %s + failed %s\n",
                     formatU64(stats.framesAccepted).c_str(),
                     formatU64(stats.repliesSent).c_str(),
                     formatU64(stats.replyFailures).c_str());
        return 1;
    }
    return 0;
}
