/**
 * @file
 * A small C++ lexer for the project linter.
 *
 * The rule engines in lint/rules.hh must never fire on a banned keyword
 * that only appears inside a string literal or a comment — so the first
 * stage of `hllc_lint` is a real tokenizer, not a grep. It understands
 * line/block comments, ordinary and raw string literals, character
 * literals, preprocessor directives (kept as single tokens: the include
 * graph and include-guard checks need them) and identifier/number/
 * punctuation tokens, each tagged with its 1-based source line.
 *
 * Comments are kept as tokens rather than dropped: the suppression
 * syntax (`// hllc-lint: allow(<rule>) <justification>`) lives in them.
 */

#ifndef HLLC_LINT_LEXER_HH
#define HLLC_LINT_LEXER_HH

#include <string>
#include <vector>

namespace hllc::lint
{

/** Lexical class of one token. */
enum class TokKind
{
    Identifier, //!< identifiers and keywords
    Number,     //!< numeric literals (including 0x..., digit separators)
    String,     //!< "..." and R"(...)" literals (text excludes quotes)
    Char,       //!< '...' literals
    Punct,      //!< one punctuation character per token
    Comment,    //!< // or block comment; text excludes the delimiters
    Directive,  //!< one whole preprocessor directive
};

/** One token; @c line is 1-based and refers to where the token starts. */
struct Token
{
    TokKind kind;
    /**
     * Token spelling. For Directive tokens this is the directive keyword
     * alone ("include", "ifndef", ...); the remainder of the directive
     * line (comments stripped, trimmed) is in @c payload.
     */
    std::string text;
    /**
     * Directive arguments, e.g. `"common/rng.hh"` or `HLLC_FOO_HH`.
     * For String/Char tokens: the user-defined-literal suffix, if any
     * (`_sv` for `"x"_sv`), so no stray Identifier token is emitted.
     */
    std::string payload;
    int line = 0;
    /** Last line the token covers (> line for multi-line comments). */
    int endLine = 0;
};

/**
 * Tokenize @p source. The lexer is permissive: malformed input (e.g. an
 * unterminated string) never throws, it just ends the current token at
 * end of file — a linter must degrade gracefully on code that does not
 * compile yet.
 */
std::vector<Token> lex(const std::string &source);

} // namespace hllc::lint

#endif // HLLC_LINT_LEXER_HH
