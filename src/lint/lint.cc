#include "lint/lint.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iterator>
#include <map>
#include <set>

#include "common/error.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace fs = std::filesystem;

namespace hllc::lint
{

namespace
{

bool
lintableExtension(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

std::string
readFile(const fs::path &path)
{
    const std::vector<std::uint8_t> bytes =
        serial::readFileBytes(path.string());
    return std::string(bytes.begin(), bytes.end());
}

/** `file|rule|line-text` — see formatBaseline(). */
std::string
baselineKey(const Finding &finding)
{
    return finding.file + "|" + finding.rule + "|" + finding.lineText;
}

/** JSON string escaping for the report emitter. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += "\\u00";
                const char *hex = "0123456789abcdef";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

std::vector<std::string>
collectLintFiles(const std::string &root_str,
                 const std::vector<std::string> &paths)
{
    const fs::path root =
        root_str.empty() ? fs::path(".") : fs::path(root_str);
    std::vector<std::string> requested = paths;
    if (requested.empty())
        requested = { "src", "tools", "bench", "tests", "examples" };
    std::vector<std::string> files;
    for (const std::string &entry : requested) {
        const fs::path abs = root / entry;
        std::error_code ec;
        if (fs::is_regular_file(abs, ec)) {
            files.push_back(
                fs::path(entry).generic_string());
            continue;
        }
        if (!fs::is_directory(abs, ec)) {
            throw IoError("lint path does not exist: " + abs.string());
        }
        for (fs::recursive_directory_iterator it(abs, ec), end;
             it != end; it.increment(ec)) {
            if (ec)
                throw IoError("cannot walk " + abs.string() + ": " +
                              ec.message());
            if (!it->is_regular_file() ||
                !lintableExtension(it->path())) {
                continue;
            }
            files.push_back(
                it->path().lexically_relative(root).generic_string());
        }
        if (ec)
            throw IoError("cannot walk " + abs.string() + ": " +
                          ec.message());
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

void
checkIncludeCycles(
    const std::map<std::string, std::vector<std::string>> &graph,
    std::vector<Finding> &findings)
{
    enum class Color { White, Grey, Black };
    std::map<std::string, Color> color;
    std::vector<std::string> stack;

    const std::function<void(const std::string &)> visit =
        [&](const std::string &node) {
            color[node] = Color::Grey;
            stack.push_back(node);
            const auto edges = graph.find(node);
            if (edges != graph.end()) {
                for (const std::string &next : edges->second) {
                    if (graph.find(next) == graph.end())
                        continue;
                    const Color c = color.count(next) != 0
                        ? color[next] : Color::White;
                    if (c == Color::White) {
                        visit(next);
                    } else if (c == Color::Grey) {
                        std::string chain = next;
                        for (auto it = std::find(stack.begin(),
                                                 stack.end(), next);
                             it != stack.end(); ++it) {
                            if (*it != next)
                                chain += " -> " + *it;
                        }
                        chain += " -> " + next;
                        findings.push_back(
                            { node, 1, "include-graph",
                              "include cycle: " + chain, "" });
                    }
                }
            }
            stack.pop_back();
            color[node] = Color::Black;
        };

    for (const auto &entry : graph) {
        if (color.count(entry.first) == 0 ||
            color[entry.first] == Color::White) {
            visit(entry.first);
        }
    }
}

void
subtractBaseline(const std::string &baselineText, RunResult &result)
{
    std::multiset<std::string> baseline;
    std::string line;
    for (std::size_t i = 0; i <= baselineText.size(); ++i) {
        if (i == baselineText.size() || baselineText[i] == '\n') {
            if (!line.empty() && line[0] != '#')
                baseline.insert(line);
            line.clear();
        } else if (baselineText[i] != '\r') {
            line += baselineText[i];
        }
    }
    std::vector<Finding> kept;
    for (Finding &finding : result.findings) {
        const auto it = baseline.find(baselineKey(finding));
        if (it != baseline.end()) {
            baseline.erase(it);
            ++result.baselined;
        } else {
            kept.push_back(std::move(finding));
        }
    }
    result.findings = std::move(kept);
    result.staleBaseline = baseline.size();
}

RunResult
lintTree(const std::string &root, const RunOptions &options)
{
    RunResult result;
    const fs::path root_path = root.empty() ? fs::path(".")
                                            : fs::path(root);
    const std::vector<std::string> files =
        collectLintFiles(root, options.paths);

    std::map<std::string, std::vector<std::string>> include_graph;
    for (const std::string &file : files) {
        const std::string content = readFile(root_path / file);
        std::vector<Finding> found =
            lintSource(file, content, options.rules);
        result.findings.insert(result.findings.end(),
                               std::make_move_iterator(found.begin()),
                               std::make_move_iterator(found.end()));
        ++result.filesScanned;
        // Only headers participate in cycles; sources are graph leaves.
        if (file.size() > 3 &&
            file.compare(file.size() - 3, 3, ".hh") == 0) {
            std::vector<std::string> edges;
            for (const std::string &inc : projectIncludes(content))
                edges.push_back("src/" + inc);
            include_graph[file] = std::move(edges);
        }
    }
    if (options.rules.ruleEnabled("include-graph"))
        checkIncludeCycles(include_graph, result.findings);

    if (!options.baselinePath.empty()) {
        subtractBaseline(readFile(root_path / options.baselinePath),
                         result);
    }

    std::stable_sort(result.findings.begin(), result.findings.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.file != b.file ? a.file < b.file
                                                 : a.line < b.line;
                     });
    return result;
}

std::string
formatBaseline(const std::vector<Finding> &findings)
{
    std::string out =
        "# hllc_lint baseline: file|rule|offending line text.\n"
        "# Regenerate with: hllc_lint --write-baseline <this file>\n";
    for (const Finding &finding : findings)
        out += baselineKey(finding) + "\n";
    return out;
}

std::string
formatText(const RunResult &result)
{
    std::string out;
    for (const Finding &finding : result.findings) {
        out += finding.file + ":" +
               formatU64(static_cast<std::uint64_t>(
                   finding.line < 0 ? 0 : finding.line)) +
               ": [" + finding.rule + "] " + finding.message + "\n";
    }
    out += formatU64(result.findings.size()) + " finding(s) in " +
           formatU64(result.filesScanned) + " file(s)";
    if (result.baselined != 0)
        out += ", " + formatU64(result.baselined) + " baselined";
    if (result.staleBaseline != 0) {
        out += ", " + formatU64(result.staleBaseline) +
               " stale baseline entr(y/ies)";
    }
    out += "\n";
    return out;
}

std::string
formatJson(const RunResult &result)
{
    std::map<std::string, std::uint64_t> counts;
    for (const std::string &rule : allRules())
        counts[rule] = 0;
    for (const Finding &finding : result.findings)
        ++counts[finding.rule];

    std::string out = "{\n  \"schema\": \"hllc-lint-v1\",\n";
    out += "  \"files_scanned\": " + formatU64(result.filesScanned) +
           ",\n";
    out += "  \"baselined\": " + formatU64(result.baselined) + ",\n";
    out += "  \"stale_baseline\": " + formatU64(result.staleBaseline) +
           ",\n";
    out += "  \"counts\": {";
    bool first = true;
    for (const auto &entry : counts) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(entry.first) + "\": " +
               formatU64(entry.second);
    }
    out += "\n  },\n  \"findings\": [";
    first = true;
    for (const Finding &finding : result.findings) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"file\": \"" + jsonEscape(finding.file) +
               "\", \"line\": " +
               formatU64(static_cast<std::uint64_t>(
                   finding.line < 0 ? 0 : finding.line)) +
               ", \"rule\": \"" + jsonEscape(finding.rule) +
               "\", \"message\": \"" + jsonEscape(finding.message) +
               "\"}";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace hllc::lint
