/**
 * @file
 * The `hllc_lint` driver: tree walking, the cross-file include graph,
 * baseline handling and the text/JSON reporters.
 *
 * The per-file engines live in lint/rules.hh; this layer adds what
 * needs more than one file: walking `src/ tools/ bench/ tests/
 * examples/`, detecting include cycles among project headers, and
 * subtracting a checked-in baseline so pre-existing findings can be
 * burned down without blocking CI. Baseline entries fingerprint the
 * offending line's text, not its number, so unrelated edits above a
 * waived line do not resurrect it.
 */

#ifndef HLLC_LINT_LINT_HH
#define HLLC_LINT_LINT_HH

#include <map>
#include <string>
#include <vector>

#include "lint/rules.hh"

namespace hllc::lint
{

/** A whole-run configuration. */
struct RunOptions
{
    /** Rule enablement forwarded to lintSource(). */
    Options rules;
    /**
     * Directories (or single files) to lint, relative to the root.
     * Empty means the project default: src tools bench tests examples.
     */
    std::vector<std::string> paths;
    /** Baseline file path ("" = no baseline). */
    std::string baselinePath;
};

/** Outcome of linting a tree. */
struct RunResult
{
    /** Findings after suppressions and baseline subtraction. */
    std::vector<Finding> findings;
    /** How many findings the baseline absorbed. */
    std::size_t baselined = 0;
    /** Baseline entries that matched nothing (stale, worth pruning). */
    std::size_t staleBaseline = 0;
    std::size_t filesScanned = 0;
};

/**
 * Lint every C++ source below @p root limited to @p options.paths.
 * Throws hllc::IoError when the root, a requested path, or the baseline
 * file cannot be read.
 */
RunResult lintTree(const std::string &root, const RunOptions &options);

/**
 * Sorted, de-duplicated repo-relative paths of every lintable C++ file
 * under @p paths (empty = the project default set). Shared with the
 * analysis/ driver so both walk the identical file set.
 */
std::vector<std::string>
collectLintFiles(const std::string &root,
                 const std::vector<std::string> &paths);

/**
 * Report include cycles among project headers under rule
 * `include-graph`: a cyclic header pair cannot both be self-contained.
 * @p graph maps each header to the project headers it includes
 * (resolved paths; edges to nodes absent from the graph are ignored).
 */
void checkIncludeCycles(
    const std::map<std::string, std::vector<std::string>> &graph,
    std::vector<Finding> &findings);

/**
 * Subtract the checked-in baseline (text of the baseline file) from
 * @p result: matched findings are dropped and counted in `baselined`,
 * unmatched baseline entries in `staleBaseline`.
 */
void subtractBaseline(const std::string &baselineText,
                      RunResult &result);

/** One `file|rule|line-text` baseline line per finding. */
std::string formatBaseline(const std::vector<Finding> &findings);

/** Human-readable report: `file:line: [rule] message`. */
std::string formatText(const RunResult &result);

/** Machine-readable report (schema "hllc-lint-v1"). */
std::string formatJson(const RunResult &result);

} // namespace hllc::lint

#endif // HLLC_LINT_LINT_HH
