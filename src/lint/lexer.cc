#include "lint/lexer.hh"

#include <cctype>

namespace hllc::lint
{

namespace
{

/** Cursor over the source text with 1-based line tracking. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }
    char get()
    {
        const char c = text_[pos_++];
        if (c == '\n')
            ++line_;
        return c;
    }
    /**
     * Consume a backslash-newline continuation if one starts here;
     * returns true when something was skipped.
     */
    bool skipContinuation()
    {
        if (peek() != '\\')
            return false;
        std::size_t i = pos_ + 1;
        if (i < text_.size() && text_[i] == '\r')
            ++i;
        if (i >= text_.size() || text_[i] != '\n')
            return false;
        while (pos_ <= i)
            get();
        return true;
    }
    int line() const { return line_; }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** `R`, `u8R`, `LR`, ... introduce a raw string when followed by '"'. */
bool
isRawPrefix(const std::string &ident)
{
    return ident == "R" || ident == "u8R" || ident == "uR" ||
           ident == "UR" || ident == "LR";
}

/** `u8`, `u`, `U`, `L` prefix an ordinary string or char literal. */
bool
isEncodingPrefix(const std::string &ident)
{
    return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

/** Consume "..." or '...' after the opening quote; returns contents. */
std::string
lexQuoted(Cursor &cur, char quote)
{
    std::string out;
    while (!cur.atEnd()) {
        const char c = cur.get();
        if (c == quote)
            break;
        if (c == '\\' && !cur.atEnd()) {
            out += c;
            out += cur.get();
            continue;
        }
        // An unescaped newline means the literal was malformed; stop so
        // the rest of the file still lexes sanely.
        if (c == '\n')
            break;
        out += c;
    }
    return out;
}

/** Consume a raw string after `R"`, i.e. `delim( ... )delim"`. */
std::string
lexRawString(Cursor &cur)
{
    std::string delim;
    while (!cur.atEnd() && cur.peek() != '(' && cur.peek() != '\n' &&
           delim.size() < 16) {
        delim += cur.get();
    }
    if (cur.peek() == '(')
        cur.get();
    const std::string close = ")" + delim + "\"";
    std::string out;
    while (!cur.atEnd()) {
        if (cur.peek() == ')' ) {
            std::string tail;
            std::size_t i = 0;
            while (i < close.size() && cur.peek(i) != '\0' &&
                   cur.peek(i) == close[i]) {
                ++i;
            }
            if (i == close.size()) {
                for (std::size_t k = 0; k < close.size(); ++k)
                    cur.get();
                break;
            }
        }
        out += cur.get();
    }
    return out;
}

/**
 * Consume a user-defined-literal suffix directly after a string or char
 * literal (`"x"_sv`, `'c'_w`, `"s"s`). Without this the suffix would
 * surface as a stray Identifier token, which the analysis indexer would
 * mistake for a reference.
 */
std::string
lexUdlSuffix(Cursor &cur)
{
    std::string suffix;
    if (isIdentStart(cur.peek())) {
        while (!cur.atEnd() && isIdentChar(cur.peek()))
            suffix += cur.get();
    }
    return suffix;
}

/** Consume a pp-number (handles 0x1F, 1'000, 1e+5, 2.5f). */
std::string
lexNumber(Cursor &cur, char first)
{
    std::string out(1, first);
    while (!cur.atEnd()) {
        const char c = cur.peek();
        const char prev = out.back();
        const bool exp_sign =
            (c == '+' || c == '-') &&
            (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P');
        if (isIdentChar(c) || c == '.' || c == '\'' || exp_sign) {
            out += cur.get();
            continue;
        }
        break;
    }
    return out;
}

/** Consume a // comment body (line continuations extend it). */
std::string
lexLineComment(Cursor &cur)
{
    std::string out;
    while (!cur.atEnd()) {
        if (cur.skipContinuation()) {
            out += ' ';
            continue;
        }
        if (cur.peek() == '\n')
            break;
        out += cur.get();
    }
    return out;
}

/** Consume a block comment body after the opening `slash-star`. */
std::string
lexBlockComment(Cursor &cur)
{
    std::string out;
    while (!cur.atEnd()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
            cur.get();
            cur.get();
            break;
        }
        out += cur.get();
    }
    return out;
}

void
trim(std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    s = s.substr(b, e - b);
}

/**
 * Consume a preprocessor directive after the '#'. Block comments inside
 * it are skipped; a line comment or newline ends it.
 */
Token
lexDirective(Cursor &cur, int line, std::vector<Token> &extra_comments)
{
    Token tok;
    tok.kind = TokKind::Directive;
    tok.line = line;
    while (!cur.atEnd() &&
           (cur.peek() == ' ' || cur.peek() == '\t')) {
        cur.get();
    }
    while (!cur.atEnd() && isIdentChar(cur.peek()))
        tok.text += cur.get();
    while (!cur.atEnd()) {
        if (cur.skipContinuation()) {
            tok.payload += ' ';
            continue;
        }
        if (cur.peek() == '\n')
            break;
        if (cur.peek() == '/' && cur.peek(1) == '/') {
            Token comment;
            comment.kind = TokKind::Comment;
            comment.line = cur.line();
            cur.get();
            cur.get();
            comment.text = lexLineComment(cur);
            comment.endLine = cur.line();
            extra_comments.push_back(std::move(comment));
            break;
        }
        if (cur.peek() == '/' && cur.peek(1) == '*') {
            Token comment;
            comment.kind = TokKind::Comment;
            comment.line = cur.line();
            cur.get();
            cur.get();
            comment.text = lexBlockComment(cur);
            comment.endLine = cur.line();
            extra_comments.push_back(std::move(comment));
            tok.payload += ' ';
            continue;
        }
        tok.payload += cur.get();
    }
    trim(tok.payload);
    tok.endLine = cur.line();
    return tok;
}

} // anonymous namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> tokens;
    Cursor cur(source);
    bool line_start = true; // only whitespace seen so far on this line

    auto push = [&tokens](Token tok) {
        if (tok.endLine == 0)
            tok.endLine = tok.line;
        tokens.push_back(std::move(tok));
    };

    while (!cur.atEnd()) {
        const int line = cur.line();
        if (cur.skipContinuation())
            continue;
        const char c = cur.peek();

        if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
            if (c == '\n')
                line_start = true;
            cur.get();
            continue;
        }

        if (c == '/' && cur.peek(1) == '/') {
            cur.get();
            cur.get();
            Token tok{ TokKind::Comment, lexLineComment(cur), "", line };
            tok.endLine = cur.line();
            push(std::move(tok));
            continue; // comments do not clear line_start
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.get();
            cur.get();
            Token tok{ TokKind::Comment, lexBlockComment(cur), "", line };
            tok.endLine = cur.line();
            push(std::move(tok));
            continue;
        }

        if (c == '#' && line_start) {
            cur.get();
            std::vector<Token> extra;
            push(lexDirective(cur, line, extra));
            for (Token &comment : extra)
                push(std::move(comment));
            continue;
        }
        line_start = false;

        if (c == '"') {
            cur.get();
            Token tok{ TokKind::String, lexQuoted(cur, '"'), "", line };
            tok.payload = lexUdlSuffix(cur);
            push(std::move(tok));
            continue;
        }
        if (c == '\'') {
            cur.get();
            Token tok{ TokKind::Char, lexQuoted(cur, '\''), "", line };
            tok.payload = lexUdlSuffix(cur);
            push(std::move(tok));
            continue;
        }

        if (isIdentStart(c)) {
            std::string ident;
            while (!cur.atEnd() && isIdentChar(cur.peek()))
                ident += cur.get();
            if (cur.peek() == '"' &&
                (isRawPrefix(ident) || isEncodingPrefix(ident))) {
                cur.get();
                const std::string body = isRawPrefix(ident)
                    ? lexRawString(cur)
                    : lexQuoted(cur, '"');
                Token tok{ TokKind::String, body, "", line };
                tok.payload = lexUdlSuffix(cur);
                tok.endLine = cur.line();
                push(std::move(tok));
                continue;
            }
            if (cur.peek() == '\'' && isEncodingPrefix(ident)) {
                cur.get();
                Token tok{ TokKind::Char, lexQuoted(cur, '\''), "",
                           line };
                tok.payload = lexUdlSuffix(cur);
                push(std::move(tok));
                continue;
            }
            push({ TokKind::Identifier, std::move(ident), "", line });
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
            cur.get();
            push({ TokKind::Number, lexNumber(cur, c), "", line });
            continue;
        }

        cur.get();
        push({ TokKind::Punct, std::string(1, c), "", line });
    }
    return tokens;
}

} // namespace hllc::lint
