#include "lint/rules.hh"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "lint/lexer.hh"

namespace hllc::lint
{

namespace
{

const char *const kDeterminism = "determinism";
const char *const kAtomicIo = "atomic-io";
const char *const kAtomicRename = "atomic-rename";
const char *const kLocale = "locale";
const char *const kNoExit = "no-exit-in-library";
const char *const kHeaderHygiene = "header-hygiene";
// Semantic rules: engines live in analysis/engines.cc, but the names
// are registered here so waivers, --no-rule and the JSON counts treat
// them exactly like the token-level rules.
const char *const kFailpointCoverage = "failpoint-coverage";
const char *const kLockDiscipline = "lock-discipline";
const char *const kRngDiscipline = "rng-discipline";
const char *const kSchemaDrift = "schema-drift";
const char *const kIncludeGraph = "include-graph";
const char *const kSuppression = "suppression";

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
isHeaderPath(const std::string &path)
{
    return endsWith(path, ".hh") || endsWith(path, ".h") ||
           endsWith(path, ".hpp");
}

/** The src/ module a path belongs to ("" when not under src/). */
std::string
moduleOf(const std::string &path)
{
    if (!startsWith(path, "src/"))
        return "";
    const std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return path.substr(4, slash - 4);
}

/**
 * The CMake layering DAG, transitively closed: module -> modules it may
 * include from (itself is always allowed). A module missing here is a
 * finding: new subsystems must take a conscious layering position.
 */
const std::map<std::string, std::set<std::string>> &
layerDeps()
{
    static const std::map<std::string, std::set<std::string>> deps = {
        { "common", {} },
        { "compression", { "common" } },
        { "fault", { "common" } },
        { "cache", { "common" } },
        { "lint", { "common" } },
        { "analysis", { "common", "lint" } },
        { "hybrid", { "common", "cache", "compression", "fault" } },
        { "workload", { "common", "compression" } },
        { "replay",
          { "common", "cache", "compression", "fault", "hybrid" } },
        { "hierarchy",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay" } },
        { "forecast",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay", "hierarchy" } },
        { "sim",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay", "hierarchy", "forecast" } },
        { "check",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay", "hierarchy", "forecast", "sim" } },
        { "serve",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay", "hierarchy", "forecast", "sim",
            "check" } },
        { "ingest",
          { "common", "cache", "compression", "fault", "hybrid",
            "workload", "replay", "hierarchy", "forecast", "sim",
            "check" } },
    };
    return deps;
}

/** HLLC_<PATH>_HH expected for @p path (leading "src/" dropped). */
std::string
expectedGuard(const std::string &path)
{
    std::string stem = startsWith(path, "src/") ? path.substr(4) : path;
    const std::size_t dot = stem.rfind('.');
    if (dot != std::string::npos)
        stem = stem.substr(0, dot);
    std::string guard = "HLLC_";
    for (char c : stem) {
        guard += std::isalnum(static_cast<unsigned char>(c))
            ? static_cast<char>(
                  std::toupper(static_cast<unsigned char>(c)))
            : '_';
    }
    return guard + "_HH";
}

/** Trimmed copy of 1-based line @p line of @p content. */
std::string
lineAt(const std::vector<std::string> &lines, int line)
{
    if (line < 1 || static_cast<std::size_t>(line) > lines.size())
        return "";
    std::string s = lines[static_cast<std::size_t>(line) - 1];
    const auto notspace = [](char c) {
        return !std::isspace(static_cast<unsigned char>(c));
    };
    s.erase(s.begin(), std::find_if(s.begin(), s.end(), notspace));
    s.erase(std::find_if(s.rbegin(), s.rend(), notspace).base(), s.end());
    return s;
}

std::vector<std::string>
splitLines(const std::string &content)
{
    std::vector<std::string> lines;
    std::string current;
    for (char c : content) {
        if (c == '\n') {
            lines.push_back(std::move(current));
            current.clear();
        } else if (c != '\r') {
            current += c;
        }
    }
    lines.push_back(std::move(current));
    return lines;
}

/**
 * A token stream with the comments filtered out (rules reason about
 * code tokens by index) but kept on the side for suppressions.
 */
struct CodeView
{
    std::vector<Token> code;
    std::vector<Token> comments;

    explicit CodeView(std::vector<Token> tokens)
    {
        for (Token &tok : tokens) {
            if (tok.kind == TokKind::Comment)
                comments.push_back(std::move(tok));
            else
                code.push_back(std::move(tok));
        }
    }

    bool isPunct(std::size_t i, char c) const
    {
        return i < code.size() && code[i].kind == TokKind::Punct &&
               code[i].text.size() == 1 && code[i].text[0] == c;
    }
    bool isIdent(std::size_t i, const char *text) const
    {
        return i < code.size() && code[i].kind == TokKind::Identifier &&
               code[i].text == text;
    }

    /** tokens[i] reached via `.` or `->` (a member, not the std one). */
    bool memberAccessBefore(std::size_t i) const
    {
        if (i >= 1 && isPunct(i - 1, '.'))
            return true;
        return i >= 2 && isPunct(i - 2, '-') && isPunct(i - 1, '>');
    }

    /** tokens[i] qualified as `<ns>::tokens[i]`; "" when unqualified. */
    std::string qualifierBefore(std::size_t i) const
    {
        if (i >= 3 && isPunct(i - 1, ':') && isPunct(i - 2, ':') &&
            code[i - 3].kind == TokKind::Identifier) {
            return code[i - 3].text;
        }
        return "";
    }

    bool callAfter(std::size_t i) const { return isPunct(i + 1, '('); }
};

/** Context shared by the per-file rule engines. */
struct FileLint
{
    const std::string &path;
    const CodeView &view;
    const std::vector<std::string> &lines;
    std::vector<Finding> findings;

    void
    report(const char *rule, int line, std::string message)
    {
        findings.push_back(
            { path, line, rule, std::move(message), lineAt(lines, line) });
    }
};

void
checkDeterminism(FileLint &ctx)
{
    if (startsWith(ctx.path, "src/common/rng."))
        return;
    // Engine types are banned wherever they appear; plain functions only
    // when actually called (an identifier named `rand` is legal).
    static const std::set<std::string> engines = {
        "random_device", "mt19937",      "mt19937_64",
        "default_random_engine",         "minstd_rand",
        "minstd_rand0",  "ranlux24",     "ranlux48",
        "knuth_b",       "random_shuffle",
    };
    static const std::set<std::string> calls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
        "pthread_self", "gettid",
    };
    const CodeView &v = ctx.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        const Token &tok = v.code[i];
        if (tok.kind != TokKind::Identifier || v.memberAccessBefore(i))
            continue;
        if (engines.count(tok.text) != 0) {
            ctx.report(kDeterminism, tok.line,
                       "'" + tok.text + "' is a non-deterministic source;"
                       " derive randomness from common/rng streams");
            continue;
        }
        if (calls.count(tok.text) != 0 && v.callAfter(i)) {
            ctx.report(kDeterminism, tok.line,
                       "'" + tok.text + "()' is non-deterministic;"
                       " derive randomness from common/rng streams");
            continue;
        }
        // Seeding from the wall clock: time(nullptr) / time(NULL) /
        // time(0).
        if (tok.text == "time" && v.callAfter(i) &&
            (v.isIdent(i + 2, "nullptr") || v.isIdent(i + 2, "NULL") ||
             (i + 2 < v.code.size() &&
              v.code[i + 2].kind == TokKind::Number &&
              v.code[i + 2].text == "0")) &&
            v.isPunct(i + 3, ')')) {
            ctx.report(kDeterminism, tok.line,
                       "seeding from the wall clock breaks grid"
                       " reproducibility; use common/rng childStream");
        }
        if (tok.text == "get_id" &&
            v.qualifierBefore(i) == "this_thread") {
            ctx.report(kDeterminism, tok.line,
                       "thread-id-derived values break the jobs=1 vs"
                       " jobs=N contract; key on the grid index instead");
        }
    }
}

void
checkAtomicIo(FileLint &ctx)
{
    if (startsWith(ctx.path, "src/common/serialize."))
        return;
    static const std::set<std::string> types = { "ofstream", "wofstream",
                                                 "fstream" };
    static const std::set<std::string> calls = {
        "fopen", "fopen64", "freopen", "creat", "mkstemp", "tmpfile",
    };
    const CodeView &v = ctx.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        const Token &tok = v.code[i];
        if (tok.kind != TokKind::Identifier || v.memberAccessBefore(i))
            continue;
        const bool banned_type = types.count(tok.text) != 0;
        const bool banned_call =
            calls.count(tok.text) != 0 && v.callAfter(i);
        if (banned_type || banned_call) {
            ctx.report(kAtomicIo, tok.line,
                       "raw file creation via '" + tok.text +
                       "' can leave torn output on a crash; write"
                       " through serial::writeFileAtomic");
        }
    }
}

void
checkAtomicRename(FileLint &ctx)
{
    // serialize.cc owns the rename(2) that commits an atomic write (and
    // fsyncs the parent directory afterwards); everywhere else a raw
    // rename publishes a file whose durability is unknown.
    if (startsWith(ctx.path, "src/common/serialize."))
        return;
    static const std::set<std::string> calls = { "rename", "renameat",
                                                 "renameat2" };
    const CodeView &v = ctx.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        const Token &tok = v.code[i];
        if (tok.kind != TokKind::Identifier || v.memberAccessBefore(i))
            continue;
        if (calls.count(tok.text) == 0 || !v.callAfter(i))
            continue;
        const std::string qual = v.qualifierBefore(i);
        if (!qual.empty() && qual != "std" && qual != "filesystem")
            continue; // somebody else's rename()
        ctx.report(kAtomicRename, tok.line,
                   "'" + tok.text + "' outside common/serialize bypasses"
                   " the atomic-write protocol (tmp + fsync + rename +"
                   " parent-dir fsync); go through"
                   " serial::writeFileAtomic");
    }
}

void
checkLocale(FileLint &ctx)
{
    if (startsWith(ctx.path, "src/common/numfmt."))
        return;
    static const std::set<std::string> calls = {
        "to_string", "setprecision", "stod",   "stof",   "stold",
        "strtod",    "strtof",       "strtold", "atof",
    };
    const CodeView &v = ctx.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        const Token &tok = v.code[i];
        if (tok.kind != TokKind::Identifier || v.memberAccessBefore(i))
            continue;
        if (calls.count(tok.text) == 0 || !v.callAfter(i))
            continue;
        const std::string qual = v.qualifierBefore(i);
        if (!qual.empty() && qual != "std")
            continue; // somebody else's to_string
        ctx.report(kLocale, tok.line,
                   "'" + tok.text + "' honours the process locale;"
                   " use common/numfmt (formatDouble/formatU64/"
                   "parseDoubleExact)");
    }
}

void
checkNoExitInLibrary(FileLint &ctx)
{
    // Only library code: CLI mains (tools/bench/examples) and tests may
    // terminate the process. logging owns the sanctioned sinks.
    if (!startsWith(ctx.path, "src/") ||
        startsWith(ctx.path, "src/common/logging.")) {
        return;
    }
    static const std::set<std::string> calls = {
        "exit", "_exit", "_Exit", "quick_exit", "abort",
    };
    const CodeView &v = ctx.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
        const Token &tok = v.code[i];
        if (tok.kind != TokKind::Identifier || v.memberAccessBefore(i))
            continue;
        if (calls.count(tok.text) == 0 || !v.callAfter(i))
            continue;
        const std::string qual = v.qualifierBefore(i);
        if (!qual.empty() && qual != "std")
            continue;
        ctx.report(kNoExit, tok.line,
                   "library code must not '" + tok.text +
                   "'; throw hllc::IoError (fatal() lives in CLI"
                   " mains)");
    }
}

void
checkHeaderHygiene(FileLint &ctx, const std::vector<Token> &all_tokens)
{
    const CodeView &v = ctx.view;
    const bool header = isHeaderPath(ctx.path);

    if (header) {
        // Include guard: the first two directives must be
        // #ifndef/#define of the path-derived name.
        const std::string want = expectedGuard(ctx.path);
        std::vector<const Token *> directives;
        for (const Token &tok : all_tokens) {
            if (tok.kind == TokKind::Directive)
                directives.push_back(&tok);
        }
        if (directives.size() < 2 ||
            directives[0]->text != "ifndef" ||
            directives[1]->text != "define" ||
            directives[1]->payload != directives[0]->payload) {
            ctx.report(kHeaderHygiene,
                       directives.empty() ? 1 : directives[0]->line,
                       "header must open with the include guard"
                       " #ifndef/#define " + want);
        } else if (directives[0]->payload != want) {
            ctx.report(kHeaderHygiene, directives[0]->line,
                       "include guard '" + directives[0]->payload +
                       "' does not match the path-derived name '" +
                       want + "'");
        }
        for (const Token *dir : directives) {
            if (dir->text == "pragma" &&
                startsWith(dir->payload, "once")) {
                ctx.report(kHeaderHygiene, dir->line,
                           "#pragma once: this project uses named"
                           " include guards (" + want + ")");
            }
        }
        for (std::size_t i = 0; i + 1 < v.code.size(); ++i) {
            if (v.isIdent(i, "using") && v.isIdent(i + 1, "namespace")) {
                ctx.report(kHeaderHygiene, v.code[i].line,
                           "'using namespace' in a header leaks into"
                           " every includer");
            }
        }
    }

    // Include-graph layering: modules may only include from layers the
    // CMake DAG says they link against.
    const std::string module = moduleOf(ctx.path);
    if (module.empty())
        return; // tools/bench/tests/examples may include anything
    const auto &deps = layerDeps();
    const auto self = deps.find(module);
    for (const Token &tok : all_tokens) {
        if (tok.kind != TokKind::Directive || tok.text != "include")
            continue;
        const std::string &arg = tok.payload;
        if (arg.size() < 2 || arg.front() != '"')
            continue; // system include
        const std::string target = arg.substr(1, arg.size() - 2);
        const std::size_t slash = target.find('/');
        if (slash == std::string::npos)
            continue; // same-directory include
        const std::string target_module = target.substr(0, slash);
        if (target_module == module)
            continue;
        if (self == deps.end()) {
            ctx.report(kHeaderHygiene, tok.line,
                       "module '" + module + "' is not in the layering"
                       " table; add it to lint/rules.cc layerDeps()");
            return;
        }
        if (deps.find(target_module) == deps.end()) {
            ctx.report(kHeaderHygiene, tok.line,
                       "include of unknown module '" + target_module +
                       "'; add it to lint/rules.cc layerDeps()");
            continue;
        }
        if (self->second.count(target_module) == 0) {
            ctx.report(kHeaderHygiene, tok.line,
                       "layering violation: module '" + module +
                       "' must not include from '" + target_module +
                       "' (see the CMake dependency DAG)");
        }
    }
}

/**
 * Parse suppression comments. A waiver covers its own line(s); when the
 * comment stands alone on its line it also covers the next line.
 * Malformed waivers (no justification, unknown rule) are reported when
 * @p ctx is non-null; parseWaivers() passes null because lintSource()
 * already reported them once.
 */
std::vector<Waiver>
collectWaivers(const CodeView &view, std::size_t line_count,
               FileLint *ctx, const Options &options)
{
    static const std::string marker = "hllc-lint:";
    std::vector<Waiver> out;
    for (const Token &comment : view.comments) {
        const std::size_t at = comment.text.find(marker);
        if (at == std::string::npos)
            continue;
        std::size_t pos = at + marker.size();
        const auto skipSpace = [&] {
            while (pos < comment.text.size() &&
                   std::isspace(
                       static_cast<unsigned char>(comment.text[pos]))) {
                ++pos;
            }
        };
        skipSpace();
        if (comment.text.compare(pos, 6, "allow(") != 0) {
            if (ctx != nullptr) {
                ctx->report(kSuppression, comment.line,
                            "malformed waiver; expected 'hllc-lint:"
                            " allow(RULE) JUSTIFICATION'");
            }
            continue;
        }
        pos += 6;
        const std::size_t close = comment.text.find(')', pos);
        if (close == std::string::npos) {
            if (ctx != nullptr) {
                ctx->report(kSuppression, comment.line,
                            "unterminated 'allow(' in waiver");
            }
            continue;
        }
        // Prose quoting the waiver syntax ("allow(RULE)", angle-bracket
        // placeholders, ellipses) is not a waiver attempt: rule names
        // are strictly [a-z-].
        bool prose = false;
        for (std::size_t i = pos; i < close; ++i) {
            const char c = comment.text[i];
            if (!std::islower(static_cast<unsigned char>(c)) &&
                c != '-' && c != ',' &&
                !std::isspace(static_cast<unsigned char>(c))) {
                prose = true;
                break;
            }
        }
        if (prose)
            continue;
        Waiver sup;
        sup.firstLine = comment.line;
        sup.lastLine = comment.endLine;
        std::string name;
        for (std::size_t i = pos; i <= close; ++i) {
            const char c = comment.text[i];
            if (c == ',' || c == ')') {
                if (std::find(allRules().begin(), allRules().end(),
                              name) == allRules().end()) {
                    if (ctx != nullptr) {
                        ctx->report(kSuppression, comment.line,
                                    "waiver names unknown rule '" +
                                    name + "'");
                    }
                } else {
                    sup.rules.insert(name);
                }
                name.clear();
            } else if (!std::isspace(static_cast<unsigned char>(c))) {
                name += c;
            }
        }
        std::string justification = comment.text.substr(close + 1);
        const auto notspace = [](char c) {
            return !std::isspace(static_cast<unsigned char>(c));
        };
        justification.erase(justification.begin(),
                            std::find_if(justification.begin(),
                                         justification.end(), notspace));
        if (justification.empty() && ctx != nullptr &&
            options.ruleEnabled(kSuppression)) {
            ctx->report(kSuppression, comment.line,
                        "waiver needs a justification after allow(...)");
        }
        // A comment sharing its line with code waives that line. A
        // standalone comment (possibly continued over further comment
        // lines) waives the next line that holds code.
        std::set<int> code_lines;
        for (const Token &code : view.code)
            code_lines.insert(code.line);
        if (code_lines.count(comment.line) == 0) {
            int line = sup.lastLine + 1;
            const int limit = static_cast<int>(line_count);
            while (line < limit && code_lines.count(line) == 0)
                ++line;
            sup.lastLine = line;
        }
        if (!sup.rules.empty())
            out.push_back(std::move(sup));
    }
    return out;
}

} // anonymous namespace

const std::vector<std::string> &
allRules()
{
    static const std::vector<std::string> rules = {
        kDeterminism,    kAtomicIo,      kAtomicRename,
        kLocale,         kNoExit,        kHeaderHygiene,
        kFailpointCoverage, kLockDiscipline, kRngDiscipline,
        kSchemaDrift,    kIncludeGraph,  kSuppression,
    };
    return rules;
}

bool
Options::ruleEnabled(const std::string &rule) const
{
    return std::find(disabledRules.begin(), disabledRules.end(), rule) ==
           disabledRules.end();
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &content,
           const Options &options)
{
    const std::vector<Token> tokens = lex(content);
    const CodeView view(tokens);
    const std::vector<std::string> lines = splitLines(content);
    FileLint ctx{ path, view, lines, {} };

    if (options.ruleEnabled(kDeterminism))
        checkDeterminism(ctx);
    if (options.ruleEnabled(kAtomicIo))
        checkAtomicIo(ctx);
    if (options.ruleEnabled(kAtomicRename))
        checkAtomicRename(ctx);
    if (options.ruleEnabled(kLocale))
        checkLocale(ctx);
    if (options.ruleEnabled(kNoExit))
        checkNoExitInLibrary(ctx);
    if (options.ruleEnabled(kHeaderHygiene))
        checkHeaderHygiene(ctx, tokens);

    const std::vector<Waiver> waivers =
        collectWaivers(view, lines.size(), &ctx, options);
    std::vector<Finding> kept;
    for (Finding &finding : ctx.findings) {
        bool waived = false;
        for (const Waiver &sup : waivers) {
            if (finding.rule != kSuppression &&
                sup.covers(finding.rule, finding.line)) {
                waived = true;
                break;
            }
        }
        if (!waived)
            kept.push_back(std::move(finding));
    }
    std::stable_sort(kept.begin(), kept.end(),
                     [](const Finding &a, const Finding &b) {
                         return a.line < b.line;
                     });
    return kept;
}

std::vector<Waiver>
parseWaivers(const std::string &content)
{
    const CodeView view(lex(content));
    return collectWaivers(view, splitLines(content).size(), nullptr,
                          Options{});
}

std::vector<std::string>
projectIncludes(const std::string &content)
{
    std::vector<std::string> out;
    for (const Token &tok : lex(content)) {
        if (tok.kind != TokKind::Directive || tok.text != "include")
            continue;
        if (tok.payload.size() >= 2 && tok.payload.front() == '"' &&
            tok.payload.back() == '"') {
            out.push_back(
                tok.payload.substr(1, tok.payload.size() - 2));
        }
    }
    return out;
}

} // namespace hllc::lint
