/**
 * @file
 * The project-invariant rules `hllc_lint` enforces.
 *
 * Each rule encodes a contract an earlier PR established the hard way
 * (see DESIGN.md §11 for the rule → bug mapping):
 *
 *  - `determinism`: no ambient randomness (rand(), std::random_device,
 *    time(nullptr) seeding, thread-id-derived values) outside
 *    common/rng — grid results must be byte-identical for any --jobs.
 *  - `atomic-io`: no raw std::ofstream/fopen file creation outside
 *    common/serialize — everything written goes through
 *    writeFileAtomic so a crash never leaves a torn file.
 *  - `atomic-rename`: no raw rename()/renameat()/renameat2() outside
 *    common/serialize — the commit step of an atomic write belongs to
 *    writeFileAtomic, which also fsyncs the file and its parent
 *    directory so the published name survives a power cut.
 *  - `locale`: no std::to_string/setprecision/strtod-family formatting
 *    or parsing outside common/numfmt — a de_DE process locale must
 *    not turn "0.25" into "0,25" in machine-readable output.
 *  - `no-exit-in-library`: exit()/abort() only in CLI mains and the
 *    sanctioned logging sinks; library code throws hllc::IoError.
 *  - `header-hygiene`: include guards named HLLC_<PATH>_HH, no
 *    `using namespace` in headers, and module includes that respect
 *    the CMake layering DAG.
 *
 * Five further rules are semantic: they need the whole-tree symbol
 * index built by src/analysis, so only their names live here (the
 * engines are in analysis/engines.hh):
 *
 *  - `failpoint-coverage`: fallible syscall wrapper sites must be
 *    reachable from a compiled-in HLLC_FAILPOINT, and failpoint name
 *    literals must exactly match the closed catalog in
 *    common/failpoint.cc.
 *  - `lock-discipline`: HLLC_GUARDED_BY(m) fields may only be touched
 *    under a MutexLock on m (the GCC-side stand-in for Clang's
 *    -Wthread-safety).
 *  - `rng-discipline`: RNG construction outside common/rng must be
 *    seeded through childStream/childSeed/fork, never ad hoc.
 *  - `schema-drift`: JSON keys in the hllc-*-v1 exporters must match
 *    the schema tables in EXPERIMENTS.md.
 *  - `include-graph`: no include cycles among project headers, no
 *    includes whose declared names the includer never references.
 *
 * Findings can be waived inline with
 * `// hllc-lint: allow(<rule>[,<rule>...]) <justification>` on the
 * offending line or alone on the line above; an allow() without a
 * justification is itself reported (rule `suppression`).
 */

#ifndef HLLC_LINT_RULES_HH
#define HLLC_LINT_RULES_HH

#include <set>
#include <string>
#include <vector>

namespace hllc::lint
{

/** One rule violation at one source location. */
struct Finding
{
    std::string file; //!< repo-relative path, forward slashes
    int line = 0;     //!< 1-based
    std::string rule;
    std::string message;
    /**
     * The offending source line, whitespace-trimmed: the baseline
     * fingerprint, stable across unrelated edits above the line.
     */
    std::string lineText;
};

/** Every rule name, in reporting order. */
const std::vector<std::string> &allRules();

/** Rule enablement (all on by default). */
struct Options
{
    std::vector<std::string> disabledRules;

    bool ruleEnabled(const std::string &rule) const;
};

/**
 * Lint one translation unit. @p path is the repo-relative path (it
 * selects which rules apply and the expected include-guard name);
 * @p content is the file's text. Suppression comments are honoured;
 * findings come back sorted by line.
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &content,
                                const Options &options = {});

/**
 * Project-internal `#include "..."` targets of @p content, for the
 * cross-file include-graph checks in lint.hh.
 */
std::vector<std::string> projectIncludes(const std::string &content);

/**
 * One `hllc-lint: allow(...)` waiver and the line range it covers (a
 * comment sharing its line with code covers that line; a standalone
 * comment covers the next line holding code).
 */
struct Waiver
{
    int firstLine = 0;
    int lastLine = 0;
    std::set<std::string> rules;

    bool covers(const std::string &rule, int line) const
    {
        return line >= firstLine && line <= lastLine &&
               rules.count(rule) != 0;
    }
};

/**
 * The well-formed waivers of @p content, for layers (like analysis/)
 * that produce findings of their own and must honour the same inline
 * suppressions lintSource() applies. Malformed waivers are not
 * reported here — lintSource() owns the `suppression` rule.
 */
std::vector<Waiver> parseWaivers(const std::string &content);

} // namespace hllc::lint

#endif // HLLC_LINT_RULES_HH
