#include "hierarchy/timing.hh"

namespace hllc::hierarchy
{

double
coreCycles(const CoreActivity &a, const TimingParams &p)
{
    double cycles =
        static_cast<double>(a.instructions) * a.baseCpi;

    // L1 hits are pipelined into the base CPI; deeper levels expose their
    // load-use latency discounted by the overlap the OoO window extracts.
    cycles += static_cast<double>(a.l2Hits) *
              static_cast<double>(p.l2LoadUse) / p.hitMlp;
    cycles += static_cast<double>(a.llcHitsSram) *
              static_cast<double>(p.llcSramLoadUse) / p.hitMlp;
    cycles += static_cast<double>(a.llcHitsNvm) *
              static_cast<double>(p.llcNvmLoadUse) / p.hitMlp;
    cycles += static_cast<double>(a.llcMisses) *
              static_cast<double>(p.llcSramLoadUse + p.memLatency) /
              p.missMlp;
    // Slow NVM writes throttle subsequent reads to the same bank
    // (Sec. I); charge a small exposed fraction per write.
    cycles += static_cast<double>(a.nvmWrites) *
              static_cast<double>(p.nvmWriteLatency) *
              p.nvmWriteStallFraction;

    return cycles;
}

double
coreIpc(const CoreActivity &a, const TimingParams &p)
{
    const double cycles = coreCycles(a, p);
    return cycles <= 0.0
        ? 0.0
        : static_cast<double>(a.instructions) / cycles;
}

} // namespace hllc::hierarchy
