/**
 * @file
 * Analytic timing model of the 4-core CMP (Table IV latencies).
 *
 * This replaces gem5's cycle-accurate O3 pipeline with an event-count
 * model: cycles = instructions * baseCPI + sum(event * exposed penalty),
 * where penalties are the load-use latencies of the level that serviced
 * each reference, discounted by a memory-level-parallelism factor. Every
 * metric the paper reports is a normalized IPC, for which this model
 * preserves ordering and relative gaps (DESIGN.md Sec. 2).
 */

#ifndef HLLC_HIERARCHY_TIMING_HH
#define HLLC_HIERARCHY_TIMING_HH

#include <cstdint>

#include "common/types.hh"

namespace hllc::hierarchy
{

/** Latency and overlap parameters (Table IV, NVSim-derived numbers). */
struct TimingParams
{
    Cycle l1LoadUse = 3;
    Cycle l2LoadUse = 12;
    Cycle llcSramLoadUse = 28;  //!< 4-cycle SRAM data array
    /** 8-cycle NVM data array + 2 cycles decompression/rearrangement. */
    Cycle llcNvmLoadUse = 34;
    Cycle nvmWriteLatency = 20;
    Cycle memLatency = 200;     //!< DDR4, one channel

    /** Load-level parallelism hiding part of hit latencies. */
    double hitMlp = 1.6;
    /** Overlap of off-chip misses (MSHR-level parallelism). */
    double missMlp = 3.0;
    /** Fraction of each NVM write's latency exposed to the core. */
    double nvmWriteStallFraction = 0.10;
};

/** Event counts of one core over a measurement window. */
struct CoreActivity
{
    std::uint64_t instructions = 0;
    std::uint64_t refs = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcHitsSram = 0;
    std::uint64_t llcHitsNvm = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t nvmWrites = 0;
    double baseCpi = 0.4;
};

/** Cycles the window of @p activity takes on one core. */
double coreCycles(const CoreActivity &activity, const TimingParams &params);

/** instructions / coreCycles (0 when idle). */
double coreIpc(const CoreActivity &activity, const TimingParams &params);

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_TIMING_HH
