#include "hierarchy/private_cache.hh"

#include "common/logging.hh"
#include "common/numfmt.hh"

namespace hllc::hierarchy
{

using cache::Victim;
using hybrid::AccessOutcome;

CoreHierarchy::CoreHierarchy(CoreId core, const PrivateCacheConfig &config,
                             workload::AppModel *app, LlcSink *sink)
    : core_(core), app_(app), sink_(sink),
      l1_("l1_core" + formatU64(core), config.l1Bytes, config.l1Ways),
      l2_("l2_core" + formatU64(core), config.l2Bytes, config.l2Ways)
{
    HLLC_ASSERT(app != nullptr && sink != nullptr);
}

ServiceLevel
CoreHierarchy::recordDemand(AccessOutcome outcome, bool upgrade)
{
    ++llcDemands_;
    switch (outcome) {
      case AccessOutcome::HitSram:
        ++llcHitsSram_;
        return ServiceLevel::LlcSram;
      case AccessOutcome::HitNvm:
        ++llcHitsNvm_;
        return ServiceLevel::LlcNvm;
      case AccessOutcome::Miss:
        if (upgrade) {
            // Ownership upgrades that miss the LLC are resolved at the
            // directory without a memory fetch (the data is local).
            ++llcHitsSram_;
            return ServiceLevel::LlcSram;
        }
        ++llcMisses_;
        return ServiceLevel::Memory;
    }
    panic("unreachable");
}

void
CoreHierarchy::handleL2Victim(const Victim &victim)
{
    // Inclusion: kick the L1 copy out first and merge its dirtiness.
    bool dirty = victim.dirty;
    if (auto l1_dirty = l1_.invalidate(victim.blockNum))
        dirty = dirty || *l1_dirty;

    // Non-inclusive LLC: the victim is written there if absent.
    sink_->put(victim.blockNum, dirty, core_,
               app_->ecbSizeOf(victim.blockNum));
}

ServiceLevel
CoreHierarchy::access(const workload::MemRef &ref)
{
    ++refs_;
    const Addr block = ref.blockNum;
    const bool write = ref.write;

    // --- L1 ---
    if (l1_.access(block, /*is_write=*/false)) {
        const bool writable = (*l1_.meta(block) & metaWritable) != 0;
        if (!write) {
            ++l1Hits_;
            return ServiceLevel::L1;
        }
        if (writable) {
            l1_.setDirty(block);
            ++l1Hits_;
            return ServiceLevel::L1;
        }
        // Store to a read-only copy: upgrade below. The copy stays; only
        // permissions are acquired.
        const bool l2_writable =
            l2_.contains(block) && (*l2_.meta(block) & metaWritable);
        if (l2_writable) {
            l1_.setMeta(block, metaWritable);
            l1_.setDirty(block);
            ++l2Hits_;
            return ServiceLevel::L2;
        }
        const AccessOutcome outcome =
            sink_->demand(block, /*getx=*/true, core_);
        if (l2_.contains(block))
            l2_.setMeta(block, metaWritable);
        l1_.setMeta(block, metaWritable);
        l1_.setDirty(block);
        return recordDemand(outcome, /*upgrade=*/true);
    }

    // --- L2 ---
    ServiceLevel level;
    std::uint32_t fill_meta = 0;

    if (l2_.access(block, /*is_write=*/false)) {
        const bool writable = (*l2_.meta(block) & metaWritable) != 0;
        if (write && !writable) {
            // Upgrade: GetX towards the LLC (invalidates its copy).
            const AccessOutcome outcome =
                sink_->demand(block, /*getx=*/true, core_);
            l2_.setMeta(block, metaWritable);
            level = recordDemand(outcome, /*upgrade=*/true);
        } else {
            ++l2Hits_;
            level = ServiceLevel::L2;
        }
        fill_meta = *l2_.meta(block);
    } else {
        // L2 miss: GetS/GetX to the LLC; on an LLC miss the block comes
        // from memory straight into the private levels (Sec. III-A).
        const AccessOutcome outcome = sink_->demand(block, write, core_);
        level = recordDemand(outcome, /*upgrade=*/false);

        fill_meta = write ? metaWritable : 0;
        if (auto victim = l2_.fill(block, /*dirty=*/false, fill_meta))
            handleL2Victim(*victim);
    }

    // --- L1 fill ---
    if (auto victim = l1_.fill(block, /*dirty=*/write, fill_meta)) {
        // Writeback into L2 (inclusion guarantees presence).
        if (victim->dirty) {
            l2_.setDirty(victim->blockNum);
            l2_.setMeta(victim->blockNum,
                        victim->meta | metaWritable);
        }
    }
    return level;
}

} // namespace hllc::hierarchy
