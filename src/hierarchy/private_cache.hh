/**
 * @file
 * The private per-core cache stack (L1D + L2) of the simulated CMP
 * (paper Table IV), including the non-inclusive protocol edge towards
 * the LLC.
 *
 * L1 is writeback/write-allocate and inclusive in L2 (L2 evictions
 * back-invalidate L1). Lines track a writable bit standing in for MOESI
 * ownership: a store to a line filled by a read triggers a GetX upgrade
 * towards the LLC, which invalidates its copy (invalidate-on-hit,
 * Sec. III-A). Every L2 eviction is sent to the LLC as a clean or dirty
 * Put, carrying the block's compressed size.
 */

#ifndef HLLC_HIERARCHY_PRIVATE_CACHE_HH
#define HLLC_HIERARCHY_PRIVATE_CACHE_HH

#include "cache/set_assoc.hh"
#include "hierarchy/llc_sink.hh"
#include "workload/app_model.hh"

namespace hllc::hierarchy
{

/** Geometry of the private levels (Table IV defaults). */
struct PrivateCacheConfig
{
    std::size_t l1Bytes = 32 * 1024;
    std::uint32_t l1Ways = 4;
    std::size_t l2Bytes = 128 * 1024;
    std::uint32_t l2Ways = 16;
};

/** Level that serviced a memory reference (timing classification). */
enum class ServiceLevel : std::uint8_t
{
    L1,
    L2,
    LlcSram,
    LlcNvm,
    Memory
};

class CoreHierarchy
{
  public:
    /**
     * @param app the application bound to this core (owns block contents)
     * @param sink where LLC-bound traffic goes
     */
    CoreHierarchy(CoreId core, const PrivateCacheConfig &config,
                  workload::AppModel *app, LlcSink *sink);

    /** Process one memory reference through L1/L2/LLC. */
    ServiceLevel access(const workload::MemRef &ref);

    /** @name Counters for the timing model */
    ///@{
    std::uint64_t refs() const { return refs_; }
    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t llcDemands() const { return llcDemands_; }
    std::uint64_t llcHitsSram() const { return llcHitsSram_; }
    std::uint64_t llcHitsNvm() const { return llcHitsNvm_; }
    std::uint64_t llcMisses() const { return llcMisses_; }
    ///@}

    CoreId core() const { return core_; }
    const workload::AppModel &app() const { return *app_; }

    cache::SetAssocCache &l1() { return l1_; }
    cache::SetAssocCache &l2() { return l2_; }

  private:
    /** Line metadata bit: the copy has write permission (M/E-like). */
    static constexpr std::uint32_t metaWritable = 1u << 0;

    /** Evict handling for an L2 victim: back-invalidate L1, Put to LLC. */
    void handleL2Victim(const cache::Victim &victim);

    /** Record the sink outcome of a demand/upgrade in the counters. */
    ServiceLevel recordDemand(hybrid::AccessOutcome outcome, bool upgrade);

    CoreId core_;
    workload::AppModel *app_;
    LlcSink *sink_;
    cache::SetAssocCache l1_;
    cache::SetAssocCache l2_;

    std::uint64_t refs_ = 0;
    std::uint64_t l1Hits_ = 0;
    std::uint64_t l2Hits_ = 0;
    std::uint64_t llcDemands_ = 0;
    std::uint64_t llcHitsSram_ = 0;
    std::uint64_t llcHitsNvm_ = 0;
    std::uint64_t llcMisses_ = 0;
};

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_PRIVATE_CACHE_HH
