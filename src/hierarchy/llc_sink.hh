/**
 * @file
 * Consumer interface for LLC-bound traffic produced by the private cache
 * levels. Implemented by the live HybridLlc adapter (detailed simulation)
 * and by the trace recorder (capture for replay).
 */

#ifndef HLLC_HIERARCHY_LLC_SINK_HH
#define HLLC_HIERARCHY_LLC_SINK_HH

#include "hybrid/types.hh"

namespace hllc::hierarchy
{

class LlcSink
{
  public:
    virtual ~LlcSink() = default;

    /**
     * A GetS (read) or GetX (write-permission) request from an L2 miss or
     * upgrade. @return where the request was serviced.
     */
    virtual hybrid::AccessOutcome
    demand(Addr block, bool getx, CoreId core) = 0;

    /**
     * An L2 victim arriving at the LLC.
     * @param ecb_bytes compressed size of the block's contents
     */
    virtual void
    put(Addr block, bool dirty, CoreId core, unsigned ecb_bytes) = 0;
};

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_LLC_SINK_HH
