#include "hierarchy/hierarchy.hh"

#include "common/logging.hh"
#include "hierarchy/trace_recorder.hh"

namespace hllc::hierarchy
{

MixSimulation::MixSimulation(const workload::MixSpec &mix,
                             std::uint64_t llc_blocks,
                             const PrivateCacheConfig &config,
                             std::uint64_t seed,
                             compression::Scheme scheme)
    : mix_(mix), config_(config),
      apps_(workload::instantiateMix(mix, llc_blocks, seed, scheme))
{
    // CoreHierarchy instances are created in run() because they bind to
    // a sink.
    cores_.resize(apps_.size());
}

void
MixSimulation::run(std::uint64_t refs_per_core, LlcSink &sink)
{
    // (Re)bind the private stacks to this sink. Private-cache state does
    // not persist across run() calls: each run is an independent window.
    for (std::size_t i = 0; i < apps_.size(); ++i) {
        cores_[i] = std::make_unique<CoreHierarchy>(
            static_cast<CoreId>(i), config_, apps_[i].get(), &sink);
    }

    // Round-robin interleave: one reference per core per step, the usual
    // approximation of four cores progressing in parallel.
    for (std::uint64_t r = 0; r < refs_per_core; ++r) {
        for (std::size_t i = 0; i < cores_.size(); ++i)
            cores_[i]->access(apps_[i]->next());
    }
}

CoreActivity
MixSimulation::activityOf(std::size_t i) const
{
    const CoreHierarchy &core = *cores_.at(i);
    const workload::AppProfile &profile = apps_.at(i)->profile();

    CoreActivity a;
    a.refs = core.refs();
    a.instructions = static_cast<std::uint64_t>(
        static_cast<double>(core.refs()) / profile.memIntensity);
    a.l1Hits = core.l1Hits();
    a.l2Hits = core.l2Hits();
    a.llcHitsSram = core.llcHitsSram();
    a.llcHitsNvm = core.llcHitsNvm();
    a.llcMisses = core.llcMisses();
    a.baseCpi = profile.baseCpi;
    return a;
}

void
MixSimulation::exportMeta(replay::TraceMeta &meta) const
{
    meta.mixName = mix_.name;
    for (std::size_t i = 0; i < cores_.size() && i < replay::traceCores;
         ++i) {
        const CoreActivity a = activityOf(i);
        replay::CoreMeta &m = meta.cores[i];
        m.instructions = a.instructions;
        m.refs = a.refs;
        m.l1Hits = a.l1Hits;
        m.l2Hits = a.l2Hits;
        m.llcDemands = cores_[i]->llcDemands();
        m.baseCpi = a.baseCpi;
    }
}

replay::LlcTrace
captureTrace(const workload::MixSpec &mix, std::uint64_t llc_blocks,
             const PrivateCacheConfig &config, std::uint64_t refs_per_core,
             std::uint64_t seed, compression::Scheme scheme)
{
    replay::LlcTrace trace;
    TraceRecorder recorder(&trace);
    MixSimulation sim(mix, llc_blocks, config, seed, scheme);
    sim.run(refs_per_core, recorder);
    sim.exportMeta(trace.meta());
    return trace;
}

} // namespace hllc::hierarchy
