#include "hierarchy/energy.hh"

namespace hllc::hierarchy
{

EnergyBreakdown
llcEnergy(const StatGroup &llc_stats, std::uint32_t sram_ways,
          Seconds window_seconds, const EnergyParams &params)
{
    EnergyBreakdown e;

    const auto sram_reads =
        llc_stats.counterValue("gets_hits_sram") +
        llc_stats.counterValue("getx_hits_sram");
    const auto nvm_reads =
        llc_stats.counterValue("gets_hits_nvm") +
        llc_stats.counterValue("getx_hits_nvm");
    const auto sram_fills = llc_stats.counterValue("inserts_sram");
    const auto nvm_bytes = llc_stats.counterValue("nvm_bytes_written");
    const auto misses = llc_stats.counterValue("gets_misses") +
                        llc_stats.counterValue("getx_misses");

    e.sramDynamic =
        static_cast<double>(sram_reads) * params.sramReadNj +
        static_cast<double>(sram_fills) * params.sramWriteNj;
    e.nvmRead = static_cast<double>(nvm_reads) *
                (params.nvmReadNj + params.decompressionNj);
    e.nvmWrite =
        static_cast<double>(nvm_bytes) * params.nvmWritePerByteNj;
    e.offChip = static_cast<double>(misses) * params.dramAccessNj;
    // Leakage in nJ: W * s * 1e9.
    e.leakage = params.sramLeakagePerWayW *
                static_cast<double>(sram_ways) * window_seconds * 1e9;
    return e;
}

} // namespace hllc::hierarchy
