#include "hierarchy/energy.hh"

namespace hllc::hierarchy
{

EnergyBreakdown
llcEnergy(const StatGroup &llc_stats, std::uint32_t sram_ways,
          Seconds window_seconds, const EnergyParams &params)
{
    EnergyBreakdown e;

    // The group may come from a partial model (SRAM-only LLC, ad-hoc
    // groups in tests) where some counters legitimately never existed,
    // so probe instead of the throwing counterValue().
    const auto value = [&](const char *name) {
        return llc_stats.tryCounterValue(name).value_or(0);
    };
    const auto sram_reads =
        value("gets_hits_sram") + value("getx_hits_sram");
    const auto nvm_reads =
        value("gets_hits_nvm") + value("getx_hits_nvm");
    const auto sram_fills = value("inserts_sram");
    const auto nvm_bytes = value("nvm_bytes_written");
    const auto misses = value("gets_misses") + value("getx_misses");

    e.sramDynamic =
        static_cast<double>(sram_reads) * params.sramReadNj +
        static_cast<double>(sram_fills) * params.sramWriteNj;
    e.nvmRead = static_cast<double>(nvm_reads) *
                (params.nvmReadNj + params.decompressionNj);
    e.nvmWrite =
        static_cast<double>(nvm_bytes) * params.nvmWritePerByteNj;
    e.offChip = static_cast<double>(misses) * params.dramAccessNj;
    // Leakage in nJ: W * s * 1e9.
    e.leakage = params.sramLeakagePerWayW *
                static_cast<double>(sram_ways) * window_seconds * 1e9;
    return e;
}

} // namespace hllc::hierarchy
