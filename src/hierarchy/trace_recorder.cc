#include "hierarchy/trace_recorder.hh"

#include "common/logging.hh"
#include "hybrid/hybrid_llc.hh"

namespace hllc::hierarchy
{

using hybrid::AccessOutcome;
using hybrid::LlcEvent;
using hybrid::LlcEventType;

TraceRecorder::TraceRecorder(replay::LlcTrace *trace) : trace_(trace)
{
    HLLC_ASSERT(trace != nullptr);
}

AccessOutcome
TraceRecorder::demand(Addr block, bool getx, CoreId core)
{
    trace_->append(LlcEvent{
        block,
        getx ? LlcEventType::GetX : LlcEventType::GetS,
        static_cast<std::uint8_t>(blockBytes),
        core,
    });
    // The functional stream does not depend on the answer (Sec. III-A).
    return AccessOutcome::Miss;
}

void
TraceRecorder::put(Addr block, bool dirty, CoreId core, unsigned ecb_bytes)
{
    trace_->append(LlcEvent{
        block,
        dirty ? LlcEventType::PutDirty : LlcEventType::PutClean,
        static_cast<std::uint8_t>(ecb_bytes),
        core,
    });
}

HybridLlcSink::HybridLlcSink(hybrid::HybridLlc *llc) : llc_(llc)
{
    HLLC_ASSERT(llc != nullptr);
}

AccessOutcome
HybridLlcSink::demand(Addr block, bool getx, CoreId core)
{
    llc_->tick(llc_->config().cyclesPerEvent);
    (void)core;
    return getx ? llc_->onGetX(block) : llc_->onGetS(block);
}

void
HybridLlcSink::put(Addr block, bool dirty, CoreId core, unsigned ecb_bytes)
{
    llc_->tick(llc_->config().cyclesPerEvent);
    (void)core;
    llc_->onPut(block, dirty, ecb_bytes);
}

} // namespace hllc::hierarchy
