/**
 * @file
 * Multi-core simulation driver: four application models behind private
 * L1/L2 stacks, interleaved round-robin in front of a shared LLC sink
 * (a live HybridLlc or a trace recorder).
 */

#ifndef HLLC_HIERARCHY_HIERARCHY_HH
#define HLLC_HIERARCHY_HIERARCHY_HH

#include <memory>
#include <vector>

#include "hierarchy/private_cache.hh"
#include "hierarchy/timing.hh"
#include "replay/llc_trace.hh"
#include "workload/mixes.hh"

namespace hllc::hierarchy
{

class MixSimulation
{
  public:
    /**
     * Instantiate the four applications of @p mix and their private
     * stacks.
     *
     * @param llc_blocks LLC capacity in blocks (working-set scaling)
     * @param seed workload seed (deterministic runs)
     */
    MixSimulation(const workload::MixSpec &mix,
                  std::uint64_t llc_blocks,
                  const PrivateCacheConfig &config,
                  std::uint64_t seed,
                  compression::Scheme scheme =
                      compression::Scheme::Bdi);

    /**
     * Run @p refs_per_core references on every core, round-robin, against
     * @p sink.
     */
    void run(std::uint64_t refs_per_core, LlcSink &sink);

    /** Event counts of core @p i, instructions derived per memIntensity. */
    CoreActivity activityOf(std::size_t i) const;

    /** Fill trace metadata from the accumulated core counters. */
    void exportMeta(replay::TraceMeta &meta) const;

    const workload::MixSpec &mix() const { return mix_; }
    CoreHierarchy &coreHierarchy(std::size_t i) { return *cores_.at(i); }
    workload::AppModel &app(std::size_t i) { return *apps_.at(i); }
    std::size_t numCores() const { return cores_.size(); }

  private:
    workload::MixSpec mix_;
    PrivateCacheConfig config_;
    std::vector<std::unique_ptr<workload::AppModel>> apps_;
    std::vector<std::unique_ptr<CoreHierarchy>> cores_;
};

/**
 * Convenience: capture the LLC trace of @p mix with @p refs_per_core
 * references per core.
 */
replay::LlcTrace
captureTrace(const workload::MixSpec &mix, std::uint64_t llc_blocks,
             const PrivateCacheConfig &config, std::uint64_t refs_per_core,
             std::uint64_t seed,
             compression::Scheme scheme = compression::Scheme::Bdi);

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_HIERARCHY_HH
