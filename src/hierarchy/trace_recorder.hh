/**
 * @file
 * LlcSink that captures the LLC-bound event stream into an LlcTrace.
 *
 * Because the private levels are LLC-independent (Sec. III-A), the
 * recorder can answer every demand with Miss without perturbing the
 * functional stream; captured traces are replayed against any LLC
 * configuration by replay::TraceReplayer.
 */

#ifndef HLLC_HIERARCHY_TRACE_RECORDER_HH
#define HLLC_HIERARCHY_TRACE_RECORDER_HH

#include "hierarchy/llc_sink.hh"
#include "replay/llc_trace.hh"

namespace hllc::hybrid
{
class HybridLlc;
} // namespace hllc::hybrid

namespace hllc::hierarchy
{

class TraceRecorder : public LlcSink
{
  public:
    /** @param trace destination; must outlive the recorder. */
    explicit TraceRecorder(replay::LlcTrace *trace);

    hybrid::AccessOutcome
    demand(Addr block, bool getx, CoreId core) override;

    void
    put(Addr block, bool dirty, CoreId core, unsigned ecb_bytes) override;

  private:
    replay::LlcTrace *trace_;
};

/** LlcSink adapter driving a live HybridLlc (detailed simulation). */
class HybridLlcSink : public LlcSink
{
  public:
    explicit HybridLlcSink(hybrid::HybridLlc *llc);

    hybrid::AccessOutcome
    demand(Addr block, bool getx, CoreId core) override;

    void
    put(Addr block, bool dirty, CoreId core, unsigned ecb_bytes) override;

  private:
    hybrid::HybridLlc *llc_;
};

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_TRACE_RECORDER_HH
