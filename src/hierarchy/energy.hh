/**
 * @file
 * LLC energy model.
 *
 * The hybrid-LLC literature (TAP in particular) motivates NVM steering
 * with energy: STT-MRAM reads are cheap and its leakage is negligible,
 * but writes are energy-hungry and scale with the bytes switched —
 * which is exactly what compression and write-aware insertion reduce.
 * This model converts the LLC's event counters into a per-component
 * energy breakdown using NVSim/CACTI-style per-access constants.
 */

#ifndef HLLC_HIERARCHY_ENERGY_HH
#define HLLC_HIERARCHY_ENERGY_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace hllc::hierarchy
{

/** Per-access / per-byte energy constants (nJ) and leakage (W). */
struct EnergyParams
{
    double sramReadNj = 0.35;       //!< SRAM way read
    double sramWriteNj = 0.40;      //!< SRAM way fill
    double nvmReadNj = 0.45;        //!< NVM frame read (sensing)
    double nvmWritePerByteNj = 0.08; //!< MTJ switching, per byte written
    double dramAccessNj = 18.0;     //!< off-chip fill on an LLC miss
    double sramLeakagePerWayW = 0.020; //!< SRAM leaks; NVM essentially 0
    double decompressionNj = 0.02;  //!< BDI decompressor activation
};

/** Energy totals of one measurement window, in nJ. */
struct EnergyBreakdown
{
    double sramDynamic = 0.0;
    double nvmRead = 0.0;
    double nvmWrite = 0.0;
    double offChip = 0.0;
    double leakage = 0.0;

    double
    total() const
    {
        return sramDynamic + nvmRead + nvmWrite + offChip + leakage;
    }
};

/**
 * Convert an LLC stat group (HybridLlc counters) into an energy
 * breakdown.
 *
 * @param llc_stats counters of the measured window
 * @param sram_ways leaking SRAM ways
 * @param window_seconds wall-clock span of the window (leakage)
 */
EnergyBreakdown
llcEnergy(const StatGroup &llc_stats, std::uint32_t sram_ways,
          Seconds window_seconds, const EnergyParams &params = {});

} // namespace hllc::hierarchy

#endif // HLLC_HIERARCHY_ENERGY_HH
