/**
 * @file
 * First-class scenario library: server-class, phase-changing and
 * adversarial workload families emitted as verified .hlt traces.
 *
 * The synthetic Table V mixes reproduce the paper's SPEC blends; this
 * library widens the evaluated space with workloads the policies were
 * not tuned on: key-value/graph/analytics server mixes, multi-tenant
 * and phase-changing interleavings, and adversarial patterns (thrash,
 * streaming scan, compression-hostile payloads) designed to expose
 * pathological insertion behaviour. Every family is a pure function of
 * its options — same seed, byte-identical .hlt — and flows through the
 * same trace+manifest emission path as converted external traces.
 */

#ifndef HLLC_INGEST_SCENARIOS_HH
#define HLLC_INGEST_SCENARIOS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "replay/llc_trace.hh"

namespace hllc::ingest
{

/** One scenario family the library can generate. */
struct ScenarioInfo
{
    std::string_view name;    //!< CLI-facing family name
    std::string_view summary; //!< one-line description
};

/** The closed list of scenario families, in documentation order. */
const std::vector<ScenarioInfo> &scenarioCatalog();

/** Generation knobs shared by every family. */
struct ScenarioOptions
{
    std::uint64_t events = 100'000; //!< LLC events to emit
    std::uint64_t seed = 1;         //!< master seed (determinism key)
    /**
     * Geometry the footprints scale against: adversarial families size
     * their working sets just past numSets * totalWays blocks so they
     * defeat LRU at exactly the targeted cache size.
     */
    std::uint32_t numSets = 128;
    std::uint32_t totalWays = 16;
    double hcrFraction = 0.4;       //!< content mix of payload synthesis
    double lcrFraction = 0.3;
};

/**
 * Generate one trace of family @p name (a scenarioCatalog() entry).
 * Deterministic in @p options; the trace carries synthesized capture
 * metadata and the family name as its mix name. Throws IoError for an
 * unknown family name.
 */
replay::LlcTrace generateScenario(const std::string &name,
                                  const ScenarioOptions &options);

} // namespace hllc::ingest

#endif // HLLC_INGEST_SCENARIOS_HH
