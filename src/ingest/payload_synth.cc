#include "ingest/payload_synth.hh"

#include "common/rng.hh"
#include "compression/bdi.hh"

namespace hllc::ingest
{

PayloadSynth::PayloadSynth(const workload::ContentMix &mix,
                           std::uint64_t seed)
    : mix_(mix), salt_(mix64(seed ^ 0x696e676573743031ULL))
{
}

compression::Ce
PayloadSynth::targetCeOf(Addr block) const
{
    // Same uniform-double construction as the app models: top 53 bits
    // of a mixed draw over 2^53.
    const double u =
        static_cast<double>(mix64(block ^ salt_) >> 11) * 0x1.0p-53;
    return mix_.draw(u);
}

std::uint8_t
PayloadSynth::ecbOf(Addr block)
{
    const auto it = cache_.find(block);
    if (it != cache_.end())
        return it->second;
    const BlockData data =
        workload::synthesizeBlock(targetCeOf(block),
                                  mix64(block ^ salt_) + 1);
    const unsigned ecb = compression::BdiCompressor::compress(data).ecbBytes;
    const auto byte = static_cast<std::uint8_t>(ecb);
    cache_.emplace(block, byte);
    return byte;
}

} // namespace hllc::ingest
