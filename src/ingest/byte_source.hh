/**
 * @file
 * Pluggable byte streams for trace ingestion.
 *
 * External traces arrive as raw files or behind an xz/gzip outer layer;
 * the decoder only ever sees a ByteSource, so the container handling is
 * decided once, by magic bytes, at open time. Decompression is done by
 * piping the file through the system decompressor (fork + exec, no
 * shell), which keeps hostile archive metadata out of this process: the
 * decoder consumes whatever bytes actually arrive and never trusts a
 * declared uncompressed size.
 */

#ifndef HLLC_INGEST_BYTE_SOURCE_HH
#define HLLC_INGEST_BYTE_SOURCE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hh"

namespace hllc::ingest
{

/** Outer container of an input file, detected from its magic bytes. */
enum class ContainerKind : std::uint8_t { Raw, Gzip, Xz };

/** Printable name ("raw", "gzip", "xz") for reports and errors. */
std::string_view containerKindName(ContainerKind kind);

/**
 * A readable stream of bytes. Implementations own whatever backs the
 * stream (memory, a file descriptor, a decompressor subprocess) and
 * report failures as IoError — never by crashing or returning garbage.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /**
     * Read up to @p n bytes into @p out. Returns the number of bytes
     * produced; 0 means clean end of stream. Throws IoError on any
     * underlying failure (including a decompressor exiting unhappily).
     */
    virtual std::size_t read(std::uint8_t *out, std::size_t n) = 0;
};

/** A ByteSource over an in-memory byte vector (tests, fuzz corpora). */
class MemorySource : public ByteSource
{
  public:
    explicit MemorySource(std::vector<std::uint8_t> bytes)
        : bytes_(std::move(bytes))
    {
    }

    std::size_t read(std::uint8_t *out, std::size_t n) override;

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/** A ByteSource streaming a plain file via a POSIX descriptor. */
class FileSource : public ByteSource
{
  public:
    /** Opens @p path read-only; throws IoError when that fails. */
    explicit FileSource(const std::string &path);
    ~FileSource() override;

    FileSource(const FileSource &) = delete;
    FileSource &operator=(const FileSource &) = delete;

    std::size_t read(std::uint8_t *out, std::size_t n) override;

  private:
    std::string path_;
    int fd_ = -1;
};

/**
 * A ByteSource reading the stdout of a decompressor child process whose
 * stdin is the opened input file. The child is spawned with fork +
 * execvp directly — the file name never passes through a shell — and
 * its exit status is checked at end of stream: a decompressor that dies
 * mid-stream surfaces as IoError, not as a silently short trace.
 */
class SubprocessSource : public ByteSource
{
  public:
    /**
     * Pipe @p path through @p argv (e.g. {"gzip", "-dc"}). Throws
     * IoError when the file cannot be opened or the child cannot be
     * spawned; a missing decompressor binary surfaces on first read().
     */
    SubprocessSource(const std::string &path,
                     const std::vector<std::string> &argv);
    ~SubprocessSource() override;

    SubprocessSource(const SubprocessSource &) = delete;
    SubprocessSource &operator=(const SubprocessSource &) = delete;

    std::size_t read(std::uint8_t *out, std::size_t n) override;

  private:
    /** Reap the child; throws IoError on non-zero exit iff @p check. */
    void wait(bool check);

    std::string tool_;
    int fd_ = -1;      //!< read end of the child's stdout pipe
    long pid_ = -1;    //!< child pid; -1 once reaped
};

/**
 * Sniff the outer container of @p path from its leading magic bytes
 * (gzip 1f 8b, xz fd '7zXZ' 00; anything else is Raw). Throws IoError
 * when the file cannot be read.
 */
ContainerKind detectContainer(const std::string &path);

/**
 * Open @p path as a ByteSource, stacking the right decompressor when
 * the magic says so. The detected container is reported through
 * @p kind_out when non-null.
 */
std::unique_ptr<ByteSource>
openByteSource(const std::string &path, ContainerKind *kind_out = nullptr);

} // namespace hllc::ingest

#endif // HLLC_INGEST_BYTE_SOURCE_HH
