/**
 * @file
 * ChampSim CRC2-style trace decoding and conversion to .hlt v2.
 *
 * The adapter consumes the fixed-width little-endian LLC access records
 * of the Cache Replacement Championship tooling (the layout is
 * specified in DESIGN.md "Ingesting external traces" so this repo is
 * self-contained) and maps them onto the replay layer's GetS/GetX/Put
 * event vocabulary. Records stream through a ByteSource — there are no
 * trusted length fields anywhere: the decoder processes exactly the
 * bytes that arrive, validates every enum field, and rejects a stream
 * that ends mid-record. Malformed input is always a typed IoError,
 * never an abort, so the converter can sit on untrusted files.
 */

#ifndef HLLC_INGEST_CHAMPSIM_HH
#define HLLC_INGEST_CHAMPSIM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ingest/byte_source.hh"
#include "replay/llc_trace.hh"

namespace hllc::ingest
{

/** Size of one ChampSim CRC2 LLC access record on disk. */
inline constexpr std::size_t champSimRecordBytes = 24;

/** Access types the CRC2 record's type field may carry. */
enum class ChampSimType : std::uint8_t
{
    Load = 0,      //!< demand read (L2 miss)
    Rfo = 1,       //!< read-for-ownership (store miss)
    Prefetch = 2,  //!< hardware prefetch reaching the LLC
    Writeback = 3  //!< dirty eviction from the private levels
};

/** One decoded CRC2 record (see DESIGN.md for the byte layout). */
struct ChampSimRecord
{
    std::uint64_t pc = 0;    //!< program counter of the access
    std::uint64_t addr = 0;  //!< byte-granular physical address
    ChampSimType type = ChampSimType::Load;
    std::uint8_t cpu = 0;    //!< originating core, < replay::traceCores
};

/**
 * Decode one record from exactly champSimRecordBytes bytes. Throws
 * IoError on an out-of-range type or cpu field; @p index names the
 * offending record in the message.
 */
ChampSimRecord decodeChampSimRecord(const std::uint8_t *bytes,
                                    std::uint64_t index);

/** Conversion knobs; every field participates in determinism. */
struct ConvertOptions
{
    std::uint64_t seed = 1;      //!< payload-synthesis seed
    double hcrFraction = 0.4;    //!< high-compression content mass
    double lcrFraction = 0.3;    //!< low-compression content mass
    std::uint64_t maxEvents = 0; //!< stop after N events (0 = all)
    bool dropPrefetches = false; //!< count but do not emit prefetches
    std::string mixName = "champsim"; //!< recorded trace mix name
};

/** What one conversion saw and produced (feeds hllc-ingest-v1). */
struct ConvertStats
{
    std::uint64_t bytesIn = 0;      //!< decoded payload bytes consumed
    std::uint64_t records = 0;      //!< records decoded
    std::uint64_t loads = 0;
    std::uint64_t rfos = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t dropped = 0;      //!< records not emitted as events
    std::uint64_t events = 0;       //!< .hlt events produced
    std::uint64_t distinctBlocks = 0;
    ContainerKind container = ContainerKind::Raw;
};

/**
 * Decode a CRC2 record stream into an LlcTrace: Load/Prefetch become
 * GetS, Rfo becomes GetX, Writeback becomes PutDirty; each event's ECB
 * size comes from deterministic payload synthesis (payload_synth.hh)
 * keyed by @p options.seed and the block number. Per-core capture
 * metadata is synthesized from the observed demand counts so the
 * timing-dependent replay paths (forecast, resume diffs) stay
 * non-vacuous. Throws IoError on any malformed input.
 */
replay::LlcTrace convertChampSim(ByteSource &source,
                                 const ConvertOptions &options,
                                 ConvertStats *stats = nullptr);

/**
 * Full-file conversion: open @p in_path (gzip/xz unwrapped by magic),
 * convert, and atomically write @p out_path plus its sidecar manifest.
 * On any failure the destination is either untouched or not created —
 * never a torn .hlt. Returns the conversion stats.
 */
ConvertStats convertChampSimFile(const std::string &in_path,
                                 const std::string &out_path,
                                 const ConvertOptions &options);

/**
 * Fill @p trace's per-core capture metadata from its own demand
 * counts (the trace_fuzz shape: enough synthetic private-level
 * activity that replay timing and resume diffs are non-vacuous) and
 * record @p mix_name. Shared by the converter and the scenario
 * library.
 */
void synthesizeCaptureMeta(replay::LlcTrace &trace,
                           const std::string &mix_name);

/**
 * Save @p trace to @p path and write the seed-stamped sidecar manifest
 * next to it (the shared tail of every ingest path; carries the
 * "ingest.write" failpoint).
 */
void writeTraceWithManifest(const std::string &path,
                            const replay::LlcTrace &trace,
                            std::uint64_t seed);

/**
 * Deterministically synthesize a plausible CRC2 record stream: four
 * cores running a blend of loop, streaming and random access patterns.
 * This is the committed-fixture generator (tools --gen-fixture) and the
 * seed input of the ingest fuzz corpora.
 */
std::vector<std::uint8_t>
synthesizeChampSimFixture(std::uint64_t records, std::uint64_t seed);

} // namespace hllc::ingest

#endif // HLLC_INGEST_CHAMPSIM_HH
