#include "ingest/byte_source.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/failpoint.hh"

namespace hllc::ingest
{

namespace
{

/** strerror(errno) suffix for IoError messages. */
std::string
errnoText()
{
    return std::strerror(errno);
}

/** Retry-on-EINTR read(2). */
ssize_t
readRetry(int fd, std::uint8_t *out, std::size_t n)
{
    for (;;) {
        const ssize_t got = ::read(fd, out, n);
        if (got >= 0 || errno != EINTR)
            return got;
    }
}

} // anonymous namespace

std::string_view
containerKindName(ContainerKind kind)
{
    switch (kind) {
    case ContainerKind::Raw:
        return "raw";
    case ContainerKind::Gzip:
        return "gzip";
    case ContainerKind::Xz:
        return "xz";
    }
    return "?";
}

std::size_t
MemorySource::read(std::uint8_t *out, std::size_t n)
{
    const std::size_t left = bytes_.size() - pos_;
    const std::size_t take = n < left ? n : left;
    std::memcpy(out, bytes_.data() + pos_, take);
    pos_ += take;
    return take;
}

FileSource::FileSource(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd_ < 0) {
        throw IoError("cannot open '" + path + "' for ingest: " +
                      errnoText());
    }
}

FileSource::~FileSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::size_t
FileSource::read(std::uint8_t *out, std::size_t n)
{
    const ssize_t got = readRetry(fd_, out, n);
    if (got < 0) {
        throw IoError("read failed on '" + path_ + "': " + errnoText());
    }
    return static_cast<std::size_t>(got);
}

SubprocessSource::SubprocessSource(const std::string &path,
                                   const std::vector<std::string> &argv)
{
    if (argv.empty())
        throw IoError("decompressor argv must not be empty");
    tool_ = argv.front();

    const int in_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (in_fd < 0) {
        throw IoError("cannot open '" + path + "' for ingest: " +
                      errnoText());
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        const std::string why = errnoText();
        ::close(in_fd);
        throw IoError("cannot create decompressor pipe: " + why);
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        const std::string why = errnoText();
        ::close(in_fd);
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        throw IoError("cannot fork decompressor '" + tool_ + "': " + why);
    }

    if (pid == 0) {
        // Child: input file on stdin, pipe on stdout, then exec the
        // decompressor. argv is passed as a vector — no shell is ever
        // involved, so a hostile file name cannot inject commands.
        ::dup2(in_fd, STDIN_FILENO);
        ::dup2(pipe_fds[1], STDOUT_FILENO);
        ::close(in_fd);
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &arg : argv)
            args.push_back(const_cast<char *>(arg.c_str()));
        args.push_back(nullptr);
        ::execvp(args[0], args.data());
        // hllc-lint: allow(no-exit-in-library) a forked child whose
        // exec failed must terminate without unwinding the parent's
        // stack; 127 is the conventional exec-failure status.
        ::_exit(127);
    }

    ::close(in_fd);
    ::close(pipe_fds[1]);
    fd_ = pipe_fds[0];
    pid_ = pid;
}

SubprocessSource::~SubprocessSource()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (pid_ >= 0) {
        // Error-path teardown: the child sees EOF/SIGPIPE and exits;
        // status is irrelevant here, only the reaping matters.
        try {
            wait(false);
        } catch (const IoError &) {
        }
    }
}

void
SubprocessSource::wait(bool check)
{
    if (pid_ < 0)
        return;
    int status = 0;
    pid_t reaped;
    do {
        reaped = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    } while (reaped < 0 && errno == EINTR);
    pid_ = -1;
    if (!check)
        return;
    if (reaped < 0)
        throw IoError("waitpid failed for '" + tool_ + "'");
    if (WIFEXITED(status) && WEXITSTATUS(status) == 127) {
        throw IoError("decompressor '" + tool_ +
                      "' could not be executed (not installed?)");
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        throw IoError("decompressor '" + tool_ +
                      "' failed; refusing the truncated stream");
    }
}

std::size_t
SubprocessSource::read(std::uint8_t *out, std::size_t n)
{
    if (fd_ < 0)
        return 0;
    const ssize_t got = readRetry(fd_, out, n);
    if (got < 0) {
        throw IoError("read from decompressor '" + tool_ +
                      "' failed: " + errnoText());
    }
    if (got == 0) {
        // End of stream: only now can the child's verdict be trusted.
        ::close(fd_);
        fd_ = -1;
        wait(true);
    }
    return static_cast<std::size_t>(got);
}

ContainerKind
detectContainer(const std::string &path)
{
    FileSource head(path);
    std::uint8_t magic[6] = {};
    std::size_t have = 0;
    while (have < sizeof(magic)) {
        const std::size_t got =
            head.read(magic + have, sizeof(magic) - have);
        if (got == 0)
            break;
        have += got;
    }
    if (have >= 2 && magic[0] == 0x1f && magic[1] == 0x8b)
        return ContainerKind::Gzip;
    static const std::uint8_t xz_magic[6] = { 0xfd, '7',  'z',
                                              'X',  'Z',  0x00 };
    if (have >= 6 && std::memcmp(magic, xz_magic, 6) == 0)
        return ContainerKind::Xz;
    return ContainerKind::Raw;
}

std::unique_ptr<ByteSource>
openByteSource(const std::string &path, ContainerKind *kind_out)
{
    HLLC_FAILPOINT("ingest.open");
    const ContainerKind kind = detectContainer(path);
    if (kind_out != nullptr)
        *kind_out = kind;
    switch (kind) {
    case ContainerKind::Gzip:
        return std::make_unique<SubprocessSource>(
            path, std::vector<std::string>{ "gzip", "-dc" });
    case ContainerKind::Xz:
        return std::make_unique<SubprocessSource>(
            path, std::vector<std::string>{ "xz", "-dc" });
    case ContainerKind::Raw:
        break;
    }
    return std::make_unique<FileSource>(path);
}

} // namespace hllc::ingest
