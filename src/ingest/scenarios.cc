#include "ingest/scenarios.hh"

#include <array>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/rng.hh"
#include "ingest/champsim.hh"
#include "ingest/payload_synth.hh"

namespace hllc::ingest
{

namespace
{

using hybrid::LlcEvent;
using hybrid::LlcEventType;

/**
 * Tiny per-core private-cache filter. The LLC of the paper's
 * non-inclusive hierarchy fills on Put (L2 evictions) and only sees a
 * GetS/GetX when the private levels miss, so a realistic LLC event
 * stream needs exactly this filter in front of the application
 * pattern: hot blocks stay private, warm blocks cycle LLC reuse, cold
 * blocks stream through.
 */
class CoreCache
{
  public:
    explicit CoreCache(std::size_t capacity) : cap_(capacity) {}

    struct Evicted
    {
        Addr block = 0;
        bool dirty = false;
        bool valid = false;
    };

    /**
     * Touch @p block; returns true when the private levels miss (the
     * LLC sees the demand). A capacity victim, if any, lands in
     * @p evicted (the LLC sees the Put).
     */
    bool
    access(Addr block, bool write, Evicted &evicted)
    {
        evicted.valid = false;
        const auto it = map_.find(block);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            it->second.dirty = it->second.dirty || write;
            return false;
        }
        lru_.push_front(block);
        map_[block] = { write, lru_.begin() };
        if (map_.size() > cap_) {
            const Addr victim = lru_.back();
            const auto vit = map_.find(victim);
            evicted = { victim, vit->second.dirty, true };
            lru_.pop_back();
            map_.erase(vit);
        }
        return true;
    }

  private:
    struct Entry
    {
        bool dirty = false;
        std::list<Addr>::iterator pos;
    };

    std::size_t cap_;
    std::list<Addr> lru_;
    std::unordered_map<Addr, Entry> map_;
};

/** Event sink: application touches filtered into LLC events. */
class World
{
  public:
    World(const ScenarioOptions &options, double hcr, double lcr)
        : target_(options.events),
          synth_(workload::ContentMix::fromClassFractions(hcr, lcr),
                 options.seed)
    {
        // One sixteenth of the targeted LLC capacity of private cache
        // per core: small enough that warm working sets spill to the
        // LLC, big enough to absorb the hottest blocks.
        std::size_t cap = static_cast<std::size_t>(options.numSets) *
                          options.totalWays / 16;
        if (cap < 16)
            cap = 16;
        for (std::size_t c = 0; c < replay::traceCores; ++c)
            l2_.emplace_back(cap);
    }

    bool done() const { return trace_.size() >= target_; }

    /** One application-level access through the private filter. */
    void
    touch(std::uint8_t core, Addr block, bool write)
    {
        CoreCache::Evicted evicted;
        if (l2_[core].access(block, write, evicted)) {
            emit(block, write ? LlcEventType::GetX : LlcEventType::GetS,
                 core);
        }
        if (evicted.valid) {
            emit(evicted.block,
                 evicted.dirty ? LlcEventType::PutDirty
                               : LlcEventType::PutClean,
                 core);
        }
    }

    replay::LlcTrace &&takeTrace() { return std::move(trace_); }

  private:
    void
    emit(Addr block, LlcEventType type, std::uint8_t core)
    {
        if (done())
            return;
        LlcEvent e;
        e.blockNum = block;
        e.type = type;
        e.core = core;
        e.ecbBytes = synth_.ecbOf(block);
        trace_.append(e);
    }

    std::uint64_t target_;
    PayloadSynth synth_;
    replay::LlcTrace trace_;
    std::vector<CoreCache> l2_;
};

/** Capacity in blocks of the cache geometry the options target. */
std::uint64_t
capacityBlocks(const ScenarioOptions &opt)
{
    return static_cast<std::uint64_t>(opt.numSets) * opt.totalWays;
}

/** Per-core address-space base keeping tenants disjoint. */
Addr
coreBase(std::uint8_t core)
{
    return (static_cast<Addr>(core) + 1) << 32;
}

/**
 * One key-value-store access from a skewed key popularity: 80% of
 * operations land on the hottest eighth of @p keys (the classic
 * Zipf-ish server profile), the rest are uniform over the table.
 */
Addr
kvKey(Xoshiro256StarStar &rng, Addr base, std::uint64_t keys)
{
    const std::uint64_t hot = keys / 8 == 0 ? 1 : keys / 8;
    if (rng.nextBounded(10) < 8)
        return base + rng.nextBounded(hot);
    return base + rng.nextBounded(keys);
}

void
genKvServer(const ScenarioOptions &opt, World &world)
{
    Xoshiro256StarStar rng = childStream(opt.seed, 1, 0);
    const std::uint64_t keys = capacityBlocks(opt) / 2 + 64;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            rng.nextBounded(replay::traceCores));
        const Addr block = kvKey(rng, coreBase(core), keys);
        world.touch(core, block, rng.nextBounded(10) >= 8);
    }
}

void
genGraphAnalytics(const ScenarioOptions &opt, World &world)
{
    // Pointer chasing over a footprint far past capacity, with a small
    // frontier of recently visited vertices that does get revisited.
    Xoshiro256StarStar rng = childStream(opt.seed, 2, 0);
    const std::uint64_t footprint = capacityBlocks(opt) * 8;
    std::array<Addr, replay::traceCores> node{};
    std::array<std::array<Addr, 64>, replay::traceCores> frontier{};
    std::uint64_t step = 0;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            step % replay::traceCores);
        Addr &cur = node[core];
        if (rng.nextBounded(10) < 7)
            cur = mix64(cur + step) % footprint;
        else
            cur = frontier[core][rng.nextBounded(64)] % footprint;
        frontier[core][step % 64] = cur;
        world.touch(core, coreBase(core) + cur,
                    rng.nextBounded(10) == 0);
        ++step;
    }
}

void
genAnalyticsScan(const ScenarioOptions &opt, World &world)
{
    // Streaming column scan: strictly monotone application addresses,
    // so no demand access can ever find its block back in the LLC —
    // the adversarial zero-reuse case for scan-caching policies.
    Xoshiro256StarStar rng = childStream(opt.seed, 3, 0);
    std::array<Addr, replay::traceCores> cursor{};
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            rng.nextBounded(replay::traceCores));
        world.touch(core, coreBase(core) + cursor[core]++, false);
    }
}

void
genThrash(const ScenarioOptions &opt, World &world)
{
    // The textbook LRU-defeating loop: a cyclic working set twice the
    // targeted capacity, touched strictly in order. The LLC fills on
    // Put, so what matters is the Put-to-reuse distance (working set
    // minus the private-filter capacity); at 2x capacity it exceeds
    // every set's ways and LRU evicts each block just before its next
    // use.
    const std::uint64_t working_set =
        2 * capacityBlocks(opt) + opt.numSets;
    std::uint64_t cursor = 0;
    std::uint64_t step = 0;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            step++ % replay::traceCores);
        world.touch(core, cursor, false);
        cursor = (cursor + 1) % working_set;
    }
}

void
genMultiTenant(const ScenarioOptions &opt, World &world)
{
    // Two tenants sharing the LLC: cores 0-1 run the key-value server,
    // cores 2-3 run a streaming scan that tries to flush them out.
    Xoshiro256StarStar rng = childStream(opt.seed, 4, 0);
    const std::uint64_t keys = capacityBlocks(opt) / 4 + 64;
    std::array<Addr, replay::traceCores> cursor{};
    std::uint64_t step = 0;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            step++ % replay::traceCores);
        if (core < 2) {
            world.touch(core, kvKey(rng, coreBase(core), keys),
                        rng.nextBounded(5) == 0);
        } else {
            world.touch(core, coreBase(core) + cursor[core]++, false);
        }
    }
}

void
genPhaseShift(const ScenarioOptions &opt, World &world)
{
    // Eight phases alternating a reuse-heavy loop with a streaming
    // sweep: the pattern that punishes policies whose learned state
    // (dueling CPth, reuse predictors) adapts slower than the phase
    // length.
    Xoshiro256StarStar rng = childStream(opt.seed, 5, 0);
    const std::uint64_t phase_len =
        opt.events / 8 == 0 ? 1 : opt.events / 8;
    const std::uint64_t loop_set = capacityBlocks(opt) / 2 + 16;
    std::array<Addr, replay::traceCores> stream{};
    std::uint64_t step = 0;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            step % replay::traceCores);
        const std::uint64_t phase = step / phase_len;
        Addr block;
        if (phase % 2 == 0)
            block = coreBase(core) + rng.nextBounded(loop_set);
        else
            block = coreBase(core) + 0x1000000 + stream[core]++;
        world.touch(core, block, rng.nextBounded(10) == 0);
        ++step;
    }
}

void
genEntropyHostile(const ScenarioOptions &opt, World &world)
{
    // High-entropy payloads: every block draws the incompressible
    // class, so compression-aware policies get zero byte-disabling or
    // fit-LRU leverage while reuse still exists to be managed.
    Xoshiro256StarStar rng = childStream(opt.seed, 6, 0);
    const std::uint64_t footprint = capacityBlocks(opt) + 32;
    while (!world.done()) {
        const auto core = static_cast<std::uint8_t>(
            rng.nextBounded(replay::traceCores));
        world.touch(core, coreBase(core) + rng.nextBounded(footprint),
                    rng.nextBounded(4) == 0);
    }
}

} // anonymous namespace

const std::vector<ScenarioInfo> &
scenarioCatalog()
{
    static const std::vector<ScenarioInfo> catalog = {
        { "kv-server",
          "skewed key-value store: hot-key reads, write bursts" },
        { "graph-analytics",
          "pointer chasing over a large graph with a hot frontier" },
        { "analytics-scan",
          "streaming column scan: strictly monotone, zero reuse" },
        { "thrash",
          "cyclic working set at twice capacity: LRU always evicts" },
        { "multi-tenant",
          "key-value tenant sharing the LLC with a streaming tenant" },
        { "phase-shift",
          "alternating loop/stream phases faster than policy learning" },
        { "entropy-hostile",
          "incompressible payloads: no compression leverage at all" },
    };
    return catalog;
}

replay::LlcTrace
generateScenario(const std::string &name, const ScenarioOptions &options)
{
    using Gen = std::function<void(const ScenarioOptions &, World &)>;
    struct Family
    {
        std::string_view name;
        bool forceIncompressible;
        Gen gen;
    };
    static const std::vector<Family> families = {
        { "kv-server", false, genKvServer },
        { "graph-analytics", false, genGraphAnalytics },
        { "analytics-scan", false, genAnalyticsScan },
        { "thrash", false, genThrash },
        { "multi-tenant", false, genMultiTenant },
        { "phase-shift", false, genPhaseShift },
        { "entropy-hostile", true, genEntropyHostile },
    };
    for (const Family &family : families) {
        if (family.name != name)
            continue;
        // entropy-hostile is compression-hostile by definition; the
        // other families honour the requested content mix.
        World world(options,
                    family.forceIncompressible ? 0.0
                                               : options.hcrFraction,
                    family.forceIncompressible ? 0.0
                                               : options.lcrFraction);
        family.gen(options, world);
        replay::LlcTrace trace = world.takeTrace();
        synthesizeCaptureMeta(trace, name);
        return trace;
    }
    std::string known;
    for (const ScenarioInfo &info : scenarioCatalog()) {
        known += known.empty() ? "" : ", ";
        known += info.name;
    }
    throw IoError("unknown scenario '" + name + "' (families: " + known +
                  ")");
}

} // namespace hllc::ingest
