#include "ingest/champsim.hh"

#include <array>
#include <cstring>

#include "check/manifest.hh"
#include "common/failpoint.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "ingest/payload_synth.hh"

namespace hllc::ingest
{

namespace
{

using hybrid::LlcEvent;
using hybrid::LlcEventType;

std::uint64_t
loadLe64(const std::uint8_t *bytes)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes[i];
    return v;
}

void
storeLe64(std::uint64_t v, std::vector<std::uint8_t> &out)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

} // anonymous namespace

void
synthesizeCaptureMeta(replay::LlcTrace &trace,
                      const std::string &mix_name)
{
    std::array<std::uint64_t, replay::traceCores> demands{};
    for (const LlcEvent &event : trace.events()) {
        if (event.type == LlcEventType::GetS ||
            event.type == LlcEventType::GetX) {
            ++demands[event.core % replay::traceCores];
        }
    }
    trace.meta().mixName = mix_name;
    for (std::size_t c = 0; c < replay::traceCores; ++c) {
        replay::CoreMeta &m = trace.meta().cores[c];
        m.llcDemands = demands[c];
        m.l2Hits = demands[c] * 3;
        m.l1Hits = demands[c] * 40;
        m.refs = m.l1Hits + m.l2Hits + demands[c];
        m.instructions = m.refs * 4;
        m.baseCpi = 0.4;
    }
}

ChampSimRecord
decodeChampSimRecord(const std::uint8_t *bytes, std::uint64_t index)
{
    ChampSimRecord rec;
    rec.pc = loadLe64(bytes);
    rec.addr = loadLe64(bytes + 8);
    const std::uint8_t type = bytes[16];
    const std::uint8_t cpu = bytes[17];
    // bytes[18] is the fill hint, bytes[19..23] are reserved; both are
    // informational in the CRC2 kits and deliberately ignored here.
    if (type > static_cast<std::uint8_t>(ChampSimType::Writeback)) {
        throw IoError("champsim record " + formatU64(index) +
                      ": bad access type " + formatU64(type) +
                      " (expected 0..3)");
    }
    if (cpu >= replay::traceCores) {
        throw IoError("champsim record " + formatU64(index) +
                      ": cpu " + formatU64(cpu) + " out of range (" +
                      formatU64(replay::traceCores) + " cores)");
    }
    rec.type = static_cast<ChampSimType>(type);
    rec.cpu = cpu;
    return rec;
}

replay::LlcTrace
convertChampSim(ByteSource &source, const ConvertOptions &options,
                ConvertStats *stats)
{
    HLLC_FAILPOINT("ingest.decode");
    if (options.hcrFraction < 0.0 || options.lcrFraction < 0.0 ||
        options.hcrFraction + options.lcrFraction > 1.0) {
        throw IoError("content-class fractions must be >= 0 and sum"
                      " to <= 1");
    }

    PayloadSynth synth(
        workload::ContentMix::fromClassFractions(options.hcrFraction,
                                                 options.lcrFraction),
        options.seed);
    replay::LlcTrace trace;
    ConvertStats local;

    // Stream in chunks; only whole records are decoded and the
    // remainder is carried over, so a source of any chunking behaves
    // identically. 64 KiB keeps the decompressor pipe busy.
    std::vector<std::uint8_t> buf(64 * 1024);
    std::size_t have = 0;
    bool capped = false;
    for (;;) {
        const std::size_t got =
            source.read(buf.data() + have, buf.size() - have);
        if (got == 0)
            break;
        have += got;
        local.bytesIn += got;

        std::size_t pos = 0;
        while (have - pos >= champSimRecordBytes && !capped) {
            const ChampSimRecord rec =
                decodeChampSimRecord(buf.data() + pos, local.records);
            pos += champSimRecordBytes;
            ++local.records;

            LlcEvent event;
            event.blockNum = rec.addr >> blockOffsetBits;
            event.core = rec.cpu;
            bool emit = true;
            switch (rec.type) {
            case ChampSimType::Load:
                ++local.loads;
                event.type = LlcEventType::GetS;
                break;
            case ChampSimType::Rfo:
                ++local.rfos;
                event.type = LlcEventType::GetX;
                break;
            case ChampSimType::Prefetch:
                ++local.prefetches;
                event.type = LlcEventType::GetS;
                emit = !options.dropPrefetches;
                break;
            case ChampSimType::Writeback:
                ++local.writebacks;
                event.type = LlcEventType::PutDirty;
                break;
            }
            if (!emit) {
                ++local.dropped;
                continue;
            }
            event.ecbBytes = synth.ecbOf(event.blockNum);
            trace.append(event);
            if (options.maxEvents != 0 &&
                trace.size() >= options.maxEvents) {
                capped = true;
            }
        }
        if (capped)
            break;
        std::memmove(buf.data(), buf.data() + pos, have - pos);
        have -= pos;
    }
    if (!capped && have != 0) {
        throw IoError("champsim stream truncated: " + formatU64(have) +
                      " trailing byte(s) after record " +
                      formatU64(local.records) + " (records are " +
                      formatU64(champSimRecordBytes) + " bytes)");
    }

    synthesizeCaptureMeta(trace, options.mixName);
    local.events = trace.size();
    local.distinctBlocks = synth.distinctBlocks();
    if (stats != nullptr) {
        local.container = stats->container;
        *stats = local;
    }
    return trace;
}

ConvertStats
convertChampSimFile(const std::string &in_path,
                    const std::string &out_path,
                    const ConvertOptions &options)
{
    ConvertStats stats;
    const std::unique_ptr<ByteSource> source =
        openByteSource(in_path, &stats.container);
    const replay::LlcTrace trace =
        convertChampSim(*source, options, &stats);
    writeTraceWithManifest(out_path, trace, options.seed);
    return stats;
}

void
writeTraceWithManifest(const std::string &path,
                       const replay::LlcTrace &trace, std::uint64_t seed)
{
    HLLC_FAILPOINT("ingest.write");
    trace.save(path);
    check::TraceManifest manifest = check::computeManifest(path, trace);
    manifest.hasSeed = true;
    manifest.seed = seed;
    check::saveManifest(path, manifest);
}

std::vector<std::uint8_t>
synthesizeChampSimFixture(std::uint64_t records, std::uint64_t seed)
{
    // Four cores blending the archetypes a real capture shows: a hot
    // loop (reuse), a streaming scan (no reuse) and a scattered heap.
    // Pure function of (records, seed).
    Xoshiro256StarStar rng = childStream(seed, 0x1461, 0);
    std::array<std::uint64_t, replay::traceCores> loop_pos{};
    std::array<std::uint64_t, replay::traceCores> stream_pos{};
    std::vector<std::uint8_t> out;
    out.reserve(records * champSimRecordBytes);

    for (std::uint64_t i = 0; i < records; ++i) {
        const auto cpu =
            static_cast<std::uint8_t>(i % replay::traceCores);
        const std::uint64_t core_base =
            (static_cast<std::uint64_t>(cpu) + 1) << 32;

        std::uint64_t block;
        const std::uint64_t pattern = rng.nextBounded(10);
        if (pattern < 5) {
            // Hot loop over 48 blocks: the reuse the policies feed on.
            block = core_base + (loop_pos[cpu]++ % 48);
        } else if (pattern < 8) {
            block = core_base + 0x10000 + stream_pos[cpu]++;
        } else {
            block = core_base + 0x40000 + rng.nextBounded(1 << 16);
        }

        std::uint8_t type;
        const std::uint64_t t = rng.nextBounded(100);
        if (t < 55)
            type = static_cast<std::uint8_t>(ChampSimType::Load);
        else if (t < 70)
            type = static_cast<std::uint8_t>(ChampSimType::Rfo);
        else if (t < 80)
            type = static_cast<std::uint8_t>(ChampSimType::Prefetch);
        else
            type = static_cast<std::uint8_t>(ChampSimType::Writeback);

        storeLe64(0x400000 + mix64(i) % 0x10000, out);       // pc
        storeLe64(block << blockOffsetBits, out);            // address
        out.push_back(type);
        out.push_back(cpu);
        out.push_back(static_cast<std::uint8_t>(rng.nextBounded(2)));
        for (int pad = 0; pad < 5; ++pad)
            out.push_back(0);
    }
    return out;
}

} // namespace hllc::ingest
