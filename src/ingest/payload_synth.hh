/**
 * @file
 * Deterministic per-block payload/ECB synthesis for ingested traces.
 *
 * External trace formats carry addresses but no block contents, so the
 * compressed (ECB) size every .hlt event needs is synthesized the same
 * way the app models do it: a stable content class is drawn per block
 * from a ContentMix, a 64-byte payload with exactly that class is
 * produced by workload::synthesizeBlock, and the BDI compressor's
 * verdict on that payload becomes the event's ECB size. Everything is a
 * pure function of (seed, block number), so the same input trace and
 * seed always convert to byte-identical .hlt files.
 */

#ifndef HLLC_INGEST_PAYLOAD_SYNTH_HH
#define HLLC_INGEST_PAYLOAD_SYNTH_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"
#include "workload/block_synth.hh"

namespace hllc::ingest
{

/** Draws and caches one stable ECB size per block number. */
class PayloadSynth
{
  public:
    /**
     * @param mix content-class weights (HCR/LCR/incompressible)
     * @param seed conversion seed; independent streams per seed
     */
    PayloadSynth(const workload::ContentMix &mix, std::uint64_t seed);

    /** Target content class of @p block (stable per block). */
    compression::Ce targetCeOf(Addr block) const;

    /**
     * Synthesize @p block's payload and return its BDI ECB size in
     * bytes (always within the trace-legal 2..64 range). Cached.
     */
    std::uint8_t ecbOf(Addr block);

    /** Number of distinct blocks synthesized so far. */
    std::size_t distinctBlocks() const { return cache_.size(); }

  private:
    workload::ContentMix mix_;
    std::uint64_t salt_;
    std::unordered_map<Addr, std::uint8_t> cache_;
};

} // namespace hllc::ingest

#endif // HLLC_INGEST_PAYLOAD_SYNTH_HH
