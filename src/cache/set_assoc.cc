#include "cache/set_assoc.hh"

#include <bit>

#include "common/logging.hh"

namespace hllc::cache
{

SetAssocCache::SetAssocCache(std::string name, std::size_t size_bytes,
                             std::uint32_t num_ways)
    : numSets_(static_cast<std::uint32_t>(
          size_bytes / (static_cast<std::size_t>(num_ways) * blockBytes))),
      numWays_(num_ways),
      lines_(static_cast<std::size_t>(numSets_) * num_ways),
      lru_(numSets_ ? numSets_ : 1, num_ways),
      stats_(std::move(name))
{
    HLLC_ASSERT(numSets_ > 0, "cache smaller than one set");
    HLLC_ASSERT(std::has_single_bit(numSets_),
                "set count %u must be a power of two", numSets_);

    // Pre-register every counter this cache can bump: a counter that
    // stays zero must still exist for counterValue() lookups.
    for (const char *c : { "read_hits", "read_misses", "write_hits",
                           "write_misses", "evictions", "fills",
                           "invalidations" }) {
        stats_.counter(c);
    }
}

int
SetAssocCache::findWay(Addr block) const
{
    const std::uint32_t set = setOf(block);
    for (std::uint32_t w = 0; w < numWays_; ++w) {
        const Line &l = line(set, w);
        if (l.valid && l.blockNum == block)
            return static_cast<int>(w);
    }
    return -1;
}

bool
SetAssocCache::contains(Addr block) const
{
    return findWay(block) >= 0;
}

bool
SetAssocCache::access(Addr block, bool is_write)
{
    const std::uint32_t set = setOf(block);
    const int way = findWay(block);
    if (way < 0) {
        ++stats_.counter(is_write ? "write_misses" : "read_misses");
        return false;
    }
    Line &l = line(set, static_cast<std::uint32_t>(way));
    if (is_write)
        l.dirty = true;
    lru_.touch(set, static_cast<std::uint32_t>(way));
    ++stats_.counter(is_write ? "write_hits" : "read_hits");
    return true;
}

std::optional<Victim>
SetAssocCache::fill(Addr block, bool dirty, std::uint32_t meta)
{
    HLLC_ASSERT(findWay(block) < 0, "double fill of block %llu",
                static_cast<unsigned long long>(block));
    const std::uint32_t set = setOf(block);

    // Prefer an invalid way; otherwise evict the LRU line.
    int way = -1;
    for (std::uint32_t w = 0; w < numWays_; ++w) {
        if (!line(set, w).valid) {
            way = static_cast<int>(w);
            break;
        }
    }

    std::optional<Victim> victim;
    if (way < 0) {
        way = lru_.lruWay(set, 0, numWays_,
                          [](std::uint32_t) { return true; });
        HLLC_ASSERT(way >= 0);
        Line &v = line(set, static_cast<std::uint32_t>(way));
        victim = Victim{ v.blockNum, v.dirty, v.meta };
        ++stats_.counter("evictions");
    }

    Line &l = line(set, static_cast<std::uint32_t>(way));
    l.blockNum = block;
    l.valid = true;
    l.dirty = dirty;
    l.meta = meta;
    lru_.touch(set, static_cast<std::uint32_t>(way));
    ++stats_.counter("fills");
    return victim;
}

std::optional<bool>
SetAssocCache::invalidate(Addr block)
{
    const int way = findWay(block);
    if (way < 0)
        return std::nullopt;
    Line &l = line(setOf(block), static_cast<std::uint32_t>(way));
    const bool dirty = l.dirty;
    l.valid = false;
    l.dirty = false;
    ++stats_.counter("invalidations");
    return dirty;
}

std::optional<std::uint32_t>
SetAssocCache::meta(Addr block) const
{
    const int way = findWay(block);
    if (way < 0)
        return std::nullopt;
    return line(setOf(block), static_cast<std::uint32_t>(way)).meta;
}

void
SetAssocCache::setMeta(Addr block, std::uint32_t meta)
{
    const int way = findWay(block);
    HLLC_ASSERT(way >= 0, "setMeta on absent block");
    line(setOf(block), static_cast<std::uint32_t>(way)).meta = meta;
}

void
SetAssocCache::setDirty(Addr block)
{
    const int way = findWay(block);
    HLLC_ASSERT(way >= 0, "setDirty on absent block");
    line(setOf(block), static_cast<std::uint32_t>(way)).dirty = true;
}

} // namespace hllc::cache
