/**
 * @file
 * True-LRU recency tracking shared by the private caches and the LLC.
 *
 * Recency is kept as a monotonically increasing per-line timestamp; with
 * at most 16 ways a victim scan is cheaper and simpler than maintaining
 * linked stacks, and it makes constrained victim searches (Fit-LRU over
 * frames with enough effective capacity, paper Sec. III-B1) trivial.
 */

#ifndef HLLC_CACHE_LRU_HH
#define HLLC_CACHE_LRU_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace hllc::cache
{

class LruState
{
  public:
    LruState(std::uint32_t num_sets, std::uint32_t num_ways);

    /** Mark (set, way) most recently used. */
    void touch(std::uint32_t set, std::uint32_t way);

    /** Timestamp of (set, way); larger = more recent. 0 = never used. */
    std::uint64_t stamp(std::uint32_t set, std::uint32_t way) const;

    /**
     * Least recently used way of @p set among ways in [begin, end) that
     * satisfy @p eligible. Returns -1 when no way is eligible.
     */
    int lruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
               const std::function<bool(std::uint32_t)> &eligible) const;

    /**
     * Most recently used way of @p set among ways in [begin, end) that
     * satisfy @p eligible. Returns -1 when no way is eligible.
     */
    int mruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
               const std::function<bool(std::uint32_t)> &eligible) const;

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return numWays_; }

  private:
    std::uint32_t numSets_;
    std::uint32_t numWays_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

} // namespace hllc::cache

#endif // HLLC_CACHE_LRU_HH
