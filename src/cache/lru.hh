/**
 * @file
 * True-LRU recency tracking shared by the private caches and the LLC.
 *
 * Recency is kept as a monotonically increasing per-line timestamp; with
 * at most 16 ways a victim scan is cheaper and simpler than maintaining
 * linked stacks, and it makes constrained victim searches (Fit-LRU over
 * frames with enough effective capacity, paper Sec. III-B1) trivial.
 *
 * The victim scans are templates over the eligibility predicate so the
 * per-access replacement path never goes through a std::function (the
 * predicate inlines into the scan loop); lruWay()/mruWay() sit on the
 * replay hot path.
 */

#ifndef HLLC_CACHE_LRU_HH
#define HLLC_CACHE_LRU_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hllc::cache
{

class LruState
{
  public:
    LruState(std::uint32_t num_sets, std::uint32_t num_ways)
        : numSets_(num_sets), numWays_(num_ways),
          stamps_(static_cast<std::size_t>(num_sets) * num_ways, 0)
    {
        HLLC_ASSERT(num_sets > 0 && num_ways > 0);
    }

    /** Mark (set, way) most recently used. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        HLLC_ASSERT(set < numSets_ && way < numWays_);
        stamps_[static_cast<std::size_t>(set) * numWays_ + way] = ++clock_;
    }

    /** Timestamp of (set, way); larger = more recent. 0 = never used. */
    std::uint64_t
    stamp(std::uint32_t set, std::uint32_t way) const
    {
        HLLC_ASSERT(set < numSets_ && way < numWays_);
        return stamps_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    /**
     * Least recently used way of @p set among ways in [begin, end) that
     * satisfy @p eligible. Returns -1 when no way is eligible.
     */
    template <typename Pred>
    int
    lruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
           const Pred &eligible) const
    {
        HLLC_ASSERT(set < numSets_ && begin <= end && end <= numWays_);
        const std::uint64_t *row =
            stamps_.data() + static_cast<std::size_t>(set) * numWays_;
        int best = -1;
        std::uint64_t best_stamp = 0;
        for (std::uint32_t w = begin; w < end; ++w) {
            if (!eligible(w))
                continue;
            const std::uint64_t s = row[w];
            if (best == -1 || s < best_stamp) {
                best = static_cast<int>(w);
                best_stamp = s;
            }
        }
        return best;
    }

    /**
     * Most recently used way of @p set among ways in [begin, end) that
     * satisfy @p eligible. Returns -1 when no way is eligible.
     */
    template <typename Pred>
    int
    mruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
           const Pred &eligible) const
    {
        HLLC_ASSERT(set < numSets_ && begin <= end && end <= numWays_);
        const std::uint64_t *row =
            stamps_.data() + static_cast<std::size_t>(set) * numWays_;
        int best = -1;
        std::uint64_t best_stamp = 0;
        for (std::uint32_t w = begin; w < end; ++w) {
            if (!eligible(w))
                continue;
            const std::uint64_t s = row[w];
            if (best == -1 || s > best_stamp) {
                best = static_cast<int>(w);
                best_stamp = s;
            }
        }
        return best;
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return numWays_; }

  private:
    std::uint32_t numSets_;
    std::uint32_t numWays_;
    std::uint64_t clock_ = 0;
    std::vector<std::uint64_t> stamps_;
};

} // namespace hllc::cache

#endif // HLLC_CACHE_LRU_HH
