/**
 * @file
 * Generic set-associative cache used for the private L1/L2 levels.
 *
 * Functional model with true LRU replacement: lookups, fills, and
 * invalidations report what happened (including the evicted victim) so the
 * hierarchy layer can drive the non-inclusive LLC protocol. A per-line
 * 32-bit metadata word carries level-specific block state (e.g. the
 * LHybrid LB/NLB tag that travels with blocks, paper Sec. II-C).
 */

#ifndef HLLC_CACHE_SET_ASSOC_HH
#define HLLC_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cache/lru.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace hllc::cache
{

/** A victim produced by a fill. */
struct Victim
{
    Addr blockNum;        //!< block number of the evicted line
    bool dirty;           //!< needs writeback / Put-dirty
    std::uint32_t meta;   //!< level-specific metadata that travelled along
};

class SetAssocCache
{
  public:
    /**
     * @param name stat-group prefix
     * @param size_bytes total data capacity
     * @param num_ways associativity; sets = size / (ways * 64)
     */
    SetAssocCache(std::string name, std::size_t size_bytes,
                  std::uint32_t num_ways);

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return numWays_; }

    /** Whether @p block currently resides in the cache. */
    bool contains(Addr block) const;

    /**
     * Look up @p block; on hit updates recency and, when @p is_write,
     * marks the line dirty.
     * @return true on hit
     */
    bool access(Addr block, bool is_write);

    /**
     * Insert @p block (assumed absent), evicting the LRU line if the set
     * is full.
     * @return the victim, if one was evicted
     */
    std::optional<Victim> fill(Addr block, bool dirty, std::uint32_t meta);

    /** Remove @p block if present. @return its dirtiness, if present. */
    std::optional<bool> invalidate(Addr block);

    /** Metadata word of @p block; nullopt when absent. */
    std::optional<std::uint32_t> meta(Addr block) const;

    /** Set the metadata word of @p block (must be present). */
    void setMeta(Addr block, std::uint32_t meta);

    /** Mark @p block dirty (must be present). */
    void setDirty(Addr block);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Line
    {
        Addr blockNum = 0;
        bool valid = false;
        bool dirty = false;
        std::uint32_t meta = 0;
    };

    std::uint32_t setOf(Addr block) const
    {
        return static_cast<std::uint32_t>(block) & (numSets_ - 1);
    }

    Line &line(std::uint32_t set, std::uint32_t way)
    {
        return lines_[static_cast<std::size_t>(set) * numWays_ + way];
    }
    const Line &line(std::uint32_t set, std::uint32_t way) const
    {
        return lines_[static_cast<std::size_t>(set) * numWays_ + way];
    }

    /** Way holding @p block in its set, or -1. */
    int findWay(Addr block) const;

    std::uint32_t numSets_;
    std::uint32_t numWays_;
    std::vector<Line> lines_;
    LruState lru_;
    StatGroup stats_;
};

} // namespace hllc::cache

#endif // HLLC_CACHE_SET_ASSOC_HH
