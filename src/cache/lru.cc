#include "cache/lru.hh"

#include "common/logging.hh"

namespace hllc::cache
{

LruState::LruState(std::uint32_t num_sets, std::uint32_t num_ways)
    : numSets_(num_sets), numWays_(num_ways),
      stamps_(static_cast<std::size_t>(num_sets) * num_ways, 0)
{
    HLLC_ASSERT(num_sets > 0 && num_ways > 0);
}

void
LruState::touch(std::uint32_t set, std::uint32_t way)
{
    HLLC_ASSERT(set < numSets_ && way < numWays_);
    stamps_[static_cast<std::size_t>(set) * numWays_ + way] = ++clock_;
}

std::uint64_t
LruState::stamp(std::uint32_t set, std::uint32_t way) const
{
    HLLC_ASSERT(set < numSets_ && way < numWays_);
    return stamps_[static_cast<std::size_t>(set) * numWays_ + way];
}

int
LruState::lruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
                 const std::function<bool(std::uint32_t)> &eligible) const
{
    HLLC_ASSERT(set < numSets_ && begin <= end && end <= numWays_);
    int best = -1;
    std::uint64_t best_stamp = 0;
    for (std::uint32_t w = begin; w < end; ++w) {
        if (!eligible(w))
            continue;
        const std::uint64_t s =
            stamps_[static_cast<std::size_t>(set) * numWays_ + w];
        if (best == -1 || s < best_stamp) {
            best = static_cast<int>(w);
            best_stamp = s;
        }
    }
    return best;
}

int
LruState::mruWay(std::uint32_t set, std::uint32_t begin, std::uint32_t end,
                 const std::function<bool(std::uint32_t)> &eligible) const
{
    HLLC_ASSERT(set < numSets_ && begin <= end && end <= numWays_);
    int best = -1;
    std::uint64_t best_stamp = 0;
    for (std::uint32_t w = begin; w < end; ++w) {
        if (!eligible(w))
            continue;
        const std::uint64_t s =
            stamps_[static_cast<std::size_t>(set) * numWays_ + w];
        if (best == -1 || s > best_stamp) {
            best = static_cast<int>(w);
            best_stamp = s;
        }
    }
    return best;
}

} // namespace hllc::cache
