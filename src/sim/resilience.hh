/**
 * @file
 * Self-healing grid machinery: bounded retry with deterministic
 * backoff, cell watchdogs, and the machine-readable `hllc-failures-v1`
 * report.
 *
 * A multi-epoch forecast campaign must not lose hours of grid time to
 * one transient I/O error or one stuck cell. This layer turns cell
 * failures into outcomes instead of aborts:
 *
 *  - runWithRetry(): re-runs a failing cell body up to a bounded number
 *    of attempts, sleeping an exponentially growing, deterministically
 *    jittered delay in between (interruptible — SIGINT/SIGTERM drains a
 *    retrying grid promptly). A cell that keeps failing is quarantined;
 *    the grid completes with the surviving cells.
 *  - GridWatchdog: a monotonic-clock monitor thread that flags cells
 *    exceeding a deadline; the flag is a cooperative cancellation token
 *    checked by ForecastEngine's step loop (forecast::RunOptions::
 *    cancel), so a cancelled cell still writes a final checkpoint.
 *  - writeFailureReport(): every cell's outcome (attempts, error kind,
 *    fired failpoints) as a `hllc-failures-v1` JSON document, emitted
 *    alongside the stats so partial results degrade gracefully and stay
 *    diagnosable.
 *
 * Determinism: retry *outcomes* are deterministic under a deterministic
 * fault schedule (common/failpoint.hh) because every attempt re-runs a
 * pure function of the cell configuration (resuming from a checkpoint
 * is byte-identical to never having failed). Only the watchdog depends
 * on wall clock, and it feeds the failure report and the cancellation
 * flag — never the simulation results.
 */

#ifndef HLLC_SIM_RESILIENCE_HH
#define HLLC_SIM_RESILIENCE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hh"

namespace hllc::sim
{

/** Bounded-retry knobs of one grid (CLI: --retries, --retry-delay-ms). */
struct RetryPolicy
{
    /** Total attempts per cell (1 = no retry). */
    std::size_t maxAttempts = 1;
    /** Delay before the first retry; doubles per further retry. */
    std::uint64_t baseDelayMs = 100;
    /** Backoff ceiling. */
    std::uint64_t maxDelayMs = 5000;
    /** Seed of the deterministic jitter (mixed with cell index). */
    std::uint64_t jitterSeed = 0;
};

/**
 * Backoff before retry number @p retry (1-based) of cell @p cell_index:
 * min(base * 2^(retry-1), max), plus-or-minus up to 25% deterministic
 * jitter drawn from mix64(jitterSeed, cell_index, retry) — identical
 * schedule for any jobs value, but desynchronised across cells so
 * retries of a shared failing resource do not stampede in lockstep.
 */
std::uint64_t retryDelayMs(const RetryPolicy &policy, std::size_t retry,
                           std::size_t cell_index);

/** Terminal state of one self-healing grid cell. */
enum class CellStatus
{
    Ok,          //!< first attempt succeeded
    Recovered,   //!< a retry succeeded after earlier failures
    Quarantined, //!< every attempt failed; cell excluded from results
    TimedOut,    //!< watchdog cancelled the cell (not retried)
    Interrupted, //!< SIGINT/SIGTERM unwound the cell
};

/** The schema string of @p status ("ok", "recovered", ...). */
const char *cellStatusName(CellStatus status);

/** One cell's row in the hllc-failures-v1 report. */
struct CellReport
{
    std::size_t index = 0;
    std::string label;
    /** Attempts actually made (>= 1). */
    std::size_t attempts = 1;
    CellStatus status = CellStatus::Ok;
    /** Last error text (empty when the cell succeeded first try). */
    std::string error;
    /** "io" | "deadline" | "interrupt" | "std" | "non-std::exception". */
    std::string errorKind;
    /** Failpoint names extracted from every attempt's error text. */
    std::vector<std::string> failpoints;

    bool succeeded() const
    {
        return status == CellStatus::Ok ||
               status == CellStatus::Recovered;
    }
};

/** Self-healing knobs of a checkpointed forecast grid. */
struct ResilienceOptions
{
    RetryPolicy retry;
    /** Watchdog deadline per cell attempt in ms; 0 disables. */
    std::uint64_t cellTimeoutMs = 0;
    /** hllc-failures-v1 report path (.json); empty disables. */
    std::string failuresOut;
};

/**
 * Scan a bench/tool command line for --retries N, --retry-delay-ms MS,
 * --retry-jitter-seed S, --cell-timeout-ms MS and --failures-out FILE;
 * fatal() on malformed values. --retries counts *retries*, so N=2 means
 * up to three attempts per cell.
 */
ResilienceOptions parseResilienceArgs(int argc, char **argv);

/**
 * Result of runWithRetry(): the terminal status plus the diagnosis the
 * report needs. On success `error` holds the *last* failure (empty when
 * the first attempt succeeded).
 */
struct RetryResult
{
    CellStatus status = CellStatus::Ok;
    std::size_t attempts = 1;
    std::string error;
    std::string errorKind;
    std::vector<std::string> failpoints;
};

/**
 * Run @p body (called with the 0-based attempt number) under @p policy.
 * Failure taxonomy:
 *
 *  - InterruptedError unwinds immediately (status Interrupted): the
 *    user asked the grid to stop, retrying would fight them;
 *  - DeadlineExceededError quarantines immediately (status TimedOut):
 *    a cell that overran its watchdog once will do so again;
 *  - any other std::exception is retried after an interruptible
 *    backoff (IoError reported as kind "io", the rest as "std");
 *  - a non-std::exception throw is retried too, recorded with the
 *    explicit "non-std::exception" marker (satellite: the old
 *    catch (...) arm reported only "unknown error" with no identity).
 *
 * Failpoint names quoted in error messages ("... failpoint '<name>'")
 * are collected across attempts into RetryResult::failpoints.
 */
RetryResult runWithRetry(const RetryPolicy &policy,
                         std::size_t cell_index,
                         const std::function<void(std::size_t)> &body);

/** Failpoint names quoted in @p error ("... failpoint '<name>'"). */
std::vector<std::string> extractFailpointNames(const std::string &error);

/** The hllc-failures-v1 document for @p cells (all cells, not just bad). */
std::string failureReportToJson(const std::vector<CellReport> &cells);

/** Atomically write failureReportToJson() to @p path. */
void writeFailureReport(const std::string &path,
                        const std::vector<CellReport> &cells);

/**
 * Monotonic-clock watchdog over running grid cells. One monitor thread
 * wakes at a fraction of the deadline, compares each registered cell's
 * start against steady_clock::now(), and on overrun warns and sets the
 * cell's cancellation flag — which ForecastEngine::run polls at step
 * boundaries (cooperative: the cell checkpoints, then unwinds with
 * DeadlineExceededError). With timeout 0 the watchdog is inert and
 * starts no thread.
 */
class GridWatchdog
{
  public:
    explicit GridWatchdog(std::uint64_t timeout_ms);
    ~GridWatchdog();

    GridWatchdog(const GridWatchdog &) = delete;
    GridWatchdog &operator=(const GridWatchdog &) = delete;

    /**
     * RAII registration of one cell attempt: registers on construction,
     * deregisters on destruction. cancelFlag() stays valid for the
     * Scope's lifetime and is what forecast::RunOptions::cancel points
     * at.
     */
    class Scope
    {
      public:
        Scope(GridWatchdog &watchdog, std::size_t index,
              const std::string &label);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

        const std::atomic<bool> *cancelFlag() const
        {
            return cancel_.get();
        }

      private:
        GridWatchdog &watchdog_;
        std::shared_ptr<std::atomic<bool>> cancel_;
    };

  private:
    struct Entry
    {
        std::size_t index = 0;
        std::string label;
        std::chrono::steady_clock::time_point deadline;
        std::shared_ptr<std::atomic<bool>> cancel;
        bool flagged = false;
    };

    std::shared_ptr<std::atomic<bool>> watch(std::size_t index,
                                             const std::string &label);
    void unwatch(const std::atomic<bool> *token);
    void monitorLoop();

    const std::uint64_t timeoutMs_;
    Mutex mutex_;
    CondVar wake_;
    std::vector<Entry> entries_ HLLC_GUARDED_BY(mutex_);
    bool stopping_ HLLC_GUARDED_BY(mutex_) = false;
    std::thread monitor_;
};

} // namespace hllc::sim

#endif // HLLC_SIM_RESILIENCE_HH
