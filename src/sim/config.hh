/**
 * @file
 * System configuration presets (paper Table IV) with proportional
 * scaling.
 *
 * Experiments run at a configurable scale so the full bench suite
 * completes on a single laptop core: geometry (LLC sets, private cache
 * sizes), trace length and Set Dueling epoch all scale together, keeping
 * capacity ratios and pressure identical. scale = 16 reproduces the
 * paper's absolute geometry (2 MB LLC, 128 KB L2, 32 KB L1). The scale is
 * read from the HLLC_SCALE environment variable (default 1, snapped to a
 * power of two).
 */

#ifndef HLLC_SIM_CONFIG_HH
#define HLLC_SIM_CONFIG_HH

#include <cstdint>

#include "compression/compressor.hh"
#include "fault/endurance.hh"
#include "hierarchy/private_cache.hh"
#include "hierarchy/timing.hh"
#include "hybrid/hybrid_llc.hh"

namespace hllc::sim
{

struct SystemConfig
{
    double scale = 1.0;

    /** @name LLC geometry (Table IV: 16 ways = 4 SRAM + 12 NVM) */
    ///@{
    std::uint32_t llcSets = 128;
    std::uint32_t sramWays = 4;
    std::uint32_t nvmWays = 12;
    ///@}

    hierarchy::PrivateCacheConfig privateCaches{ 2 * 1024, 4,
                                                 8 * 1024, 16 };
    hierarchy::TimingParams timing;
    fault::EnduranceParams endurance{ 1e10, 0.2 };

    /** References per core used to capture each mix's trace. */
    std::uint64_t refsPerCore = 400'000;
    /** Set Dueling epoch length (scales with the trace). */
    Cycle epochCycles = 200'000;
    /** Master seed (workloads and endurance fabric). */
    std::uint64_t seed = 42;
    /**
     * Worker threads for trace capture and experiment grids: 0 = auto
     * (HLLC_JOBS environment variable, else hardware_concurrency); 1 =
     * serial. Results are identical for every value (see sim/grid.hh).
     */
    unsigned jobs = 0;
    /** Compression scheme (the paper uses modified BDI). */
    compression::Scheme scheme = compression::Scheme::Bdi;

    /**
     * Months-at-full-scale per simulated month: the scaled system is a
     * 1/N miniature with the same cores and write traffic, so its NVM
     * wears N times faster than the paper-scale (scale = 16) geometry.
     * Multiply forecast months by this to report full-scale lifetimes.
     */
    double fullScaleFactor() const { return 16.0 / scale; }

    /** Table IV preset at the scale given by HLLC_SCALE. */
    static SystemConfig tableIV();

    /** Table IV preset at an explicit scale. */
    static SystemConfig tableIV(double scale);

    /** LLC capacity in blocks (resolves workload working-set factors). */
    std::uint64_t llcBlocks() const
    {
        return static_cast<std::uint64_t>(llcSets) *
               (sramWays + nvmWays);
    }

    /** NVM-part geometry for the endurance/fault models. */
    fault::NvmGeometry
    nvmGeometry() const
    {
        return { llcSets, nvmWays, static_cast<std::uint32_t>(blockBytes) };
    }

    /** Build the LLC configuration for @p policy. */
    hybrid::HybridLlcConfig
    llcConfig(hybrid::PolicyKind policy,
              hybrid::PolicyParams params = {}) const;

    /**
     * All-SRAM LLC with @p ways ways: the paper's performance bounds
     * (16w upper bound; 4w lower bound, as if every NVM way had died).
     */
    hybrid::HybridLlcConfig llcConfigSramBound(std::uint32_t ways) const;
};

/** HLLC_SCALE from the environment (default 1.0), snapped to 2^k. */
double scaleFromEnv();

} // namespace hllc::sim

#endif // HLLC_SIM_CONFIG_HH
