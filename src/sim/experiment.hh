/**
 * @file
 * Shared experiment plumbing for the bench harnesses: one-time trace
 * capture of the Table V mixes, forecast wrappers, single-phase replay
 * studies (with optionally pre-degraded NVM capacity), and uniform
 * printing of configuration headers and result rows.
 */

#ifndef HLLC_SIM_EXPERIMENT_HH
#define HLLC_SIM_EXPERIMENT_HH

#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "forecast/forecast.hh"
#include "sim/config.hh"
#include "sim/resilience.hh"

namespace hllc::sim
{

/** Result of a policy forecast, ready for printing. */
struct ForecastSummary
{
    std::string label;
    std::vector<forecast::ForecastPoint> series;
    double lifetimeMonths = 0.0;  //!< months to 50% NVM capacity
    double initialIpc = 0.0;
    /** Per-step observability series (see ForecastEngine::metrics()). */
    metrics::MetricRegistry metrics;
    /** Engine counters (phase counts), in name order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/**
 * Crash-safety knobs of a checkpointed forecast grid (CLI surface:
 * --checkpoint-dir DIR, --checkpoint-every N, --resume; parsed by
 * sim::parseCheckpointArgs). With a directory set, every grid cell
 * checkpoints its forecast state to "DIR/cell<i>_<label>.ckpt" and a
 * SIGINT/SIGTERM is turned into a final checkpoint plus a clean
 * non-zero exit instead of lost work.
 */
struct CheckpointOptions
{
    std::string dir;          //!< empty disables checkpointing
    std::size_t every = 1;    //!< forecast steps between checkpoints
    bool resume = false;      //!< restore cells from existing checkpoints

    bool enabled() const { return !dir.empty(); }
};

/** A grid cell whose forecast threw: recorded, not fatal to the grid. */
struct CellFailure
{
    std::size_t index = 0;
    std::string label;
    std::string error;
};

/** Everything a checkpointed forecast grid produced. */
struct ForecastGridOutcome
{
    /** Successful cells, in entry order (failed cells are absent). */
    std::vector<ForecastSummary> summaries;
    std::vector<CellFailure> failures;
    /**
     * Per-cell resilience reports in entry order (every cell, including
     * clean ones): attempts, outcome, error kind, fired failpoints —
     * the rows of the hllc-failures-v1 report.
     */
    std::vector<CellReport> reports;
    /** True when a SIGINT/SIGTERM stopped the grid mid-run. */
    bool interrupted = false;

    bool ok() const { return failures.empty() && !interrupted; }
    /** 0 on success, 1 on cell failures, 128+signal when interrupted. */
    int exitCode() const;
};

/** Result of a single (no-aging) replay phase. */
struct PhaseSummary
{
    std::string label;
    forecast::PhaseAggregate aggregate;
    /** Per-epoch max-hits CPth winners (Set Dueling policies only). */
    std::vector<unsigned> winnerHistory;
    /**
     * Observability export: the winner history as the series
     * "cpth_winner_history" (one sample per dueling epoch).
     */
    metrics::MetricRegistry metrics;
    /** The replayed LLC's counters, in name order. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
};

class Experiment
{
  public:
    /**
     * Capture the LLC traces of the first @p num_mixes Table V mixes at
     * @p config's scale (logged, as capture dominates start-up time).
     * Mixes capture in parallel on config.jobs workers; every mix draws
     * its workload stream from childSeed(config.seed, mix index), so the
     * traces are bit-identical regardless of the jobs value.
     */
    explicit Experiment(SystemConfig config, std::size_t num_mixes = 10);

    /**
     * Adopt pre-captured traces instead of capturing (trace-cache
     * workflows, e.g. tools/hllc_torture reloading .hlt files across
     * process respawns). The traces must have been captured under the
     * same @p config for results to be comparable.
     */
    Experiment(SystemConfig config,
               std::vector<replay::LlcTrace> traces);

    const SystemConfig &config() const { return config_; }
    const std::vector<replay::LlcTrace> &traces() const { return traces_; }
    std::vector<const replay::LlcTrace *> tracePtrs() const;
    /** Traces restricted to one mix (per-mix studies, Fig. 8b). */
    std::vector<const replay::LlcTrace *> tracePtr(std::size_t mix) const;

    /** Deterministic endurance fabric for @p llc geometry. */
    fault::EnduranceModel
    makeEndurance(const hybrid::HybridLlcConfig &llc) const;

    /**
     * Forecast @p llc until 50% NVM capacity. @p run_options carries the
     * crash-safety knobs (checkpoint path/cadence/resume); the default
     * runs unchecked. Throws InterruptedError (after writing a final
     * checkpoint) when a termination signal arrives at a step boundary
     * of a checkpointed run.
     */
    ForecastSummary
    runForecast(const hybrid::HybridLlcConfig &llc, std::string label,
                forecast::ForecastConfig fc = {},
                const forecast::RunOptions &run_options = {}) const;

    /**
     * One replay phase at a fixed NVM capacity (no aging): the Fig. 6/7/9
     * hit-rate and bytes-written studies.
     *
     * @param capacity target NVM effective capacity in (0, 1]; bytes are
     *        disabled uniformly at random to reach it (what intra-frame
     *        wear leveling converges to)
     * @param traces defaults to all mixes when empty
     */
    PhaseSummary
    runPhase(const hybrid::HybridLlcConfig &llc, std::string label,
             double capacity = 1.0,
             std::vector<const replay::LlcTrace *> traces = {}) const;

    /**
     * Mean IPC of the 16-way SRAM upper bound (normalisation basis).
     * Computed once on first use; safe to call from parallel grid cells.
     */
    double upperBoundIpc() const;

  private:
    SystemConfig config_;
    std::vector<replay::LlcTrace> traces_;
    mutable std::once_flag upperBoundOnce_;
    mutable double upperBoundIpc_ = -1.0;
};

/**
 * Disable uniformly-random live bytes of @p map until its effective
 * capacity is at most @p capacity. Deterministic in @p seed.
 */
void degradeUniform(fault::FaultMap &map, double capacity,
                    std::uint64_t seed);

/** Print the Table IV configuration banner for a bench binary. */
void printConfigHeader(const SystemConfig &config,
                       const std::string &experiment);

/** A labelled LLC configuration entering a forecast study. */
struct StudyEntry
{
    std::string label;
    hybrid::HybridLlcConfig llc;
};

/**
 * Run the Fig. 1 / Fig. 10-11 methodology: forecast every entry until
 * 50% NVM capacity, print each IPC/capacity time series (normalised to
 * the 16-way SRAM upper bound) and a summary table with lifetimes in
 * simulated and full-scale months plus the x-factor over the first
 * entry (conventionally BH).
 *
 * With @p checkpoint enabled, interrupt handlers are installed and every
 * cell checkpoints at its cadence; an interrupt suppresses the result
 * tables (the partial grid would not be the study) and the process
 * should exit with the returned code. Cells that throw are reported to
 * stderr per cell while the remaining cells complete.
 *
 * With @p stats_out set, the full study (per-cell scalar summary,
 * engine counters, and every per-step series including the wear
 * histogram) is additionally written to that .json/.csv file in the
 * "hllc-stats-v1" schema. Exported values are pure functions of the
 * simulated state, so a resumed run writes a byte-identical file to an
 * uninterrupted one. Nothing is exported on interrupt.
 *
 * With @p resilience configured (CLI: sim::parseResilienceArgs), failing
 * cells retry with deterministic backoff and quarantine after their
 * attempt budget, slow cells are cancelled by a watchdog, and the
 * per-cell hllc-failures-v1 report lands at resilience.failuresOut —
 * see sim/resilience.hh.
 *
 * @return the process exit code: 0 clean, 1 if any cell failed,
 *         128+signal when interrupted (see ForecastGridOutcome).
 */
int runAndPrintForecastStudy(const Experiment &experiment,
                             const std::vector<StudyEntry> &entries,
                             const forecast::ForecastConfig &fc = {},
                             const CheckpointOptions &checkpoint = {},
                             const std::string &stats_out = {},
                             const ResilienceOptions &resilience = {});

/**
 * Write a "hllc-stats-v1" stats file for a replay-phase study (the
 * Fig. 6-9 benches): per-cell hit rate, mean IPC, NVM write traffic
 * and the CPth winner-history series. No-op when @p stats_out is empty.
 */
void exportPhaseStudy(const std::string &stats_out,
                      const std::string &experiment_name,
                      const std::vector<PhaseSummary> &summaries);

/**
 * Format a number with fixed decimals. Locale-independent
 * (std::to_chars): a de_DE setlocale() cannot turn the decimal point
 * into a comma in bench output.
 */
std::string fmt(double value, int decimals = 3);

} // namespace hllc::sim

#endif // HLLC_SIM_EXPERIMENT_HH
