/**
 * @file
 * Full-system assembly: four cores with private stacks, the shared
 * hybrid LLC, its fault/endurance models, and the timing layer — the
 * gem5-analogue "detailed" simulation used by the examples and the
 * library's quickstart API.
 */

#ifndef HLLC_SIM_SYSTEM_HH
#define HLLC_SIM_SYSTEM_HH

#include <memory>

#include "fault/endurance.hh"
#include "fault/fault_map.hh"
#include "hierarchy/hierarchy.hh"
#include "hierarchy/trace_recorder.hh"
#include "hybrid/hybrid_llc.hh"
#include "sim/config.hh"
#include "workload/mixes.hh"

namespace hllc::sim
{

class System
{
  public:
    /**
     * @param config scaled Table IV preset
     * @param mix workload (one application per core)
     * @param policy LLC insertion policy under test
     */
    System(const SystemConfig &config, const workload::MixSpec &mix,
           hybrid::PolicyKind policy, hybrid::PolicyParams params = {});

    /** Run @p refs_per_core references per core against the live LLC. */
    void run(std::uint64_t refs_per_core);

    /** Arithmetic mean of the four cores' IPC over the run. */
    double meanIpc() const;

    /** Per-core activity (event counts) of the last run. */
    hierarchy::CoreActivity coreActivity(std::size_t core) const;

    hybrid::HybridLlc &llc() { return *llc_; }
    const hybrid::HybridLlc &llc() const { return *llc_; }
    fault::FaultMap &faultMap() { return *faultMap_; }
    const fault::EnduranceModel &endurance() const { return *endurance_; }
    hierarchy::MixSimulation &mixSim() { return *mixSim_; }
    const SystemConfig &config() const { return config_; }

  private:
    SystemConfig config_;
    std::unique_ptr<fault::EnduranceModel> endurance_;
    std::unique_ptr<fault::FaultMap> faultMap_;
    std::unique_ptr<hybrid::HybridLlc> llc_;
    std::unique_ptr<hierarchy::HybridLlcSink> sink_;
    std::unique_ptr<hierarchy::MixSimulation> mixSim_;
};

} // namespace hllc::sim

#endif // HLLC_SIM_SYSTEM_HH
