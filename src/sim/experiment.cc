#include "sim/experiment.hh"

#include <cstdio>

#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/numfmt.hh"
#include "common/thread_pool.hh"
#include "hierarchy/hierarchy.hh"
#include "sim/grid.hh"
#include "workload/mixes.hh"

namespace hllc::sim
{

using forecast::ForecastEngine;
using hybrid::PolicyKind;
using replay::LlcTrace;

Experiment::Experiment(SystemConfig config, std::size_t num_mixes)
    : config_(config)
{
    const auto &mixes = workload::tableVMixes();
    HLLC_ASSERT(num_mixes >= 1 && num_mixes <= mixes.size());

    const unsigned jobs = resolveJobs(config_.jobs);
    inform("capturing %zu mixes (%llu refs/core, %u jobs)...",
           num_mixes,
           static_cast<unsigned long long>(config_.refsPerCore), jobs);

    // Every mix captures into its own pre-sized slot with a child seed
    // keyed on (master seed, mix index): the traces are bit-identical
    // for any jobs value. MixSimulation instances share no mutable
    // state (workload tables are immutable after first use).
    traces_.resize(num_mixes);
    parallelFor(jobs, num_mixes, [&](std::size_t i) {
        traces_[i] = hierarchy::captureTrace(
            mixes[i], config_.llcBlocks(), config_.privateCaches,
            config_.refsPerCore, childSeed(config_.seed, i),
            config_.scheme);
    });
}

Experiment::Experiment(SystemConfig config,
                       std::vector<replay::LlcTrace> traces)
    : config_(config), traces_(std::move(traces))
{
    HLLC_ASSERT(!traces_.empty());
}

std::vector<const LlcTrace *>
Experiment::tracePtrs() const
{
    std::vector<const LlcTrace *> ptrs;
    ptrs.reserve(traces_.size());
    for (const auto &t : traces_)
        ptrs.push_back(&t);
    return ptrs;
}

std::vector<const LlcTrace *>
Experiment::tracePtr(std::size_t mix) const
{
    return { &traces_.at(mix) };
}

fault::EnduranceModel
Experiment::makeEndurance(const hybrid::HybridLlcConfig &llc) const
{
    // Same seed for the same geometry: every policy is forecast over an
    // identical endurance fabric (the paper's fair-comparison setup).
    Xoshiro256StarStar rng(config_.seed ^ 0xe17da1ceULL);
    const fault::NvmGeometry geom{
        llc.numSets, llc.nvmWays,
        static_cast<std::uint32_t>(blockBytes)
    };
    return fault::EnduranceModel(geom, config_.endurance, rng);
}

ForecastSummary
Experiment::runForecast(const hybrid::HybridLlcConfig &llc,
                        std::string label,
                        forecast::ForecastConfig fc,
                        const forecast::RunOptions &run_options) const
{
    const fault::EnduranceModel endurance = makeEndurance(llc);
    ForecastEngine engine(endurance, llc, tracePtrs(), config_.timing,
                          fc);

    ForecastSummary summary;
    summary.label = std::move(label);
    summary.series = engine.run(run_options);
    summary.lifetimeMonths =
        ForecastEngine::lifetimeMonths(summary.series, fc.capacityFloor);
    summary.initialIpc = ForecastEngine::initialIpc(summary.series);
    summary.metrics = engine.metrics();
    for (const auto &[name, c] : engine.stats().counters())
        summary.counters.emplace_back(name, c.value());
    return summary;
}

PhaseSummary
Experiment::runPhase(const hybrid::HybridLlcConfig &llc, std::string label,
                     double capacity,
                     std::vector<const LlcTrace *> traces) const
{
    HLLC_ASSERT(capacity > 0.0 && capacity <= 1.0);
    if (traces.empty())
        traces = tracePtrs();

    std::unique_ptr<fault::EnduranceModel> endurance;
    std::unique_ptr<fault::FaultMap> map;
    if (llc.nvmWays > 0) {
        endurance =
            std::make_unique<fault::EnduranceModel>(makeEndurance(llc));
        const auto policy =
            hybrid::InsertionPolicy::create(llc.policy, llc.params);
        map = std::make_unique<fault::FaultMap>(*endurance,
                                                policy->granularity());
        if (capacity < 1.0)
            degradeUniform(*map, capacity, config_.seed ^ 0xdeadULL);
    }

    hybrid::HybridLlc cache(llc, map.get());
    PhaseSummary summary;
    summary.label = std::move(label);
    summary.aggregate =
        forecast::replayAllTraces(traces, cache, config_.timing, 0.2);
    if (cache.dueling() != nullptr) {
        summary.winnerHistory = cache.dueling()->winnerHistory();
        metrics::TimeSeries &winners =
            summary.metrics.series("cpth_winner_history");
        for (unsigned w : summary.winnerHistory)
            winners.append(static_cast<double>(w));
    }
    for (const auto &[name, c] : cache.stats().counters())
        summary.counters.emplace_back(name, c.value());
    return summary;
}

double
Experiment::upperBoundIpc() const
{
    std::call_once(upperBoundOnce_, [this] {
        const auto llc = config_.llcConfigSramBound(config_.sramWays +
                                                    config_.nvmWays);
        hybrid::HybridLlc cache(llc, nullptr);
        upperBoundIpc_ = forecast::replayAllTraces(
            tracePtrs(), cache, config_.timing, 0.2).meanIpc;
    });
    return upperBoundIpc_;
}

void
degradeUniform(fault::FaultMap &map, double capacity, std::uint64_t seed)
{
    Xoshiro256StarStar rng(seed);
    const auto &geom = map.geometry();
    const auto frames = geom.numFrames();
    while (map.effectiveCapacity() > capacity) {
        const auto frame =
            static_cast<std::uint32_t>(rng.nextBounded(frames));
        const auto byte =
            static_cast<unsigned>(rng.nextBounded(geom.frameBytes));
        map.killByte(frame, byte);
    }
}

void
printConfigHeader(const SystemConfig &config, const std::string &experiment)
{
    std::printf("# %s\n", experiment.c_str());
    std::printf("# Table IV system: 4 cores @3.5GHz | "
                "L1 %zuKB/%uw | L2 %zuKB/%uw | "
                "LLC %u sets x (%uw SRAM + %uw NVM) x 64B | "
                "endurance mu=%.2g cv=%.2f | scale=%.3g\n",
                config.privateCaches.l1Bytes / 1024,
                config.privateCaches.l1Ways,
                config.privateCaches.l2Bytes / 1024,
                config.privateCaches.l2Ways,
                config.llcSets, config.sramWays, config.nvmWays,
                config.endurance.meanWrites, config.endurance.cv,
                config.scale);
    std::printf("# latencies: LLC SRAM %llu | LLC NVM %llu (+decomp) | "
                "NVM write %llu | mem %llu cycles\n",
                static_cast<unsigned long long>(
                    config.timing.llcSramLoadUse),
                static_cast<unsigned long long>(
                    config.timing.llcNvmLoadUse),
                static_cast<unsigned long long>(
                    config.timing.nvmWriteLatency),
                static_cast<unsigned long long>(config.timing.memLatency));
}

std::string
fmt(double value, int decimals)
{
    // std::to_chars, not snprintf: %f honours the process locale, and a
    // de_DE decimal comma would corrupt machine-read bench output.
    return formatFixed(value, decimals);
}

int
ForecastGridOutcome::exitCode() const
{
    if (interrupted) {
        const int code = interruptExitCode();
        return code != 0 ? code : 130;
    }
    return failures.empty() ? 0 : 1;
}

namespace
{

/** Build the stats-file cells of a forecast study (metrics borrowed). */
std::vector<metrics::CellExport>
forecastExportCells(const std::vector<ForecastSummary> &summaries,
                    const SystemConfig &config, double upper)
{
    std::vector<metrics::CellExport> cells;
    cells.reserve(summaries.size());
    for (const ForecastSummary &summary : summaries) {
        metrics::CellExport cell;
        cell.label = summary.label;
        cell.metrics = &summary.metrics;
        cell.counters = summary.counters;
        cell.scalars = {
            { "lifetime_months", summary.lifetimeMonths },
            { "lifetime_months_full_scale",
              summary.lifetimeMonths * config.fullScaleFactor() },
            { "initial_ipc", summary.initialIpc },
            { "initial_ipc_normalized",
              upper > 0 ? summary.initialIpc / upper : 0.0 },
        };
        cells.push_back(std::move(cell));
    }
    return cells;
}

/** Print the phase-timing report to stderr when HLLC_TIMERS is on. */
void
reportPhaseTimers()
{
    const std::string report = metrics::PhaseTimers::report();
    if (!report.empty())
        std::fputs(report.c_str(), stderr);
}

} // anonymous namespace

void
exportPhaseStudy(const std::string &stats_out,
                 const std::string &experiment_name,
                 const std::vector<PhaseSummary> &summaries)
{
    if (stats_out.empty())
        return;
    std::vector<metrics::CellExport> cells;
    cells.reserve(summaries.size());
    for (const PhaseSummary &summary : summaries) {
        metrics::CellExport cell;
        cell.label = summary.label;
        cell.metrics = &summary.metrics;
        cell.counters = summary.counters;
        const forecast::PhaseAggregate &agg = summary.aggregate;
        cell.scalars = {
            { "mean_ipc", agg.meanIpc },
            { "hit_rate", agg.hitRate },
            { "demand_accesses",
              static_cast<double>(agg.demandAccesses) },
            { "demand_hits", static_cast<double>(agg.demandHits) },
            { "nvm_bytes_written",
              static_cast<double>(agg.nvmBytesWritten) },
            { "measured_seconds", agg.measuredSeconds },
        };
        cells.push_back(std::move(cell));
    }
    metrics::writeStatsFile(stats_out, cells, experiment_name);
    inform("wrote stats to '%s'", stats_out.c_str());
}

int
runAndPrintForecastStudy(const Experiment &experiment,
                         const std::vector<StudyEntry> &entries,
                         const forecast::ForecastConfig &fc,
                         const CheckpointOptions &checkpoint,
                         const std::string &stats_out,
                         const ResilienceOptions &resilience)
{
    const SystemConfig &config = experiment.config();
    const double upper = experiment.upperBoundIpc();
    hybrid::HybridLlc lower_bound_llc(
        config.llcConfigSramBound(config.sramWays), nullptr);
    const double lower = forecast::replayAllTraces(
        experiment.tracePtrs(), lower_bound_llc, config.timing,
        0.2).meanIpc;

    std::printf("# 16w-SRAM upper bound IPC %.4f (norm 1.000); "
                "%uw-SRAM lower bound IPC %.4f (norm %.3f)\n",
                upper, config.sramWays, lower,
                upper > 0 ? lower / upper : 0.0);
    std::printf("# months are simulated at scale %.3g; full-scale "
                "equivalent = months x %.3g\n",
                config.scale, config.fullScaleFactor());

    if (checkpoint.enabled()) {
        installInterruptHandlers();
        inform("checkpointing to '%s' every %zu step(s)%s",
               checkpoint.dir.c_str(), checkpoint.every,
               checkpoint.resume ? ", resuming" : "");
    }
    inform("forecasting %zu policies (%u jobs)...", entries.size(),
           resolveJobs(config.jobs));
    // The per-step metric series feed the stats export and travel in
    // checkpoints (a resumed run must export byte-identically); a study
    // doing neither prints only the summary tables, so skip sampling.
    forecast::ForecastConfig run_fc = fc;
    run_fc.collectSeries = checkpoint.enabled() || !stats_out.empty();
    if (resilience.retry.maxAttempts > 1 || resilience.cellTimeoutMs > 0)
        installInterruptHandlers(); // retry sleeps must stay drainable
    const ForecastGridOutcome outcome = runForecastGridCheckpointed(
        experiment, entries, run_fc, checkpoint, resilience);

    if (outcome.interrupted) {
        // A partial grid is not the study: skip the result tables, keep
        // the checkpoints, and tell the user how to pick the run up.
        std::fprintf(stderr,
                     "interrupted by signal %d; checkpoints are under "
                     "'%s' -- rerun with --resume to continue\n",
                     interruptSignal(), checkpoint.dir.c_str());
        return outcome.exitCode();
    }
    const std::vector<ForecastSummary> &summaries = outcome.summaries;

    std::printf("\n# time series (one row per forecast point)\n");
    std::printf("%-12s %10s %10s %10s %10s\n", "policy", "months",
                "fs.months", "capacity", "norm.IPC");
    for (const auto &summary : summaries) {
        for (const auto &point : summary.series) {
            std::printf("%-12s %10.3f %10.2f %10.4f %10.4f\n",
                        summary.label.c_str(), point.months(),
                        point.months() * config.fullScaleFactor(),
                        point.capacity,
                        upper > 0 ? point.meanIpc / upper : 0.0);
        }
    }

    const double bh_lifetime =
        summaries.empty() ? 0.0 : summaries.front().lifetimeMonths;
    std::printf("\n# summary (lifetime = months to 50%% NVM capacity)\n");
    std::printf("%-12s %10s %10s %10s %10s %10s\n", "policy",
                "init.IPC", "norm.IPC", "months", "fs.months",
                "x-factor");
    for (const auto &summary : summaries) {
        std::printf("%-12s %10.4f %10.4f %10.3f %10.2f %10.2f\n",
                    summary.label.c_str(), summary.initialIpc,
                    upper > 0 ? summary.initialIpc / upper : 0.0,
                    summary.lifetimeMonths,
                    summary.lifetimeMonths * config.fullScaleFactor(),
                    bh_lifetime > 0
                        ? summary.lifetimeMonths / bh_lifetime
                        : 0.0);
    }

    if (!stats_out.empty()) {
        metrics::writeStatsFile(
            stats_out, forecastExportCells(summaries, config, upper),
            "forecast-study");
        inform("wrote stats to '%s'", stats_out.c_str());
    }
    reportPhaseTimers();

    for (const CellReport &report : outcome.reports) {
        if (report.status == CellStatus::Recovered) {
            std::fprintf(stderr,
                         "warning: cell %zu (%s) recovered after %zu "
                         "attempts\n",
                         report.index, report.label.c_str(),
                         report.attempts);
        }
    }
    for (const CellFailure &failure : outcome.failures) {
        std::fprintf(stderr, "error: cell %zu (%s) failed: %s\n",
                     failure.index, failure.label.c_str(),
                     failure.error.c_str());
    }
    if (!resilience.failuresOut.empty()) {
        inform("wrote failure report to '%s'",
               resilience.failuresOut.c_str());
    }
    return outcome.exitCode();
}

} // namespace hllc::sim
