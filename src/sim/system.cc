#include "sim/system.hh"

#include "common/logging.hh"

namespace hllc::sim
{

System::System(const SystemConfig &config, const workload::MixSpec &mix,
               hybrid::PolicyKind policy, hybrid::PolicyParams params)
    : config_(config)
{
    const hybrid::HybridLlcConfig llc_config =
        config.llcConfig(policy, params);

    if (llc_config.nvmWays > 0) {
        Xoshiro256StarStar rng(config.seed ^ 0xe17da1ceULL);
        endurance_ = std::make_unique<fault::EnduranceModel>(
            config.nvmGeometry(), config.endurance, rng);
        const auto granularity =
            hybrid::InsertionPolicy::create(policy, params)->granularity();
        faultMap_ = std::make_unique<fault::FaultMap>(*endurance_,
                                                      granularity);
    }

    llc_ = std::make_unique<hybrid::HybridLlc>(llc_config,
                                               faultMap_.get());
    sink_ = std::make_unique<hierarchy::HybridLlcSink>(llc_.get());
    mixSim_ = std::make_unique<hierarchy::MixSimulation>(
        mix, config.llcBlocks(), config.privateCaches, config.seed);
}

void
System::run(std::uint64_t refs_per_core)
{
    mixSim_->run(refs_per_core, *sink_);
}

hierarchy::CoreActivity
System::coreActivity(std::size_t core) const
{
    hierarchy::CoreActivity a = mixSim_->activityOf(core);
    // NVM write stalls are charged evenly: the LLC does not track the
    // writing core in detailed mode.
    a.nvmWrites = llc_->stats().counterValue("nvm_writes") /
                  mixSim_->numCores();
    return a;
}

double
System::meanIpc() const
{
    double sum = 0.0;
    for (std::size_t c = 0; c < mixSim_->numCores(); ++c)
        sum += hierarchy::coreIpc(coreActivity(c), config_.timing);
    return sum / static_cast<double>(mixSim_->numCores());
}

} // namespace hllc::sim
