/**
 * @file
 * Parallel experiment grids.
 *
 * The paper's evaluation is an embarrassingly parallel policy×mix grid:
 * every bench driver forecasts or replays a handful of independent LLC
 * configurations over the captured mixes. runGrid() runs such a grid on
 * a fixed-size thread pool while keeping the results — and therefore
 * every stats dump — byte-identical to the serial run:
 *
 *  - cells are dispatched in index order and collected into a pre-sized
 *    vector, so output ordering never depends on completion order;
 *  - any cell randomness is derived with childStream(seed, mix, policy)
 *    (see common/rng.hh), never from thread id or submission order;
 *  - jobs == 1 runs the cells inline (the serial reference path).
 *
 * The jobs knob resolves, in order: explicit argument > --jobs N on the
 * command line > HLLC_JOBS environment variable > hardware_concurrency.
 */

#ifndef HLLC_SIM_GRID_HH
#define HLLC_SIM_GRID_HH

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/experiment.hh"

namespace hllc::sim
{

/** Resolve a jobs knob: 0 means "auto" (HLLC_JOBS, else hardware). */
unsigned resolveJobs(unsigned jobs);

/**
 * Scan a bench/tool command line for `--jobs N` (or `-j N`); returns 0
 * (auto) when absent, fatal() on a malformed value.
 */
unsigned parseJobsArg(int argc, char **argv);

/**
 * Scan a bench command line for the crash-safety flags --checkpoint-dir
 * DIR, --checkpoint-every N and --resume; fatal() on malformed values
 * or --resume without a checkpoint directory.
 */
CheckpointOptions parseCheckpointArgs(int argc, char **argv);

/**
 * Scan a bench/tool command line for `--stats-out FILE`; returns ""
 * when absent. The file must end in .json or .csv (fatal() otherwise,
 * so a typo fails before hours of simulation rather than after).
 */
std::string parseStatsOutArg(int argc, char **argv);

/**
 * Checkpoint file of grid cell @p index labelled @p label under the
 * options' directory ("DIR/cell<i>_<label>.ckpt", label sanitised to
 * filename-safe characters).
 */
std::string checkpointCellPath(const CheckpointOptions &checkpoint,
                               std::size_t index,
                               const std::string &label);

/**
 * Evaluate @p cell(0) .. @p cell(cells - 1) on @p jobs workers and
 * return the results in cell-index order. The cell callable must not
 * depend on shared mutable state; randomness must be keyed on the cell
 * index (childStream), so the returned vector is identical for any
 * jobs value.
 */
template <typename Fn>
auto
runGrid(std::size_t cells, Fn &&cell, unsigned jobs = 0)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
{
    using Result = std::invoke_result_t<Fn &, std::size_t>;
    std::vector<Result> results(cells);
    parallelFor(resolveJobs(jobs), cells,
                [&](std::size_t i) { results[i] = cell(i); });
    return results;
}

/** Sentinel mix index: replay all captured mixes in a phase cell. */
inline constexpr std::size_t allMixes = static_cast<std::size_t>(-1);

/** One cell of a policy×mix (or policy×capacity) replay-phase grid. */
struct PhaseCell
{
    std::string label;
    hybrid::HybridLlcConfig llc;
    double capacity = 1.0;        //!< NVM effective capacity in (0, 1]
    std::size_t mix = allMixes;   //!< one mix index, or all mixes
};

/**
 * Forecast every entry of @p entries (each over all captured mixes) in
 * parallel; results are in entry order, identical to calling
 * Experiment::runForecast serially.
 */
std::vector<ForecastSummary>
runForecastGrid(const Experiment &experiment,
                const std::vector<StudyEntry> &entries,
                const forecast::ForecastConfig &fc = {},
                unsigned jobs = 0);

/**
 * Forecast grid with crash containment: every cell checkpoints under
 * @p checkpoint (when enabled), a throwing cell becomes a CellFailure
 * while the other cells complete, and a pending SIGINT/SIGTERM (see
 * common/interrupt.hh) marks the outcome interrupted after each running
 * cell has written its final checkpoint. Successful summaries keep
 * entry order, so the output stays byte-identical for any jobs value.
 *
 * @p resilience adds self-healing on top (see sim/resilience.hh):
 * failing cells retry up to their attempt budget (resuming from their
 * checkpoint when checkpointing is on, which is byte-identical to never
 * having failed), a watchdog cancels cells overrunning cellTimeoutMs,
 * and every cell's outcome is recorded in ForecastGridOutcome::reports
 * (written to resilience.failuresOut as hllc-failures-v1 when set).
 */
ForecastGridOutcome
runForecastGridCheckpointed(const Experiment &experiment,
                            const std::vector<StudyEntry> &entries,
                            const forecast::ForecastConfig &fc = {},
                            const CheckpointOptions &checkpoint = {},
                            const ResilienceOptions &resilience = {},
                            unsigned jobs = 0);

/**
 * Replay every phase cell of @p cells in parallel; results are in cell
 * order, identical to calling Experiment::runPhase serially.
 */
std::vector<PhaseSummary>
runPhaseGrid(const Experiment &experiment,
             const std::vector<PhaseCell> &cells,
             unsigned jobs = 0);

} // namespace hllc::sim

#endif // HLLC_SIM_GRID_HH
