#include "sim/resilience.hh"

#include <algorithm>
#include <cstring>

#include "common/argparse.hh"
#include "common/error.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "common/serialize.hh"

namespace hllc::sim
{

namespace
{

/** JSON string escaping (control chars, quote, backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xF];
                out += hex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Merge @p names into @p into, preserving first-seen order. */
void
mergeNames(std::vector<std::string> &into,
           const std::vector<std::string> &names)
{
    for (const std::string &name : names) {
        if (std::find(into.begin(), into.end(), name) == into.end())
            into.push_back(name);
    }
}

} // anonymous namespace

std::uint64_t
retryDelayMs(const RetryPolicy &policy, std::size_t retry,
             std::size_t cell_index)
{
    if (retry == 0)
        return 0;
    // min(base * 2^(retry-1), max) with shift clamped so a huge retry
    // count cannot overflow into a zero delay.
    const unsigned shift =
        static_cast<unsigned>(std::min<std::size_t>(retry - 1, 32));
    std::uint64_t delay = policy.baseDelayMs << shift;
    if (policy.baseDelayMs != 0 && (delay >> shift) != policy.baseDelayMs)
        delay = policy.maxDelayMs;
    delay = std::min(delay, policy.maxDelayMs);
    // +-25% deterministic jitter: a pure function of (seed, cell,
    // retry), so the schedule replays exactly while cells retrying the
    // same broken resource stay desynchronised.
    const std::uint64_t draw = mix64(
        policy.jitterSeed ^ mix64(cell_index * 2654435761ULL + retry));
    const std::uint64_t quarter = delay / 4;
    if (quarter > 0)
        delay = delay - quarter + draw % (2 * quarter + 1);
    return delay;
}

const char *
cellStatusName(CellStatus status)
{
    switch (status) {
    case CellStatus::Ok:
        return "ok";
    case CellStatus::Recovered:
        return "recovered";
    case CellStatus::Quarantined:
        return "quarantined";
    case CellStatus::TimedOut:
        return "timed-out";
    case CellStatus::Interrupted:
        return "interrupted";
    }
    return "unknown";
}

ResilienceOptions
parseResilienceArgs(int argc, char **argv)
{
    ResilienceOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--retries") == 0) {
            if (i + 1 >= argc)
                fatal("--retries requires a count");
            const auto parsed = parseU64(argv[i + 1], 0);
            if (!parsed || *parsed > 100)
                fatal("bad --retries value '%s'", argv[i + 1]);
            options.retry.maxAttempts =
                static_cast<std::size_t>(*parsed) + 1;
            ++i;
        } else if (std::strcmp(argv[i], "--retry-delay-ms") == 0) {
            if (i + 1 >= argc)
                fatal("--retry-delay-ms requires a value");
            const auto parsed = parseU64(argv[i + 1], 0);
            if (!parsed)
                fatal("bad --retry-delay-ms value '%s'", argv[i + 1]);
            options.retry.baseDelayMs = *parsed;
            ++i;
        } else if (std::strcmp(argv[i], "--retry-jitter-seed") == 0) {
            if (i + 1 >= argc)
                fatal("--retry-jitter-seed requires a value");
            const auto parsed = parseU64(argv[i + 1], 0);
            if (!parsed)
                fatal("bad --retry-jitter-seed value '%s'", argv[i + 1]);
            options.retry.jitterSeed = *parsed;
            ++i;
        } else if (std::strcmp(argv[i], "--cell-timeout-ms") == 0) {
            if (i + 1 >= argc)
                fatal("--cell-timeout-ms requires a value");
            const auto parsed = parseU64(argv[i + 1], 1);
            if (!parsed)
                fatal("bad --cell-timeout-ms value '%s'", argv[i + 1]);
            options.cellTimeoutMs = *parsed;
            ++i;
        } else if (std::strcmp(argv[i], "--failures-out") == 0) {
            if (i + 1 >= argc)
                fatal("--failures-out requires a file path");
            const std::string path = argv[i + 1];
            if (path.size() < 5 ||
                path.compare(path.size() - 5, 5, ".json") != 0)
                fatal("--failures-out path '%s' must end in .json",
                      path.c_str());
            options.failuresOut = path;
            ++i;
        }
    }
    return options;
}

std::vector<std::string>
extractFailpointNames(const std::string &error)
{
    // Error messages quote the failpoint as: ... failpoint '<name>'
    static const char marker[] = "failpoint '";
    std::vector<std::string> names;
    std::size_t pos = 0;
    while ((pos = error.find(marker, pos)) != std::string::npos) {
        pos += sizeof(marker) - 1;
        const std::size_t end = error.find('\'', pos);
        if (end == std::string::npos)
            break;
        mergeNames(names, { error.substr(pos, end - pos) });
        pos = end + 1;
    }
    return names;
}

RetryResult
runWithRetry(const RetryPolicy &policy, std::size_t cell_index,
             const std::function<void(std::size_t)> &body)
{
    const std::size_t max_attempts =
        std::max<std::size_t>(policy.maxAttempts, 1);
    RetryResult result;
    for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
        result.attempts = attempt + 1;
        try {
            body(attempt);
            result.status = attempt == 0 ? CellStatus::Ok
                                         : CellStatus::Recovered;
            return result;
        } catch (const InterruptedError &) {
            result.status = CellStatus::Interrupted;
            result.error = "interrupted";
            result.errorKind = "interrupt";
            return result;
        } catch (const DeadlineExceededError &e) {
            result.status = CellStatus::TimedOut;
            result.error = e.what();
            result.errorKind = "deadline";
            mergeNames(result.failpoints,
                       extractFailpointNames(result.error));
            return result;
        } catch (const IoError &e) {
            result.error = e.what();
            result.errorKind = "io";
        } catch (const std::exception &e) {
            result.error = e.what();
            result.errorKind = "std";
        } catch (...) {
            // The old catch (...) arm recorded only "unknown error";
            // keep the marker explicit and the cell identity attached.
            result.error = "non-std::exception thrown by cell " +
                           formatU64(cell_index);
            result.errorKind = "non-std::exception";
        }
        mergeNames(result.failpoints,
                   extractFailpointNames(result.error));
        if (attempt + 1 >= max_attempts)
            break;
        const std::uint64_t delay =
            retryDelayMs(policy, attempt + 1, cell_index);
        warn("cell %zu attempt %zu/%zu failed (%s); retrying in %llu ms",
             cell_index, attempt + 1, max_attempts, result.error.c_str(),
             static_cast<unsigned long long>(delay));
        if (interruptibleSleepMs(delay)) {
            result.status = CellStatus::Interrupted;
            result.errorKind = "interrupt";
            return result;
        }
    }
    result.status = CellStatus::Quarantined;
    return result;
}

std::string
failureReportToJson(const std::vector<CellReport> &cells)
{
    std::size_t counts[5] = { 0, 0, 0, 0, 0 };
    for (const CellReport &cell : cells)
        ++counts[static_cast<std::size_t>(cell.status)];

    std::string out;
    out += "{\n  \"schema\": \"hllc-failures-v1\",\n";
    out += "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellReport &cell = cells[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"index\": " + formatU64(cell.index);
        out += ", \"label\": \"" + jsonEscape(cell.label) + "\"";
        out += ", \"attempts\": " + formatU64(cell.attempts);
        out += ", \"outcome\": \"";
        out += cellStatusName(cell.status);
        out += "\", \"error\": \"" + jsonEscape(cell.error) + "\"";
        out += ", \"error_kind\": \"" + jsonEscape(cell.errorKind) + "\"";
        out += ", \"failpoints\": [";
        for (std::size_t f = 0; f < cell.failpoints.size(); ++f) {
            if (f > 0)
                out += ", ";
            out += "\"" + jsonEscape(cell.failpoints[f]) + "\"";
        }
        out += "]}";
    }
    out += cells.empty() ? "],\n" : "\n  ],\n";
    out += "  \"total\": " + formatU64(cells.size()) + ",\n";
    out += "  \"ok\": " +
           formatU64(counts[static_cast<std::size_t>(CellStatus::Ok)]) +
           ",\n";
    out += "  \"recovered\": " +
           formatU64(
               counts[static_cast<std::size_t>(CellStatus::Recovered)]) +
           ",\n";
    out += "  \"quarantined\": " +
           formatU64(
               counts[static_cast<std::size_t>(CellStatus::Quarantined)]) +
           ",\n";
    out += "  \"timed_out\": " +
           formatU64(
               counts[static_cast<std::size_t>(CellStatus::TimedOut)]) +
           ",\n";
    out += "  \"interrupted\": " +
           formatU64(
               counts[static_cast<std::size_t>(CellStatus::Interrupted)]) +
           "\n}\n";
    return out;
}

void
writeFailureReport(const std::string &path,
                   const std::vector<CellReport> &cells)
{
    const std::string body = failureReportToJson(cells);
    serial::writeFileAtomic(path, body.data(), body.size());
}

// ---------------------------------------------------------------------
// GridWatchdog
// ---------------------------------------------------------------------

GridWatchdog::GridWatchdog(std::uint64_t timeout_ms)
    : timeoutMs_(timeout_ms)
{
    if (timeoutMs_ > 0)
        monitor_ = std::thread([this] { monitorLoop(); });
}

GridWatchdog::~GridWatchdog()
{
    if (!monitor_.joinable())
        return;
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_.notifyAll();
    monitor_.join();
}

std::shared_ptr<std::atomic<bool>>
GridWatchdog::watch(std::size_t index, const std::string &label)
{
    auto cancel = std::make_shared<std::atomic<bool>>(false);
    if (timeoutMs_ == 0)
        return cancel; // inert: flag exists but nothing ever sets it
    Entry entry;
    entry.index = index;
    entry.label = label;
    entry.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(timeoutMs_);
    entry.cancel = cancel;
    {
        MutexLock lock(mutex_);
        entries_.push_back(std::move(entry));
    }
    wake_.notifyAll();
    return cancel;
}

void
GridWatchdog::unwatch(const std::atomic<bool> *token)
{
    if (timeoutMs_ == 0)
        return;
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].cancel.get() == token) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
GridWatchdog::monitorLoop()
{
    // Wake at a quarter of the deadline (>= 10 ms, <= 250 ms): overruns
    // are detected within ~25% of the timeout without busy-polling.
    const std::uint64_t cadence =
        std::max<std::uint64_t>(10,
                                std::min<std::uint64_t>(timeoutMs_ / 4,
                                                        250));
    MutexLock lock(mutex_);
    while (!stopping_) {
        wake_.waitFor(mutex_, cadence);
        if (stopping_)
            return;
        const auto now = std::chrono::steady_clock::now();
        for (Entry &entry : entries_) {
            if (entry.flagged || now < entry.deadline)
                continue;
            entry.flagged = true;
            entry.cancel->store(true, std::memory_order_relaxed);
            warn("watchdog: cell %zu (%s) exceeded %llu ms; cancelling",
                 entry.index, entry.label.c_str(),
                 static_cast<unsigned long long>(timeoutMs_));
        }
    }
}

GridWatchdog::Scope::Scope(GridWatchdog &watchdog, std::size_t index,
                           const std::string &label)
    : watchdog_(watchdog), cancel_(watchdog.watch(index, label))
{
}

GridWatchdog::Scope::~Scope()
{
    watchdog_.unwatch(cancel_.get());
}

} // namespace hllc::sim
