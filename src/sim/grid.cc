#include "sim/grid.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/stat.h>

#include "common/argparse.hh"
#include "common/failpoint.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"

namespace hllc::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? defaultJobs() : jobs;
}

unsigned
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0 &&
            std::strcmp(argv[i], "-j") != 0) {
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", argv[i]);
        const auto parsed = parseUnsigned(argv[i + 1], 1);
        if (!parsed)
            fatal("bad jobs value '%s'", argv[i + 1]);
        return *parsed;
    }
    return 0;
}

CheckpointOptions
parseCheckpointArgs(int argc, char **argv)
{
    CheckpointOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-dir requires a directory");
            options.dir = argv[++i];
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-every requires a step count");
            const auto parsed = parseU64(argv[i + 1], 1);
            if (!parsed)
                fatal("bad --checkpoint-every value '%s'", argv[i + 1]);
            options.every = static_cast<std::size_t>(*parsed);
            ++i;
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            options.resume = true;
        }
    }
    if (options.resume && !options.enabled())
        fatal("--resume requires --checkpoint-dir");
    return options;
}

std::string
parseStatsOutArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-out") != 0)
            continue;
        if (i + 1 >= argc)
            fatal("--stats-out requires a file path");
        const std::string path = argv[i + 1];
        const bool json = path.size() >= 5 &&
            path.compare(path.size() - 5, 5, ".json") == 0;
        const bool csv = path.size() >= 4 &&
            path.compare(path.size() - 4, 4, ".csv") == 0;
        if (!json && !csv)
            fatal("--stats-out path '%s' must end in .json or .csv",
                  path.c_str());
        return path;
    }
    return "";
}

std::string
checkpointCellPath(const CheckpointOptions &checkpoint, std::size_t index,
                   const std::string &label)
{
    std::string safe = label;
    for (char &c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        if (!ok)
            c = '_';
    }
    return checkpoint.dir + "/cell" + formatU64(index) + "_" + safe +
           ".ckpt";
}

std::vector<ForecastSummary>
runForecastGrid(const Experiment &experiment,
                const std::vector<StudyEntry> &entries,
                const forecast::ForecastConfig &fc,
                unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        entries.size(),
        [&](std::size_t i) {
            return experiment.runForecast(entries[i].llc,
                                          entries[i].label, fc);
        },
        jobs);
}

namespace
{

/** Per-cell result of the checkpointed grid (collected off-thread). */
struct CellOutcome
{
    ForecastSummary summary;
    CellReport report;
};

/**
 * Per-cell progress heartbeat on stderr (inform): long grids otherwise
 * run silent for hours. Wall-clock only ever reaches the log, never the
 * results, so stdout stays byte-identical for any jobs value.
 */
class CellHeartbeat
{
  public:
    CellHeartbeat(const char *kind, std::size_t index, std::size_t total,
                  const std::string &label)
        : enabled_(logEnabled(LogLevel::Inform))
    {
        // Everything below only feeds inform(); when that is suppressed,
        // skip the label copy and the clock read too (per-cell heartbeats
        // run inside tight grid loops).
        if (!enabled_)
            return;
        kind_ = kind;
        index_ = index;
        total_ = total;
        label_ = label;
        start_ = std::chrono::steady_clock::now();
        inform("%s cell %zu/%zu (%s) started", kind_, index_ + 1, total_,
               label_.c_str());
    }

    void done(const char *status)
    {
        if (!enabled_)
            return;
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_).count();
        inform("%s cell %zu/%zu (%s) %s after %.1fs", kind_, index_ + 1,
               total_, label_.c_str(), status, seconds);
    }

  private:
    bool enabled_;
    const char *kind_ = nullptr;
    std::size_t index_ = 0;
    std::size_t total_ = 0;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
};

} // anonymous namespace

ForecastGridOutcome
runForecastGridCheckpointed(const Experiment &experiment,
                            const std::vector<StudyEntry> &entries,
                            const forecast::ForecastConfig &fc,
                            const CheckpointOptions &checkpoint,
                            const ResilienceOptions &resilience,
                            unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    if (checkpoint.enabled()) {
        if (::mkdir(checkpoint.dir.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cannot create checkpoint directory '%s': %s",
                  checkpoint.dir.c_str(), std::strerror(errno));
    }

    GridWatchdog watchdog(resilience.cellTimeoutMs);

    std::vector<CellOutcome> cells = runGrid(
        entries.size(),
        [&](std::size_t i) {
            CellOutcome out;
            CellHeartbeat heartbeat("forecast", i, entries.size(),
                                    entries[i].label);
            const RetryResult rr = runWithRetry(
                resilience.retry, i, [&](std::size_t attempt) {
                    // Chaos sites inside the retry boundary: an injected
                    // throw exercises per-cell quarantine/recovery, an
                    // injected stall overruns the watchdog deadline.
                    HLLC_FAILPOINT("grid.cell.throw");
                    if (failpoint::shouldFail("grid.cell.stall")) {
                        const std::uint64_t stall =
                            resilience.cellTimeoutMs > 0
                                ? std::min<std::uint64_t>(
                                      resilience.cellTimeoutMs * 2, 5000)
                                : 100;
                        interruptibleSleepMs(stall);
                    }
                    forecast::RunOptions run_options;
                    if (checkpoint.enabled()) {
                        run_options.checkpointPath = checkpointCellPath(
                            checkpoint, i, entries[i].label);
                        run_options.checkpointEvery = checkpoint.every;
                        // A retry resumes from whatever the failed
                        // attempt managed to checkpoint (falling back to
                        // scratch when nothing valid landed) — both are
                        // byte-identical to never having failed.
                        run_options.resume =
                            checkpoint.resume || attempt > 0;
                    }
                    GridWatchdog::Scope scope(watchdog, i,
                                              entries[i].label);
                    run_options.cancel = scope.cancelFlag();
                    out.summary = experiment.runForecast(
                        entries[i].llc, entries[i].label, fc,
                        run_options);
                });
            out.report.index = i;
            out.report.label = entries[i].label;
            out.report.attempts = rr.attempts;
            out.report.status = rr.status;
            out.report.error = rr.error;
            out.report.errorKind = rr.errorKind;
            out.report.failpoints = rr.failpoints;
            heartbeat.done(cellStatusName(rr.status));
            return out;
        },
        jobs);

    ForecastGridOutcome outcome;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        outcome.reports.push_back(cells[i].report);
        switch (cells[i].report.status) {
        case CellStatus::Ok:
        case CellStatus::Recovered:
            outcome.summaries.push_back(std::move(cells[i].summary));
            break;
        case CellStatus::Interrupted:
            outcome.interrupted = true;
            break;
        case CellStatus::Quarantined:
        case CellStatus::TimedOut:
            // reports[i] already holds its own copy of the error text.
            outcome.failures.push_back(
                { i, entries[i].label,
                  std::move(cells[i].report.error) });
            break;
        }
    }
    if (!resilience.failuresOut.empty()) {
        // The report is diagnostics riding alongside the results: its
        // write retries under the same policy as the cells (write-site
        // chaos must not unwind a completed grid), and a persistent
        // failure degrades to a warning instead of discarding the run.
        const RetryResult written = runWithRetry(
            resilience.retry, entries.size(), [&](std::size_t) {
                writeFailureReport(resilience.failuresOut,
                                   outcome.reports);
            });
        if (!(written.status == CellStatus::Ok ||
              written.status == CellStatus::Recovered)) {
            warn("cannot write failure report '%s': %s",
                 resilience.failuresOut.c_str(), written.error.c_str());
        }
    }
    return outcome;
}

std::vector<PhaseSummary>
runPhaseGrid(const Experiment &experiment,
             const std::vector<PhaseCell> &cells,
             unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        cells.size(),
        [&](std::size_t i) {
            const PhaseCell &cell = cells[i];
            CellHeartbeat heartbeat("phase", i, cells.size(), cell.label);
            PhaseSummary summary = experiment.runPhase(
                cell.llc, cell.label, cell.capacity,
                cell.mix == allMixes ? std::vector<const replay::LlcTrace *>{}
                                     : experiment.tracePtr(cell.mix));
            heartbeat.done("finished");
            return summary;
        },
        jobs);
}

} // namespace hllc::sim
