#include "sim/grid.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/stat.h>

#include "common/argparse.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"

namespace hllc::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? defaultJobs() : jobs;
}

unsigned
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0 &&
            std::strcmp(argv[i], "-j") != 0) {
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", argv[i]);
        const auto parsed = parseUnsigned(argv[i + 1], 1);
        if (!parsed)
            fatal("bad jobs value '%s'", argv[i + 1]);
        return *parsed;
    }
    return 0;
}

CheckpointOptions
parseCheckpointArgs(int argc, char **argv)
{
    CheckpointOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-dir requires a directory");
            options.dir = argv[++i];
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-every requires a step count");
            const auto parsed = parseU64(argv[i + 1], 1);
            if (!parsed)
                fatal("bad --checkpoint-every value '%s'", argv[i + 1]);
            options.every = static_cast<std::size_t>(*parsed);
            ++i;
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            options.resume = true;
        }
    }
    if (options.resume && !options.enabled())
        fatal("--resume requires --checkpoint-dir");
    return options;
}

std::string
parseStatsOutArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-out") != 0)
            continue;
        if (i + 1 >= argc)
            fatal("--stats-out requires a file path");
        const std::string path = argv[i + 1];
        const bool json = path.size() >= 5 &&
            path.compare(path.size() - 5, 5, ".json") == 0;
        const bool csv = path.size() >= 4 &&
            path.compare(path.size() - 4, 4, ".csv") == 0;
        if (!json && !csv)
            fatal("--stats-out path '%s' must end in .json or .csv",
                  path.c_str());
        return path;
    }
    return "";
}

std::string
checkpointCellPath(const CheckpointOptions &checkpoint, std::size_t index,
                   const std::string &label)
{
    std::string safe = label;
    for (char &c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        if (!ok)
            c = '_';
    }
    return checkpoint.dir + "/cell" + formatU64(index) + "_" + safe +
           ".ckpt";
}

std::vector<ForecastSummary>
runForecastGrid(const Experiment &experiment,
                const std::vector<StudyEntry> &entries,
                const forecast::ForecastConfig &fc,
                unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        entries.size(),
        [&](std::size_t i) {
            return experiment.runForecast(entries[i].llc,
                                          entries[i].label, fc);
        },
        jobs);
}

namespace
{

/** Per-cell result of the checkpointed grid (collected off-thread). */
struct CellOutcome
{
    ForecastSummary summary;
    std::string error;
    bool failed = false;
    bool interrupted = false;
};

/**
 * Per-cell progress heartbeat on stderr (inform): long grids otherwise
 * run silent for hours. Wall-clock only ever reaches the log, never the
 * results, so stdout stays byte-identical for any jobs value.
 */
class CellHeartbeat
{
  public:
    CellHeartbeat(const char *kind, std::size_t index, std::size_t total,
                  const std::string &label)
        : enabled_(logEnabled(LogLevel::Inform))
    {
        // Everything below only feeds inform(); when that is suppressed,
        // skip the label copy and the clock read too (per-cell heartbeats
        // run inside tight grid loops).
        if (!enabled_)
            return;
        kind_ = kind;
        index_ = index;
        total_ = total;
        label_ = label;
        start_ = std::chrono::steady_clock::now();
        inform("%s cell %zu/%zu (%s) started", kind_, index_ + 1, total_,
               label_.c_str());
    }

    void done(const char *status)
    {
        if (!enabled_)
            return;
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_).count();
        inform("%s cell %zu/%zu (%s) %s after %.1fs", kind_, index_ + 1,
               total_, label_.c_str(), status, seconds);
    }

  private:
    bool enabled_;
    const char *kind_ = nullptr;
    std::size_t index_ = 0;
    std::size_t total_ = 0;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
};

} // anonymous namespace

ForecastGridOutcome
runForecastGridCheckpointed(const Experiment &experiment,
                            const std::vector<StudyEntry> &entries,
                            const forecast::ForecastConfig &fc,
                            const CheckpointOptions &checkpoint,
                            unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    if (checkpoint.enabled()) {
        if (::mkdir(checkpoint.dir.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cannot create checkpoint directory '%s': %s",
                  checkpoint.dir.c_str(), std::strerror(errno));
    }

    std::vector<CellOutcome> cells = runGrid(
        entries.size(),
        [&](std::size_t i) {
            CellOutcome out;
            forecast::RunOptions run_options;
            if (checkpoint.enabled()) {
                run_options.checkpointPath =
                    checkpointCellPath(checkpoint, i, entries[i].label);
                run_options.checkpointEvery = checkpoint.every;
                run_options.resume = checkpoint.resume;
            }
            CellHeartbeat heartbeat("forecast", i, entries.size(),
                                    entries[i].label);
            try {
                out.summary = experiment.runForecast(
                    entries[i].llc, entries[i].label, fc, run_options);
                heartbeat.done("finished");
            } catch (const InterruptedError &) {
                out.interrupted = true;
                heartbeat.done("interrupted");
            } catch (const std::exception &e) {
                out.failed = true;
                out.error = e.what();
                heartbeat.done("failed");
            } catch (...) {
                out.failed = true;
                out.error = "unknown error";
                heartbeat.done("failed");
            }
            return out;
        },
        jobs);

    ForecastGridOutcome outcome;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].interrupted)
            outcome.interrupted = true;
        else if (cells[i].failed)
            outcome.failures.push_back(
                { i, entries[i].label, std::move(cells[i].error) });
        else
            outcome.summaries.push_back(std::move(cells[i].summary));
    }
    return outcome;
}

std::vector<PhaseSummary>
runPhaseGrid(const Experiment &experiment,
             const std::vector<PhaseCell> &cells,
             unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        cells.size(),
        [&](std::size_t i) {
            const PhaseCell &cell = cells[i];
            CellHeartbeat heartbeat("phase", i, cells.size(), cell.label);
            PhaseSummary summary = experiment.runPhase(
                cell.llc, cell.label, cell.capacity,
                cell.mix == allMixes ? std::vector<const replay::LlcTrace *>{}
                                     : experiment.tracePtr(cell.mix));
            heartbeat.done("finished");
            return summary;
        },
        jobs);
}

} // namespace hllc::sim
