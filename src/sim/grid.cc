#include "sim/grid.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hllc::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? defaultJobs() : jobs;
}

unsigned
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0 &&
            std::strcmp(argv[i], "-j") != 0) {
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", argv[i]);
        char *end = nullptr;
        const long parsed = std::strtol(argv[i + 1], &end, 10);
        if (end == argv[i + 1] || *end != '\0' || parsed < 1)
            fatal("bad jobs value '%s'", argv[i + 1]);
        return static_cast<unsigned>(parsed);
    }
    return 0;
}

std::vector<ForecastSummary>
runForecastGrid(const Experiment &experiment,
                const std::vector<StudyEntry> &entries,
                const forecast::ForecastConfig &fc,
                unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        entries.size(),
        [&](std::size_t i) {
            return experiment.runForecast(entries[i].llc,
                                          entries[i].label, fc);
        },
        jobs);
}

std::vector<PhaseSummary>
runPhaseGrid(const Experiment &experiment,
             const std::vector<PhaseCell> &cells,
             unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        cells.size(),
        [&](std::size_t i) {
            const PhaseCell &cell = cells[i];
            return experiment.runPhase(
                cell.llc, cell.label, cell.capacity,
                cell.mix == allMixes ? std::vector<const replay::LlcTrace *>{}
                                     : experiment.tracePtr(cell.mix));
        },
        jobs);
}

} // namespace hllc::sim
