#include "sim/grid.hh"

#include <cerrno>
#include <cstring>
#include <sys/stat.h>

#include "common/argparse.hh"
#include "common/interrupt.hh"
#include "common/logging.hh"

namespace hllc::sim
{

unsigned
resolveJobs(unsigned jobs)
{
    return jobs == 0 ? defaultJobs() : jobs;
}

unsigned
parseJobsArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") != 0 &&
            std::strcmp(argv[i], "-j") != 0) {
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", argv[i]);
        const auto parsed = parseUnsigned(argv[i + 1], 1);
        if (!parsed)
            fatal("bad jobs value '%s'", argv[i + 1]);
        return *parsed;
    }
    return 0;
}

CheckpointOptions
parseCheckpointArgs(int argc, char **argv)
{
    CheckpointOptions options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-dir requires a directory");
            options.dir = argv[++i];
        } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
            if (i + 1 >= argc)
                fatal("--checkpoint-every requires a step count");
            const auto parsed = parseU64(argv[i + 1], 1);
            if (!parsed)
                fatal("bad --checkpoint-every value '%s'", argv[i + 1]);
            options.every = static_cast<std::size_t>(*parsed);
            ++i;
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            options.resume = true;
        }
    }
    if (options.resume && !options.enabled())
        fatal("--resume requires --checkpoint-dir");
    return options;
}

std::string
checkpointCellPath(const CheckpointOptions &checkpoint, std::size_t index,
                   const std::string &label)
{
    std::string safe = label;
    for (char &c : safe) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                        c == '_';
        if (!ok)
            c = '_';
    }
    return checkpoint.dir + "/cell" + std::to_string(index) + "_" + safe +
           ".ckpt";
}

std::vector<ForecastSummary>
runForecastGrid(const Experiment &experiment,
                const std::vector<StudyEntry> &entries,
                const forecast::ForecastConfig &fc,
                unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        entries.size(),
        [&](std::size_t i) {
            return experiment.runForecast(entries[i].llc,
                                          entries[i].label, fc);
        },
        jobs);
}

namespace
{

/** Per-cell result of the checkpointed grid (collected off-thread). */
struct CellOutcome
{
    ForecastSummary summary;
    std::string error;
    bool failed = false;
    bool interrupted = false;
};

} // anonymous namespace

ForecastGridOutcome
runForecastGridCheckpointed(const Experiment &experiment,
                            const std::vector<StudyEntry> &entries,
                            const forecast::ForecastConfig &fc,
                            const CheckpointOptions &checkpoint,
                            unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    if (checkpoint.enabled()) {
        if (::mkdir(checkpoint.dir.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cannot create checkpoint directory '%s': %s",
                  checkpoint.dir.c_str(), std::strerror(errno));
    }

    std::vector<CellOutcome> cells = runGrid(
        entries.size(),
        [&](std::size_t i) {
            CellOutcome out;
            forecast::RunOptions run_options;
            if (checkpoint.enabled()) {
                run_options.checkpointPath =
                    checkpointCellPath(checkpoint, i, entries[i].label);
                run_options.checkpointEvery = checkpoint.every;
                run_options.resume = checkpoint.resume;
            }
            try {
                out.summary = experiment.runForecast(
                    entries[i].llc, entries[i].label, fc, run_options);
            } catch (const InterruptedError &) {
                out.interrupted = true;
            } catch (const std::exception &e) {
                out.failed = true;
                out.error = e.what();
            } catch (...) {
                out.failed = true;
                out.error = "unknown error";
            }
            return out;
        },
        jobs);

    ForecastGridOutcome outcome;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].interrupted)
            outcome.interrupted = true;
        else if (cells[i].failed)
            outcome.failures.push_back(
                { i, entries[i].label, std::move(cells[i].error) });
        else
            outcome.summaries.push_back(std::move(cells[i].summary));
    }
    return outcome;
}

std::vector<PhaseSummary>
runPhaseGrid(const Experiment &experiment,
             const std::vector<PhaseCell> &cells,
             unsigned jobs)
{
    if (jobs == 0)
        jobs = experiment.config().jobs;
    return runGrid(
        cells.size(),
        [&](std::size_t i) {
            const PhaseCell &cell = cells[i];
            return experiment.runPhase(
                cell.llc, cell.label, cell.capacity,
                cell.mix == allMixes ? std::vector<const replay::LlcTrace *>{}
                                     : experiment.tracePtr(cell.mix));
        },
        jobs);
}

} // namespace hllc::sim
