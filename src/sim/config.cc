#include "sim/config.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/numfmt.hh"

namespace hllc::sim
{

double
scaleFromEnv()
{
    const char *env = std::getenv("HLLC_SCALE");
    if (env == nullptr || env[0] == '\0')
        return 1.0;
    double raw = 0.0;
    if (!parseDoubleExact(env, raw) || raw <= 0.0) {
        warn("ignoring invalid HLLC_SCALE '%s'", env);
        return 1.0;
    }
    // Snap to a power of two so set counts stay powers of two.
    const double snapped = std::exp2(std::round(std::log2(raw)));
    if (snapped != raw)
        inform("HLLC_SCALE %.3f snapped to %.3f", raw, snapped);
    return snapped;
}

SystemConfig
SystemConfig::tableIV()
{
    return tableIV(scaleFromEnv());
}

SystemConfig
SystemConfig::tableIV(double scale)
{
    HLLC_ASSERT(scale >= 0.25 && scale <= 64.0,
                "HLLC_SCALE %.3f out of the supported [0.25, 64] range",
                scale);

    SystemConfig cfg;
    cfg.scale = scale;
    cfg.llcSets = static_cast<std::uint32_t>(128 * scale);
    cfg.privateCaches.l1Bytes =
        static_cast<std::size_t>(2 * 1024 * scale);
    cfg.privateCaches.l2Bytes =
        static_cast<std::size_t>(8 * 1024 * scale);
    cfg.refsPerCore = static_cast<std::uint64_t>(400'000 * scale);
    cfg.epochCycles = static_cast<Cycle>(200'000 * scale);
    return cfg;
}

hybrid::HybridLlcConfig
SystemConfig::llcConfig(hybrid::PolicyKind policy,
                        hybrid::PolicyParams params) const
{
    hybrid::HybridLlcConfig cfg;
    cfg.numSets = llcSets;
    cfg.policy = policy;
    cfg.params = params;
    cfg.epochCycles = epochCycles;
    cfg.cyclesPerEvent = 20;

    if (policy == hybrid::PolicyKind::SramOnly) {
        // SRAM bounds keep the total associativity, all in SRAM.
        cfg.sramWays = sramWays + nvmWays;
        cfg.nvmWays = 0;
    } else {
        cfg.sramWays = sramWays;
        cfg.nvmWays = nvmWays;
    }
    return cfg;
}

hybrid::HybridLlcConfig
SystemConfig::llcConfigSramBound(std::uint32_t ways) const
{
    hybrid::HybridLlcConfig cfg = llcConfig(hybrid::PolicyKind::SramOnly);
    cfg.sramWays = ways;
    cfg.nvmWays = 0;
    return cfg;
}

} // namespace hllc::sim
