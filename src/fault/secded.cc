#include "fault/secded.hh"

#include "common/logging.hh"

namespace hllc::fault
{

namespace
{

bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

unsigned
checkBitsFor(unsigned data_bits)
{
    // Smallest r with 2^r >= data_bits + r + 1.
    unsigned r = 0;
    while ((1u << r) < data_bits + r + 1)
        ++r;
    return r;
}

} // anonymous namespace

SecdedCodec::SecdedCodec(unsigned data_bits)
    : dataBits_(data_bits), checkBits_(checkBitsFor(data_bits))
{
    HLLC_ASSERT(data_bits > 0);
}

std::vector<std::uint8_t>
SecdedCodec::encode(const std::vector<std::uint8_t> &data) const
{
    HLLC_ASSERT(data.size() == dataBits_,
                "expected %u data bits, got %zu", dataBits_, data.size());

    const unsigned hamming_bits = dataBits_ + checkBits_;
    // Index 0 holds the overall parity; 1..hamming_bits is the classic
    // Hamming layout with check bits at power-of-two positions.
    std::vector<std::uint8_t> cw(hamming_bits + 1, 0);

    unsigned next_data = 0;
    for (unsigned pos = 1; pos <= hamming_bits; ++pos) {
        if (!isPowerOfTwo(pos))
            cw[pos] = data[next_data++] & 1;
    }
    HLLC_ASSERT(next_data == dataBits_);

    for (unsigned c = 0; c < checkBits_; ++c) {
        const unsigned p = 1u << c;
        std::uint8_t parity = 0;
        for (unsigned pos = 1; pos <= hamming_bits; ++pos) {
            if ((pos & p) && pos != p)
                parity ^= cw[pos];
        }
        cw[p] = parity;
    }

    std::uint8_t overall = 0;
    for (unsigned pos = 1; pos <= hamming_bits; ++pos)
        overall ^= cw[pos];
    cw[0] = overall;

    return cw;
}

SecdedDecode
SecdedCodec::decode(std::vector<std::uint8_t> codeword) const
{
    const unsigned hamming_bits = dataBits_ + checkBits_;
    HLLC_ASSERT(codeword.size() == hamming_bits + 1,
                "expected %u codeword bits, got %zu",
                hamming_bits + 1, codeword.size());

    unsigned syndrome = 0;
    for (unsigned c = 0; c < checkBits_; ++c) {
        const unsigned p = 1u << c;
        std::uint8_t parity = 0;
        for (unsigned pos = 1; pos <= hamming_bits; ++pos) {
            if (pos & p)
                parity ^= codeword[pos];
        }
        if (parity)
            syndrome |= p;
    }

    std::uint8_t overall = 0;
    for (unsigned pos = 0; pos <= hamming_bits; ++pos)
        overall ^= codeword[pos];

    SecdedDecode result;
    result.correctedBit = -1;

    if (syndrome == 0 && overall == 0) {
        result.status = SecdedStatus::Ok;
    } else if (overall != 0) {
        // Odd number of flipped bits: assume one, repairable.
        if (syndrome == 0) {
            codeword[0] ^= 1;
            result.correctedBit = 0;
        } else if (syndrome <= hamming_bits) {
            codeword[syndrome] ^= 1;
            result.correctedBit = static_cast<int>(syndrome);
        } else {
            // Syndrome points outside the codeword: >1 flipped bit.
            result.status = SecdedStatus::Uncorrectable;
            return result;
        }
        result.status = SecdedStatus::Corrected;
    } else {
        // Even number of errors, non-zero syndrome: double error.
        result.status = SecdedStatus::Uncorrectable;
        return result;
    }

    result.data.reserve(dataBits_);
    for (unsigned pos = 1; pos <= hamming_bits; ++pos) {
        if (!isPowerOfTwo(pos))
            result.data.push_back(codeword[pos]);
    }
    return result;
}

const SecdedCodec &
llcSecdedCodec()
{
    static const SecdedCodec codec(llcSecdedDataBits);
    return codec;
}

} // namespace hllc::fault
