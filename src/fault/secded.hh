/**
 * @file
 * Hamming SECDED codec used by the NVM data array (paper Sec. III-B).
 *
 * The paper protects the combined CE + compressed-block vector with a
 * (527, 516) Hamming code: 516 data bits (512 payload + 4-bit CE), 10
 * Hamming check bits and one overall parity bit, giving single-error
 * correction and double-error detection. The codec here is a real,
 * bit-accurate implementation over arbitrary data widths; (527, 516) is
 * just its instantiation for 516 data bits.
 */

#ifndef HLLC_FAULT_SECDED_HH
#define HLLC_FAULT_SECDED_HH

#include <cstdint>
#include <vector>

namespace hllc::fault
{

/** Outcome of a SECDED decode. */
enum class SecdedStatus
{
    Ok,             //!< no error detected
    Corrected,      //!< single-bit error found and repaired
    Uncorrectable   //!< double-bit error detected
};

/** Result of decoding a codeword. */
struct SecdedDecode
{
    SecdedStatus status;
    std::vector<std::uint8_t> data;  //!< one bit per element (0/1)
    int correctedBit;                //!< codeword position fixed, or -1
};

/**
 * Hamming SECDED codec for a fixed data width. Bits are handled as
 * unpacked 0/1 bytes; this is a verification model, not a fast path.
 */
class SecdedCodec
{
  public:
    /** @param data_bits number of payload bits (516 for the LLC). */
    explicit SecdedCodec(unsigned data_bits);

    unsigned dataBits() const { return dataBits_; }
    /** Hamming check bits (10 for 516 data bits). */
    unsigned checkBits() const { return checkBits_; }
    /** Total codeword bits including overall parity (527 for 516). */
    unsigned codewordBits() const { return dataBits_ + checkBits_ + 1; }

    /** Encode @p data (dataBits() 0/1 values) into a codeword. */
    std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t> &data) const;

    /** Decode @p codeword, correcting up to one flipped bit. */
    SecdedDecode decode(std::vector<std::uint8_t> codeword) const;

  private:
    unsigned dataBits_;
    unsigned checkBits_;
};

/** Data bits protected by the LLC's code: 512 payload + 4-bit CE. */
inline constexpr unsigned llcSecdedDataBits = 516;

/** The (527, 516) codec instance used by the NVM data array. */
const SecdedCodec &llcSecdedCodec();

} // namespace hllc::fault

#endif // HLLC_FAULT_SECDED_HH
