#include "fault/wear_level.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace hllc::fault
{

WearLevelCounter::WearLevelCounter(Seconds period_seconds, unsigned modulo)
    : period_(period_seconds), modulo_(modulo)
{
    HLLC_ASSERT(period_seconds > 0.0);
    HLLC_ASSERT(modulo > 0);
}

void
WearLevelCounter::snapshot(serial::Encoder &enc) const
{
    enc.u32(modulo_);
    enc.u32(value_);
    enc.f64(accumulated_);
}

void
WearLevelCounter::restore(serial::Decoder &dec)
{
    const std::uint32_t modulo = dec.u32();
    if (modulo != modulo_)
        throw IoError("wear-level counter modulo mismatch: snapshot " +
                      formatU64(modulo) + ", counter " +
                      formatU64(modulo_));
    const std::uint32_t value = dec.u32();
    if (value >= modulo_)
        throw IoError("wear-level counter value out of range");
    value_ = value;
    accumulated_ = dec.f64();
}

void
WearLevelCounter::elapse(Seconds seconds)
{
    HLLC_ASSERT(seconds >= 0.0);
    accumulated_ += seconds;
    const double steps = std::floor(accumulated_ / period_);
    if (steps > 0.0) {
        accumulated_ -= steps * period_;
        value_ = static_cast<unsigned>(
            (value_ + static_cast<std::uint64_t>(steps)) % modulo_);
    }
}

} // namespace hllc::fault
