#include "fault/wear_level.hh"

#include <cmath>

#include "common/logging.hh"

namespace hllc::fault
{

WearLevelCounter::WearLevelCounter(Seconds period_seconds, unsigned modulo)
    : period_(period_seconds), modulo_(modulo)
{
    HLLC_ASSERT(period_seconds > 0.0);
    HLLC_ASSERT(modulo > 0);
}

void
WearLevelCounter::elapse(Seconds seconds)
{
    HLLC_ASSERT(seconds >= 0.0);
    accumulated_ += seconds;
    const double steps = std::floor(accumulated_ / period_);
    if (steps > 0.0) {
        accumulated_ -= steps * period_;
        value_ = static_cast<unsigned>(
            (value_ + static_cast<std::uint64_t>(steps)) % modulo_);
    }
}

} // namespace hllc::fault
