/**
 * @file
 * Global intra-frame wear-leveling counter (paper Sec. III-B, after [24]).
 *
 * A single counter, shared by every set, selects the live byte at which
 * each frame's write region starts. It advances after long periods (hours
 * to days of simulated time) so the written region drifts over the frame
 * and write wear is spread across all non-faulty bytes.
 */

#ifndef HLLC_FAULT_WEAR_LEVEL_HH
#define HLLC_FAULT_WEAR_LEVEL_HH

#include <cstdint>

#include "common/types.hh"

namespace hllc::serial
{
class Encoder;
class Decoder;
} // namespace hllc::serial

namespace hllc::fault
{

class WearLevelCounter
{
  public:
    /**
     * @param period_seconds simulated time between advances
     *        (default: 6 hours)
     * @param modulo counter wraps at this value (frame bytes)
     */
    explicit WearLevelCounter(Seconds period_seconds = 6.0 * 3600.0,
                              unsigned modulo = blockBytes);

    /** Current rotation offset in [0, modulo). */
    unsigned value() const { return value_; }

    /** Manually advance by one position. */
    void advance() { value_ = (value_ + 1) % modulo_; }

    /**
     * Account for @p seconds of simulated time; advances the counter once
     * per elapsed period (catching up over long prediction jumps).
     */
    void elapse(Seconds seconds);

    Seconds period() const { return period_; }

    /** Serialise rotation offset and sub-period remainder. */
    void snapshot(serial::Encoder &enc) const;

    /**
     * Restore state written by snapshot(); throws IoError when the
     * snapshot was taken with a different modulo.
     */
    void restore(serial::Decoder &dec);

  private:
    Seconds period_;
    unsigned modulo_;
    unsigned value_ = 0;
    Seconds accumulated_ = 0.0;
};

} // namespace hllc::fault

#endif // HLLC_FAULT_WEAR_LEVEL_HH
