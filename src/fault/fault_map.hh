/**
 * @file
 * Fault map of the NVM data array: byte- or frame-granular disabling.
 *
 * Every NVM frame has a 64-bit live-byte mask (the paper's 66-bit fault
 * map entry: 64 byte-valid bits plus frame state). Byte-disabling keeps
 * partially defective frames usable for compressed blocks; frame-disabling
 * (used by the BH/LHybrid/TAP baselines, paper Sec. V) retires a frame on
 * its first hard fault.
 *
 * The map also owns the wear state: cumulative (fractional) writes per
 * byte, accumulated by the forecast's aging steps. Because the intra-frame
 * wear-leveling rotation distributes each frame's write traffic uniformly
 * over its live bytes (Sec. III-B), aging spreads a frame's byte-write
 * total evenly across its currently-live bytes.
 */

#ifndef HLLC_FAULT_FAULT_MAP_HH
#define HLLC_FAULT_FAULT_MAP_HH

#include <cstdint>
#include <vector>

#include "fault/endurance.hh"

namespace hllc::serial
{
class Encoder;
class Decoder;
} // namespace hllc::serial

namespace hllc::fault
{

/** Granularity at which worn-out bitcells disable storage. */
enum class DisableGranularity { Byte, Frame };

/**
 * How a frame's write traffic distributes over its bytes (ablation knob;
 * the paper assumes the rotation-based intra-frame leveling of [24]).
 */
enum class WearDistribution
{
    /** Rotation-based leveling: traffic spreads over all live bytes. */
    Leveled,
    /**
     * No intra-frame leveling: every write starts at the first live
     * byte, so the frame's leading bytes absorb all the wear.
     */
    FrontLoaded
};

class FaultMap
{
  public:
    /**
     * @param endurance shared per-byte write limits
     * @param granularity byte- or frame-level disabling
     * @param distribution intra-frame wear distribution model
     */
    FaultMap(const EnduranceModel &endurance,
             DisableGranularity granularity,
             WearDistribution distribution = WearDistribution::Leveled);

    const NvmGeometry &geometry() const { return endurance_->geometry(); }
    DisableGranularity granularity() const { return granularity_; }

    /** 64-bit live mask of @p frame (bit i set = byte i usable). */
    std::uint64_t liveMask(std::uint32_t frame) const
    {
        return liveMask_[frame];
    }

    /** Number of live (usable) bytes in @p frame. */
    unsigned liveBytes(std::uint32_t frame) const
    {
        return liveCount_[frame];
    }

    /**
     * Effective data capacity of @p frame: the largest ECB it can hold.
     * Equal to liveBytes() under byte disabling; 0 or frameBytes under
     * frame disabling.
     */
    unsigned frameCapacity(std::uint32_t frame) const
    {
        return liveCount_[frame];
    }

    /** Whether @p frame can hold at least a @p ecb_bytes-byte block. */
    bool fits(std::uint32_t frame, unsigned ecb_bytes) const
    {
        return liveCount_[frame] >= ecb_bytes;
    }

    /** Live bytes across the whole NVM part. */
    std::uint64_t totalLiveBytes() const { return totalLive_; }

    /** Live-byte fraction of the NVM part, in [0, 1]. */
    double effectiveCapacity() const;

    /** Number of frames whose capacity is zero. */
    std::uint32_t deadFrames() const { return deadFrames_; }

    WearDistribution distribution() const { return distribution_; }

    /**
     * Record that a block write deposited @p ecb_bytes bytes into
     * @p frame. Wear is applied per the distribution model when age()
     * is next called.
     */
    void recordWrite(std::uint32_t frame, unsigned ecb_bytes)
    {
        pendingBytes_[frame] += ecb_bytes;
        pendingCount_[frame] += 1.0;
    }

    /** Pending (un-aged) byte writes recorded against @p frame. */
    double pendingWrites(std::uint32_t frame) const
    {
        return pendingBytes_[frame];
    }

    /**
     * Apply the wear recorded since the previous age() call, scaled by
     * @p scale (forecast prediction phases replay a measured write-rate
     * window over a longer wall-clock span). Bytes whose cumulative
     * writes exceed their endurance limit become faulty; under frame
     * disabling the first faulty byte retires the whole frame.
     *
     * @return number of bytes newly disabled
     */
    std::uint64_t age(double scale = 1.0);

    /** Discard wear recorded since the last age() without applying it. */
    void discardPending();

    /** Force byte @p byte of @p frame faulty (fault injection / tests). */
    void killByte(std::uint32_t frame, unsigned byte);

    /** Force the whole @p frame faulty. */
    void killFrame(std::uint32_t frame);

    /** Cumulative writes endured so far by a byte. */
    double writesSoFar(std::uint32_t frame, unsigned byte) const
    {
        return writes_[byteIndex(frame, byte)];
    }

    /**
     * Serialise the complete mutable state (live masks, cumulative and
     * pending wear). The endurance model, granularity and distribution
     * are configuration, re-derived by the owner on restore.
     */
    void snapshot(serial::Encoder &enc) const;

    /**
     * Restore state written by snapshot() into a map constructed over
     * the same geometry; liveCount/totalLive/deadFrames are recomputed
     * from the restored masks. Throws IoError on a geometry mismatch or
     * malformed record, leaving the map unchanged.
     */
    void restore(serial::Decoder &dec);

  private:
    std::size_t
    byteIndex(std::uint32_t frame, unsigned byte) const
    {
        return static_cast<std::size_t>(frame) *
               geometry().frameBytes + byte;
    }

    void disableByte(std::uint32_t frame, unsigned byte);

    const EnduranceModel *endurance_;
    DisableGranularity granularity_;
    WearDistribution distribution_;

    std::vector<std::uint64_t> liveMask_;   //!< per frame
    std::vector<std::uint8_t> liveCount_;   //!< per frame (0..64)
    std::vector<double> pendingBytes_;      //!< per frame, since last age()
    std::vector<double> pendingCount_;      //!< block writes per frame
    std::vector<double> writes_;            //!< per byte, cumulative
    std::uint64_t totalLive_ = 0;
    std::uint32_t deadFrames_ = 0;
};

} // namespace hllc::fault

#endif // HLLC_FAULT_FAULT_MAP_HH
