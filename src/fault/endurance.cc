#include "fault/endurance.hh"

#include "common/logging.hh"

namespace hllc::fault
{

EnduranceModel::EnduranceModel(const NvmGeometry &geometry,
                               const EnduranceParams &params,
                               Xoshiro256StarStar rng)
    : geometry_(geometry), params_(params)
{
    HLLC_ASSERT(geometry.numSets > 0 && geometry.numNvmWays > 0);
    HLLC_ASSERT(params.meanWrites > 0.0 && params.cv >= 0.0);

    limits_.resize(geometry.numBytes());
    for (auto &limit : limits_) {
        limit = static_cast<float>(
            rng.nextNormalCv(params.meanWrites, params.cv));
    }
}

} // namespace hllc::fault
