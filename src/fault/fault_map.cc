#include "fault/fault_map.hh"

#include <algorithm>
#include <cmath>
#include <bit>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"

namespace hllc::fault
{

FaultMap::FaultMap(const EnduranceModel &endurance,
                   DisableGranularity granularity,
                   WearDistribution distribution)
    : endurance_(&endurance), granularity_(granularity),
      distribution_(distribution)
{
    const auto frames = geometry().numFrames();
    HLLC_ASSERT(geometry().frameBytes == 64,
                "the 64-bit live mask requires 64-byte frames");

    liveMask_.assign(frames, ~std::uint64_t{0});
    liveCount_.assign(frames, static_cast<std::uint8_t>(64));
    pendingBytes_.assign(frames, 0.0);
    pendingCount_.assign(frames, 0.0);
    writes_.assign(geometry().numBytes(), 0.0);
    totalLive_ = geometry().numBytes();
}

double
FaultMap::effectiveCapacity() const
{
    return static_cast<double>(totalLive_) /
           static_cast<double>(geometry().numBytes());
}

void
FaultMap::disableByte(std::uint32_t frame, unsigned byte)
{
    const std::uint64_t bit = std::uint64_t{1} << byte;
    if (!(liveMask_[frame] & bit))
        return;
    liveMask_[frame] &= ~bit;
    --liveCount_[frame];
    --totalLive_;
    if (liveCount_[frame] == 0)
        ++deadFrames_;
}

void
FaultMap::killByte(std::uint32_t frame, unsigned byte)
{
    HLLC_ASSERT(frame < geometry().numFrames());
    HLLC_ASSERT(byte < geometry().frameBytes);
    if (granularity_ == DisableGranularity::Frame) {
        killFrame(frame);
    } else {
        disableByte(frame, byte);
    }
}

void
FaultMap::killFrame(std::uint32_t frame)
{
    HLLC_ASSERT(frame < geometry().numFrames());
    for (unsigned b = 0; b < geometry().frameBytes; ++b)
        disableByte(frame, b);
}

std::uint64_t
FaultMap::age(double scale)
{
    metrics::ScopedPhaseTimer phase_timer(metrics::Phase::FaultMapAge);
    HLLC_ASSERT(scale >= 0.0);
    std::uint64_t newly_disabled = 0;

    const unsigned frame_bytes = geometry().frameBytes;
    const auto frames = geometry().numFrames();
    for (std::uint32_t f = 0; f < frames; ++f) {
        const double pending = pendingBytes_[f] * scale;
        const double count = pendingCount_[f] * scale;
        pendingBytes_[f] = 0.0;
        pendingCount_[f] = 0.0;
        if (pending <= 0.0)
            continue;
        const unsigned live = liveCount_[f];
        if (live == 0)
            continue;

        // Leveled: the rotation spreads the frame's traffic uniformly
        // over the live bytes. FrontLoaded: every write lands on the
        // first avg-block-size live bytes, which take one write each
        // per block write.
        const double per_byte_leveled = pending / live;
        unsigned front_bytes = live;
        if (distribution_ == WearDistribution::FrontLoaded && count > 0.0)
            front_bytes = std::min<unsigned>(
                live, static_cast<unsigned>(
                          std::ceil(pending / count - 1e-9)));

        const std::uint64_t mask = liveMask_[f];
        bool frame_hit = false;
        unsigned live_seen = 0;
        for (unsigned b = 0; b < frame_bytes; ++b) {
            if (!(mask & (std::uint64_t{1} << b)))
                continue;
            double wear;
            if (distribution_ == WearDistribution::Leveled) {
                wear = per_byte_leveled;
            } else {
                wear = live_seen < front_bytes ? count : 0.0;
            }
            ++live_seen;
            if (wear <= 0.0)
                continue;
            const std::size_t idx = byteIndex(f, b);
            writes_[idx] += wear;
            if (writes_[idx] > endurance_->limit(f, b)) {
                if (granularity_ == DisableGranularity::Frame) {
                    frame_hit = true;
                } else {
                    disableByte(f, b);
                    ++newly_disabled;
                }
            }
        }
        if (frame_hit) {
            newly_disabled += liveCount_[f];
            killFrame(f);
        }
    }
    return newly_disabled;
}

void
FaultMap::snapshot(serial::Encoder &enc) const
{
    enc.u32(geometry().numFrames());
    enc.u32(geometry().frameBytes);
    enc.u64Vec(liveMask_);
    enc.f64Vec(writes_);
    enc.f64Vec(pendingBytes_);
    enc.f64Vec(pendingCount_);
}

void
FaultMap::restore(serial::Decoder &dec)
{
    const std::uint32_t frames = dec.u32();
    const std::uint32_t frame_bytes = dec.u32();
    if (frames != geometry().numFrames() ||
        frame_bytes != geometry().frameBytes) {
        throw IoError("fault-map geometry mismatch: snapshot has " +
                      formatU64(frames) + "x" +
                      formatU64(frame_bytes) + ", map has " +
                      formatU64(geometry().numFrames()) + "x" +
                      formatU64(geometry().frameBytes));
    }

    std::vector<std::uint64_t> live_mask = dec.u64Vec();
    std::vector<double> writes = dec.f64Vec();
    std::vector<double> pending_bytes = dec.f64Vec();
    std::vector<double> pending_count = dec.f64Vec();
    if (live_mask.size() != frames ||
        writes.size() != geometry().numBytes() ||
        pending_bytes.size() != frames ||
        pending_count.size() != frames) {
        throw IoError("fault-map snapshot has inconsistent array sizes");
    }

    liveMask_ = std::move(live_mask);
    writes_ = std::move(writes);
    pendingBytes_ = std::move(pending_bytes);
    pendingCount_ = std::move(pending_count);

    // The derived aggregates are recomputed rather than trusted.
    totalLive_ = 0;
    deadFrames_ = 0;
    liveCount_.resize(liveMask_.size());
    for (std::size_t f = 0; f < liveMask_.size(); ++f) {
        const auto live =
            static_cast<std::uint8_t>(std::popcount(liveMask_[f]));
        liveCount_[f] = live;
        totalLive_ += live;
        if (live == 0)
            ++deadFrames_;
    }
}

void
FaultMap::discardPending()
{
    for (auto &p : pendingBytes_)
        p = 0.0;
    for (auto &c : pendingCount_)
        c = 0.0;
}

} // namespace hllc::fault
