/**
 * @file
 * Block rearrangement circuitry (paper Fig. 5, after [15]).
 *
 * Writing: the index generator derives, from the frame's fault map and the
 * global wear-leveling counter, an index vector I[] that scatters the n
 * bytes of the ECB over the frame's live bytes, starting at the rotation
 * offset; a crossbar applies it, and a write mask enables only the target
 * bytes. Reading re-derives the same index vector and gathers the ECB back
 * out of the sparse frame image (RECB).
 *
 * This is a functional model of the synthesised circuit; its published
 * latency (0.33/0.38 ns write/read) is folded into the NVM access latency
 * by the timing layer.
 */

#ifndef HLLC_FAULT_REARRANGEMENT_HH
#define HLLC_FAULT_REARRANGEMENT_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace hllc::fault
{

/** Index vector entry meaning "no ECB byte stored here". */
inline constexpr int noByte = -1;

/** Result of scattering an ECB into a (possibly faulty) frame. */
struct ScatterResult
{
    /** Frame image; bytes not covered by the write mask are untouched. */
    std::array<std::uint8_t, blockBytes> recb;
    /** Bit i set = frame byte i written. */
    std::uint64_t writeMask;
    /** Frame byte positions written, in ECB order (wear accounting). */
    std::vector<std::uint8_t> writtenBytes;
};

class RearrangementCircuit
{
  public:
    /**
     * Compute the index vector: for each frame byte position, which ECB
     * byte lands there (or noByte). ECB byte j is stored in the (j+1)-th
     * live byte encountered scanning circularly from @p rotation.
     *
     * @param live_mask frame's live-byte mask
     * @param rotation wear-leveling counter value
     * @param n ECB size in bytes; must not exceed popcount(live_mask)
     */
    static std::array<int, blockBytes>
    indexVector(std::uint64_t live_mask, unsigned rotation, unsigned n);

    /** Scatter @p ecb into a frame with @p live_mask at @p rotation. */
    static ScatterResult
    scatter(std::span<const std::uint8_t> ecb, std::uint64_t live_mask,
            unsigned rotation);

    /**
     * Gather an @p n-byte ECB back from the sparse frame image @p recb.
     * Must be called with the same live mask and rotation used to scatter.
     */
    static std::vector<std::uint8_t>
    gather(std::span<const std::uint8_t, blockBytes> recb,
           std::uint64_t live_mask, unsigned rotation, unsigned n);
};

} // namespace hllc::fault

#endif // HLLC_FAULT_REARRANGEMENT_HH
