/**
 * @file
 * Per-byte NVM write-endurance model.
 *
 * Each NVM byte (the disabling granularity) draws a write limit from a
 * normal distribution of mean mu and coefficient of variation cv
 * (paper Sec. II-A: mu around 1e10 writes, cv 0.2-0.3, reflecting
 * manufacturing variability). A byte becomes permanently faulty once its
 * cumulative write count exceeds its limit.
 */

#ifndef HLLC_FAULT_ENDURANCE_HH
#define HLLC_FAULT_ENDURANCE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace hllc::fault
{

/** Geometry of the NVM part of the LLC data array. */
struct NvmGeometry
{
    std::uint32_t numSets = 0;      //!< LLC sets
    std::uint32_t numNvmWays = 0;   //!< NVM ways per set
    std::uint32_t frameBytes = blockBytes; //!< bytes per frame

    std::uint32_t numFrames() const { return numSets * numNvmWays; }
    std::uint64_t numBytes() const
    {
        return static_cast<std::uint64_t>(numFrames()) * frameBytes;
    }

    /** Linear frame index of (set, NVM way). */
    std::uint32_t
    frameIndex(std::uint32_t set, std::uint32_t nvm_way) const
    {
        return set * numNvmWays + nvm_way;
    }
};

/** Parameters of the endurance distribution. */
struct EnduranceParams
{
    double meanWrites = 1e10;   //!< mu of the normal distribution
    double cv = 0.2;            //!< sigma / mu
};

/**
 * Holds the per-byte write limits of the whole NVM data array. Limits are
 * drawn once at construction and are immutable afterwards; wear state
 * (cumulative writes) lives in the FaultMap so that the same endurance
 * fabric can be re-aged under different policies from a common seed.
 */
class EnduranceModel
{
  public:
    EnduranceModel(const NvmGeometry &geometry,
                   const EnduranceParams &params,
                   Xoshiro256StarStar rng);

    const NvmGeometry &geometry() const { return geometry_; }
    const EnduranceParams &params() const { return params_; }

    /** Write limit of byte @p byte of frame @p frame. */
    double
    limit(std::uint32_t frame, std::uint32_t byte) const
    {
        return limits_[static_cast<std::size_t>(frame) *
                       geometry_.frameBytes + byte];
    }

  private:
    NvmGeometry geometry_;
    EnduranceParams params_;
    /**
     * float keeps the 1.5M-entry array compact; the ~1e-7 relative
     * quantisation is far below the cv=0.2 modelled variability.
     */
    std::vector<float> limits_;
};

} // namespace hllc::fault

#endif // HLLC_FAULT_ENDURANCE_HH
