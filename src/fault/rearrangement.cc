#include "fault/rearrangement.hh"

#include <bit>

#include "common/logging.hh"

namespace hllc::fault
{

std::array<int, blockBytes>
RearrangementCircuit::indexVector(std::uint64_t live_mask,
                                  unsigned rotation, unsigned n)
{
    HLLC_ASSERT(rotation < blockBytes);
    HLLC_ASSERT(n <= static_cast<unsigned>(std::popcount(live_mask)),
                "ECB (%u B) larger than frame's live capacity (%d B)",
                n, std::popcount(live_mask));

    std::array<int, blockBytes> index;
    index.fill(noByte);

    unsigned placed = 0;
    for (unsigned step = 0; step < blockBytes && placed < n; ++step) {
        const unsigned pos = (rotation + step) % blockBytes;
        if (live_mask & (std::uint64_t{1} << pos))
            index[pos] = static_cast<int>(placed++);
    }
    return index;
}

ScatterResult
RearrangementCircuit::scatter(std::span<const std::uint8_t> ecb,
                              std::uint64_t live_mask, unsigned rotation)
{
    const auto n = static_cast<unsigned>(ecb.size());
    const auto index = indexVector(live_mask, rotation, n);

    ScatterResult result;
    result.recb.fill(0);
    result.writeMask = 0;
    result.writtenBytes.resize(n);

    for (unsigned pos = 0; pos < blockBytes; ++pos) {
        const int j = index[pos];
        if (j == noByte)
            continue;
        result.recb[pos] = ecb[static_cast<unsigned>(j)];
        result.writeMask |= std::uint64_t{1} << pos;
        result.writtenBytes[static_cast<unsigned>(j)] =
            static_cast<std::uint8_t>(pos);
    }
    return result;
}

std::vector<std::uint8_t>
RearrangementCircuit::gather(std::span<const std::uint8_t, blockBytes> recb,
                             std::uint64_t live_mask, unsigned rotation,
                             unsigned n)
{
    const auto index = indexVector(live_mask, rotation, n);

    std::vector<std::uint8_t> ecb(n, 0);
    for (unsigned pos = 0; pos < blockBytes; ++pos) {
        const int j = index[pos];
        if (j != noByte)
            ecb[static_cast<unsigned>(j)] = recb[pos];
    }
    return ecb;
}

} // namespace hllc::fault
