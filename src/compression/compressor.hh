/**
 * @file
 * Abstract block-compressor interface.
 *
 * The paper's insertion policies are orthogonal to the compression
 * mechanism (Sec. II-B): anything with low decompression latency, wide
 * coverage and a usable compression ratio works. This interface lets
 * the hybrid LLC and workload layers run on top of BDI (the paper's
 * choice), FPC or C-Pack interchangeably; only the ECB size in bytes is
 * visible to the policies.
 */

#ifndef HLLC_COMPRESSION_COMPRESSOR_HH
#define HLLC_COMPRESSION_COMPRESSOR_HH

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace hllc::compression
{

/** Supported compression schemes. */
enum class Scheme { Bdi, Fpc, CPack };

/** Printable name of a scheme. */
std::string_view schemeName(Scheme scheme);

class BlockCompressor
{
  public:
    virtual ~BlockCompressor() = default;

    /** Which scheme this object implements. */
    virtual Scheme scheme() const = 0;

    /**
     * Compressed (ECB) size of @p data in bytes, including any headers
     * the scheme stores in the frame; in [2, 64]. 64 means the block is
     * stored uncompressed.
     */
    virtual unsigned ecbSize(const BlockData &data) const = 0;

    /** Materialise the stored byte image (size == ecbSize(data)). */
    virtual std::vector<std::uint8_t>
    compress(const BlockData &data) const = 0;

    /** Inverse of compress(). */
    virtual BlockData
    decompress(std::span<const std::uint8_t> ecb) const = 0;

    /** Decompression latency in cycles (timing model). */
    virtual Cycle decompressionCycles() const = 0;

    /** Factory. */
    static std::unique_ptr<BlockCompressor> create(Scheme scheme);
};

} // namespace hllc::compression

#endif // HLLC_COMPRESSION_COMPRESSOR_HH
