#include "compression/bdi.hh"

#include <algorithm>
#include <cstring>

#if defined(HLLC_ENABLE_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/logging.hh"

namespace hllc::compression
{

namespace
{

/** Little-endian read of the @p k-byte value @p idx of the block. */
std::uint64_t
readValue(const BlockData &data, unsigned k, unsigned idx)
{
    std::uint64_t v = 0;
    std::memcpy(&v, data.data() + static_cast<std::size_t>(idx) * k, k);
    return v;
}

/** Little-endian write of the low @p k bytes of @p v at value slot idx. */
void
writeValue(BlockData &data, unsigned k, unsigned idx, std::uint64_t v)
{
    std::memcpy(data.data() + static_cast<std::size_t>(idx) * k, &v, k);
}

/**
 * Sign-extend the low @p k bytes of @p v to 64 bits. The k == 8 branch
 * must short-circuit: the general expression would shift by 0 after an
 * information-free cast, but writing it separately also documents that
 * 8-byte values are already full-width (and keeps the shift count in
 * [8, 56], well-defined). C++20 guarantees two's complement, so the
 * cast + arithmetic right shift is exact for all inputs including
 * 0x80..00 (the k-byte lower bound).
 */
std::int64_t
signExtend(std::uint64_t v, unsigned k)
{
    if (k >= 8)
        return static_cast<std::int64_t>(v);
    const unsigned shift = 64 - 8 * k;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/**
 * Whether signed @p delta is representable in @p d bytes. The bounds
 * are asymmetric — the lower bound -2^(8d-1) is representable, the
 * upper bound +2^(8d-1) is not — and d == 8 must short-circuit to
 * avoid shifting into the sign bit (1 << 63 overflows int64); at
 * d == 8 every delta fits because the subtractor is 64 bits wide.
 */
bool
fitsSigned(std::int64_t delta, unsigned d)
{
    if (d >= 8)
        return true;
    const std::int64_t bound = std::int64_t{1} << (8 * d - 1);
    return delta >= -bound && delta < bound;
}

bool
allZero(const BlockData &data)
{
    for (auto b : data) {
        if (b != 0)
            return false;
    }
    return true;
}

bool
repeated8(const BlockData &data)
{
    const std::uint64_t first = readValue(data, 8, 0);
    for (unsigned i = 1; i < blockBytes / 8; ++i) {
        if (readValue(data, 8, i) != first)
            return false;
    }
    return true;
}

/** Base-delta applicability test for a (base k, delta d) encoding. */
bool
baseDeltaFits(const BlockData &data, unsigned k, unsigned d)
{
    const std::int64_t base = signExtend(readValue(data, k, 0), k);
    const unsigned values = blockBytes / k;
    for (unsigned i = 1; i < values; ++i) {
        const std::int64_t v = signExtend(readValue(data, k, i), k);
        // The difference of two sign-extended k-byte values is exact in
        // 64 bits for k < 8 (|v - base| < 2^(8k), no wrap); for k == 8
        // the two's-complement wrap-around matches the 64-bit hardware
        // subtractor, so e.g. base INT64_MIN / v INT64_MAX yields delta
        // -1 and the pair is B8D1-compressible. For k < 8 there is
        // deliberately no mod-2^(8k) wrap: deltas are arithmetic, so
        // that same extreme pair at k-byte width does NOT fit.
        const std::int64_t delta =
            static_cast<std::int64_t>(static_cast<std::uint64_t>(v) -
                                      static_cast<std::uint64_t>(base));
        if (!fitsSigned(delta, d))
            return false;
    }
    return true;
}

/**
 * Signed extents of the lane-0-relative deltas at one base width. A
 * (k, d) base-delta encoding applies iff both extents are representable
 * in d bytes, so one min/max pass per k answers every D width at once.
 */
struct DeltaExtents
{
    std::int64_t min = 0;
    std::int64_t max = 0;

    bool
    fits(unsigned d) const
    {
        if (d >= 8)
            return true;
        const std::int64_t bound = std::int64_t{1} << (8 * d - 1);
        return min >= -bound && max < bound;
    }
};

/** Everything compress() needs to know about a block, in one pass. */
struct BlockAnalysis
{
    bool zeros = false;
    bool rep8 = false;
    DeltaExtents e8; //!< 8-byte base deltas
    DeltaExtents e4; //!< 4-byte base deltas
    DeltaExtents e2; //!< 2-byte base deltas

    /** Mirror of applicable(data, ce) over the precomputed facts. */
    bool
    applies(const CeInfo &info) const
    {
        switch (info.ce) {
          case Ce::Zeros:
            return zeros;
          case Ce::Rep8:
            return rep8;
          case Ce::Uncompressed:
            return true;
          default:
            break;
        }
        switch (info.baseBytes) {
          case 8:
            return e8.fits(info.deltaBytes);
          case 4:
            return e4.fits(info.deltaBytes);
          default:
            return e2.fits(info.deltaBytes);
        }
    }
};

/**
 * Analyse a whole 64 B block: copy it once into fixed-width lane arrays
 * and reduce each to its delta extents with dense, branch-free loops the
 * compiler can auto-vectorize (the 16- and 32-bit reductions in
 * particular). The delta arithmetic matches baseDeltaFits() exactly:
 * lanes are sign-extended before subtracting, so k < 8 deltas are exact
 * in 64 bits (no mod-2^(8k) wrap) while k == 8 wraps like the hardware
 * subtractor.
 */
BlockAnalysis
analyzeBlock(const BlockData &data)
{
    std::uint64_t l8[8];
    std::uint32_t l4[16];
    std::uint16_t l2[32];
    std::memcpy(l8, data.data(), blockBytes);
    std::memcpy(l4, data.data(), blockBytes);
    std::memcpy(l2, data.data(), blockBytes);

    BlockAnalysis a;

#if defined(HLLC_ENABLE_SIMD) && defined(__SSE2__)
    // Explicit SIMD kernels for the equality scans and the 16-bit
    // reduction; validated against the scalar path (and the brute-force
    // reference decoder) by the differential tests.
    {
        const auto *p = reinterpret_cast<const __m128i *>(data.data());
        __m128i zero_acc = _mm_setzero_si128();
        const __m128i first =
            _mm_set1_epi64x(static_cast<long long>(l8[0]));
        __m128i rep_acc = _mm_set1_epi8(static_cast<char>(0xff));
        for (unsigned i = 0; i < blockBytes / 16; ++i) {
            const __m128i v = _mm_loadu_si128(p + i);
            zero_acc = _mm_or_si128(zero_acc, v);
            rep_acc = _mm_and_si128(rep_acc, _mm_cmpeq_epi8(v, first));
        }
        const __m128i zc =
            _mm_cmpeq_epi8(zero_acc, _mm_setzero_si128());
        a.zeros = _mm_movemask_epi8(zc) == 0xffff;
        a.rep8 = _mm_movemask_epi8(rep_acc) == 0xffff;

        // 16-bit lanes: min/max of the raw values, deltas afterwards.
        __m128i vmin = _mm_loadu_si128(p);
        __m128i vmax = vmin;
        for (unsigned i = 1; i < blockBytes / 16; ++i) {
            const __m128i v = _mm_loadu_si128(p + i);
            vmin = _mm_min_epi16(vmin, v);
            vmax = _mm_max_epi16(vmax, v);
        }
        alignas(16) std::int16_t mins[8], maxs[8];
        _mm_store_si128(reinterpret_cast<__m128i *>(mins), vmin);
        _mm_store_si128(reinterpret_cast<__m128i *>(maxs), vmax);
        std::int64_t lo = mins[0], hi = maxs[0];
        for (int i = 1; i < 8; ++i) {
            lo = std::min<std::int64_t>(lo, mins[i]);
            hi = std::max<std::int64_t>(hi, maxs[i]);
        }
        const std::int64_t base2 =
            static_cast<std::int16_t>(l2[0]);
        a.e2 = { lo - base2, hi - base2 };
    }
#else
    a.zeros = true;
    for (unsigned i = 0; i < 8; ++i)
        a.zeros = a.zeros && l8[i] == 0;
    a.rep8 = true;
    for (unsigned i = 1; i < 8; ++i)
        a.rep8 = a.rep8 && l8[i] == l8[0];

    {
        // Min/max of the sign-extended 16-bit lanes, then shift by the
        // base: extents of (v - base) without a subtract per lane.
        std::int64_t lo = static_cast<std::int16_t>(l2[0]);
        std::int64_t hi = lo;
        for (unsigned i = 1; i < 32; ++i) {
            const std::int64_t v = static_cast<std::int16_t>(l2[i]);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        const std::int64_t base2 = static_cast<std::int16_t>(l2[0]);
        a.e2 = { lo - base2, hi - base2 };
    }
#endif

    {
        std::int64_t lo = static_cast<std::int32_t>(l4[0]);
        std::int64_t hi = lo;
        for (unsigned i = 1; i < 16; ++i) {
            const std::int64_t v = static_cast<std::int32_t>(l4[i]);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        const std::int64_t base4 = static_cast<std::int32_t>(l4[0]);
        a.e4 = { lo - base4, hi - base4 };
    }

    {
        // k == 8 deltas wrap mod 2^64 (two's-complement subtractor), so
        // extents are over the wrapped deltas themselves, not raw lanes.
        std::int64_t lo = 0, hi = 0;
        for (unsigned i = 1; i < 8; ++i) {
            const std::int64_t delta =
                static_cast<std::int64_t>(l8[i] - l8[0]);
            lo = std::min(lo, delta);
            hi = std::max(hi, delta);
        }
        a.e8 = { lo, hi };
    }

    return a;
}

} // anonymous namespace

bool
BdiCompressor::applicable(const BlockData &data, Ce ce)
{
    switch (ce) {
      case Ce::Zeros:
        return allZero(data);
      case Ce::Rep8:
        return repeated8(data);
      case Ce::Uncompressed:
        return true;
      default: {
        const CeInfo &info = ceInfo(ce);
        return baseDeltaFits(data, info.baseBytes, info.deltaBytes);
      }
    }
}

CompressionResult
BdiCompressor::compress(const BlockData &data)
{
    // Hardware evaluates all CEs in parallel and a priority tree picks the
    // smallest ECB; emulate by scanning the table in ascending ECB order.
    // One analyzeBlock() pass answers every encoding's applicability, so
    // the scan itself touches no block bytes.
    const BlockAnalysis analysis = analyzeBlock(data);
    Ce best = Ce::Uncompressed;
    unsigned best_size = ecbSize(Ce::Uncompressed);
    for (const CeInfo &info : ceTable()) {
        if (info.ecbBytes >= best_size)
            continue;
        if (analysis.applies(info)) {
            best = info.ce;
            best_size = info.ecbBytes;
        }
    }
    return { best, ceInfo(best).cbBytes, best_size };
}

std::vector<std::uint8_t>
BdiCompressor::encode(const BlockData &data, Ce ce)
{
    HLLC_ASSERT(applicable(data, ce), "CE %s does not cover this block",
                std::string(ceInfo(ce).name).c_str());

    std::vector<std::uint8_t> ecb;
    ecb.reserve(ecbSize(ce));

    if (ce == Ce::Uncompressed) {
        ecb.assign(data.begin(), data.end());
        return ecb;
    }

    ecb.push_back(static_cast<std::uint8_t>(ce));
    switch (ce) {
      case Ce::Zeros:
        ecb.push_back(0);
        break;
      case Ce::Rep8: {
        const std::uint64_t v = readValue(data, 8, 0);
        for (unsigned b = 0; b < 8; ++b)
            ecb.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
        break;
      }
      default: {
        const CeInfo &info = ceInfo(ce);
        const unsigned k = info.baseBytes;
        const unsigned d = info.deltaBytes;
        const std::uint64_t base = readValue(data, k, 0);
        for (unsigned b = 0; b < k; ++b)
            ecb.push_back(static_cast<std::uint8_t>(base >> (8 * b)));
        const unsigned values = blockBytes / k;
        for (unsigned i = 1; i < values; ++i) {
            const std::uint64_t delta =
                readValue(data, k, i) - base; // wraps; low d bytes stored
            for (unsigned b = 0; b < d; ++b)
                ecb.push_back(static_cast<std::uint8_t>(delta >> (8 * b)));
        }
        break;
      }
    }

    HLLC_ASSERT(ecb.size() == ecbSize(ce),
                "ECB size mismatch: %zu != %u", ecb.size(), ecbSize(ce));
    return ecb;
}

BlockData
BdiCompressor::decode(Ce ce, std::span<const std::uint8_t> ecb)
{
    HLLC_ASSERT(ecb.size() == ecbSize(ce));

    BlockData data{};
    if (ce == Ce::Uncompressed) {
        std::memcpy(data.data(), ecb.data(), blockBytes);
        return data;
    }

    HLLC_ASSERT(ecb[0] == static_cast<std::uint8_t>(ce),
                "CE header byte does not match encoding");

    switch (ce) {
      case Ce::Zeros:
        break; // already zero-initialised
      case Ce::Rep8: {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(ecb[1 + b]) << (8 * b);
        for (unsigned i = 0; i < blockBytes / 8; ++i)
            writeValue(data, 8, i, v);
        break;
      }
      default: {
        const CeInfo &info = ceInfo(ce);
        const unsigned k = info.baseBytes;
        const unsigned d = info.deltaBytes;
        std::uint64_t base = 0;
        for (unsigned b = 0; b < k; ++b)
            base |= static_cast<std::uint64_t>(ecb[1 + b]) << (8 * b);
        writeValue(data, k, 0, base);
        const unsigned values = blockBytes / k;
        std::size_t off = 1 + k;
        const std::uint64_t k_mask =
            k >= 8 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (8 * k)) - 1);
        for (unsigned i = 1; i < values; ++i) {
            std::uint64_t raw = 0;
            for (unsigned b = 0; b < d; ++b)
                raw |= static_cast<std::uint64_t>(ecb[off + b]) << (8 * b);
            const std::int64_t delta = signExtend(raw, d);
            const std::uint64_t v =
                (base + static_cast<std::uint64_t>(delta)) & k_mask;
            writeValue(data, k, i, v);
            off += d;
        }
        break;
      }
    }
    return data;
}

} // namespace hllc::compression
