#include "compression/bdi.hh"

#include <cstring>

#include "common/logging.hh"

namespace hllc::compression
{

namespace
{

/** Little-endian read of the @p k-byte value @p idx of the block. */
std::uint64_t
readValue(const BlockData &data, unsigned k, unsigned idx)
{
    std::uint64_t v = 0;
    std::memcpy(&v, data.data() + static_cast<std::size_t>(idx) * k, k);
    return v;
}

/** Little-endian write of the low @p k bytes of @p v at value slot idx. */
void
writeValue(BlockData &data, unsigned k, unsigned idx, std::uint64_t v)
{
    std::memcpy(data.data() + static_cast<std::size_t>(idx) * k, &v, k);
}

/**
 * Sign-extend the low @p k bytes of @p v to 64 bits. The k == 8 branch
 * must short-circuit: the general expression would shift by 0 after an
 * information-free cast, but writing it separately also documents that
 * 8-byte values are already full-width (and keeps the shift count in
 * [8, 56], well-defined). C++20 guarantees two's complement, so the
 * cast + arithmetic right shift is exact for all inputs including
 * 0x80..00 (the k-byte lower bound).
 */
std::int64_t
signExtend(std::uint64_t v, unsigned k)
{
    if (k >= 8)
        return static_cast<std::int64_t>(v);
    const unsigned shift = 64 - 8 * k;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/**
 * Whether signed @p delta is representable in @p d bytes. The bounds
 * are asymmetric — the lower bound -2^(8d-1) is representable, the
 * upper bound +2^(8d-1) is not — and d == 8 must short-circuit to
 * avoid shifting into the sign bit (1 << 63 overflows int64); at
 * d == 8 every delta fits because the subtractor is 64 bits wide.
 */
bool
fitsSigned(std::int64_t delta, unsigned d)
{
    if (d >= 8)
        return true;
    const std::int64_t bound = std::int64_t{1} << (8 * d - 1);
    return delta >= -bound && delta < bound;
}

bool
allZero(const BlockData &data)
{
    for (auto b : data) {
        if (b != 0)
            return false;
    }
    return true;
}

bool
repeated8(const BlockData &data)
{
    const std::uint64_t first = readValue(data, 8, 0);
    for (unsigned i = 1; i < blockBytes / 8; ++i) {
        if (readValue(data, 8, i) != first)
            return false;
    }
    return true;
}

/** Base-delta applicability test for a (base k, delta d) encoding. */
bool
baseDeltaFits(const BlockData &data, unsigned k, unsigned d)
{
    const std::int64_t base = signExtend(readValue(data, k, 0), k);
    const unsigned values = blockBytes / k;
    for (unsigned i = 1; i < values; ++i) {
        const std::int64_t v = signExtend(readValue(data, k, i), k);
        // The difference of two sign-extended k-byte values is exact in
        // 64 bits for k < 8 (|v - base| < 2^(8k), no wrap); for k == 8
        // the two's-complement wrap-around matches the 64-bit hardware
        // subtractor, so e.g. base INT64_MIN / v INT64_MAX yields delta
        // -1 and the pair is B8D1-compressible. For k < 8 there is
        // deliberately no mod-2^(8k) wrap: deltas are arithmetic, so
        // that same extreme pair at k-byte width does NOT fit.
        const std::int64_t delta =
            static_cast<std::int64_t>(static_cast<std::uint64_t>(v) -
                                      static_cast<std::uint64_t>(base));
        if (!fitsSigned(delta, d))
            return false;
    }
    return true;
}

} // anonymous namespace

bool
BdiCompressor::applicable(const BlockData &data, Ce ce)
{
    switch (ce) {
      case Ce::Zeros:
        return allZero(data);
      case Ce::Rep8:
        return repeated8(data);
      case Ce::Uncompressed:
        return true;
      default: {
        const CeInfo &info = ceInfo(ce);
        return baseDeltaFits(data, info.baseBytes, info.deltaBytes);
      }
    }
}

CompressionResult
BdiCompressor::compress(const BlockData &data)
{
    // Hardware evaluates all CEs in parallel and a priority tree picks the
    // smallest ECB; emulate by scanning the table in ascending ECB order.
    Ce best = Ce::Uncompressed;
    unsigned best_size = ecbSize(Ce::Uncompressed);
    for (const CeInfo &info : ceTable()) {
        if (info.ecbBytes >= best_size)
            continue;
        if (applicable(data, info.ce)) {
            best = info.ce;
            best_size = info.ecbBytes;
        }
    }
    return { best, ceInfo(best).cbBytes, best_size };
}

std::vector<std::uint8_t>
BdiCompressor::encode(const BlockData &data, Ce ce)
{
    HLLC_ASSERT(applicable(data, ce), "CE %s does not cover this block",
                std::string(ceInfo(ce).name).c_str());

    std::vector<std::uint8_t> ecb;
    ecb.reserve(ecbSize(ce));

    if (ce == Ce::Uncompressed) {
        ecb.assign(data.begin(), data.end());
        return ecb;
    }

    ecb.push_back(static_cast<std::uint8_t>(ce));
    switch (ce) {
      case Ce::Zeros:
        ecb.push_back(0);
        break;
      case Ce::Rep8: {
        const std::uint64_t v = readValue(data, 8, 0);
        for (unsigned b = 0; b < 8; ++b)
            ecb.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
        break;
      }
      default: {
        const CeInfo &info = ceInfo(ce);
        const unsigned k = info.baseBytes;
        const unsigned d = info.deltaBytes;
        const std::uint64_t base = readValue(data, k, 0);
        for (unsigned b = 0; b < k; ++b)
            ecb.push_back(static_cast<std::uint8_t>(base >> (8 * b)));
        const unsigned values = blockBytes / k;
        for (unsigned i = 1; i < values; ++i) {
            const std::uint64_t delta =
                readValue(data, k, i) - base; // wraps; low d bytes stored
            for (unsigned b = 0; b < d; ++b)
                ecb.push_back(static_cast<std::uint8_t>(delta >> (8 * b)));
        }
        break;
      }
    }

    HLLC_ASSERT(ecb.size() == ecbSize(ce),
                "ECB size mismatch: %zu != %u", ecb.size(), ecbSize(ce));
    return ecb;
}

BlockData
BdiCompressor::decode(Ce ce, std::span<const std::uint8_t> ecb)
{
    HLLC_ASSERT(ecb.size() == ecbSize(ce));

    BlockData data{};
    if (ce == Ce::Uncompressed) {
        std::memcpy(data.data(), ecb.data(), blockBytes);
        return data;
    }

    HLLC_ASSERT(ecb[0] == static_cast<std::uint8_t>(ce),
                "CE header byte does not match encoding");

    switch (ce) {
      case Ce::Zeros:
        break; // already zero-initialised
      case Ce::Rep8: {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(ecb[1 + b]) << (8 * b);
        for (unsigned i = 0; i < blockBytes / 8; ++i)
            writeValue(data, 8, i, v);
        break;
      }
      default: {
        const CeInfo &info = ceInfo(ce);
        const unsigned k = info.baseBytes;
        const unsigned d = info.deltaBytes;
        std::uint64_t base = 0;
        for (unsigned b = 0; b < k; ++b)
            base |= static_cast<std::uint64_t>(ecb[1 + b]) << (8 * b);
        writeValue(data, k, 0, base);
        const unsigned values = blockBytes / k;
        std::size_t off = 1 + k;
        const std::uint64_t k_mask =
            k >= 8 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << (8 * k)) - 1);
        for (unsigned i = 1; i < values; ++i) {
            std::uint64_t raw = 0;
            for (unsigned b = 0; b < d; ++b)
                raw |= static_cast<std::uint64_t>(ecb[off + b]) << (8 * b);
            const std::int64_t delta = signExtend(raw, d);
            const std::uint64_t v =
                (base + static_cast<std::uint64_t>(delta)) & k_mask;
            writeValue(data, k, i, v);
            off += d;
        }
        break;
      }
    }
    return data;
}

} // namespace hllc::compression
