#include "compression/fpc.hh"

#include <cstring>

#include "common/bitstream.hh"
#include "common/logging.hh"

namespace hllc::compression
{

namespace
{

constexpr unsigned wordsPerBlock = blockBytes / 4;
constexpr std::uint8_t fpcHeader = 0x46; // 'F'

std::uint32_t
readWord(const BlockData &data, unsigned i)
{
    std::uint32_t w;
    std::memcpy(&w, data.data() + 4u * i, 4);
    return w;
}

void
writeWord(BlockData &data, unsigned i, std::uint32_t w)
{
    std::memcpy(data.data() + 4u * i, &w, 4);
}

bool
fitsSigned(std::int32_t v, unsigned bits)
{
    const std::int32_t bound = std::int32_t{1} << (bits - 1);
    return v >= -bound && v < bound;
}

} // anonymous namespace

FpcCompressor::Pattern
FpcCompressor::classifyWord(std::uint32_t word)
{
    const auto sw = static_cast<std::int32_t>(word);
    if (word == 0)
        return ZeroRun;
    if (fitsSigned(sw, 4))
        return SignExt4;
    if (fitsSigned(sw, 8))
        return SignExt8;
    const std::uint8_t b0 = word & 0xff;
    if (((word >> 8) & 0xff) == b0 && ((word >> 16) & 0xff) == b0 &&
        ((word >> 24) & 0xff) == b0) {
        return RepeatedBytes;
    }
    if (fitsSigned(sw, 16))
        return SignExt16;
    if ((word & 0xffff) == 0)
        return HalfwordPadded;
    const auto lo = static_cast<std::int16_t>(word & 0xffff);
    const auto hi = static_cast<std::int16_t>(word >> 16);
    if (fitsSigned(lo, 8) && fitsSigned(hi, 8))
        return TwoHalfwords;
    return Uncompressed;
}

unsigned
FpcCompressor::payloadBits(Pattern pattern)
{
    switch (pattern) {
      case ZeroRun:
        return 3; // run length - 1
      case SignExt4:
        return 4;
      case SignExt8:
        return 8;
      case SignExt16:
        return 16;
      case HalfwordPadded:
        return 16;
      case TwoHalfwords:
        return 16;
      case RepeatedBytes:
        return 8;
      case Uncompressed:
        return 32;
    }
    return 32;
}

std::vector<std::uint8_t>
FpcCompressor::compress(const BlockData &data) const
{
    BitWriter writer;

    unsigned i = 0;
    while (i < wordsPerBlock) {
        const std::uint32_t word = readWord(data, i);
        const Pattern pattern = classifyWord(word);

        writer.write(pattern, 3);
        switch (pattern) {
          case ZeroRun: {
            unsigned run = 1;
            while (run < 8 && i + run < wordsPerBlock &&
                   readWord(data, i + run) == 0) {
                ++run;
            }
            writer.write(run - 1, 3);
            i += run;
            continue;
          }
          case SignExt4:
            writer.write(word & 0xf, 4);
            break;
          case SignExt8:
            writer.write(word & 0xff, 8);
            break;
          case SignExt16:
            writer.write(word & 0xffff, 16);
            break;
          case HalfwordPadded:
            writer.write(word >> 16, 16);
            break;
          case TwoHalfwords:
            writer.write(word & 0xff, 8);
            writer.write((word >> 16) & 0xff, 8);
            break;
          case RepeatedBytes:
            writer.write(word & 0xff, 8);
            break;
          case Uncompressed:
            writer.write(word, 32);
            break;
        }
        ++i;
    }

    // 1-byte header + packed bits; fall back to raw storage when the
    // compressed image is not strictly smaller than the block.
    if (1 + writer.byteCount() >= blockBytes)
        return { data.begin(), data.end() };

    std::vector<std::uint8_t> ecb;
    ecb.reserve(1 + writer.byteCount());
    ecb.push_back(fpcHeader);
    ecb.insert(ecb.end(), writer.bytes().begin(), writer.bytes().end());
    return ecb;
}

unsigned
FpcCompressor::ecbSize(const BlockData &data) const
{
    return static_cast<unsigned>(compress(data).size());
}

BlockData
FpcCompressor::decompress(std::span<const std::uint8_t> ecb) const
{
    BlockData data{};
    if (ecb.size() == blockBytes) {
        std::memcpy(data.data(), ecb.data(), blockBytes);
        return data;
    }

    HLLC_ASSERT(!ecb.empty() && ecb[0] == fpcHeader,
                "not an FPC image");
    const std::vector<std::uint8_t> bits(ecb.begin() + 1, ecb.end());
    BitReader reader(bits);

    unsigned i = 0;
    while (i < wordsPerBlock) {
        const auto pattern = static_cast<Pattern>(reader.read(3));
        switch (pattern) {
          case ZeroRun: {
            const unsigned run =
                static_cast<unsigned>(reader.read(3)) + 1;
            HLLC_ASSERT(i + run <= wordsPerBlock);
            i += run; // words already zero-initialised
            continue;
          }
          case SignExt4: {
            const auto v = static_cast<std::uint32_t>(reader.read(4));
            writeWord(data, i, static_cast<std::uint32_t>(
                                   (static_cast<std::int32_t>(v << 28))
                                   >> 28));
            break;
          }
          case SignExt8: {
            const auto v = static_cast<std::uint32_t>(reader.read(8));
            writeWord(data, i, static_cast<std::uint32_t>(
                                   (static_cast<std::int32_t>(v << 24))
                                   >> 24));
            break;
          }
          case SignExt16: {
            const auto v = static_cast<std::uint32_t>(reader.read(16));
            writeWord(data, i, static_cast<std::uint32_t>(
                                   (static_cast<std::int32_t>(v << 16))
                                   >> 16));
            break;
          }
          case HalfwordPadded:
            writeWord(data, i,
                      static_cast<std::uint32_t>(reader.read(16)) << 16);
            break;
          case TwoHalfwords: {
            const auto lo = static_cast<std::uint32_t>(reader.read(8));
            const auto hi = static_cast<std::uint32_t>(reader.read(8));
            const auto lo_se = static_cast<std::uint16_t>(
                (static_cast<std::int16_t>(lo << 8)) >> 8);
            const auto hi_se = static_cast<std::uint16_t>(
                (static_cast<std::int16_t>(hi << 8)) >> 8);
            writeWord(data, i,
                      (static_cast<std::uint32_t>(hi_se) << 16) | lo_se);
            break;
          }
          case RepeatedBytes: {
            const auto b = static_cast<std::uint32_t>(reader.read(8));
            writeWord(data, i, b | (b << 8) | (b << 16) | (b << 24));
            break;
          }
          case Uncompressed:
            writeWord(data, i,
                      static_cast<std::uint32_t>(reader.read(32)));
            break;
        }
        ++i;
    }
    return data;
}

} // namespace hllc::compression
