#include "compression/compressor.hh"

#include "common/logging.hh"
#include "compression/bdi.hh"
#include "compression/cpack.hh"
#include "compression/fpc.hh"

namespace hllc::compression
{

std::string_view
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Bdi:
        return "BDI";
      case Scheme::Fpc:
        return "FPC";
      case Scheme::CPack:
        return "C-Pack";
    }
    return "?";
}

namespace
{

/** BlockCompressor facade over the paper's modified BDI. */
class BdiAdapter : public BlockCompressor
{
  public:
    Scheme scheme() const override { return Scheme::Bdi; }

    unsigned
    ecbSize(const BlockData &data) const override
    {
        return BdiCompressor::compress(data).ecbBytes;
    }

    std::vector<std::uint8_t>
    compress(const BlockData &data) const override
    {
        const CompressionResult result = BdiCompressor::compress(data);
        return BdiCompressor::encode(data, result.ce);
    }

    BlockData
    decompress(std::span<const std::uint8_t> ecb) const override
    {
        // Raw blocks carry no header; compressed ones lead with the CE.
        const Ce ce = ecb.size() == blockBytes
            ? Ce::Uncompressed
            : static_cast<Ce>(ecb[0]);
        return BdiCompressor::decode(ce, ecb);
    }

    Cycle decompressionCycles() const override { return 2; }
};

} // anonymous namespace

std::unique_ptr<BlockCompressor>
BlockCompressor::create(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Bdi:
        return std::make_unique<BdiAdapter>();
      case Scheme::Fpc:
        return std::make_unique<FpcCompressor>();
      case Scheme::CPack:
        return std::make_unique<CPackCompressor>();
    }
    panic("unknown compression scheme %d", static_cast<int>(scheme));
}

} // namespace hllc::compression
