/**
 * @file
 * Modified Base-Delta-Immediate compressor/decompressor.
 *
 * The compressor evaluates every encoding of ceTable() in parallel
 * (sequentially in software) and picks the one with the smallest ECB, as
 * the hardware CE selection tree does. encode()/decode() produce and
 * consume real ECB byte vectors so the fault-map/rearrangement pipeline
 * can be exercised end-to-end with bit fidelity.
 */

#ifndef HLLC_COMPRESSION_BDI_HH
#define HLLC_COMPRESSION_BDI_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"
#include "compression/encoding.hh"

namespace hllc::compression
{

/** Outcome of compressing one 64-byte block. */
struct CompressionResult
{
    Ce ce;              //!< chosen encoding
    unsigned cbBytes;   //!< compressed payload size
    unsigned ecbBytes;  //!< payload + CE header (what is written to NVM)

    CompressClass compressClass() const { return classify(ecbBytes); }
};

/**
 * Stateless BDI compression engine (2-cycle decompression latency is
 * modelled in the timing layer, not here).
 */
class BdiCompressor
{
  public:
    /** Pick the smallest applicable encoding for @p data. */
    static CompressionResult compress(const BlockData &data);

    /** Whether @p data can be represented with encoding @p ce. */
    static bool applicable(const BlockData &data, Ce ce);

    /**
     * Materialise the ECB byte vector of @p data under encoding @p ce.
     * Layout: [CE header byte][payload]; Uncompressed blocks are the raw
     * 64 bytes with no header. @p ce must be applicable.
     */
    static std::vector<std::uint8_t> encode(const BlockData &data, Ce ce);

    /** Inverse of encode(): rebuild the raw block from an ECB. */
    static BlockData decode(Ce ce, std::span<const std::uint8_t> ecb);
};

} // namespace hllc::compression

#endif // HLLC_COMPRESSION_BDI_HH
