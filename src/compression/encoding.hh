/**
 * @file
 * Compression encodings (CE) of the modified Base-Delta-Immediate scheme
 * used by the hybrid LLC (paper Table I).
 *
 * Unlike the original BDI proposal, the low-compression-ratio encodings
 * (B8D5..B8D7, B4D3) are kept: they let frames with only a few faulty
 * bytes hold blocks that cannot be compressed further. The extended
 * compressed block (ECB) is the compressed payload (CB) plus a 1-byte
 * header carrying the 4-bit CE id; the 11-bit SECDED code of the (527,516)
 * Hamming protection lives in a dedicated per-frame ECC field and is not
 * subject to byte disabling, so it does not count towards the ECB size.
 *
 * Resulting ECB sizes reproduce the paper's thresholds exactly: the
 * HCR/LCR boundary at 37 B (B8D4), B8D7 fitting a frame with up to six
 * dead bytes (58 B), and the CPth sweep points {30, 34, 37, 44, 51, 58,
 * 64}.
 */

#ifndef HLLC_COMPRESSION_ENCODING_HH
#define HLLC_COMPRESSION_ENCODING_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace hllc::compression
{

/** The 4-bit compression-encoding identifier. */
enum class Ce : std::uint8_t
{
    Zeros = 0,      //!< all-zero block
    Rep8,           //!< a single repeated 8-byte value
    B8D1,           //!< 8-byte base, 1-byte deltas
    B8D2,
    B8D3,
    B8D4,
    B8D5,           //!< low-compression encodings kept by the
    B8D6,           //!< modified BDI (paper Sec. II-B)
    B8D7,
    B4D1,           //!< 4-byte base, 1..3-byte deltas
    B4D2,
    B4D3,
    B2D1,           //!< 2-byte base, 1-byte deltas
    Uncompressed,
    NumCe
};

/** Number of distinct encodings (including Uncompressed). */
inline constexpr std::size_t numCe =
    static_cast<std::size_t>(Ce::NumCe);

/** Static properties of one compression encoding. */
struct CeInfo
{
    Ce ce;                      //!< encoding id
    std::string_view name;      //!< printable name, e.g. "B8D2"
    unsigned baseBytes;         //!< base value width (0 for special CEs)
    unsigned deltaBytes;        //!< delta width (0 for special CEs)
    unsigned cbBytes;           //!< compressed-block payload size
    unsigned ecbBytes;          //!< CB + 1-byte CE header
};

/** Property table indexed by CE id (paper Table I). */
const std::array<CeInfo, numCe> &ceTable();

/** Properties of encoding @p ce. */
const CeInfo &ceInfo(Ce ce);

/** ECB size in bytes of a block compressed with @p ce. */
unsigned ecbSize(Ce ce);

/**
 * HCR/LCR boundary: blocks whose ECB size is <= this are
 * high-compression-ratio blocks (paper Sec. II-B).
 */
inline constexpr unsigned hcrThresholdBytes = 37;

/** Coarse compressibility class of a block. */
enum class CompressClass { Hcr, Lcr, Incompressible };

/** Classify an ECB size into HCR / LCR / incompressible. */
CompressClass classify(unsigned ecb_bytes);

/** Printable name of a compressibility class. */
std::string_view compressClassName(CompressClass c);

/**
 * The candidate compression thresholds the Set Dueling mechanism arbitrates
 * between: the distinct ECB sizes in [30, 64] (paper Sec. IV-C).
 */
const std::vector<unsigned> &cpthCandidates();

} // namespace hllc::compression

#endif // HLLC_COMPRESSION_ENCODING_HH
