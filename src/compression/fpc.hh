/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood) for 64-byte blocks.
 *
 * Each 32-bit word is encoded with a 3-bit prefix and a variable-size
 * payload; runs of zero words collapse into a single prefix with a
 * 3-bit run length. The stored image is a 1-byte header followed by the
 * packed bitstream; blocks whose compressed image would not fit the
 * frame are stored raw (64 bytes).
 */

#ifndef HLLC_COMPRESSION_FPC_HH
#define HLLC_COMPRESSION_FPC_HH

#include "compression/compressor.hh"

namespace hllc::compression
{

class FpcCompressor : public BlockCompressor
{
  public:
    /** FPC word patterns (the 3-bit prefixes). */
    enum Pattern : std::uint8_t
    {
        ZeroRun = 0,        //!< run of 1..8 zero words
        SignExt4 = 1,       //!< 4-bit sign-extended word
        SignExt8 = 2,       //!< 8-bit sign-extended word
        SignExt16 = 3,      //!< 16-bit sign-extended word
        HalfwordPadded = 4, //!< upper halfword, lower zeros
        TwoHalfwords = 5,   //!< two sign-extended-byte halfwords
        RepeatedBytes = 6,  //!< four identical bytes
        Uncompressed = 7    //!< raw 32-bit word
    };

    Scheme scheme() const override { return Scheme::Fpc; }
    unsigned ecbSize(const BlockData &data) const override;
    std::vector<std::uint8_t>
    compress(const BlockData &data) const override;
    BlockData
    decompress(std::span<const std::uint8_t> ecb) const override;
    Cycle decompressionCycles() const override { return 5; }

    /** Cheapest pattern covering @p word (ZeroRun only for zero). */
    static Pattern classifyWord(std::uint32_t word);

    /** Payload bits of @p pattern (excluding the 3-bit prefix). */
    static unsigned payloadBits(Pattern pattern);
};

} // namespace hllc::compression

#endif // HLLC_COMPRESSION_FPC_HH
