/**
 * @file
 * C-Pack (Chen et al.): dictionary-based cache compression for 64-byte
 * blocks.
 *
 * Words are matched against a 16-entry FIFO dictionary; zero words,
 * full matches, partial (upper 24-/16-bit) matches and low-byte-only
 * words get short codes, everything else is emitted raw and pushed into
 * the dictionary. Compressor and decompressor maintain identical
 * dictionary state, so the stream is self-contained. Stored image:
 * 1-byte header + packed bitstream; raw 64-byte fallback.
 */

#ifndef HLLC_COMPRESSION_CPACK_HH
#define HLLC_COMPRESSION_CPACK_HH

#include "compression/compressor.hh"

namespace hllc::compression
{

class CPackCompressor : public BlockCompressor
{
  public:
    Scheme scheme() const override { return Scheme::CPack; }
    unsigned ecbSize(const BlockData &data) const override;
    std::vector<std::uint8_t>
    compress(const BlockData &data) const override;
    BlockData
    decompress(std::span<const std::uint8_t> ecb) const override;
    Cycle decompressionCycles() const override { return 8; }

    /** Dictionary entries (words). */
    static constexpr unsigned dictionarySize = 16;
};

} // namespace hllc::compression

#endif // HLLC_COMPRESSION_CPACK_HH
