#include "compression/encoding.hh"

#include "common/logging.hh"

namespace hllc::compression
{

namespace
{

constexpr unsigned
cbBytesFor(unsigned base, unsigned delta)
{
    // base value + one delta per remaining value in the 64-byte block
    return base + (blockBytes / base - 1) * delta;
}

constexpr std::array<CeInfo, numCe> g_table = {{
    { Ce::Zeros, "Zeros", 0, 0, 1, 2 },
    { Ce::Rep8, "Rep8", 8, 0, 8, 9 },
    { Ce::B8D1, "B8D1", 8, 1, cbBytesFor(8, 1), cbBytesFor(8, 1) + 1 },
    { Ce::B8D2, "B8D2", 8, 2, cbBytesFor(8, 2), cbBytesFor(8, 2) + 1 },
    { Ce::B8D3, "B8D3", 8, 3, cbBytesFor(8, 3), cbBytesFor(8, 3) + 1 },
    { Ce::B8D4, "B8D4", 8, 4, cbBytesFor(8, 4), cbBytesFor(8, 4) + 1 },
    { Ce::B8D5, "B8D5", 8, 5, cbBytesFor(8, 5), cbBytesFor(8, 5) + 1 },
    { Ce::B8D6, "B8D6", 8, 6, cbBytesFor(8, 6), cbBytesFor(8, 6) + 1 },
    { Ce::B8D7, "B8D7", 8, 7, cbBytesFor(8, 7), cbBytesFor(8, 7) + 1 },
    { Ce::B4D1, "B4D1", 4, 1, cbBytesFor(4, 1), cbBytesFor(4, 1) + 1 },
    { Ce::B4D2, "B4D2", 4, 2, cbBytesFor(4, 2), cbBytesFor(4, 2) + 1 },
    { Ce::B4D3, "B4D3", 4, 3, cbBytesFor(4, 3), cbBytesFor(4, 3) + 1 },
    { Ce::B2D1, "B2D1", 2, 1, cbBytesFor(2, 1), cbBytesFor(2, 1) + 1 },
    { Ce::Uncompressed, "Uncompressed", 0, 0, blockBytes, blockBytes },
}};

// Compile-time checks that the table reproduces the paper's sizes.
static_assert(g_table[static_cast<std::size_t>(Ce::B8D3)].ecbBytes == 30);
static_assert(g_table[static_cast<std::size_t>(Ce::B8D4)].ecbBytes == 37);
static_assert(g_table[static_cast<std::size_t>(Ce::B8D5)].ecbBytes == 44);
static_assert(g_table[static_cast<std::size_t>(Ce::B8D6)].ecbBytes == 51);
static_assert(g_table[static_cast<std::size_t>(Ce::B8D7)].ecbBytes == 58);
static_assert(g_table[static_cast<std::size_t>(Ce::B2D1)].ecbBytes == 34);

} // anonymous namespace

const std::array<CeInfo, numCe> &
ceTable()
{
    return g_table;
}

const CeInfo &
ceInfo(Ce ce)
{
    const auto idx = static_cast<std::size_t>(ce);
    HLLC_ASSERT(idx < numCe);
    return g_table[idx];
}

unsigned
ecbSize(Ce ce)
{
    return ceInfo(ce).ecbBytes;
}

CompressClass
classify(unsigned ecb_bytes)
{
    if (ecb_bytes <= hcrThresholdBytes)
        return CompressClass::Hcr;
    if (ecb_bytes < blockBytes)
        return CompressClass::Lcr;
    return CompressClass::Incompressible;
}

std::string_view
compressClassName(CompressClass c)
{
    switch (c) {
      case CompressClass::Hcr:
        return "HCR";
      case CompressClass::Lcr:
        return "LCR";
      case CompressClass::Incompressible:
        return "INC";
    }
    return "?";
}

const std::vector<unsigned> &
cpthCandidates()
{
    // Distinct ECB sizes in [30, 64]; B4D2 (35) and B4D3 (50) collapse
    // onto their 1-byte neighbours in the paper's sweep, giving the seven
    // published CPth points.
    static const std::vector<unsigned> candidates =
        { 30, 34, 37, 44, 51, 58, 64 };
    return candidates;
}

} // namespace hllc::compression
