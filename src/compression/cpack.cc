#include "compression/cpack.hh"

#include <array>
#include <cstring>

#include "common/bitstream.hh"
#include "common/logging.hh"

namespace hllc::compression
{

namespace
{

constexpr unsigned wordsPerBlock = blockBytes / 4;
constexpr std::uint8_t cpackHeader = 0x43; // 'C'

// Code points (C-Pack Table 1). Two- and four-bit codes; the 4-bit
// codes share the 11 prefix.
enum Code : std::uint8_t
{
    Zzzz = 0b00,   //!< zero word
    Xxxx = 0b01,   //!< no match: raw word, push
    Mmmm = 0b10,   //!< full dictionary match
    LongPrefix = 0b11, //!< escape to the 2-bit subcode below
    // Subcodes following the 11 prefix:
    SubMmxx = 0b00, //!< upper-16-bit match + raw low half, push
    SubZzzx = 0b01, //!< only the low byte is non-zero
    SubMmmx = 0b10  //!< upper-24-bit match + raw low byte, push
};

/** FIFO dictionary shared (in structure) by both directions. */
class Dictionary
{
  public:
    std::uint32_t entry(unsigned i) const { return entries_[i]; }
    unsigned size() const { return count_; }

    void
    push(std::uint32_t word)
    {
        entries_[next_] = word;
        next_ = (next_ + 1) % CPackCompressor::dictionarySize;
        if (count_ < CPackCompressor::dictionarySize)
            ++count_;
    }

    /** Best match index and kind for @p word; -1 if no useful match. */
    int
    findFull(std::uint32_t word) const
    {
        for (unsigned i = 0; i < count_; ++i)
            if (entries_[i] == word)
                return static_cast<int>(i);
        return -1;
    }

    int
    findUpper24(std::uint32_t word) const
    {
        for (unsigned i = 0; i < count_; ++i)
            if ((entries_[i] & 0xffffff00u) == (word & 0xffffff00u))
                return static_cast<int>(i);
        return -1;
    }

    int
    findUpper16(std::uint32_t word) const
    {
        for (unsigned i = 0; i < count_; ++i)
            if ((entries_[i] & 0xffff0000u) == (word & 0xffff0000u))
                return static_cast<int>(i);
        return -1;
    }

  private:
    std::array<std::uint32_t, CPackCompressor::dictionarySize>
        entries_{};
    unsigned next_ = 0;
    unsigned count_ = 0;
};

std::uint32_t
readWord(const BlockData &data, unsigned i)
{
    std::uint32_t w;
    std::memcpy(&w, data.data() + 4u * i, 4);
    return w;
}

} // anonymous namespace

std::vector<std::uint8_t>
CPackCompressor::compress(const BlockData &data) const
{
    BitWriter writer;
    Dictionary dict;

    for (unsigned i = 0; i < wordsPerBlock; ++i) {
        const std::uint32_t word = readWord(data, i);

        if (word == 0) {
            writer.write(Zzzz, 2);
            continue;
        }
        if ((word & 0xffffff00u) == 0) {
            writer.write(LongPrefix, 2);
            writer.write(SubZzzx, 2);
            writer.write(word & 0xff, 8);
            continue;
        }
        int idx = dict.findFull(word);
        if (idx >= 0) {
            writer.write(Mmmm, 2);
            writer.write(static_cast<std::uint64_t>(idx), 4);
            continue;
        }
        idx = dict.findUpper24(word);
        if (idx >= 0) {
            writer.write(LongPrefix, 2);
            writer.write(SubMmmx, 2);
            writer.write(static_cast<std::uint64_t>(idx), 4);
            writer.write(word & 0xff, 8);
            dict.push(word);
            continue;
        }
        idx = dict.findUpper16(word);
        if (idx >= 0) {
            writer.write(LongPrefix, 2);
            writer.write(SubMmxx, 2);
            writer.write(static_cast<std::uint64_t>(idx), 4);
            writer.write(word & 0xffff, 16);
            dict.push(word);
            continue;
        }
        writer.write(Xxxx, 2);
        writer.write(word, 32);
        dict.push(word);
    }

    if (1 + writer.byteCount() >= blockBytes)
        return { data.begin(), data.end() };

    std::vector<std::uint8_t> ecb;
    ecb.reserve(1 + writer.byteCount());
    ecb.push_back(cpackHeader);
    ecb.insert(ecb.end(), writer.bytes().begin(), writer.bytes().end());
    return ecb;
}

unsigned
CPackCompressor::ecbSize(const BlockData &data) const
{
    return static_cast<unsigned>(compress(data).size());
}

BlockData
CPackCompressor::decompress(std::span<const std::uint8_t> ecb) const
{
    BlockData data{};
    if (ecb.size() == blockBytes) {
        std::memcpy(data.data(), ecb.data(), blockBytes);
        return data;
    }

    HLLC_ASSERT(!ecb.empty() && ecb[0] == cpackHeader,
                "not a C-Pack image");
    const std::vector<std::uint8_t> bits(ecb.begin() + 1, ecb.end());
    BitReader reader(bits);
    Dictionary dict;

    for (unsigned i = 0; i < wordsPerBlock; ++i) {
        std::uint32_t word = 0;
        const auto first = static_cast<unsigned>(reader.read(2));
        if (first == Zzzz) {
            word = 0;
        } else if (first == Xxxx) {
            word = static_cast<std::uint32_t>(reader.read(32));
            dict.push(word);
        } else if (first == Mmmm) {
            const auto idx = static_cast<unsigned>(reader.read(4));
            word = dict.entry(idx);
        } else {
            // 11 prefix: 2-bit subcode dispatch.
            const auto sub = static_cast<unsigned>(reader.read(2));
            if (sub == SubMmxx) {
                const auto idx = static_cast<unsigned>(reader.read(4));
                const auto low =
                    static_cast<std::uint32_t>(reader.read(16));
                word = (dict.entry(idx) & 0xffff0000u) | low;
                dict.push(word);
            } else if (sub == SubZzzx) {
                word = static_cast<std::uint32_t>(reader.read(8));
            } else if (sub == SubMmmx) {
                const auto idx = static_cast<unsigned>(reader.read(4));
                const auto low =
                    static_cast<std::uint32_t>(reader.read(8));
                word = (dict.entry(idx) & 0xffffff00u) | low;
                dict.push(word);
            } else {
                panic("invalid C-Pack subcode");
            }
        }
        std::memcpy(data.data() + 4u * i, &word, 4);
    }
    return data;
}

} // namespace hllc::compression
