/**
 * @file
 * A minimal fixed-size thread pool for the embarrassingly parallel
 * policy×mix grids the experiments run.
 *
 * Design constraints (see DESIGN.md §7):
 *  - no work stealing: one mutex-protected FIFO queue shared by all
 *    workers, because grid cells are seconds-long and queue contention
 *    is irrelevant at that granularity;
 *  - determinism is the caller's job: tasks must derive any randomness
 *    from their grid coordinates (never from thread id or execution
 *    order) and write results into pre-sized slots;
 *  - jobs == 1 bypasses the workers entirely, so the serial path stays
 *    exercisable (and debuggable) with the same code.
 */

#ifndef HLLC_COMMON_THREAD_POOL_HH
#define HLLC_COMMON_THREAD_POOL_HH

#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/sync.hh"
#include "common/thread_annotations.hh"

namespace hllc
{

/**
 * Fixed worker count, FIFO dispatch, futures out. stop() (or
 * destruction) drains the queue deterministically: every task accepted
 * by submit() before the stop runs to completion, and every submit()
 * attempted after the stop began throws std::runtime_error — a task is
 * never silently enqueued to a pool whose workers are gone.
 */
class ThreadPool
{
  public:
    /** @param num_workers worker threads; 0 is clamped to 1. */
    explicit ThreadPool(unsigned num_workers);

    /** stop()s if the caller has not already. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Drain and join: runs every task already accepted, then joins the
     * workers. The accept/reject decision is made under the queue lock,
     * so a submit() racing a stop() either got in before it (its task is
     * guaranteed to run) or throws — never a silent enqueue. Idempotent:
     * the first caller joins, later calls return immediately.
     */
    void stop();

    /**
     * Queue @p task for execution; the returned future yields its result
     * or rethrows the exception it exited with. Throws
     * std::runtime_error once stop() has begun (a silently dropped task
     * would wait on its future forever).
     */
    template <typename F>
    std::future<std::invoke_result_t<F>>
    submit(F task)
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only but std::function requires copyable
        // targets, so the task rides behind a shared_ptr.
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::move(task));
        std::future<R> result = packaged->get_future();
        {
            MutexLock lock(mutex_);
            if (stopping_) {
                throw std::runtime_error(
                    "ThreadPool::submit() after stop(): the task would"
                    " never run");
            }
            queue_.emplace_back([packaged] { (*packaged)(); });
        }
        available_.notifyOne();
        return result;
    }

  private:
    void workerLoop() HLLC_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar available_;
    std::deque<std::function<void()>> queue_ HLLC_GUARDED_BY(mutex_);
    bool stopping_ HLLC_GUARDED_BY(mutex_) = false;
    bool joined_ HLLC_GUARDED_BY(mutex_) = false;
};

/**
 * Number of parallel jobs to use by default: the HLLC_JOBS environment
 * variable if set (values < 1 clamp to 1), otherwise
 * hardware_concurrency().
 */
unsigned defaultJobs();

/**
 * Run body(0) .. body(n - 1) on @p jobs workers (inline when jobs <= 1
 * or n <= 1) and wait for all of them. Iterations are dispatched in
 * index order; if any iteration throws, the first (lowest-index)
 * exception is rethrown after every iteration has finished.
 *
 * The iteration index is the only coupling between body and schedule:
 * bodies must key any randomness on it, not on thread identity.
 */
void parallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace hllc

#endif // HLLC_COMMON_THREAD_POOL_HH
