/**
 * @file
 * Capability-annotated synchronisation primitives.
 *
 * Thin wrappers over std::mutex / std::condition_variable that carry
 * the Clang thread-safety attributes libstdc++'s types lack, so code
 * holding state under a lock can say so in the type system:
 *
 *     Mutex mutex_;
 *     std::deque<Task> queue_ HLLC_GUARDED_BY(mutex_);
 *
 *     void push(Task t) {
 *         MutexLock lock(mutex_);   // scoped capability
 *         queue_.push_back(std::move(t));
 *     }                             // released here
 *
 * Under -Wthread-safety (CI's clang-tsa job) a read of queue_ without
 * the lock is a compile error; under GCC everything reduces to the
 * plain std primitives with zero overhead.
 */

#ifndef HLLC_COMMON_SYNC_HH
#define HLLC_COMMON_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.hh"

namespace hllc
{

/** std::mutex as a Clang thread-safety capability. */
class HLLC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() HLLC_ACQUIRE() { mutex_.lock(); }
    void unlock() HLLC_RELEASE() { mutex_.unlock(); }
    bool tryLock() HLLC_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

    /** The wrapped mutex, for CondVar only. */
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/** Scoped lock (std::lock_guard with the scoped-capability attribute). */
class HLLC_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) HLLC_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() HLLC_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable over hllc::Mutex. wait() requires the mutex held —
 * which the analysis can now check — and, like std::condition_variable,
 * releases it while blocked and reacquires before returning.
 */
class CondVar
{
  public:
    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    void
    wait(Mutex &mutex) HLLC_REQUIRES(mutex)
    {
        // Adopt the already-held native mutex for the wait protocol,
        // then release the unique_lock without unlocking: ownership
        // stays with the caller's MutexLock.
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    /**
     * Wait for up to @p timeout_ms milliseconds (monotonic clock).
     * Returns false on timeout, true when notified (possibly
     * spuriously — re-check the predicate either way).
     */
    bool
    waitFor(Mutex &mutex, std::uint64_t timeout_ms) HLLC_REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> lock(mutex.native(),
                                          std::adopt_lock);
        const auto status =
            cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms));
        lock.release();
        return status == std::cv_status::no_timeout;
    }

  private:
    std::condition_variable cv_;
};

} // namespace hllc

#endif // HLLC_COMMON_SYNC_HH
