/**
 * @file
 * Clang thread-safety-analysis attributes behind portable macros.
 *
 * Under Clang with -Wthread-safety (the CI `clang-tsa` job builds with
 * it plus -Werror), these expand to the capability attributes and the
 * compiler proves at compile time that every access to a
 * HLLC_GUARDED_BY member happens with its mutex held. Under GCC the
 * macros compile away entirely, so the annotations cost nothing in the
 * default toolchain.
 *
 * The annotated primitives live in common/sync.hh: std::mutex itself
 * carries no capability attributes under libstdc++, so the analysis
 * needs the thin hllc::Mutex / MutexLock / CondVar wrappers.
 */

#ifndef HLLC_COMMON_THREAD_ANNOTATIONS_HH
#define HLLC_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HLLC_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef HLLC_TS_ATTR
#define HLLC_TS_ATTR(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define HLLC_CAPABILITY(x) HLLC_TS_ATTR(capability(x))
/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define HLLC_SCOPED_CAPABILITY HLLC_TS_ATTR(scoped_lockable)
/** Member readable/writable only with capability @p x held. */
#define HLLC_GUARDED_BY(x) HLLC_TS_ATTR(guarded_by(x))
/** Pointee guarded by @p x (the pointer itself is not). */
#define HLLC_PT_GUARDED_BY(x) HLLC_TS_ATTR(pt_guarded_by(x))
/** Caller must hold the listed capabilities. */
#define HLLC_REQUIRES(...) \
    HLLC_TS_ATTR(requires_capability(__VA_ARGS__))
/** Caller must NOT hold them (deadlock prevention). */
#define HLLC_EXCLUDES(...) HLLC_TS_ATTR(locks_excluded(__VA_ARGS__))
/** Function acquires the capability and holds it on return. */
#define HLLC_ACQUIRE(...) \
    HLLC_TS_ATTR(acquire_capability(__VA_ARGS__))
/** Function releases the capability. */
#define HLLC_RELEASE(...) \
    HLLC_TS_ATTR(release_capability(__VA_ARGS__))
/** Function acquires when it returns the given value. */
#define HLLC_TRY_ACQUIRE(...) \
    HLLC_TS_ATTR(try_acquire_capability(__VA_ARGS__))
/** Escape hatch: the analysis is wrong or too weak here. */
#define HLLC_NO_THREAD_SAFETY_ANALYSIS \
    HLLC_TS_ATTR(no_thread_safety_analysis)

#endif // HLLC_COMMON_THREAD_ANNOTATIONS_HH
