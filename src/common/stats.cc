#include "common/stats.hh"

#include "common/logging.hh"

namespace hllc
{

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), width_(bucket_width)
{
    HLLC_ASSERT(bucket_count > 0);
    HLLC_ASSERT(bucket_width > 0.0);
}

void
Histogram::sample(double v)
{
    if (v < 0.0)
        v = 0.0;
    auto idx = static_cast<std::size_t>(v / width_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
    ++samples_;
    sum_ += v;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, std::size_t bucket_count,
                     double bucket_width)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name,
                                 Histogram(bucket_count,
                                           bucket_width)).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name_ << '.' << name << ' ' << c.value() << '\n';
    for (const auto &[name, h] : histograms_) {
        os << name_ << '.' << name << ".count " << h.count() << '\n';
        os << name_ << '.' << name << ".mean " << h.mean() << '\n';
    }
}

} // namespace hllc
