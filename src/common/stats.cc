#include "common/stats.hh"

#include <cmath>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/serialize.hh"

namespace hllc
{

Histogram::Histogram(std::size_t bucket_count, double bucket_width)
    : buckets_(bucket_count, 0), width_(bucket_width)
{
    HLLC_ASSERT(bucket_count > 0);
    HLLC_ASSERT(bucket_width > 0.0);
}

void
Histogram::sample(double v)
{
    // NaN would poison the sum and make the bucket index undefined:
    // drop it, visibly.
    if (std::isnan(v)) {
        ++nanDropped_;
        return;
    }
    // Negative samples clamp into bucket 0 (a negative value cast to
    // size_t would index an arbitrary bucket).
    if (v < 0.0)
        v = 0.0;
    // Compare before the cast: +inf and anything past the last bucket
    // clamp into it without ever casting an out-of-range double.
    const double top = width_ * static_cast<double>(buckets_.size());
    const std::size_t idx = v >= top
        ? buckets_.size() - 1
        : static_cast<std::size_t>(v / width_);
    ++buckets_[idx];
    ++samples_;
    sum_ += v;
}

double
Histogram::mean() const
{
    return samples_ == 0 ? 0.0 : sum_ / static_cast<double>(samples_);
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    sum_ = 0.0;
    nanDropped_ = 0;
}

void
Histogram::snapshot(serial::Encoder &enc) const
{
    enc.u64(buckets_.size());
    enc.f64(width_);
    enc.u64(samples_);
    enc.f64(sum_);
    enc.u64(nanDropped_);
    enc.u64Vec(buckets_);
}

void
Histogram::restore(serial::Decoder &dec)
{
    const std::uint64_t count = dec.u64();
    const double width = dec.f64();
    if (count != buckets_.size() || width != width_) {
        throw IoError("histogram snapshot bucket configuration mismatch");
    }
    const std::uint64_t samples = dec.u64();
    const double sum = dec.f64();
    const std::uint64_t nan_dropped = dec.u64();
    std::vector<std::uint64_t> buckets = dec.u64Vec();
    if (buckets.size() != buckets_.size())
        throw IoError("histogram snapshot truncated");
    buckets_ = std::move(buckets);
    samples_ = samples;
    sum_ = sum;
    nanDropped_ = nan_dropped;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatGroup::histogram(const std::string &name, std::size_t bucket_count,
                     double bucket_width)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name,
                                 Histogram(bucket_count,
                                           bucket_width)).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        throw StatError("stat group '" + name_ + "' has no counter '" +
                        name + "'");
    }
    return it->second.value();
}

std::optional<std::uint64_t>
StatGroup::tryCounterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it == counters_.end())
        return std::nullopt;
    return it->second.value();
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, h] : histograms_)
        h.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name_ << '.' << name << ' ' << c.value() << '\n';
    for (const auto &[name, h] : histograms_) {
        os << name_ << '.' << name << ".count " << h.count() << '\n';
        os << name_ << '.' << name << ".mean " << h.mean() << '\n';
        if (h.nanDropped() > 0) {
            os << name_ << '.' << name << ".nan_dropped "
               << h.nanDropped() << '\n';
        }
    }
}

void
StatGroup::snapshot(serial::Encoder &enc) const
{
    enc.str(name_);
    enc.u64(counters_.size());
    for (const auto &[name, c] : counters_) {
        enc.str(name);
        enc.u64(c.value());
    }
    enc.u64(histograms_.size());
    for (const auto &[name, h] : histograms_) {
        enc.str(name);
        h.snapshot(enc);
    }
}

void
StatGroup::restore(serial::Decoder &dec)
{
    const std::string name = dec.str();
    if (name != name_) {
        throw IoError("stat snapshot is for group '" + name +
                      "', not '" + name_ + "'");
    }

    // Decode fully before mutating so a truncated snapshot leaves the
    // group unchanged.
    const std::uint64_t num_counters = dec.u64();
    std::map<std::string, Counter> counters;
    for (std::uint64_t i = 0; i < num_counters; ++i) {
        const std::string cname = dec.str();
        Counter c;
        c += dec.u64();
        counters.emplace(cname, c);
    }

    const std::uint64_t num_histograms = dec.u64();
    std::map<std::string, Histogram> histograms;
    for (std::uint64_t i = 0; i < num_histograms; ++i) {
        const std::string hname = dec.str();
        // Peek the configuration so the restored histogram matches.
        auto it = histograms_.find(hname);
        Histogram h = it != histograms_.end()
            ? Histogram(it->second.bucketCount(), it->second.bucketWidth())
            : Histogram();
        if (it == histograms_.end()) {
            // Unknown histogram: rebuild it with the snapshot's own
            // configuration by decoding twice (first pass learns it).
            serial::Decoder probe = dec;
            const std::uint64_t count = probe.u64();
            const double width = probe.f64();
            if (count == 0 || count > (1u << 20) || !(width > 0.0))
                throw IoError("histogram snapshot config is implausible");
            h = Histogram(static_cast<std::size_t>(count), width);
        }
        h.restore(dec);
        histograms.emplace(hname, std::move(h));
    }

    // Apply in place instead of swapping the maps: callers on the hot
    // path (the hybrid LLC) cache Counter addresses, and std::map nodes
    // are pointer-stable — as long as we never erase them. Counters
    // absent from the snapshot reset to zero, unknown ones are created.
    for (auto &[cname, c] : counters_)
        c.reset();
    for (const auto &[cname, c] : counters) {
        Counter &dst = counter(cname);
        dst.reset();
        dst += c.value();
    }
    for (auto &[hname, h] : histograms_)
        h.reset();
    for (auto &[hname, h] : histograms) {
        auto it = histograms_.find(hname);
        if (it == histograms_.end())
            histograms_.emplace(hname, std::move(h));
        else
            it->second = std::move(h);
    }
}

} // namespace hllc
