/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in hllc (endurance draws, workload synthesis,
 * mix selection) flows through Xoshiro256StarStar so that experiments are
 * reproducible from a single seed. The generator is splittable: child
 * streams derived with fork() are statistically independent, letting each
 * subsystem own a private stream while staying deterministic regardless of
 * call interleaving.
 */

#ifndef HLLC_COMMON_RNG_HH
#define HLLC_COMMON_RNG_HH

#include <cstdint>

namespace hllc
{

namespace serial
{
class Encoder;
class Decoder;
} // namespace serial

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded through
 * SplitMix64 so any 64-bit seed (including 0) yields a good state.
 */
class Xoshiro256StarStar
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /**
     * Standard normal variate (Box-Muller, one value per call; the spare
     * is cached).
     */
    double nextGaussian();

    /**
     * Normal variate with mean @p mu and coefficient of variation @p cv
     * (sigma = cv * mu), truncated below at @p floor to keep physically
     * meaningless non-positive endurance draws out of the model.
     */
    double nextNormalCv(double mu, double cv, double floor = 1.0);

    /**
     * Derive an independent child stream. The child is seeded from this
     * stream's next output mixed with @p salt, so forks with distinct
     * salts never collide.
     */
    Xoshiro256StarStar fork(std::uint64_t salt);

    /**
     * Serialise the full generator state (including the cached spare
     * Gaussian), so a restored stream continues bit-identically.
     */
    void snapshot(serial::Encoder &enc) const;

    /** Restore state written by snapshot(); throws IoError on junk. */
    void restore(serial::Decoder &dec);

  private:
    std::uint64_t s_[4];
    double spareGaussian_ = 0.0;
    bool hasSpare_ = false;
};

/**
 * Stateless 64-bit mix function (SplitMix64 finalizer). Used to derive
 * deterministic per-block value seeds from (block id, version) pairs
 * without storing any state.
 */
std::uint64_t mix64(std::uint64_t x);

/**
 * Deterministic child stream keyed on (@p seed, @p i, @p j): a fresh
 * root generator seeded with @p seed is forked on @p i and then on
 * @p j. This is how parallel grid cells (mix index i, policy index j)
 * obtain independent randomness — the result depends only on the three
 * keys, never on which thread runs the cell or in what order cells are
 * submitted, so jobs=1 and jobs=N runs are bit-identical.
 */
Xoshiro256StarStar childStream(std::uint64_t seed, std::uint64_t i,
                               std::uint64_t j = 0);

/** Convenience: a 64-bit seed drawn from childStream(seed, i, j). */
std::uint64_t childSeed(std::uint64_t seed, std::uint64_t i,
                        std::uint64_t j = 0);

} // namespace hllc

#endif // HLLC_COMMON_RNG_HH
