/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * A StatGroup owns named scalar counters and histograms. Subsystems expose
 * their group so experiments can dump everything uniformly; tests can read
 * individual stats by name. Groups serialise through common/serialize.hh
 * so counter state survives checkpoint/resume (a resumed run dumps the
 * same totals as an uninterrupted one).
 */

#ifndef HLLC_COMMON_STATS_HH
#define HLLC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace hllc::serial
{
class Encoder;
class Decoder;
} // namespace hllc::serial

namespace hllc
{

/** A named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class Histogram
{
  public:
    /**
     * @param bucket_count number of equal-width buckets
     * @param bucket_width width of each bucket; samples beyond the last
     *        bucket are clamped into it
     */
    Histogram(std::size_t bucket_count = 16, double bucket_width = 1.0);

    /**
     * Record one sample. Negative values clamp into bucket 0; NaN is
     * dropped (counted by nanDropped(), not by count()).
     */
    void sample(double v);

    std::uint64_t count() const { return samples_; }
    double mean() const;
    /** Number of samples that fell in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t bucketCount() const { return buckets_.size(); }
    double bucketWidth() const { return width_; }
    /** NaN samples dropped instead of recorded. */
    std::uint64_t nanDropped() const { return nanDropped_; }
    void reset();

    /** Serialise configuration and contents. */
    void snapshot(serial::Encoder &enc) const;
    /**
     * Restore state written by snapshot(); throws IoError when the
     * bucket configuration does not match this histogram's.
     */
    void restore(serial::Decoder &dec);

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t samples_ = 0;
    double sum_ = 0.0;
    std::uint64_t nanDropped_ = 0;
};

/**
 * A registry of named counters/histograms belonging to one component.
 * Names are unique within the group; registration of a duplicate name is
 * a simulator bug.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Create-or-find a counter named @p name. */
    Counter &counter(const std::string &name);
    /** Create-or-find a histogram named @p name. */
    Histogram &histogram(const std::string &name,
                         std::size_t bucket_count = 16,
                         double bucket_width = 1.0);

    /**
     * Value of the counter @p name. Throws StatError when no counter of
     * that name was ever registered — a silent 0 would hide the typo.
     * Probe with tryCounterValue()/hasCounter() when absence is valid.
     */
    std::uint64_t counterValue(const std::string &name) const;

    /** Value of counter @p name, or nullopt if it was never created. */
    std::optional<std::uint64_t>
    tryCounterValue(const std::string &name) const;

    /** Whether a counter named @p name exists. */
    bool hasCounter(const std::string &name) const;

    /** All counters, in name order (exporters iterate this). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    /** All histograms, in name order. */
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Zero every stat in the group. */
    void resetAll();

    /** Write "group.name value" lines for every stat. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

    /**
     * Serialise the group name and every stat. Restoring requires a
     * group of the same name; counters/histograms absent from the
     * snapshot are reset, ones absent from the group are created.
     */
    void snapshot(serial::Encoder &enc) const;
    /** Restore state written by snapshot(); throws IoError on mismatch. */
    void restore(serial::Decoder &dec);

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace hllc

#endif // HLLC_COMMON_STATS_HH
