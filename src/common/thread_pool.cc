#include "common/thread_pool.hh"

#include <cstdlib>

#include "common/failpoint.hh"
#include "common/interrupt.hh"

namespace hllc
{

namespace
{

/**
 * Chaos instrumentation around every parallelFor body: an injected
 * throw proves worker exceptions stay contained to their index, an
 * injected stall (25 ms, interruptible) widens scheduling windows so
 * watchdog/drain races actually happen under test.
 */
void
runInstrumentedBody(const std::function<void(std::size_t)> &body,
                    std::size_t i)
{
    HLLC_FAILPOINT("threadpool.task.throw");
    if (failpoint::shouldFail("threadpool.task.stall"))
        interruptibleSleepMs(25);
    body(i);
}

} // anonymous namespace

ThreadPool::ThreadPool(unsigned num_workers)
{
    if (num_workers == 0)
        num_workers = 1;
    workers_.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop();
}

void
ThreadPool::stop()
{
    bool join_here = false;
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        if (!joined_) {
            joined_ = true;
            join_here = true;
        }
    }
    available_.notifyAll();
    if (!join_here)
        return;
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && queue_.empty())
                available_.wait(mutex_);
            // Drain-on-stop: only exit once the queue is empty, so work
            // submitted before destruction still completes.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task captures any exception in its future
    }
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("HLLC_JOBS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
        return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
parallelFor(unsigned jobs, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            runInstrumentedBody(body, i);
        return;
    }

    ThreadPool pool(jobs);
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        pending.push_back(
            pool.submit([&body, i] { runInstrumentedBody(body, i); }));

    // Wait on every iteration (even after a failure, so that bodies
    // referencing caller state never outlive this frame), then rethrow
    // the lowest-index exception for a deterministic error report.
    std::exception_ptr first_error;
    for (auto &future : pending) {
        try {
            future.get();
        } catch (...) {
            if (!first_error)
                first_error = std::current_exception();
        }
    }
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace hllc
