/**
 * @file
 * Minimal validated number parsing for the CLI tools and bench drivers.
 *
 * std::atoi silently turns "12abc" and "xyz" into usable-looking values
 * (12 and 0); these helpers instead parse the whole token or return
 * nothing, so the tools can reject malformed arguments with a usage
 * message instead of running a subtly wrong experiment.
 */

#ifndef HLLC_COMMON_ARGPARSE_HH
#define HLLC_COMMON_ARGPARSE_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>

#include "common/numfmt.hh"

namespace hllc
{

/** Parse a full decimal token into [min, max]; nullopt on any junk. */
inline std::optional<std::uint64_t>
parseU64(const char *token, std::uint64_t min = 0,
         std::uint64_t max = UINT64_MAX)
{
    if (token == nullptr || *token == '\0' || *token == '-')
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(token, &end, 10);
    if (errno != 0 || end == token || *end != '\0')
        return std::nullopt;
    if (parsed < min || parsed > max)
        return std::nullopt;
    return static_cast<std::uint64_t>(parsed);
}

/** Parse a full decimal token into an unsigned within [min, max]. */
inline std::optional<unsigned>
parseUnsigned(const char *token, unsigned min = 0,
              unsigned max = UINT32_MAX)
{
    const auto v = parseU64(token, min, max);
    if (!v)
        return std::nullopt;
    return static_cast<unsigned>(*v);
}

/**
 * Parse a full floating-point token; nullopt on junk or non-finite.
 * from_chars-based (common/numfmt contract): a de_DE locale neither
 * accepts "0,25" nor rejects "0.25" here.
 */
inline std::optional<double>
parseDouble(const char *token)
{
    if (token == nullptr || *token == '\0')
        return std::nullopt;
    double parsed = 0.0;
    if (!parseDoubleExact(token, parsed) || !std::isfinite(parsed))
        return std::nullopt;
    return parsed;
}

} // namespace hllc

#endif // HLLC_COMMON_ARGPARSE_HH
