/**
 * @file
 * Fundamental types and constants shared by every hllc subsystem.
 */

#ifndef HLLC_COMMON_TYPES_HH
#define HLLC_COMMON_TYPES_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace hllc
{

/** Byte-granular physical/virtual address. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated time in seconds (forecast granularity). */
using Seconds = double;

/** Identifier of a core in the simulated CMP. */
using CoreId = std::uint8_t;

/** Cache block (line) size used throughout the hierarchy, in bytes. */
inline constexpr std::size_t blockBytes = 64;

/** log2(blockBytes); offset bits inside a block. */
inline constexpr unsigned blockOffsetBits = 6;

/** Raw contents of one cache block. */
using BlockData = std::array<std::uint8_t, blockBytes>;

/** Clock frequency of the simulated cores (Table IV: 3.5 GHz). */
inline constexpr double coreFrequencyHz = 3.5e9;

/** Seconds in one (30-day) month, the unit of the lifetime plots. */
inline constexpr Seconds secondsPerMonth = 30.0 * 24.0 * 3600.0;

/** Convert cycles of simulated execution to wall-clock seconds. */
inline Seconds
cyclesToSeconds(Cycle cycles)
{
    return static_cast<Seconds>(cycles) / coreFrequencyHz;
}

/** Convert wall-clock seconds to cycles of simulated execution. */
inline Cycle
secondsToCycles(Seconds seconds)
{
    return static_cast<Cycle>(seconds * coreFrequencyHz);
}

/** Block-aligned address of the block containing @p addr. */
inline Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(blockBytes - 1);
}

/** Block number (address / 64) of @p addr. */
inline Addr
blockNumber(Addr addr)
{
    return addr >> blockOffsetBits;
}

} // namespace hllc

#endif // HLLC_COMMON_TYPES_HH
