#include "common/metrics.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/error.hh"
#include "common/failpoint.hh"
#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/serialize.hh"
#include "common/stats.hh"

namespace hllc::metrics
{

void
TimeSeries::snapshot(serial::Encoder &enc) const
{
    enc.f64Vec(values_);
}

void
TimeSeries::restore(serial::Decoder &dec)
{
    values_ = dec.f64Vec();
}

HistogramSeries::HistogramSeries(std::size_t bucket_count,
                                 double bucket_width)
    : bucketCount_(bucket_count), bucketWidth_(bucket_width)
{
    HLLC_ASSERT(bucket_count > 0);
    HLLC_ASSERT(bucket_width > 0.0);
}

void
HistogramSeries::appendRow(std::vector<std::uint64_t> row)
{
    HLLC_ASSERT(row.size() == bucketCount_);
    rows_.push_back(std::move(row));
}

void
HistogramSeries::snapshot(serial::Encoder &enc) const
{
    enc.u64(bucketCount_);
    enc.f64(bucketWidth_);
    enc.u64(rows_.size());
    for (const auto &row : rows_)
        enc.u64Vec(row);
}

void
HistogramSeries::restore(serial::Decoder &dec)
{
    const std::uint64_t count = dec.u64();
    const double width = dec.f64();
    if (count != bucketCount_ || width != bucketWidth_)
        throw IoError("histogram series bucket configuration mismatch");
    const std::uint64_t num_rows = dec.u64();
    std::vector<std::vector<std::uint64_t>> rows;
    rows.reserve(num_rows);
    for (std::uint64_t i = 0; i < num_rows; ++i) {
        std::vector<std::uint64_t> row = dec.u64Vec();
        if (row.size() != bucketCount_)
            throw IoError("histogram series row has wrong bucket count");
        rows.push_back(std::move(row));
    }
    rows_ = std::move(rows);
}

TimeSeries &
MetricRegistry::series(const std::string &name)
{
    return series_[name];
}

const TimeSeries *
MetricRegistry::findSeries(const std::string &name) const
{
    auto it = series_.find(name);
    return it == series_.end() ? nullptr : &it->second;
}

HistogramSeries &
MetricRegistry::histogramSeries(const std::string &name,
                                std::size_t bucket_count,
                                double bucket_width)
{
    auto it = histogramSeries_.find(name);
    if (it == histogramSeries_.end()) {
        it = histogramSeries_.emplace(
            name, HistogramSeries(bucket_count, bucket_width)).first;
    }
    return it->second;
}

void
MetricRegistry::clear()
{
    series_.clear();
    histogramSeries_.clear();
}

void
MetricRegistry::snapshot(serial::Encoder &enc) const
{
    enc.u64(series_.size());
    for (const auto &[name, ts] : series_) {
        enc.str(name);
        ts.snapshot(enc);
    }
    enc.u64(histogramSeries_.size());
    for (const auto &[name, hs] : histogramSeries_) {
        enc.str(name);
        hs.snapshot(enc);
    }
}

void
MetricRegistry::restore(serial::Decoder &dec)
{
    // Decode fully before mutating so a corrupt snapshot leaves the
    // registry unchanged.
    const std::uint64_t num_series = dec.u64();
    std::map<std::string, TimeSeries> series;
    for (std::uint64_t i = 0; i < num_series; ++i) {
        const std::string name = dec.str();
        TimeSeries ts;
        ts.restore(dec);
        series.emplace(name, std::move(ts));
    }

    const std::uint64_t num_hist = dec.u64();
    std::map<std::string, HistogramSeries> hists;
    for (std::uint64_t i = 0; i < num_hist; ++i) {
        const std::string name = dec.str();
        // Learn the snapshot's own shape (peek with a copied cursor),
        // then restore through a matching-shape series.
        serial::Decoder probe = dec;
        const std::uint64_t count = probe.u64();
        const double width = probe.f64();
        if (count == 0 || count > (1u << 20) || !(width > 0.0))
            throw IoError("histogram series config is implausible");
        HistogramSeries hs(static_cast<std::size_t>(count), width);
        hs.restore(dec);
        hists.emplace(name, std::move(hs));
    }

    series_ = std::move(series);
    histogramSeries_ = std::move(hists);
}

namespace
{

/** Minimal JSON string escaping (labels are policy/cell names). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * JSON numbers must not be NaN/Inf; series can legitimately carry them
 * (e.g. a rate over an empty interval), so emit those as null.
 */
std::string
jsonNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null";
    return formatDouble(v);
}

void
appendSeriesJson(std::string &out, const MetricRegistry &reg,
                 const std::string &ind)
{
    out += ind + "\"series\": {";
    bool first = true;
    for (const auto &[name, ts] : reg.allSeries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += ind + "  \"" + jsonEscape(name) + "\": {\"values\": [";
        for (std::size_t i = 0; i < ts.values().size(); ++i) {
            if (i)
                out += ", ";
            out += jsonNumber(ts.values()[i]);
        }
        out += "]}";
    }
    out += first ? "}" : "\n" + ind + "}";
}

void
appendHistogramSeriesJson(std::string &out, const MetricRegistry &reg,
                          const std::string &ind)
{
    out += ind + "\"histogram_series\": {";
    bool first = true;
    for (const auto &[name, hs] : reg.allHistogramSeries()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += ind + "  \"" + jsonEscape(name) + "\": {";
        out += "\"bucket_count\": " + formatU64(hs.bucketCount());
        out += ", \"bucket_width\": " + jsonNumber(hs.bucketWidth());
        out += ", \"rows\": [";
        for (std::size_t r = 0; r < hs.rows().size(); ++r) {
            if (r)
                out += ", ";
            out += "[";
            const auto &row = hs.rows()[r];
            for (std::size_t b = 0; b < row.size(); ++b) {
                if (b)
                    out += ", ";
                out += formatU64(row[b]);
            }
            out += "]";
        }
        out += "]}";
    }
    out += first ? "}" : "\n" + ind + "}";
}

void
appendCountersJson(std::string &out, const CellExport &cell,
                   const std::string &ind)
{
    out += ind + "\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : cell.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += ind + "  \"" + jsonEscape(name) + "\": " +
               formatU64(value);
    }
    out += first ? "}" : "\n" + ind + "}";
}

/** One CSV row; step is empty for scalar/counter rows. */
void
csvRow(std::string &out, const std::string &label,
       const std::string &metric, const std::string &step,
       const std::string &value)
{
    out += label;
    out += ',';
    out += metric;
    out += ',';
    out += step;
    out += ',';
    out += value;
    out += '\n';
}

} // namespace

void
appendCounters(CellExport &cell, const StatGroup &stats)
{
    for (const auto &[name, c] : stats.counters())
        cell.counters.emplace_back(name, c.value());
}

std::string
statsToJson(const std::vector<CellExport> &cells,
            const std::string &experiment)
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"";
    out += statsSchema;
    out += "\",\n";
    out += "  \"experiment\": \"" + jsonEscape(experiment) + "\",\n";
    out += "  \"cells\": [";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellExport &cell = cells[i];
        out += i ? ",\n" : "\n";
        out += "    {\n";
        out += "      \"label\": \"" + jsonEscape(cell.label) + "\",\n";

        out += "      \"scalars\": {";
        for (std::size_t s = 0; s < cell.scalars.size(); ++s) {
            out += s ? ",\n" : "\n";
            out += "        \"" + jsonEscape(cell.scalars[s].first) +
                   "\": " + jsonNumber(cell.scalars[s].second);
        }
        out += cell.scalars.empty() ? "}," : "\n      },";
        out += "\n";

        appendCountersJson(out, cell, "      ");
        out += ",\n";

        const MetricRegistry empty;
        const MetricRegistry &reg =
            cell.metrics != nullptr ? *cell.metrics : empty;
        appendSeriesJson(out, reg, "      ");
        out += ",\n";
        appendHistogramSeriesJson(out, reg, "      ");
        out += "\n    }";
    }
    out += cells.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
statsToCsv(const std::vector<CellExport> &cells)
{
    std::string out = "label,metric,step,value\n";
    for (const CellExport &cell : cells) {
        for (const auto &[name, value] : cell.scalars)
            csvRow(out, cell.label, "scalar:" + name, "",
                   formatDouble(value));
        for (const auto &[name, value] : cell.counters)
            csvRow(out, cell.label, "counter:" + name, "",
                   formatU64(value));
        if (cell.metrics != nullptr) {
            for (const auto &[name, ts] : cell.metrics->allSeries()) {
                for (std::size_t i = 0; i < ts.values().size(); ++i)
                    csvRow(out, cell.label, name, formatU64(i),
                           formatDouble(ts.values()[i]));
            }
        }
    }
    return out;
}

void
writeStatsFile(const std::string &path,
               const std::vector<CellExport> &cells,
               const std::string &experiment)
{
    std::string body;
    if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0)
        body = statsToJson(cells, experiment);
    else if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
        body = statsToCsv(cells);
    else
        throw IoError("--stats-out path must end in .json or .csv: " +
                      path);
    HLLC_FAILPOINT("stats.export");
    serial::writeFileAtomic(path, body.data(), body.size());
}

namespace
{

constexpr std::size_t numPhases = static_cast<std::size_t>(Phase::Count);

struct PhaseSlot
{
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
};

PhaseSlot &
slot(Phase phase)
{
    static PhaseSlot slots[numPhases];
    return slots[static_cast<std::size_t>(phase)];
}

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag = [] {
        const char *env = std::getenv("HLLC_TIMERS");
        return env != nullptr && env[0] == '1';
    }();
    return flag;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Compression: return "compression";
      case Phase::FaultMapAge: return "fault_map";
      case Phase::Replacement: return "replacement";
      case Phase::CheckpointWrite: return "checkpoint_write";
      case Phase::Count: break;
    }
    return "unknown";
}

bool
PhaseTimers::enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
PhaseTimers::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

void
PhaseTimers::add(Phase phase, std::uint64_t ns)
{
    PhaseSlot &s = slot(phase);
    s.ns.fetch_add(ns, std::memory_order_relaxed);
    s.calls.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
PhaseTimers::totalNs(Phase phase)
{
    return slot(phase).ns.load(std::memory_order_relaxed);
}

std::uint64_t
PhaseTimers::calls(Phase phase)
{
    return slot(phase).calls.load(std::memory_order_relaxed);
}

void
PhaseTimers::reset()
{
    for (std::size_t i = 0; i < numPhases; ++i) {
        slot(static_cast<Phase>(i)).ns.store(0, std::memory_order_relaxed);
        slot(static_cast<Phase>(i)).calls.store(
            0, std::memory_order_relaxed);
    }
}

std::string
PhaseTimers::report()
{
    if (!enabled())
        return "";
    std::string out;
    for (std::size_t i = 0; i < numPhases; ++i) {
        const Phase phase = static_cast<Phase>(i);
        const std::uint64_t c = calls(phase);
        const std::uint64_t ns = totalNs(phase);
        out += "timer.";
        out += phaseName(phase);
        out += " calls=" + formatU64(c);
        out += " total_ms=" + formatFixed(
            static_cast<double>(ns) / 1e6, 3);
        out += " mean_us=" + formatFixed(
            c == 0 ? 0.0 : static_cast<double>(ns) / 1e3 /
                               static_cast<double>(c), 3);
        out += '\n';
    }
    return out;
}

ScopedPhaseTimer::ScopedPhaseTimer(Phase phase)
    : phase_(phase), active_(PhaseTimers::enabled())
{
    if (active_)
        startNs_ = nowNs();
}

ScopedPhaseTimer::~ScopedPhaseTimer()
{
    if (active_)
        PhaseTimers::add(phase_, nowNs() - startNs_);
}

} // namespace hllc::metrics
