/**
 * @file
 * Locale-independent number formatting for machine-readable emitters.
 *
 * printf("%f") and ostream<< honour the process locale: under de_DE a
 * CSV cell becomes "0,25" and the file stops parsing. Everything the
 * simulator writes for machines (CSV, JSON, stats files) goes through
 * these std::to_chars-based helpers instead, which always emit the "C"
 * locale format regardless of setlocale().
 */

#ifndef HLLC_COMMON_NUMFMT_HH
#define HLLC_COMMON_NUMFMT_HH

#include <charconv>
#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace hllc
{

/**
 * Shortest decimal string that round-trips @p value bit-exactly through
 * from_chars (what JSON/CSV series exports use: byte-identical files
 * for byte-identical runs).
 */
inline std::string
formatDouble(double value)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    HLLC_ASSERT(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

/** Fixed-point decimal string with @p decimals digits ("1.250"). */
inline std::string
formatFixed(double value, int decimals)
{
    char buf[128];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value,
                                   std::chars_format::fixed, decimals);
    HLLC_ASSERT(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

/** Decimal string of an unsigned 64-bit value. */
inline std::string
formatU64(std::uint64_t value)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    HLLC_ASSERT(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

/** Decimal string of a signed 64-bit value. */
inline std::string
formatI64(std::int64_t value)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    HLLC_ASSERT(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

/** Parse what formatDouble() wrote; locale-independent like to_chars. */
inline bool
parseDoubleExact(const std::string &text, double &out)
{
    const char *begin = text.data();
    const char *end = begin + text.size();
    const auto res = std::from_chars(begin, end, out);
    return res.ec == std::errc() && res.ptr == end;
}

} // namespace hllc

#endif // HLLC_COMMON_NUMFMT_HH
