/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() flags an internal simulator bug and aborts; fatal() flags a user
 * error (bad configuration) and exits cleanly; warn()/inform() report
 * conditions without stopping the simulation.
 */

#ifndef HLLC_COMMON_LOGGING_HH
#define HLLC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hllc
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/**
 * Set the global verbosity threshold (default: Inform). The HLLC_LOG
 * environment variable ({quiet,warn,info,debug}) overrides @p level,
 * so users can surface e.g. grid heartbeats from a bench that lowers
 * its own verbosity.
 */
void setLogLevel(LogLevel level);

/** Current global verbosity threshold. */
LogLevel logLevel();

/**
 * Whether a message at @p level would currently be emitted. inform()
 * itself drops suppressed messages, but the call site still pays for
 * argument construction (std::string copies, timing math) before the
 * level is consulted — code emitting per-cell/per-step status should
 * gate that work behind this check.
 */
inline bool
logEnabled(LogLevel level)
{
    return logLevel() >= level;
}

/**
 * Report an internal invariant violation and abort().
 * Use for conditions that indicate a simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition on stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status on stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose debugging output, only shown at LogLevel::Debug. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Backend for HLLC_ASSERT; do not call directly. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * panic() unless @p cond holds. A lightweight always-on assert used to
 * protect microarchitectural invariants in release builds. An optional
 * printf-style message may follow the condition.
 */
#define HLLC_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hllc::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace hllc

#endif // HLLC_COMMON_LOGGING_HH
