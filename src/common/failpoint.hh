/**
 * @file
 * Deterministic fault injection: named, compiled-in failpoints.
 *
 * Every hard-to-reach failure path in the tree (atomic-write syscalls,
 * trace decode, checkpoint save/restore, worker bodies, stats export)
 * carries a named failpoint that is compiled in unconditionally and
 * costs one relaxed atomic load when no chaos is configured. Activating
 * one turns the happy path into the failure path on a *deterministic*
 * schedule, so every chaos campaign is reproducible from its seed:
 *
 *     HLLC_FAILPOINTS="serialize.write.fsync=nth:3" build/bench/...
 *
 * Trigger grammar (per failpoint, `;`-separated in the spec string):
 *
 *     <name>=nth:<N>        fire exactly once, on the Nth hit (1-based)
 *     <name>=every:<K>      fire on every Kth hit
 *     <name>=prob:<P>@<S>   fire each hit with probability P, drawn
 *                           from mix64(S, name hash, hit index) — the
 *                           outcome of hit #i is a pure function of
 *                           (spec, name, i), never of thread timing
 *     <name>=off            registered but inactive (overrides)
 *
 * The catalog of names is closed: configure() rejects a name that no
 * site declares (allFailpoints()), so a typo in a chaos spec fails
 * loudly instead of injecting nothing. What "firing" means is fixed by
 * the site: most sites throw IoError via HLLC_FAILPOINT(); special
 * sites (payload corruption, short writes, stalls) consult shouldFail()
 * and act in kind. DESIGN.md §12 documents every site's semantics.
 *
 * Thread safety: configuration is mutex-protected and hit counters are
 * per-failpoint; grid workers may evaluate failpoints concurrently.
 * Which *thread* observes hit #N is scheduling-dependent, but the
 * fire/no-fire decision for hit #N never is.
 */

#ifndef HLLC_COMMON_FAILPOINT_HH
#define HLLC_COMMON_FAILPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace hllc::failpoint
{

/**
 * Count one hit of failpoint @p name and return whether it fires.
 * Near-free (one relaxed load) while nothing is configured. @p name
 * must be a catalog name (see allFailpoints()); unknown names never
 * fire (sites cannot throw on behalf of a typo — configure() already
 * rejects unknown names at configuration time).
 */
bool shouldFail(const char *name);

/**
 * Parse and apply a chaos spec ("name=trigger[;name=trigger...]").
 * Later entries override earlier ones for the same name; an empty spec
 * is a no-op. Throws IoError on syntax errors or unknown names,
 * leaving the previous configuration untouched.
 */
void configure(const std::string &spec);

/**
 * Apply the HLLC_FAILPOINTS environment variable (no-op when unset).
 * Called once, lazily, before the first shouldFail() evaluation, so
 * tools need no explicit setup. A malformed value is a CLI
 * configuration error and fatal()s (the lazy call can sit under any
 * call stack, where a throw would terminate instead of diagnose).
 */
void configureFromEnv();

/** Clear all configuration, hit counters and the fired log (tests). */
void reset();

/** The closed catalog of failpoint names, in documentation order. */
const std::vector<std::string> &allFailpoints();

/** One failpoint activation that actually fired. */
struct FiredEvent
{
    std::string name;
    std::uint64_t hit = 0; //!< 1-based hit index that fired
};

/**
 * Every fire since the last reset()/drainFired(), in fire order
 * (bounded; see failpoint.cc). Feeds the hllc-failures-v1 report so a
 * quarantined cell names the fault that killed it.
 */
std::vector<FiredEvent> drainFired();

} // namespace hllc::failpoint

/**
 * The standard failpoint site: count a hit and, when it fires, throw
 * IoError with a message naming the failpoint (the marker the failure
 * report greps for). @p name must be a string literal.
 */
#define HLLC_FAILPOINT(name)                                            \
    do {                                                                \
        if (::hllc::failpoint::shouldFail(name)) {                      \
            throw ::hllc::IoError(                                      \
                "injected fault at failpoint '" name "'");              \
        }                                                               \
    } while (0)

#endif // HLLC_COMMON_FAILPOINT_HH
