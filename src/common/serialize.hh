/**
 * @file
 * Versioned, CRC32-checksummed chunked container with atomic
 * persistence — the one binary on-disk format the simulator trusts.
 *
 * Both forecast checkpoints and v2 .hlt traces are containers:
 *
 *   u32 magic            (per format: "HLCK" checkpoints, "HLT2" traces)
 *   u32 format version   (container layout; currently 1)
 *   u32 payload version  (format-specific, range-checked by the reader)
 *   u32 chunk count
 *   per chunk: u8 tag length, tag bytes, u64 payload size, payload
 *   u32 CRC32            (over every preceding byte)
 *
 * Readers validate every length against the bytes actually present
 * before allocating, and verify the CRC before any chunk is exposed, so
 * a truncated or bit-flipped file is rejected with an IoError — never a
 * crash or an arbitrary-size allocation. Writers persist atomically:
 * the container is written to "<path>.tmp", fsync()ed, then rename()d
 * over the destination, so a crash mid-write leaves the previous good
 * file (or no file) in place, never a torn one.
 *
 * Encoder/Decoder provide the primitive layer: little-endian-packed
 * integers and IEEE-754 doubles round-trip bit-exactly, which is what
 * makes checkpoint/resume byte-identical to an uninterrupted run.
 */

#ifndef HLLC_COMMON_SERIALIZE_HH
#define HLLC_COMMON_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"

namespace hllc::serial
{

/** CRC-32 (IEEE 802.3, reflected 0xEDB88320); @p crc chains calls. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t crc = 0);

/** Append-only byte buffer with primitive packing. */
class Encoder
{
  public:
    void u8(std::uint8_t v) { out_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Bit-exact IEEE-754 encoding (via the u64 bit pattern). */
    void f64(double v);
    void raw(const void *data, std::size_t size);
    /** u64 length prefix + bytes. */
    void str(const std::string &s);
    /** u64 element-count prefix + bit-exact doubles. */
    void f64Vec(const std::vector<double> &v);
    /** u64 element-count prefix + u64 elements. */
    void u64Vec(const std::vector<std::uint64_t> &v);

    const std::vector<std::uint8_t> &bytes() const { return out_; }
    std::vector<std::uint8_t> &bytes() { return out_; }

  private:
    std::vector<std::uint8_t> out_;
};

/**
 * Bounds-checked cursor over a byte span (not owned). Every read that
 * would run past the end throws IoError, so malformed inputs can never
 * cause out-of-bounds reads or unbounded allocations.
 */
class Decoder
{
  public:
    Decoder(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit Decoder(const std::vector<std::uint8_t> &bytes)
        : Decoder(bytes.data(), bytes.size())
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    void raw(void *data, std::size_t size);
    /** Length-prefixed string; rejects lengths beyond @p max_len. */
    std::string str(std::size_t max_len = 4096);
    /** Count-prefixed doubles; count validated against bytes left. */
    std::vector<double> f64Vec();
    std::vector<std::uint64_t> u64Vec();

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

  private:
    /** Throw IoError unless @p n more bytes are available. */
    void require(std::size_t n) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** One tagged chunk of a container. */
struct Chunk
{
    std::string tag;
    Encoder payload;
};

class Container
{
  public:
    /** Start a new chunk; returns its payload encoder. Tags ≤ 32 B. */
    Encoder &add(const std::string &tag);

    bool has(const std::string &tag) const;
    /**
     * Decoder over @p tag's payload (valid while the container lives);
     * throws IoError when the chunk is absent.
     */
    Decoder open(const std::string &tag) const;

    std::size_t chunkCount() const { return chunks_.size(); }

    /** Serialise to bytes: header, chunks, CRC trailer. */
    std::vector<std::uint8_t> encode(std::uint32_t magic,
                                     std::uint32_t payload_version) const;

    /**
     * Parse and fully validate a container image. @p payload_version
     * must fall in [min_version, max_version]; the accepted version is
     * returned through @p version_out when non-null. Throws IoError on
     * any structural problem or CRC mismatch.
     */
    static Container decode(const std::uint8_t *data, std::size_t size,
                            std::uint32_t magic,
                            std::uint32_t min_version,
                            std::uint32_t max_version,
                            std::uint32_t *version_out = nullptr);

    /** encode() + atomic write (temp file, fsync, rename). */
    void save(const std::string &path, std::uint32_t magic,
              std::uint32_t payload_version) const;

    /** Read @p path fully, then decode(). */
    static Container load(const std::string &path, std::uint32_t magic,
                          std::uint32_t min_version,
                          std::uint32_t max_version,
                          std::uint32_t *version_out = nullptr);

  private:
    std::vector<Chunk> chunks_;
};

/**
 * Crash-safe whole-file write: the bytes land in "<path>.tmp", are
 * fsync()ed, replace @p path via rename(2), and the parent directory is
 * fsync()ed so the rename itself survives a crash. An orphaned tmp file
 * from a previous crash is removed first, and a failed write never
 * leaves its own tmp file behind. Throws IoError; on failure @p path is
 * either untouched or already fully replaced (the rename is the commit
 * point).
 */
void writeFileAtomic(const std::string &path, const void *data,
                     std::size_t size);

/** Read an entire file; throws IoError (missing file included). */
std::vector<std::uint8_t> readFileBytes(const std::string &path);

} // namespace hllc::serial

#endif // HLLC_COMMON_SERIALIZE_HH
