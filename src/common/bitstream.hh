/**
 * @file
 * Bit-granular serialization used by the bit-packed compression schemes
 * (FPC prefixes, C-Pack codes). LSB-first within each byte.
 */

#ifndef HLLC_COMMON_BITSTREAM_HH
#define HLLC_COMMON_BITSTREAM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hllc
{

/** Append-only bit writer. */
class BitWriter
{
  public:
    /** Append the low @p bits of @p value (bits <= 64). */
    void
    write(std::uint64_t value, unsigned bits)
    {
        HLLC_ASSERT(bits <= 64);
        for (unsigned i = 0; i < bits; ++i) {
            const unsigned byte = bitCount_ >> 3;
            if (byte >= bytes_.size())
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_[byte] |= static_cast<std::uint8_t>(
                    1u << (bitCount_ & 7));
            ++bitCount_;
        }
    }

    /** Bits written so far. */
    std::size_t bitCount() const { return bitCount_; }

    /** Bytes needed to hold the written bits. */
    std::size_t byteCount() const { return (bitCount_ + 7) / 8; }

    /** The packed bytes (padded with zero bits). */
    const std::vector<std::uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::size_t bitCount_ = 0;
};

/** Sequential bit reader over a byte buffer. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<std::uint8_t> &bytes)
        : bytes_(&bytes)
    {
    }

    /** Read @p bits (<= 64) as an unsigned value. */
    std::uint64_t
    read(unsigned bits)
    {
        HLLC_ASSERT(bits <= 64);
        std::uint64_t value = 0;
        for (unsigned i = 0; i < bits; ++i) {
            const std::size_t byte = pos_ >> 3;
            HLLC_ASSERT(byte < bytes_->size(),
                        "bit read past end of stream");
            if (((*bytes_)[byte] >> (pos_ & 7)) & 1)
                value |= std::uint64_t{1} << i;
            ++pos_;
        }
        return value;
    }

    /** Bits consumed so far. */
    std::size_t position() const { return pos_; }

  private:
    const std::vector<std::uint8_t> *bytes_;
    std::size_t pos_ = 0;
};

} // namespace hllc

#endif // HLLC_COMMON_BITSTREAM_HH
