#include "common/failpoint.hh"

#include <atomic>
#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "common/numfmt.hh"
#include "common/rng.hh"
#include "common/sync.hh"
#include "common/thread_annotations.hh"

namespace hllc::failpoint
{

namespace
{

/** Keep at most this many fired events (a runaway every:1 campaign
 *  must not grow the log without bound). */
constexpr std::size_t maxFiredLog = 4096;

enum class Trigger
{
    Off,
    Nth,   //!< fire exactly once, on hit index == n
    Every, //!< fire whenever hit index % n == 0
    Prob,  //!< fire when the seeded per-hit draw falls below p
};

struct PointState
{
    Trigger trigger = Trigger::Off;
    std::uint64_t n = 0;   //!< Nth / Every operand
    double p = 0.0;        //!< Prob operand
    std::uint64_t seed = 0;
    std::uint64_t hits = 0;
};

struct Registry
{
    Mutex mutex;
    std::map<std::string, PointState> points HLLC_GUARDED_BY(mutex);
    std::vector<FiredEvent> fired HLLC_GUARDED_BY(mutex);
    std::size_t firedDropped HLLC_GUARDED_BY(mutex) = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/**
 * Count of active failpoints: the fast-path gate. Relaxed is enough —
 * a site racing a concurrent configure() may miss the very first hits,
 * which chaos schedules must tolerate anyway (configuration is meant
 * to happen before the run starts).
 */
std::atomic<std::size_t> activeCount{ 0 };

std::atomic<bool> envApplied{ false };

/** FNV-1a over the failpoint name: the per-point salt of prob draws. */
std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** The deterministic per-hit Bernoulli draw of prob triggers. */
bool
probFires(const PointState &state, const std::string &name,
          std::uint64_t hit)
{
    const std::uint64_t bits =
        mix64(state.seed ^ mix64(nameHash(name)) ^ hit);
    // Same uniform-double construction as Xoshiro256StarStar: top 53
    // bits over 2^53.
    const double draw =
        static_cast<double>(bits >> 11) * 0x1.0p-53;
    return draw < state.p;
}

bool
isCatalogName(const std::string &name)
{
    for (const std::string &known : allFailpoints()) {
        if (known == name)
            return true;
    }
    return false;
}

/** Parse a u64 field of a trigger spec; throws IoError on junk. */
std::uint64_t
parseCount(const std::string &text, const std::string &entry)
{
    if (text.empty())
        throw IoError("failpoint spec '" + entry + "': missing count");
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            throw IoError("failpoint spec '" + entry +
                          "': bad count '" + text + "'");
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value == 0)
        throw IoError("failpoint spec '" + entry +
                      "': count must be >= 1");
    return value;
}

/** Parse one "name=trigger" entry into (name, state). */
std::pair<std::string, PointState>
parseEntry(const std::string &entry)
{
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
        throw IoError("failpoint spec '" + entry +
                      "': expected <name>=<trigger>");
    const std::string name = entry.substr(0, eq);
    if (!isCatalogName(name))
        throw IoError("unknown failpoint '" + name +
                      "' (see failpoint::allFailpoints())");
    const std::string trigger = entry.substr(eq + 1);

    PointState state;
    if (trigger == "off")
        return { name, state };
    if (trigger.rfind("nth:", 0) == 0) {
        state.trigger = Trigger::Nth;
        state.n = parseCount(trigger.substr(4), entry);
        return { name, state };
    }
    if (trigger.rfind("every:", 0) == 0) {
        state.trigger = Trigger::Every;
        state.n = parseCount(trigger.substr(6), entry);
        return { name, state };
    }
    if (trigger.rfind("prob:", 0) == 0) {
        const std::string rest = trigger.substr(5);
        const std::size_t at = rest.find('@');
        if (at == std::string::npos)
            throw IoError("failpoint spec '" + entry +
                          "': prob needs '<P>@<seed>'");
        double p = 0.0;
        if (!parseDoubleExact(rest.substr(0, at), p) || p < 0.0 ||
            p > 1.0) {
            throw IoError("failpoint spec '" + entry +
                          "': probability must be in [0, 1]");
        }
        state.trigger = Trigger::Prob;
        state.p = p;
        state.seed = parseCount(rest.substr(at + 1), entry);
        return { name, state };
    }
    throw IoError("failpoint spec '" + entry + "': unknown trigger '" +
                  trigger + "' (nth:N, every:K, prob:P@S, off)");
}

} // anonymous namespace

const std::vector<std::string> &
allFailpoints()
{
    // The closed catalog: every HLLC_FAILPOINT()/shouldFail() site in
    // the tree, in the order DESIGN.md §12 documents them. A site added
    // without a catalog entry can never be activated; a catalog entry
    // without a site is caught by the failpoint-sweep test.
    static const std::vector<std::string> names = {
        "serialize.write.open",    // writeFileAtomic: open of <path>.tmp
        "serialize.write.short",   // writeFileAtomic: truncated fwrite
        "serialize.write.fsync",   // writeFileAtomic: data fsync
        "serialize.write.rename",  // writeFileAtomic: rename into place
        "serialize.write.dirsync", // writeFileAtomic: parent-dir fsync
        "serialize.write.corrupt", // writeFileAtomic: payload bit flip
        "serialize.read",          // readFileBytes: whole-file read
        "trace.decode",            // LlcTrace::load: .hlt decode
        "forecast.checkpoint.save", // ForecastEngine::saveCheckpoint
        "forecast.checkpoint.load", // ForecastEngine::loadCheckpoint
        "threadpool.task.throw",   // parallelFor body: injected throw
        "threadpool.task.stall",   // parallelFor body: injected stall
        "grid.cell.throw",         // forecast grid cell body: throw
        "grid.cell.stall",         // forecast grid cell body: stall
        "stats.export",            // metrics::writeStatsFile
        "serve.accept",            // serve::Server: drop a fresh accept
        "serve.decode",            // serve::Server: force a frame-decode
                                   //   failure (error reply path)
        "serve.dispatch",          // serve::Server: force an OVERLOADED
                                   //   reply instead of enqueueing
        "serve.reply",             // serve::Server: fail the reply write
                                   //   (connection counted dead)
        "ingest.open",             // ingest::openByteSource: fail the
                                   //   trace-file open / decompressor
                                   //   spawn
        "ingest.decode",           // ingest::convertChampSim: fail the
                                   //   record-stream decode
        "ingest.write",            // ingest::writeTraceWithManifest:
                                   //   fail before the .hlt write
    };
    return names;
}

bool
shouldFail(const char *name)
{
    if (!envApplied.load(std::memory_order_acquire))
        configureFromEnv();
    if (activeCount.load(std::memory_order_relaxed) == 0)
        return false;

    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    const auto it = reg.points.find(name);
    if (it == reg.points.end())
        return false;
    PointState &state = it->second;
    if (state.trigger == Trigger::Off)
        return false;
    const std::uint64_t hit = ++state.hits;

    bool fires = false;
    switch (state.trigger) {
    case Trigger::Nth:
        fires = hit == state.n;
        break;
    case Trigger::Every:
        fires = hit % state.n == 0;
        break;
    case Trigger::Prob:
        fires = probFires(state, it->first, hit);
        break;
    case Trigger::Off:
        break;
    }
    if (fires) {
        if (reg.fired.size() < maxFiredLog)
            reg.fired.push_back({ it->first, hit });
        else
            ++reg.firedDropped;
    }
    return fires;
}

void
configure(const std::string &spec)
{
    // Parse everything first so a bad entry leaves the previous
    // configuration fully intact.
    std::vector<std::pair<std::string, PointState>> parsed;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        begin = end + 1;
        if (entry.empty())
            continue;
        parsed.push_back(parseEntry(entry));
    }
    if (parsed.empty())
        return;

    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    for (auto &[name, state] : parsed)
        reg.points[name] = state;
    std::size_t active = 0;
    for (const auto &[name, state] : reg.points) {
        if (state.trigger != Trigger::Off)
            ++active;
    }
    activeCount.store(active, std::memory_order_relaxed);
}

void
configureFromEnv()
{
    // First caller applies the environment; later calls (and the lazy
    // check in shouldFail) are no-ops.
    bool expected = false;
    if (!envApplied.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel))
        return;
    if (const char *env = std::getenv("HLLC_FAILPOINTS")) {
        try {
            configure(env);
        } catch (const IoError &e) {
            // The first shouldFail() evaluation can sit under any call
            // stack (worker threads included): a malformed spec thrown
            // from there would terminate instead of diagnosing. A bad
            // HLLC_FAILPOINTS is a CLI configuration error, so fail it
            // like one.
            fatal("bad HLLC_FAILPOINTS: %s", e.what());
        }
    }
}

void
reset()
{
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    reg.points.clear();
    reg.fired.clear();
    reg.firedDropped = 0;
    activeCount.store(0, std::memory_order_relaxed);
    // Keep envApplied set: reset() means "no chaos", not "re-read the
    // environment" — tests that call reset() must stay clean even when
    // the harness itself runs under HLLC_FAILPOINTS.
    envApplied.store(true, std::memory_order_release);
}

std::vector<FiredEvent>
drainFired()
{
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    std::vector<FiredEvent> out = std::move(reg.fired);
    reg.fired.clear();
    reg.firedDropped = 0;
    return out;
}

} // namespace hllc::failpoint
