#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hllc
{

namespace
{

// Atomic because worker threads emit grid heartbeats (and their level
// checks) concurrently with the main thread; relaxed ordering suffices
// since the level gates only log volume, never correctness.
std::atomic<LogLevel> g_level{LogLevel::Inform};

/**
 * HLLC_LOG={quiet,warn,info,debug} overrides every programmatic
 * setLogLevel() call, so a user can surface the grid heartbeats of a
 * bench that defaults to Warn without recompiling.
 */
const LogLevel *
envLevel()
{
    static const LogLevel *override_level = []() -> const LogLevel * {
        static LogLevel parsed;
        const char *env = std::getenv("HLLC_LOG");
        if (env == nullptr)
            return nullptr;
        const std::string_view v(env);
        if (v == "quiet")
            parsed = LogLevel::Quiet;
        else if (v == "warn")
            parsed = LogLevel::Warn;
        else if (v == "info" || v == "inform")
            parsed = LogLevel::Inform;
        else if (v == "debug")
            parsed = LogLevel::Debug;
        else
            return nullptr;
        return &parsed;
    }();
    return override_level;
}

void
vreport(const char *tag, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(envLevel() != nullptr ? *envLevel() : level,
                  std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) <
        LogLevel::Inform)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) <
        LogLevel::Debug)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d",
                 cond, file, line);
    if (fmt && fmt[0] != '\0') {
        std::fprintf(stderr, ": ");
        std::va_list ap;
        va_start(ap, fmt);
        std::vfprintf(stderr, fmt, ap);
        va_end(ap);
    }
    std::fprintf(stderr, "\n");
    std::abort();
}

} // namespace hllc
