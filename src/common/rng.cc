#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace hllc
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t z = seed;
    for (auto &s : s_) {
        z += 0x9e3779b97f4a7c15ULL;
        std::uint64_t t = z;
        t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ULL;
        t = (t ^ (t >> 27)) * 0x94d049bb133111ebULL;
        s = t ^ (t >> 31);
    }
}

std::uint64_t
Xoshiro256StarStar::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Xoshiro256StarStar::nextBounded(std::uint64_t bound)
{
    HLLC_ASSERT(bound != 0);
    // Debiased multiply-shift (Lemire); the retry loop is entered with
    // probability < bound / 2^64 and so is effectively free.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        const std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Xoshiro256StarStar::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Xoshiro256StarStar::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Xoshiro256StarStar::nextGaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareGaussian_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareGaussian_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Xoshiro256StarStar::nextNormalCv(double mu, double cv, double floor)
{
    const double v = mu + cv * mu * nextGaussian();
    return v < floor ? floor : v;
}

Xoshiro256StarStar
Xoshiro256StarStar::fork(std::uint64_t salt)
{
    return Xoshiro256StarStar(mix64(next() ^ mix64(salt)));
}

void
Xoshiro256StarStar::snapshot(serial::Encoder &enc) const
{
    for (const std::uint64_t s : s_)
        enc.u64(s);
    enc.f64(spareGaussian_);
    enc.u8(hasSpare_ ? 1 : 0);
}

void
Xoshiro256StarStar::restore(serial::Decoder &dec)
{
    for (std::uint64_t &s : s_)
        s = dec.u64();
    spareGaussian_ = dec.f64();
    hasSpare_ = dec.u8() != 0;
}

Xoshiro256StarStar
childStream(std::uint64_t seed, std::uint64_t i, std::uint64_t j)
{
    Xoshiro256StarStar root(seed);
    Xoshiro256StarStar row = root.fork(i);
    return row.fork(j);
}

std::uint64_t
childSeed(std::uint64_t seed, std::uint64_t i, std::uint64_t j)
{
    return childStream(seed, i, j).next();
}

} // namespace hllc
