/**
 * @file
 * Typed error hierarchy for recoverable library failures.
 *
 * Library code (trace I/O, checkpoint containers, stats lookups) must
 * never kill the process: a grid running hundreds of forecast cells has
 * to survive one bad file. Recoverable problems therefore surface as
 * subclasses of hllc::Error, which callers either handle (a grid cell
 * degrades to "failed", a resume path falls back to a fresh start) or
 * convert to fatal() at the CLI boundary. fatal() itself remains
 * reserved for the tool mains.
 */

#ifndef HLLC_COMMON_ERROR_HH
#define HLLC_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace hllc
{

/** Root of the recoverable-error hierarchy. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * A file could not be opened, read, written, or failed validation
 * (bad magic, impossible lengths, CRC mismatch, truncation).
 */
class IoError : public Error
{
  public:
    explicit IoError(const std::string &what_arg) : Error(what_arg) {}
};

/**
 * A grid cell overran its watchdog deadline and was cooperatively
 * cancelled. Deliberately NOT retried: a cell that is too slow once
 * will be too slow again, so the grid quarantines it immediately
 * instead of burning the retry budget.
 */
class DeadlineExceededError : public Error
{
  public:
    explicit DeadlineExceededError(const std::string &what_arg)
        : Error(what_arg)
    {
    }
};

/**
 * A statistic was looked up by a name that was never registered —
 * almost always a typo in the caller, which silently fabricating a 0
 * would hide.
 */
class StatError : public Error
{
  public:
    explicit StatError(const std::string &what_arg) : Error(what_arg) {}
};

} // namespace hllc

#endif // HLLC_COMMON_ERROR_HH
