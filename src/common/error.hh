/**
 * @file
 * Typed error hierarchy for recoverable library failures.
 *
 * Library code (trace I/O, checkpoint containers) must never kill the
 * process: a grid running hundreds of forecast cells has to survive one
 * bad file. I/O and corruption problems therefore surface as IoError,
 * which callers either handle (a grid cell degrades to "failed", a
 * resume path falls back to a fresh start) or convert to fatal() at the
 * CLI boundary. fatal() itself remains reserved for the tool mains.
 */

#ifndef HLLC_COMMON_ERROR_HH
#define HLLC_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace hllc
{

/**
 * A file could not be opened, read, written, or failed validation
 * (bad magic, impossible lengths, CRC mismatch, truncation).
 */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

} // namespace hllc

#endif // HLLC_COMMON_ERROR_HH
