#include "common/serialize.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include <fcntl.h>
#include <unistd.h>

#include "common/failpoint.hh"
#include "common/numfmt.hh"

namespace hllc::serial
{

namespace
{

/** Container layout version (the "format version" header field). */
constexpr std::uint32_t containerFormatVersion = 1;
/** Sanity caps on header-declared counts (far above any real use). */
constexpr std::uint32_t maxChunks = 1024;
constexpr std::size_t maxTagLen = 32;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string
errnoMessage()
{
    return std::strerror(errno);
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t crc)
{
    // Table generated once from the reflected polynomial 0xEDB88320.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();

    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

void
Encoder::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
Encoder::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Encoder::raw(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    out_.insert(out_.end(), p, p + size);
}

void
Encoder::str(const std::string &s)
{
    u64(s.size());
    raw(s.data(), s.size());
}

void
Encoder::f64Vec(const std::vector<double> &v)
{
    u64(v.size());
    for (const double d : v)
        f64(d);
}

void
Encoder::u64Vec(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (const std::uint64_t x : v)
        u64(x);
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

void
Decoder::require(std::size_t n) const
{
    if (n > size_ - pos_)
        throw IoError("truncated record: need " + formatU64(n) +
                      " bytes, " + formatU64(size_ - pos_) +
                      " available");
}

std::uint8_t
Decoder::u8()
{
    require(1);
    return data_[pos_++];
}

std::uint32_t
Decoder::u32()
{
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
}

std::uint64_t
Decoder::u64()
{
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
}

double
Decoder::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
Decoder::raw(void *data, std::size_t size)
{
    require(size);
    std::memcpy(data, data_ + pos_, size);
    pos_ += size;
}

std::string
Decoder::str(std::size_t max_len)
{
    const std::uint64_t len = u64();
    if (len > max_len)
        throw IoError("string length " + formatU64(len) +
                      " exceeds limit " + formatU64(max_len));
    require(static_cast<std::size_t>(len));
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
}

std::vector<double>
Decoder::f64Vec()
{
    const std::uint64_t count = u64();
    // Validate the declared count against the bytes actually present
    // before allocating anything.
    if (count > remaining() / 8)
        throw IoError("vector count " + formatU64(count) +
                      " exceeds the bytes available");
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        v.push_back(f64());
    return v;
}

std::vector<std::uint64_t>
Decoder::u64Vec()
{
    const std::uint64_t count = u64();
    if (count > remaining() / 8)
        throw IoError("vector count " + formatU64(count) +
                      " exceeds the bytes available");
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        v.push_back(u64());
    return v;
}

// ---------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------

Encoder &
Container::add(const std::string &tag)
{
    if (tag.empty() || tag.size() > maxTagLen)
        throw IoError("bad chunk tag '" + tag + "'");
    chunks_.push_back(Chunk{ tag, Encoder{} });
    return chunks_.back().payload;
}

bool
Container::has(const std::string &tag) const
{
    for (const Chunk &c : chunks_) {
        if (c.tag == tag)
            return true;
    }
    return false;
}

Decoder
Container::open(const std::string &tag) const
{
    for (const Chunk &c : chunks_) {
        if (c.tag == tag)
            return Decoder(c.payload.bytes());
    }
    throw IoError("missing chunk '" + tag + "'");
}

std::vector<std::uint8_t>
Container::encode(std::uint32_t magic, std::uint32_t payload_version) const
{
    Encoder enc;
    enc.u32(magic);
    enc.u32(containerFormatVersion);
    enc.u32(payload_version);
    enc.u32(static_cast<std::uint32_t>(chunks_.size()));
    for (const Chunk &c : chunks_) {
        enc.u8(static_cast<std::uint8_t>(c.tag.size()));
        enc.raw(c.tag.data(), c.tag.size());
        enc.u64(c.payload.bytes().size());
        enc.raw(c.payload.bytes().data(), c.payload.bytes().size());
    }
    enc.u32(crc32(enc.bytes().data(), enc.bytes().size()));
    return std::move(enc.bytes());
}

Container
Container::decode(const std::uint8_t *data, std::size_t size,
                  std::uint32_t magic, std::uint32_t min_version,
                  std::uint32_t max_version, std::uint32_t *version_out)
{
    // Header (16) + CRC trailer (4) is the smallest legal container.
    if (size < 20)
        throw IoError("container too small (" + formatU64(size) +
                      " bytes)");

    // The trailer is little-endian like every other field.
    Decoder trailer(data + size - 4, 4);
    const std::uint32_t stored_crc = trailer.u32();
    const std::uint32_t actual_crc = crc32(data, size - 4);
    if (stored_crc != actual_crc)
        throw IoError("container CRC mismatch");

    Decoder dec(data, size - 4);
    if (dec.u32() != magic)
        throw IoError("bad container magic");
    const std::uint32_t format = dec.u32();
    if (format != containerFormatVersion)
        throw IoError("unsupported container format version " +
                      formatU64(format));
    const std::uint32_t payload_version = dec.u32();
    if (payload_version < min_version || payload_version > max_version)
        throw IoError("unsupported payload version " +
                      formatU64(payload_version));
    const std::uint32_t count = dec.u32();
    if (count > maxChunks)
        throw IoError("implausible chunk count " + formatU64(count));

    Container container;
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t tag_len = dec.u8();
        if (tag_len == 0 || tag_len > maxTagLen)
            throw IoError("bad chunk tag length");
        std::string tag(tag_len, '\0');
        dec.raw(tag.data(), tag_len);
        const std::uint64_t chunk_size = dec.u64();
        if (chunk_size > dec.remaining())
            throw IoError("chunk '" + tag + "' overruns the container");
        Encoder &payload = container.add(tag);
        payload.bytes().resize(static_cast<std::size_t>(chunk_size));
        dec.raw(payload.bytes().data(),
                static_cast<std::size_t>(chunk_size));
    }
    if (!dec.atEnd())
        throw IoError("trailing bytes after the last chunk");
    if (version_out != nullptr)
        *version_out = payload_version;
    return container;
}

void
Container::save(const std::string &path, std::uint32_t magic,
                std::uint32_t payload_version) const
{
    const std::vector<std::uint8_t> bytes = encode(magic, payload_version);
    writeFileAtomic(path, bytes.data(), bytes.size());
}

Container
Container::load(const std::string &path, std::uint32_t magic,
                std::uint32_t min_version, std::uint32_t max_version,
                std::uint32_t *version_out)
{
    const std::vector<std::uint8_t> bytes = readFileBytes(path);
    try {
        return decode(bytes.data(), bytes.size(), magic, min_version,
                      max_version, version_out);
    } catch (const IoError &e) {
        throw IoError("'" + path + "': " + e.what());
    }
}

// ---------------------------------------------------------------------
// Whole-file I/O
// ---------------------------------------------------------------------

namespace
{

/**
 * fsync the directory containing @p path, so the rename that just made
 * a file visible is itself durable (a crash after rename but before
 * the directory reaches disk can otherwise resurrect the old version —
 * or nothing at all).
 */
void
syncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        throw IoError("cannot open directory '" + dir +
                      "' for fsync: " + errnoMessage());
    const int rc = ::fsync(fd);
    const int saved_errno = errno;
    ::close(fd);
    if (rc != 0) {
        errno = saved_errno;
        throw IoError("fsync of directory '" + dir + "' failed: " +
                      errnoMessage());
    }
    HLLC_FAILPOINT("serialize.write.dirsync");
}

/** The body of writeFileAtomic, minus tmp-file cleanup on failure. */
void
writeFileAtomicImpl(const std::string &path, const std::string &tmp,
                    const void *data, std::size_t size)
{
    {
        HLLC_FAILPOINT("serialize.write.open");
        FilePtr f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            throw IoError("cannot open '" + tmp + "' for writing: " +
                          errnoMessage());
        // Injected short write: persist only a prefix, then fail the
        // way a full disk does — the bytes are already in the file.
        std::size_t write_size = size;
        if (failpoint::shouldFail("serialize.write.short"))
            write_size = size / 2;
        // Injected corruption: flip one payload bit on the way out, so
        // the rename succeeds but the CRC check rejects the file.
        std::vector<std::uint8_t> corrupted;
        const void *write_data = data;
        if (size > 0 && failpoint::shouldFail("serialize.write.corrupt")) {
            const auto *p = static_cast<const std::uint8_t *>(data);
            corrupted.assign(p, p + size);
            corrupted[size / 2] ^= 0x01;
            write_data = corrupted.data();
        }
        if (write_size > 0 &&
            std::fwrite(write_data, 1, write_size, f.get()) != write_size)
            throw IoError("short write to '" + tmp + "'");
        if (write_size != size)
            throw IoError("short write to '" + tmp +
                          "' (injected fault at failpoint "
                          "'serialize.write.short')");
        if (std::fflush(f.get()) != 0)
            throw IoError("flush of '" + tmp + "' failed: " +
                          errnoMessage());
        // The data must be durable before the rename makes it visible,
        // or a crash could leave a renamed-but-empty file.
        HLLC_FAILPOINT("serialize.write.fsync");
        if (::fsync(::fileno(f.get())) != 0)
            throw IoError("fsync of '" + tmp + "' failed: " +
                          errnoMessage());
    }
    HLLC_FAILPOINT("serialize.write.rename");
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw IoError("rename '" + tmp + "' -> '" + path + "' failed: " +
                      errnoMessage());
    syncParentDir(path);
}

} // anonymous namespace

void
writeFileAtomic(const std::string &path, const void *data,
                std::size_t size)
{
    const std::string tmp = path + ".tmp";
    // A crash between fopen and rename in a previous run leaves an
    // orphaned tmp file; fopen("wb") would truncate it anyway, but an
    // orphan must also not outlive a *failed* write below.
    std::remove(tmp.c_str());
    try {
        writeFileAtomicImpl(path, tmp, data, size);
    } catch (...) {
        // Never leave a partial tmp file behind: the next writer (or a
        // resume scan) must only ever see fully-renamed files.
        std::remove(tmp.c_str());
        throw;
    }
}

std::vector<std::uint8_t>
readFileBytes(const std::string &path)
{
    HLLC_FAILPOINT("serialize.read");
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        throw IoError("cannot open '" + path + "': " + errnoMessage());
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        throw IoError("seek in '" + path + "' failed");
    const long end = std::ftell(f.get());
    if (end < 0)
        throw IoError("cannot size '" + path + "'");
    std::rewind(f.get());

    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(end));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f.get()) !=
            bytes.size()) {
        throw IoError("short read from '" + path + "'");
    }
    return bytes;
}

} // namespace hllc::serial
