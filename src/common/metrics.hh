/**
 * @file
 * Structured observability layer on top of common/stats.
 *
 * The paper's evaluation is about *temporal evolution* — IPC and NVM
 * effective capacity tracked until 50% capacity loss — so end-of-run
 * scalar counters are not enough. This module adds:
 *
 *  - TimeSeries / HistogramSeries: step-indexed sample streams that
 *    subsystems append to once per interval (forecast step, replay
 *    window);
 *  - MetricRegistry: a named collection of series belonging to one run
 *    or grid cell, snapshot/restorable through common/serialize.hh so a
 *    resumed run exports exactly the series an uninterrupted run would;
 *  - machine-readable exporters (--stats-out file.{json,csv}) with a
 *    stable schema ("hllc-stats-v1") that plotting scripts and CI can
 *    rely on;
 *  - PhaseTimers: gated scoped wall-clock timers around the simulator's
 *    hot phases (compression, fault-map aging, replacement, checkpoint
 *    writes) so grid wall-clock can be attributed. Disabled (and free)
 *    unless HLLC_TIMERS=1; timing never influences simulation results.
 *
 * All numbers are emitted via common/numfmt.hh, so a de_DE process
 * locale cannot turn "0.25" into "0,25".
 */

#ifndef HLLC_COMMON_METRICS_HH
#define HLLC_COMMON_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hllc
{
class StatGroup;
} // namespace hllc

namespace hllc::serial
{
class Encoder;
class Decoder;
} // namespace hllc::serial

namespace hllc::metrics
{

/** One named stream of per-interval samples. */
class TimeSeries
{
  public:
    void append(double v) { values_.push_back(v); }

    std::size_t size() const { return values_.size(); }
    bool empty() const { return values_.empty(); }
    const std::vector<double> &values() const { return values_; }
    double back() const { return values_.back(); }
    void clear() { values_.clear(); }

    void snapshot(serial::Encoder &enc) const;
    void restore(serial::Decoder &dec);

  private:
    std::vector<double> values_;
};

/**
 * A stream of fixed-shape histogram snapshots, one row per interval
 * (e.g. the per-frame live-byte distribution at every forecast step).
 */
class HistogramSeries
{
  public:
    explicit HistogramSeries(std::size_t bucket_count = 16,
                             double bucket_width = 1.0);

    /** Append one snapshot; @p row must have bucketCount() entries. */
    void appendRow(std::vector<std::uint64_t> row);

    std::size_t size() const { return rows_.size(); }
    const std::vector<std::vector<std::uint64_t>> &rows() const
    {
        return rows_;
    }
    std::size_t bucketCount() const { return bucketCount_; }
    double bucketWidth() const { return bucketWidth_; }
    void clear() { rows_.clear(); }

    void snapshot(serial::Encoder &enc) const;
    void restore(serial::Decoder &dec);

  private:
    std::size_t bucketCount_;
    double bucketWidth_;
    std::vector<std::vector<std::uint64_t>> rows_;
};

/**
 * The named series of one run or grid cell. Create-or-find semantics
 * like StatGroup; iteration is in name order, so exports are
 * deterministic.
 *
 * Thread-confined by design, not locked: each grid cell owns one
 * registry on its worker thread and the result is moved into the
 * summary after the cell's future resolves (a std::mutex member would
 * make the type unmovable). Never share one instance across threads.
 */
class MetricRegistry
{
  public:
    /** Create-or-find the scalar series @p name. */
    TimeSeries &series(const std::string &name);
    /** The series @p name, or nullptr if never created. */
    const TimeSeries *findSeries(const std::string &name) const;

    /** Create-or-find the histogram series @p name. */
    HistogramSeries &histogramSeries(const std::string &name,
                                     std::size_t bucket_count = 16,
                                     double bucket_width = 1.0);

    const std::map<std::string, TimeSeries> &allSeries() const
    {
        return series_;
    }
    const std::map<std::string, HistogramSeries> &
    allHistogramSeries() const
    {
        return histogramSeries_;
    }

    bool empty() const
    {
        return series_.empty() && histogramSeries_.empty();
    }
    void clear();

    /** Serialise every series (checkpoint integration). */
    void snapshot(serial::Encoder &enc) const;
    /** Replace contents with a snapshot; throws IoError on corruption. */
    void restore(serial::Decoder &dec);

  private:
    std::map<std::string, TimeSeries> series_;
    std::map<std::string, HistogramSeries> histogramSeries_;
};

/**
 * Everything one grid cell contributes to a stats file. The metrics
 * pointer is borrowed (may be null: the series sections come out empty);
 * counters and scalars are owned copies.
 */
struct CellExport
{
    std::string label;
    const MetricRegistry *metrics = nullptr;
    /** Event counters, in the order they should be emitted. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /** End-of-run scalars (lifetime, initial IPC, ...), in given order. */
    std::vector<std::pair<std::string, double>> scalars;
};

/** Append every counter of @p stats (name order) to @p cell.counters. */
void appendCounters(CellExport &cell, const StatGroup &stats);

/** The schema identifier emitted in every JSON export. */
inline constexpr const char *statsSchema = "hllc-stats-v1";

/** Render cells as a "hllc-stats-v1" JSON document. */
std::string statsToJson(const std::vector<CellExport> &cells,
                        const std::string &experiment);

/**
 * Render cells as long-format CSV: `label,metric,step,value` with
 * scalar rows (`scalar:<name>`) and counter rows (`counter:<name>`)
 * carrying an empty step. Histogram series are JSON-only.
 */
std::string statsToCsv(const std::vector<CellExport> &cells);

/**
 * Write a stats file, format chosen by extension (.json or .csv),
 * atomically (common/serialize.hh). Throws IoError on an unsupported
 * extension or write failure.
 */
void writeStatsFile(const std::string &path,
                    const std::vector<CellExport> &cells,
                    const std::string &experiment);

/** Simulator phases attributed by the scoped timers. */
enum class Phase : unsigned
{
    Compression,      //!< block compression during trace capture
    FaultMapAge,      //!< fault-map wear application / revalidation
    Replacement,      //!< victim search in the hybrid LLC
    CheckpointWrite,  //!< forecast checkpoint serialisation + I/O
    Count
};

/** Human-readable name of @p phase. */
const char *phaseName(Phase phase);

/**
 * Process-wide nanosecond accumulators per phase. Lock-free (relaxed
 * atomics): totals are exact when summed at quiescence, which is the
 * only time report() is called. Gated: when disabled (the default)
 * ScopedPhaseTimer never reads the clock.
 */
class PhaseTimers
{
  public:
    /** Whether timing is on (HLLC_TIMERS=1 in the environment, or set). */
    static bool enabled();
    static void setEnabled(bool on);

    static void add(Phase phase, std::uint64_t ns);
    static std::uint64_t totalNs(Phase phase);
    static std::uint64_t calls(Phase phase);
    static void reset();

    /** One line per phase with calls, total and mean time; "" if off. */
    static std::string report();
};

/** RAII timer attributing its scope to @p phase (no-op when disabled). */
class ScopedPhaseTimer
{
  public:
    explicit ScopedPhaseTimer(Phase phase);
    ~ScopedPhaseTimer();

    ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
    ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

  private:
    Phase phase_;
    bool active_;
    std::uint64_t startNs_ = 0;
};

} // namespace hllc::metrics

#endif // HLLC_COMMON_METRICS_HH
