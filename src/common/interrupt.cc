#include "common/interrupt.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>

#include "common/sync.hh"

namespace hllc
{

namespace
{

std::atomic<int> pendingSignal{ 0 };
std::atomic<bool> handlersInstalled{ false };

/**
 * Wakes interruptibleSleepMs() early on requestInterrupt(). A signal
 * handler cannot touch a condition variable (not async-signal-safe), so
 * signal-driven interrupts are instead observed by the <= 50 ms polling
 * slices of the sleep loop.
 */
struct SleepGate
{
    Mutex mutex;
    CondVar cv;
};

SleepGate &
sleepGate()
{
    static SleepGate gate;
    return gate;
}

extern "C" void
interruptFlagHandler(int sig)
{
    pendingSignal.store(sig, std::memory_order_relaxed);
    // One polite request only: restore the default disposition so a
    // second signal terminates even if the run never reaches a
    // checkpoint boundary.
    std::signal(sig, SIG_DFL);
}

} // anonymous namespace

void
installInterruptHandlers()
{
    bool expected = false;
    if (!handlersInstalled.compare_exchange_strong(expected, true))
        return;
    std::signal(SIGINT, interruptFlagHandler);
    std::signal(SIGTERM, interruptFlagHandler);
}

bool
interruptRequested()
{
    return pendingSignal.load(std::memory_order_relaxed) != 0;
}

int
interruptSignal()
{
    return pendingSignal.load(std::memory_order_relaxed);
}

int
interruptExitCode()
{
    const int sig = interruptSignal();
    return sig == 0 ? 0 : 128 + sig;
}

void
requestInterrupt(int signal_number)
{
    pendingSignal.store(signal_number, std::memory_order_relaxed);
    sleepGate().cv.notifyAll();
}

void
clearInterrupt()
{
    pendingSignal.store(0, std::memory_order_relaxed);
    // Allow a later checkpointed run to reinstall fresh handlers (the
    // flag handler resets itself to SIG_DFL after firing).
    handlersInstalled.store(false, std::memory_order_relaxed);
}

bool
interruptibleSleepMs(std::uint64_t ms)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
    SleepGate &gate = sleepGate();
    MutexLock lock(gate.mutex);
    while (!interruptRequested()) {
        const auto now = Clock::now();
        if (now >= deadline)
            return false;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
        // Cap the slice so a *signal*-set flag (which cannot notify
        // the CV) is still observed within 50 ms.
        const std::uint64_t slice = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(left) + 1, 50);
        gate.cv.waitFor(gate.mutex, slice);
    }
    return true;
}

} // namespace hllc
