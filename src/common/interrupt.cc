#include "common/interrupt.hh"

#include <atomic>
#include <csignal>

namespace hllc
{

namespace
{

std::atomic<int> pendingSignal{ 0 };
std::atomic<bool> handlersInstalled{ false };

extern "C" void
interruptFlagHandler(int sig)
{
    pendingSignal.store(sig, std::memory_order_relaxed);
    // One polite request only: restore the default disposition so a
    // second signal terminates even if the run never reaches a
    // checkpoint boundary.
    std::signal(sig, SIG_DFL);
}

} // anonymous namespace

void
installInterruptHandlers()
{
    bool expected = false;
    if (!handlersInstalled.compare_exchange_strong(expected, true))
        return;
    std::signal(SIGINT, interruptFlagHandler);
    std::signal(SIGTERM, interruptFlagHandler);
}

bool
interruptRequested()
{
    return pendingSignal.load(std::memory_order_relaxed) != 0;
}

int
interruptSignal()
{
    return pendingSignal.load(std::memory_order_relaxed);
}

int
interruptExitCode()
{
    const int sig = interruptSignal();
    return sig == 0 ? 0 : 128 + sig;
}

void
requestInterrupt(int signal_number)
{
    pendingSignal.store(signal_number, std::memory_order_relaxed);
}

void
clearInterrupt()
{
    pendingSignal.store(0, std::memory_order_relaxed);
    // Allow a later checkpointed run to reinstall fresh handlers (the
    // flag handler resets itself to SIG_DFL after firing).
    handlersInstalled.store(false, std::memory_order_relaxed);
}

} // namespace hllc
