/**
 * @file
 * Cooperative SIGINT/SIGTERM handling for long-running grids.
 *
 * A checkpointing run must not die mid-write when the user (or the
 * batch scheduler) asks it to stop: installInterruptHandlers() turns the
 * first SIGINT/SIGTERM into a flag that long loops poll at safe
 * boundaries, where they write a final checkpoint and unwind with
 * InterruptedError. A second signal falls through to the default
 * disposition, so a hung run can still be killed.
 *
 * Thread safety: the flag and signal number are lock-free atomics (the
 * handler is async-signal-safe, and worker threads may poll
 * interruptRequested() concurrently), so no capability annotations are
 * needed here.
 */

#ifndef HLLC_COMMON_INTERRUPT_HH
#define HLLC_COMMON_INTERRUPT_HH

#include <cstdint>
#include <stdexcept>

namespace hllc
{

/**
 * Install the SIGINT/SIGTERM flag handlers (idempotent). Call before
 * starting a checkpointed run.
 */
void installInterruptHandlers();

/** Whether an interrupt (signal or requestInterrupt()) is pending. */
bool interruptRequested();

/** The signal number that set the flag (0 when none; tests may fake). */
int interruptSignal();

/**
 * Conventional exit code for the pending interrupt (128 + signal), or
 * 0 when no interrupt is pending.
 */
int interruptExitCode();

/** Set the flag programmatically (tests, embedding applications). */
void requestInterrupt(int signal_number);

/** Clear the flag (tests; a fresh run after handling a stop). */
void clearInterrupt();

/**
 * Sleep for @p ms milliseconds, waking early when an interrupt arrives
 * (checked at most 50 ms apart; requestInterrupt() wakes immediately).
 * Returns true when the sleep was cut short by a pending interrupt.
 * Retry/backoff delays and watchdog cadences must use this instead of
 * plain sleeps so SIGINT/SIGTERM drains a retrying grid promptly.
 */
bool interruptibleSleepMs(std::uint64_t ms);

/**
 * Thrown by checkpoint-aware loops after they persisted their state in
 * response to a pending interrupt. Carries no data: the checkpoint on
 * disk is the result.
 */
class InterruptedError : public std::runtime_error
{
  public:
    InterruptedError() : std::runtime_error("interrupted") {}
};

} // namespace hllc

#endif // HLLC_COMMON_INTERRUPT_HH
