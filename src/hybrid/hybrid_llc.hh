/**
 * @file
 * The shared hybrid NVM-SRAM last-level cache (paper Sec. III/IV).
 *
 * The LLC is non-inclusive (mostly exclusive): it observes GetS/GetX
 * requests from the private L2s and Put (clean/dirty) messages carrying
 * L2 victims; blocks fetched from memory bypass it on the way in. GetX
 * hits return the block and invalidate the LLC copy (invalidate-on-hit,
 * Sec. III-A).
 *
 * Ways [0, sramWays) are SRAM; ways [sramWays, sramWays + nvmWays) are
 * NVM frames backed by a FaultMap. Compression-enabled policies store the
 * ECB in NVM frames (Fit-LRU victim search over frames with enough
 * effective capacity); SRAM always stores blocks uncompressed. Every
 * byte deposited in an NVM frame is recorded against the fault map for
 * the forecast's aging phases.
 *
 * Implementation notes for the replay hot path: the tag store is kept as
 * structure-of-arrays (tags / valid / dirty / ecb / rrpv in separate
 * flat vectors) so the per-access findWay() scan touches one contiguous
 * tag row instead of striding over 24-byte line records; every stats
 * counter the event paths bump is resolved to a Counter pointer once at
 * construction (std::map nodes are pointer-stable) so no per-event
 * string-keyed map lookups remain; and insertion decisions dispatch
 * through the inline PolicyEngine variant instead of the virtual
 * InsertionPolicy (kept for configuration and introspection).
 */

#ifndef HLLC_HYBRID_HYBRID_LLC_HH
#define HLLC_HYBRID_HYBRID_LLC_HH

#include <memory>
#include <optional>

#include "cache/lru.hh"
#include "common/stats.hh"
#include "fault/fault_map.hh"
#include "hybrid/insertion_policy.hh"
#include "hybrid/policy_engine.hh"
#include "hybrid/reuse_tracker.hh"
#include "hybrid/set_dueling.hh"
#include "hybrid/types.hh"

namespace hllc::hybrid
{

/**
 * Replacement algorithm used inside each part. The paper uses (Fit-)LRU;
 * SRRIP (2-bit re-reference interval prediction) is provided as a
 * scan-resistant alternative for ablations. Fit constraints (frame
 * effective capacity) apply to both.
 */
enum class ReplacementKind : std::uint8_t { Lru, Srrip };

/**
 * Observer of the LLC's per-event structural decisions (which resident
 * was evicted, where a block landed, what was bypassed). The golden-model
 * differential checker in src/check records this stream from both the
 * fast LLC and its shadow reimplementation and compares them event by
 * event; a null probe costs one pointer test per decision.
 *
 * Calls are emitted in program order within one handle() dispatch, so
 * two implementations agree iff their decision sequences are identical.
 */
class LlcProbe
{
  public:
    virtual ~LlcProbe() = default;

    /** A resident was evicted; @p writeback = it left dirty. */
    virtual void onEvict(std::uint32_t set, std::uint32_t way, Addr block,
                         bool writeback, bool nvm)
    {
        (void)set; (void)way; (void)block; (void)writeback; (void)nvm;
    }
    /** A block was deposited into (set, way) occupying @p stored bytes. */
    virtual void onFill(std::uint32_t set, std::uint32_t way, Addr block,
                        bool dirty, unsigned stored, bool nvm)
    {
        (void)set; (void)way; (void)block; (void)dirty; (void)stored;
        (void)nvm;
    }
    /** An SRAM way was freed for a migration (the block stays cached). */
    virtual void onMigrateFree(std::uint32_t set, std::uint32_t way,
                               Addr block)
    {
        (void)set; (void)way; (void)block;
    }
    /** A resident outgrew its frame on a dirty Put and is relocating. */
    virtual void onRelocate(std::uint32_t set, std::uint32_t way,
                            Addr block)
    {
        (void)set; (void)way; (void)block;
    }
    /** A dirty Put rewrote a resident copy in place. */
    virtual void onInplaceUpdate(std::uint32_t set, std::uint32_t way,
                                 Addr block, unsigned stored, bool nvm)
    {
        (void)set; (void)way; (void)block; (void)stored; (void)nvm;
    }
    /** An insertion bypassed the LLC entirely (no frame fits). */
    virtual void onBypass(Addr block, bool dirty)
    {
        (void)block; (void)dirty;
    }
};

/** Static configuration of one hybrid LLC instance. */
struct HybridLlcConfig
{
    std::uint32_t numSets = 2048;   //!< power of two
    std::uint32_t sramWays = 4;
    std::uint32_t nvmWays = 12;
    PolicyKind policy = PolicyKind::CpSd;
    ReplacementKind replacement = ReplacementKind::Lru;
    PolicyParams params;            //!< policy tunables
    Cycle epochCycles = 2'000'000;  //!< Set Dueling epoch (Sec. IV-C)
    /**
     * Cycles charged per LLC event when the caller paces epochs through
     * handle(); the trace replayer sets this from capture metadata.
     */
    Cycle cyclesPerEvent = 20;

    std::uint32_t totalWays() const { return sramWays + nvmWays; }
};

class HybridLlc
{
  public:
    /**
     * @param config geometry and policy selection
     * @param fault_map NVM fault map; must cover (numSets x nvmWays)
     *        frames and use the policy's disabling granularity. May be
     *        null only when nvmWays == 0.
     */
    HybridLlc(const HybridLlcConfig &config, fault::FaultMap *fault_map);

    /** @name LLC-side protocol events (Sec. III-A) */
    ///@{
    /** Read request from an L2 miss. */
    AccessOutcome onGetS(Addr block);
    /** Write-permission request; invalidates the LLC copy on hit. */
    AccessOutcome onGetX(Addr block);
    /**
     * L2 victim arriving at the LLC.
     * @param ecb_bytes compressed size of the block's contents
     */
    void onPut(Addr block, bool dirty, unsigned ecb_bytes);
    ///@}

    /** Dispatch one trace event and advance the epoch clock. */
    AccessOutcome handle(const LlcEvent &event);

    /** Advance the Set Dueling epoch clock by @p cycles. */
    void tick(Cycle cycles);

    /** @name Introspection */
    ///@{
    const HybridLlcConfig &config() const { return config_; }
    const InsertionPolicy &policy() const { return *policy_; }
    bool contains(Addr block) const;
    /** Part holding @p block, if resident. */
    std::optional<Part> partOf(Addr block) const;
    /** CPth currently in force for @p set. */
    unsigned cpthForSet(std::uint32_t set) const;
    /** Set index of @p block. */
    std::uint32_t setOf(Addr block) const
    {
        return static_cast<std::uint32_t>(block) & (config_.numSets - 1);
    }
    const SetDueling *dueling() const { return dueling_.get(); }
    SetDueling *dueling() { return dueling_.get(); }
    const ReuseTracker &tracker() const { return tracker_; }
    const fault::FaultMap *faultMap() const { return faultMap_; }
    /** Read-only view of one tag-array entry (invariant checkers). */
    struct LineView
    {
        Addr blockNum = 0;
        bool valid = false;
        bool dirty = false;
        std::uint8_t ecbBytes = 0;
    };
    LineView lineView(std::uint32_t set, std::uint32_t way) const
    {
        const std::size_t i = index(set, way);
        return { tags_[i], valid_[i] != 0, dirty_[i] != 0, ecb_[i] };
    }
    ///@}

    /** Attach (or detach with nullptr) a decision-stream observer. */
    void setProbe(LlcProbe *probe) { probe_ = probe; }

    /** @name Stats */
    ///@{
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    /** GetS + GetX hits. */
    std::uint64_t demandHits() const;
    /** GetS + GetX requests. */
    std::uint64_t demandAccesses() const;
    /** demandHits / demandAccesses. */
    double hitRate() const;
    /** NVM block writes so far (cached counter; replayer hot path). */
    std::uint64_t nvmWrites() const { return ctr_.nvmWrites->value(); }
    /** Total bytes deposited into NVM frames. */
    std::uint64_t nvmBytesWritten() const
    {
        return ctr_.nvmBytesWritten->value();
    }
    void resetStats() { stats_.resetAll(); }
    ///@}

    /**
     * Invalidate resident NVM blocks whose frame no longer has the
     * capacity to hold them (called after the fault map aged).
     */
    void revalidateAgainstFaultMap();

    /** Drop all cached contents and reuse state (fresh replay). */
    void reset();

  private:
    /** SRRIP maximum RRPV (2-bit counters). */
    static constexpr std::uint8_t maxRrpv = 3;

    std::size_t index(std::uint32_t set, std::uint32_t way) const
    {
        return static_cast<std::size_t>(set) * ways_ + way;
    }

    bool isNvmWay(std::uint32_t way) const
    {
        return way >= config_.sramWays;
    }

    /** Fault-map frame index of an NVM way. */
    std::uint32_t
    frameOf(std::uint32_t set, std::uint32_t way) const
    {
        return set * config_.nvmWays + (way - config_.sramWays);
    }

    /** Effective capacity of (set, way): 64 for SRAM, live bytes for NVM. */
    unsigned frameCapacity(std::uint32_t set, std::uint32_t way) const;

    /** Bytes a block of ECB size @p ecb occupies in @p way. */
    unsigned
    storedSize(std::uint32_t way, unsigned ecb) const
    {
        // SRAM stores blocks uncompressed; NVM stores the ECB when the
        // policy compresses, raw frames otherwise.
        if (isNvmWay(way) && engine_.traits().usesCompression)
            return ecb;
        return blockBytes;
    }

    int findWay(std::uint32_t set, Addr block) const;

    /**
     * Victim way for an incoming block needing @p ecb bytes among ways
     * [begin, end): an invalid way with enough capacity if one exists,
     * else the LRU valid way with enough capacity ((Fit-)LRU). -1 when
     * nothing fits.
     */
    int victimWay(std::uint32_t set, std::uint32_t begin,
                  std::uint32_t end, unsigned ecb);

    /** Evict the resident of (set, way); dirty residents write back. */
    void evict(std::uint32_t set, std::uint32_t way);

    /** Deposit a block into (set, way), recording NVM wear. */
    void writeLine(std::uint32_t set, std::uint32_t way, Addr block,
                   bool dirty, unsigned ecb);

    /**
     * Migrate the resident of SRAM way (set, way) into the NVM part.
     * Falls back to a plain eviction when no NVM frame fits.
     */
    void migrateToNvm(std::uint32_t set, std::uint32_t way);

    /** The main insertion path (policy steering + replacement). */
    void insert(Addr block, bool dirty, unsigned ecb);

    /**
     * Every per-event counter, resolved once at construction. The
     * pointees live in stats_'s std::map, whose nodes are
     * pointer-stable across resetAll() and (in-place) restore().
     */
    struct HotCounters
    {
        Counter *agedOut, *bypasses, *evictionsNvm, *evictionsSram,
            *gets, *getsHitsNvm, *getsHitsSram, *getsMisses,
            *getx, *getxHitsNvm, *getxHitsSram, *getxMisses,
            *inplaceUpdates,
            *insNoneClean, *insNoneDirty, *insReadClean, *insReadDirty,
            *insWriteClean, *insWriteDirty,
            *insertNvmFallbackSram, *insertsNvm, *insertsSram,
            *invalidateOnGetx, *migrationsToNvm,
            *nvmBytesNoneClean, *nvmBytesNoneDirty, *nvmBytesRead,
            *nvmBytesWriteReuse, *nvmBytesWritten, *nvmWrites,
            *putsClean, *putsDirty, *putsPresent, *writebacksDirty;
    };

    HybridLlcConfig config_;
    std::unique_ptr<InsertionPolicy> policy_;
    PolicyEngine engine_;
    fault::FaultMap *faultMap_;
    LlcProbe *probe_ = nullptr;

    /** Tag store, structure-of-arrays (one entry per set x way). */
    std::uint32_t ways_; //!< cached totalWays()
    std::vector<Addr> tags_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint8_t> ecb_;  //!< 64 when incompressible
    std::vector<std::uint8_t> rrpv_; //!< SRRIP prediction (0 = imminent)

    cache::LruState lru_;
    ReuseTracker tracker_;
    std::unique_ptr<SetDueling> dueling_;
    StatGroup stats_;
    HotCounters ctr_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_HYBRID_LLC_HH
