#include "hybrid/policy_ca.hh"

namespace hllc::hybrid
{

Part
CaPolicy::choosePart(const InsertContext &ctx) const
{
    // ctx.cpth carries this set's threshold: the fixed value for CA, the
    // dueling-selected one for the CP_SD family.
    return ctx.ecbBytes <= ctx.cpth ? Part::Nvm : Part::Sram;
}

Part
CaRwrPolicy::choosePart(const InsertContext &ctx) const
{
    // Paper Table II.
    switch (ctx.reuse) {
      case ReuseClass::Read:
        return Part::Nvm;   // long-lived resident, protects the frame
      case ReuseClass::Write:
        return Part::Sram;  // will be invalidated and rewritten soon
      case ReuseClass::None:
        return CaPolicy::choosePart(ctx);
    }
    return Part::Sram;
}

} // namespace hllc::hybrid
