#include "hybrid/insertion_policy.hh"

#include "common/logging.hh"
#include "hybrid/policy_bh.hh"
#include "hybrid/policy_ca.hh"
#include "hybrid/policy_cpsd.hh"
#include "hybrid/policy_lhybrid.hh"
#include "hybrid/policy_tap.hh"

namespace hllc::hybrid
{

std::string_view
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::SramOnly:
        return "SRAM";
      case PolicyKind::Bh:
        return "BH";
      case PolicyKind::BhCp:
        return "BH_CP";
      case PolicyKind::Ca:
        return "CA";
      case PolicyKind::CaRwr:
        return "CA_RWR";
      case PolicyKind::CpSd:
        return "CP_SD";
      case PolicyKind::CpSdTh:
        return "CP_SD_Th";
      case PolicyKind::LHybrid:
        return "LHybrid";
      case PolicyKind::Tap:
        return "TAP";
    }
    return "?";
}

std::unique_ptr<InsertionPolicy>
InsertionPolicy::create(PolicyKind kind, const PolicyParams &params)
{
    switch (kind) {
      case PolicyKind::SramOnly:
        return std::make_unique<SramOnlyPolicy>();
      case PolicyKind::Bh:
        return std::make_unique<BhPolicy>();
      case PolicyKind::BhCp:
        return std::make_unique<BhCpPolicy>();
      case PolicyKind::Ca:
        return std::make_unique<CaPolicy>(params.fixedCpth);
      case PolicyKind::CaRwr:
        return std::make_unique<CaRwrPolicy>(params.fixedCpth);
      case PolicyKind::CpSd:
        return std::make_unique<CpSdPolicy>();
      case PolicyKind::CpSdTh:
        return std::make_unique<CpSdThPolicy>(params.thPercent,
                                              params.twPercent);
      case PolicyKind::LHybrid:
        return std::make_unique<LHybridPolicy>();
      case PolicyKind::Tap:
        return std::make_unique<TapPolicy>(params.tapThreshold);
    }
    panic("unknown policy kind %d", static_cast<int>(kind));
}

} // namespace hllc::hybrid
