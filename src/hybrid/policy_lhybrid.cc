#include "hybrid/policy_lhybrid.hh"

namespace hllc::hybrid
{

Part
LHybridPolicy::choosePart(const InsertContext &ctx) const
{
    // A block evicted from L2 and tagged LB (read-reused) enters the NVM
    // part; NLB blocks enter SRAM. A dirty Put can never be a loop-block.
    if (!ctx.dirty && ctx.reuse == ReuseClass::Read)
        return Part::Nvm;
    return Part::Sram;
}

} // namespace hllc::hybrid
