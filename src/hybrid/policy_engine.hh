/**
 * @file
 * Static-dispatch twin of the InsertionPolicy class hierarchy.
 *
 * The virtual InsertionPolicy objects stay the configuration-time source
 * of truth (factory, names, granularity checks, introspection), but the
 * per-access path must not pay a virtual call per decision: choosePart()
 * runs for every insertion and the structural trait queries
 * (usesCompression, globalReplacement, ...) run for every access via
 * storedSize(). PolicyEngine mirrors each policy as a tiny stateless (or
 * parameter-only) decider in a std::variant, so the LLC's insert path
 * dispatches with one branch table and the decision logic inlines.
 *
 * The decision rules here must match the virtual implementations in
 * policy_*.cc bit for bit; the golden-model differential tests replay
 * both against each other to enforce that.
 */

#ifndef HLLC_HYBRID_POLICY_ENGINE_HH
#define HLLC_HYBRID_POLICY_ENGINE_HH

#include <variant>

#include "hybrid/insertion_policy.hh"
#include "hybrid/types.hh"

namespace hllc::hybrid
{

/**
 * Structural features of a policy, resolved once at construction so the
 * per-access path reads plain bools instead of virtual trait getters.
 */
struct PolicyTraits
{
    bool usesCompression = false;
    bool globalReplacement = false;
    bool migrateReadReuseOnSramEviction = false;
    bool lhybridSramReplacement = false;
    bool usesSetDueling = false;
};

namespace detail
{

/** BH / BH_CP / SRAM bound: part choice is irrelevant (global LRU). */
struct GlobalDecider
{
    Part choosePart(const InsertContext &) const { return Part::Sram; }
};

/** CA: small blocks (ECB <= CPth) to NVM, big blocks to SRAM. */
struct CaDecider
{
    Part
    choosePart(const InsertContext &ctx) const
    {
        return ctx.ecbBytes <= ctx.cpth ? Part::Nvm : Part::Sram;
    }
};

/** CA_RWR / CP_SD family: paper Table II steering. */
struct CaRwrDecider
{
    Part
    choosePart(const InsertContext &ctx) const
    {
        switch (ctx.reuse) {
          case ReuseClass::Read:
            return Part::Nvm;
          case ReuseClass::Write:
            return Part::Sram;
          case ReuseClass::None:
            return CaDecider{}.choosePart(ctx);
        }
        return Part::Sram;
    }
};

/** LHybrid: clean read-reused blocks (loop-blocks) to NVM. */
struct LHybridDecider
{
    Part
    choosePart(const InsertContext &ctx) const
    {
        if (!ctx.dirty && ctx.reuse == ReuseClass::Read)
            return Part::Nvm;
        return Part::Sram;
    }
};

/** TAP: clean thrashing-blocks (hits >= threshold) to NVM. */
struct TapDecider
{
    unsigned hitThreshold;

    Part
    choosePart(const InsertContext &ctx) const
    {
        if (!ctx.dirty && ctx.reuse != ReuseClass::Write &&
            ctx.hits >= hitThreshold) {
            return Part::Nvm;
        }
        return Part::Sram;
    }
};

} // namespace detail

/** Inline-dispatch insertion decider + cached structural traits. */
class PolicyEngine
{
  public:
    /** Mirror @p policy (already constructed by the factory). */
    explicit PolicyEngine(const InsertionPolicy &policy,
                          const PolicyParams &params)
        : traits_{ policy.usesCompression(), policy.globalReplacement(),
                   policy.migrateReadReuseOnSramEviction(),
                   policy.lhybridSramReplacement(),
                   policy.usesSetDueling() }
    {
        switch (policy.kind()) {
          case PolicyKind::SramOnly:
          case PolicyKind::Bh:
          case PolicyKind::BhCp:
            impl_ = detail::GlobalDecider{};
            break;
          case PolicyKind::Ca:
            impl_ = detail::CaDecider{};
            break;
          case PolicyKind::CaRwr:
          case PolicyKind::CpSd:
          case PolicyKind::CpSdTh:
            impl_ = detail::CaRwrDecider{};
            break;
          case PolicyKind::LHybrid:
            impl_ = detail::LHybridDecider{};
            break;
          case PolicyKind::Tap:
            impl_ = detail::TapDecider{ params.tapThreshold };
            break;
        }
    }

    Part
    choosePart(const InsertContext &ctx) const
    {
        return std::visit(
            [&ctx](const auto &d) { return d.choosePart(ctx); }, impl_);
    }

    const PolicyTraits &traits() const { return traits_; }

  private:
    std::variant<detail::GlobalDecider, detail::CaDecider,
                 detail::CaRwrDecider, detail::LHybridDecider,
                 detail::TapDecider>
        impl_;
    PolicyTraits traits_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_ENGINE_HH
