/**
 * @file
 * TAP [32], the thrashing-aware state-of-the-art insertion policy (paper
 * Sec. II-C), in the fault-aware frame-disabling environment.
 *
 * TAP is more conservative than LHybrid: a block must be clean AND have
 * hit in the LLC more than a threshold number of times (a clean
 * thrashing-block) to be inserted in the NVM part; everything else goes
 * to SRAM.
 */

#ifndef HLLC_HYBRID_POLICY_TAP_HH
#define HLLC_HYBRID_POLICY_TAP_HH

#include "hybrid/insertion_policy.hh"

namespace hllc::hybrid
{

class TapPolicy : public InsertionPolicy
{
  public:
    explicit TapPolicy(unsigned hit_threshold)
        : hitThreshold_(hit_threshold)
    {}

    PolicyKind kind() const override { return PolicyKind::Tap; }
    Part choosePart(const InsertContext &ctx) const override;
    bool usesCompression() const override { return false; }

    unsigned hitThreshold() const { return hitThreshold_; }

  private:
    unsigned hitThreshold_;
};

} // namespace hllc::hybrid

#endif // HLLC_HYBRID_POLICY_TAP_HH
